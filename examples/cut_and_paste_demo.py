#!/usr/bin/env python
"""Walk through the Cut & Paste bijection of §4 on a small cycle.

Reproduces, end to end, the machinery behind Theorem 4.1:

1. run Parallel-IDLA with trajectory recording and print its block;
2. apply PtS (Algorithm 2) to obtain a *sequential* block of the same
   total length;
3. apply StP (Algorithm 1) to a sequential run and observe Lemma 4.6 —
   the longest row can only grow;
4. verify the validity properties (3)/(4) at every stage.

Run:  python examples/cut_and_paste_demo.py
"""

from __future__ import annotations

from repro.core import (
    is_valid_parallel_block,
    is_valid_sequential_block,
    parallel_idla,
    parallel_to_sequential,
    sequential_idla,
    sequential_to_parallel,
)
from repro.graphs import cycle_graph


def show(block, title, limit=10) -> None:
    print(
        f"\n{title} (total length {block.total_length}, "
        f"longest row {block.max_row_length}):",
    )
    for i, row in enumerate(block.rows[:limit]):
        cells = " ".join(f"{v:2d}" for v in row)
        print(f"  row {i:2d}: {cells}")
    if block.n > limit:
        print(f"  … {block.n - limit} more rows")


def main() -> None:
    g = cycle_graph(8)
    print(f"Graph: {g.name}")

    par = parallel_idla(g, 0, seed=11, record=True)
    bp = par.block()
    assert is_valid_parallel_block(bp, g, 0)
    show(bp, "Parallel block L (property (4) holds)")

    bs = parallel_to_sequential(bp)
    assert is_valid_sequential_block(bs, g, 0)
    assert bs.total_length == bp.total_length
    show(bs, "PtS(L): sequential block, same total length")

    seq = sequential_idla(g, 0, seed=29, record=True)
    b0 = seq.block()
    assert is_valid_sequential_block(b0, g, 0)
    show(b0, "Fresh sequential block L'")

    b1 = sequential_to_parallel(b0)
    assert is_valid_parallel_block(b1, g, 0)
    show(b1, "StP(L'): parallel block")
    print(
        f"\nLemma 4.6: longest row {b0.max_row_length} -> "
        f"{b1.max_row_length} (never shrinks) — this is why "
        "τ_seq ⪯ τ_par (Theorem 4.1)."
    )


if __name__ == "__main__":
    main()
