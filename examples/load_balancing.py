#!/usr/bin/env python
"""Dispersion as local-search load balancing (the paper's §1 motivation).

The introduction frames dispersion as a protocol for resource allocation:
``n`` jobs arrive at one node of a network and each performs a local random
search until it finds a free server (cf. the QoS load-balancing and
balls-into-bins-via-local-search models cited there).  Two operational
questions follow directly from the paper's results:

* **Makespan** — how long until every job is placed?  That is exactly the
  dispersion time, and the scheduling discipline matters: sequential
  placement (jobs released one at a time) beats fully concurrent placement
  (Theorem 4.1), but by at most an O(log n) factor (Theorem 4.2).
* **Work** — total number of probe messages is the total step count, which
  Theorem 4.1 shows is *scheduling-invariant*: concurrency costs makespan,
  never work.

This example runs the comparison on three topologies a datacentre
might resemble (expander fabric, 3-d torus, and a two-rack "barbell"
bottleneck) and prints makespan/work under both disciplines, plus the
Proposition A.1 twist: a smarter settling rule (refuse easy slots early)
can *shorten* the makespan on pathological topologies.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HairRule, parallel_idla, sequential_idla
from repro.experiments import render_table, summarize
from repro.graphs import (
    barbell_graph,
    clique_with_hair,
    random_regular_graph,
    torus_graph,
)
from repro.utils.rng import stable_seed


def measure(g, origin, reps=12, **kwargs):
    disp_s, disp_p, work = [], [], []
    for r in range(reps):
        rs = sequential_idla(
            g, origin, seed=stable_seed("lb", g.name, "s", r), **kwargs
        )
        rp = parallel_idla(g, origin, seed=stable_seed("lb", g.name, "p", r), **kwargs)
        disp_s.append(rs.dispersion_time)
        disp_p.append(rp.dispersion_time)
        work.append((rs.total_steps, rp.total_steps))
    w = np.asarray(work, dtype=float)
    return (
        summarize(disp_s).mean,
        summarize(disp_p).mean,
        w[:, 0].mean(),
        w[:, 1].mean(),
    )


def main() -> None:
    fabrics = [
        ("expander fabric", random_regular_graph(256, 6, seed=7), 0),
        ("3-d torus", torus_graph(6, 6, 6), 0),
        ("two racks (barbell)", barbell_graph(64, 8), 0),
    ]
    rows = []
    for label, g, origin in fabrics:
        ms, mp_, ws, wp = measure(g, origin)
        rows.append(
            [
                label,
                g.n,
                f"{ms:.0f}",
                f"{mp_:.0f}",
                f"{mp_/ms:.2f}",
                f"{ws:.0f}",
                f"{wp:.0f}",
            ],
        )
    print("Job placement by random local search (12 reps):\n")
    print(
        render_table(
        [
            "topology",
            "servers",
            "makespan seq",
            "makespan par",
            "par/seq",
            "work seq",
            "work par",
        ], rows),
    )
    print(
        "\nNote how work (total probes) is scheduling-invariant "
        "(Theorem 4.1) while makespan is not.",
    )

    # Proposition A.1: a reservation rule beating greedy settling.
    n = 128
    g = clique_with_hair(n)
    rule = HairRule.for_clique_with_hair(n)
    greedy, smart = [], []
    for r in range(30):
        greedy.append(
            sequential_idla(g, 0, seed=stable_seed("lb-rule", "g", r)).dispersion_time
        )
        smart.append(
            sequential_idla(g, 0, seed=stable_seed("lb-rule", "s", r), rule=rule)
            .dispersion_time
        )
    print(
        f"\nProposition A.1 on a {n}-server cluster with one hard-to-reach "
        f"slot (clique-with-hair):\n"
        f"  greedy settling:      mean makespan {np.mean(greedy):8.0f}\n"
        f"  reserve-the-hard-slot: mean makespan {np.mean(smart):8.0f}\n"
        "  refusing easy slots early ('doing more work') shortens the "
        "makespan — no least-action principle for IDLA."
    )


if __name__ == "__main__":
    main()
