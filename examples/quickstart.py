#!/usr/bin/env python
"""Quickstart: run every IDLA variant on one graph and compare.

Builds a 2-d grid, runs Sequential-, Parallel-, Uniform- and CTU-IDLA from
the corner, and prints the dispersion statistics the paper studies —
including the coupling invariant that total step counts agree in
distribution across scheduling protocols (Theorem 4.1).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ctu_idla, parallel_idla, sequential_idla, uniform_idla
from repro.experiments import render_table, summarize
from repro.graphs import grid_graph
from repro.utils.rng import stable_seed


def main() -> None:
    g = grid_graph(12, 12)
    origin = 0  # corner — a hard origin for the grid
    print(f"Graph: {g.name} (n={g.n}, m={g.num_edges})\n")

    drivers = {
        "sequential": sequential_idla,
        "parallel": parallel_idla,
        "uniform": uniform_idla,
        "ctu": ctu_idla,
    }
    reps = 20
    rows = []
    totals = {}
    for name, driver in drivers.items():
        disp, tot = [], []
        for r in range(reps):
            res = driver(g, origin, seed=stable_seed("quickstart", name, r))
            assert res.is_complete_dispersion()
            disp.append(res.dispersion_time)
            tot.append(res.total_steps)
        s, st = summarize(disp), summarize(tot)
        totals[name] = st.mean
        rows.append(
            [
                name,
                f"{s.mean:.1f}",
                f"{s.sem:.1f}",
                f"{s.median:.1f}",
                f"{st.mean:.0f}",
            ]
        )

    print(render_table(["process", "E[τ]", "sem", "median τ", "E[total steps]"], rows))
    print(
        "\nTheorem 4.1 coupling check: total steps should agree across "
        "protocols —\n  spread of E[total]: "
        f"{max(totals.values()) - min(totals.values()):.1f} "
        f"(vs mean level {sum(totals.values()) / len(totals):.1f})"
    )
    print(
        "Stochastic domination (Thm 4.1): E[τ_seq] <= E[τ_par] — "
        f"{float(rows[0][1]) <= float(rows[1][1])}"
    )


if __name__ == "__main__":
    main()
