#!/usr/bin/env python
"""Mini reproduction of the paper's Table 1 at laptop scale.

For each graph family, measures E[τ_seq] and E[τ_par] at a moderate size
and prints them next to the exact support quantities (hitting time, lazy
mixing time, Matthews cover bound) and the paper's predicted order.  The
full sweep + scaling fits live in benchmarks/bench_table1_*.py; this
example is the 30-second version.

Run:  python examples/table1_mini.py
"""

from __future__ import annotations

from repro.experiments import estimate_dispersion, render_table
from repro.markov import matthews_upper_bound, max_hitting_time, mixing_time
from repro.theory import FAMILIES, TABLE1
from repro.utils.rng import stable_seed

SIZES = {
    "path": 64,
    "cycle": 64,
    "complete": 256,
    "hypercube": 256,
    "binary_tree": 127,
    "grid2d": 144,
    "torus3d": 125,
    "expander": 256,
}


def main() -> None:
    rows = []
    for fam_name, n in SIZES.items():
        fam = FAMILIES[fam_name]
        g = fam.build(n, seed=stable_seed("t1mini", fam_name))
        origin = fam.worst_origin(g)
        seq = estimate_dispersion(
            g,
            "sequential",
            origin=origin,
            reps=10,
            seed=stable_seed("t1mini", fam_name, "seq"),
        )
        par = estimate_dispersion(
            g,
            "parallel",
            origin=origin,
            reps=10,
            seed=stable_seed("t1mini", fam_name, "par"),
        )
        row = TABLE1[fam_name]
        rows.append(
            [
                fam_name,
                g.n,
                f"{max_hitting_time(g):.0f}",
                mixing_time(g, lazy=True),
                f"{matthews_upper_bound(g):.0f}",
                f"{seq.dispersion.mean:.0f}",
                f"{par.dispersion.mean:.0f}",
                row.seq.label,
            ]
        )
    print("Table 1 at laptop scale (10 reps each):\n")
    print(
        render_table(
            [
                "family",
                "n",
                "t_hit",
                "t_mix",
                "cover≤",
                "E[τ_seq]",
                "E[τ_par]",
                "paper order",
            ],
            rows,
        )
    )
    print("\nSee benchmarks/bench_table1_*.py for sweeps with scaling fits.")


if __name__ == "__main__":
    main()
