#!/usr/bin/env python
"""Watch the IDLA aggregate grow into a disc (§1.3 / Proposition 5.10).

The grid lower bound of the paper conditions on the Lawler–Bramson–
Griffeath shape theorem: after m particles the aggregate on Z² is a
Euclidean disc of radius √(m/π), with only logarithmic boundary
fluctuations (Jerison–Levine–Sheffield).  This example grows one aggregate
at the centre of a large box, prints the radius statistics at several
checkpoints, and draws the final aggregate as ASCII art — the disc is
clearly visible.

Run:  python examples/shape_theorem.py
"""

from __future__ import annotations


from repro.core import (
    aggregate_after,
    euclidean_shape_stats,
    grid_coordinates,
    sequential_idla,
)
from repro.experiments import render_table
from repro.graphs import grid_graph

SIDE = 51
PARTICLES = 800


def ascii_aggregate(agg, side: int, origin: int) -> str:
    occupied = set(int(v) for v in agg)
    oy, ox = divmod(origin, side)
    # crop to the bounding square of the aggregate plus margin
    ys = [v // side for v in occupied]
    xs = [v % side for v in occupied]
    y0, y1 = max(min(ys) - 1, 0), min(max(ys) + 1, side - 1)
    x0, x1 = max(min(xs) - 1, 0), min(max(xs) + 1, side - 1)
    lines = []
    for y in range(y0, y1 + 1):
        row = []
        for x in range(x0, x1 + 1):
            v = y * side + x
            if v == origin:
                row.append("@")
            elif v in occupied:
                row.append("#")
            else:
                row.append("·")
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    g = grid_graph(SIDE, SIDE)
    center = (SIDE // 2) * SIDE + SIDE // 2
    coords = grid_coordinates(SIDE, SIDE)
    res = sequential_idla(g, center, seed=2024, num_particles=PARTICLES)

    rows = []
    for k in (50, 100, 200, 400, 800):
        st = euclidean_shape_stats(aggregate_after(res, k), center, coords)
        rows.append(
            [
                k,
                f"{st.target_radius:.2f}",
                f"{st.in_radius:.2f}",
                f"{st.out_radius:.2f}",
                f"{st.sphericity:.3f}",
                f"{st.fluctuation:.2f}",
            ]
        )
    print("IDLA aggregate shape on Z² (one run, origin at the centre):\n")
    print(
        render_table(
            [
                "k",
                "disc radius √(k/π)",
                "in-radius",
                "out-radius",
                "in/out",
                "fluctuation",
            ],
            rows,
        )
    )
    print(
        "\nPaper (§1.3, eq. (5)): B(r − a log r) ⊆ A(πr²) ⊆ B(r + a log r) "
        "w.h.p.\nFinal aggregate:\n"
    )
    print(ascii_aggregate(aggregate_after(res, PARTICLES), SIDE, center))


if __name__ == "__main__":
    main()
