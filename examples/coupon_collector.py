#!/usr/bin/env python
"""The clique as a generalised coupon collector (Theorem 5.2).

Sequential-IDLA on K_n *is* the coupon collector: the i-th particle's walk
is a geometric wait for a vacant vertex.  The dispersion time is the
longest single wait, ``E[τ_seq]/n → κ_cc ≈ 1.2552`` (Lemma 5.1, with the
series sign corrected — see repro.bounds.constants).  Parallel-IDLA is
strictly slower: ``E[τ_par]/n → π²/6 ≈ 1.6449`` — competition between
unsettled particles stretches the longest trajectory by ≈ 31%.

This example measures both constants and compares them to the exact
finite-n coupon-collector value.

Run:  python examples/coupon_collector.py
"""

from __future__ import annotations

from repro.bounds import KAPPA_CC, PI2_OVER_6, expected_max_geometric_sum
from repro.experiments import estimate_dispersion, render_table
from repro.graphs import complete_graph
from repro.utils.rng import stable_seed


def main() -> None:
    sizes = [128, 256, 512, 1024]
    reps = 40
    rows = []
    for n in sizes:
        g = complete_graph(n)
        seq = estimate_dispersion(
            g, "sequential", reps=reps, seed=stable_seed("cc", "seq", n)
        )
        par = estimate_dispersion(
            g, "parallel", reps=reps, seed=stable_seed("cc", "par", n)
        )
        exact = expected_max_geometric_sum(n - 1)  # longest wait, n-1 free slots
        rows.append(
            [
                n,
                f"{seq.dispersion.mean / n:.3f}",
                f"{exact / n:.3f}",
                f"{par.dispersion.mean / n:.3f}",
                f"{par.dispersion.mean / max(seq.dispersion.mean, 1e-12):.3f}",
            ]
        )
    print("Clique dispersion constants (Theorem 5.2):\n")
    print(
        render_table(
            ["n", "E[τ_seq]/n", "exact CC max /n", "E[τ_par]/n", "par/seq"],
            rows,
        )
    )
    print(
        f"\npaper limits:  κ_cc = {KAPPA_CC:.4f}   π²/6 = {PI2_OVER_6:.4f}   "
        f"ratio = {PI2_OVER_6 / KAPPA_CC:.3f} (the ≈30% slowdown of §1.1)",
    )


if __name__ == "__main__":
    main()
