#!/usr/bin/env python
"""Proposition 2.1: the dispersion time does not concentrate.

Two gadget graphs break concentration in opposite directions:

* **G₁, clique with a hair** — with probability ≈ 1/e no particle steps
  into the hair on round 1 and the tip must later be found through a
  1/(n-1) bottleneck: the dispersion time is Ω(n²) on a constant fraction
  of runs but O(n) otherwise ⇒ a constant mass sits far *below* the mean.
* **G₂, clique with a hair on a pimple** — the hair hangs off a vertex of
  degree ≈ n/log n; with probability Ω(1/n) *every* walker misses it and
  the run takes Ω(n²), inflating the tail: mass Ω(1/n) sits ≈ n × above
  the mean.

This example plots (as text histograms) the empirical dispersion-time
distribution on both gadgets, exhibiting the bimodality.

Run:  python examples/non_concentration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import sequential_idla
from repro.graphs import clique_with_hair, clique_with_hair_on_pimple
from repro.utils.rng import stable_seed


def text_hist(samples, bins=12, width=52) -> str:
    s = np.asarray(samples, dtype=float)
    # log-spaced bins expose the bimodal structure
    edges = np.geomspace(max(s.min(), 1.0), s.max() + 1, bins + 1)
    counts, _ = np.histogram(s, bins=edges)
    peak = counts.max() or 1
    lines = []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"  [{lo:9.0f}, {hi:9.0f})  {bar} {c}")
    return "\n".join(lines)


def run(g, origin, reps, tag):
    out = np.empty(reps)
    for r in range(reps):
        out[r] = sequential_idla(
            g, origin, seed=stable_seed("conc", tag, r)
        ).dispersion_time
    return out


def main() -> None:
    n, reps = 96, 300

    g1 = clique_with_hair(n)
    d1 = run(g1, 0, reps, "g1")
    print(f"G1 = clique with a hair, n={n}, origin=v (hair base), {reps} runs")
    print(
        f"  mean {d1.mean():.0f}, median {np.median(d1):.0f}, "
        f"fraction below mean/3: {(d1 < d1.mean() / 3).mean():.2f}",
    )
    print(text_hist(d1))
    print(
        "\n  -> a constant fraction of runs finish in O(n) while the mean is "
        "driven by Ω(n²) runs: Pr[D <= O(E[D]/n)] = Ω(1).\n"
    )

    g2 = clique_with_hair_on_pimple(n)
    origin = n - 2  # the pimple vertex v
    d2 = run(g2, origin, reps, "g2")
    thr = 10 * np.median(d2)
    print(f"G2 = clique with a hair on a pimple, n={n}, origin=v, {reps} runs")
    print(
        f"  mean {d2.mean():.0f}, median {np.median(d2):.0f}, "
        f"fraction above 10x median: {(d2 > thr).mean():.3f} "
        f"(Ω(1/n) = {1.0 / n:.3f} scale)",
    )
    print(text_hist(d2))
    print(
        "\n  -> rare Ω(n²) excursions give Pr[D >= Ω(E[D]·n)] = Ω(1/n): the "
        "dispersion time has a polynomially heavy upper tail."
    )


if __name__ == "__main__":
    main()
