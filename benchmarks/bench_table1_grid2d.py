"""Table 1, 2-d grid/torus row (§5.2.2, Open Problem 1).

Paper claims: ``Ω(n log n) ≤ t_seq ≤ t_par = O(n log² n)`` — the only
family whose dispersion order the paper leaves open (conjectured
``n log² n``).  We measure the ratio against both candidate laws: the
``n log n`` ratio should drift *upwards* (it is not the right law) while
the ``n log² n`` ratio should be near-flat or drifting down.
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1, growth_laws

SIZES = [81, 144, 256, 441, 729]
REPS = 10


def _experiment():
    sweep = sweep_dispersion("torus2d", SIZES, reps=REPS, seed=202404)
    lo_law = TABLE1["torus2d"].seq  # n log n
    hi_law = TABLE1["torus2d"].dispersion_upper  # n log² n
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / lo_law(n), 4),
                round(seq.dispersion.mean / hi_law(n), 4),
            ]
        )
    return {
        "rows": rows,
        "lo_fit": sweep.constant_fit("sequential", lo_law),
        "hi_fit": sweep.constant_fit("sequential", hi_law),
        "linear_fit": sweep.constant_fit("sequential", growth_laws()["n"]),
        "pow": sweep.power_law("sequential"),
    }


def bench_table1_grid2d(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_grid2d",
        "Table 1 / §5.2.2 — 2-d torus: between Ω(n log n) and O(n log² n)",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/(n ln n)", "seq/(n ln² n)"],
        out["rows"],
        extra={
            "trend vs n log n": round(out["lo_fit"].trend, 3),
            "trend vs n log² n": round(out["hi_fit"].trend, 3),
            "trend vs n (must be clearly positive)": round(
                out["linear_fit"].trend, 3
            ),
            "log-log exponent": round(out["pow"].exponent, 3),
            "paper": "open problem; conjectured n log² n",
        },
    )
    # super-linear: strictly above Θ(n)
    assert out["linear_fit"].trend > 0.08
    # consistent with the bracket: n log² n trend must not be clearly
    # positive (that law is the proven upper bound)
    assert out["hi_fit"].trend < 0.12
    # and n log n should fit no better than n log² n from above
    assert out["lo_fit"].trend >= out["hi_fit"].trend - 1e-9
