"""Implicit graph families at the million-vertex scale (tracemalloc-pinned).

The whole point of the neighbour-kernel seam: the asymptotic regime the
paper argues about (Table-1 dispersion as ``n -> oo``) needs graphs whose
CSR arrays would dominate — or exceed — memory before the first walk
step.  This bench runs genuine ``reps x n = 10^6`` dispersion estimates
(partial dispersion: ``num_particles`` walkers, valid for every process
that accepts ``1 <= m <= n``) on the implicit cycle and the implicit
1000 x 1000 torus, and **pins the memory claim with tracemalloc**: the
peak traced allocation of the whole estimate — graph, drivers, streams,
occupancy — must stay below what the int64 ``indptr``/``indices`` arrays
*alone* would cost, i.e. resident graph memory is O(1) in ``m``.  At
``n = 10^8`` (the ROADMAP target this unlocks) the CSR cycle arrays are
~2.4 GB; the implicit build is still a few integers.

A small cross-build equivalence assertion (implicit vs CSR at n = 512)
rides along as a sanity anchor; the slot-for-slot contract itself is
pinned by ``tests/test_graphs_implicit.py`` and the differential harness.

Set ``BENCH_IMPLICIT_*`` environment variables to shrink the workloads
(CI smoke); the cross-build equivalence anchor asserts at every size,
while the memory assertions arm only from ``n >= 10^5`` — below that the
O(reps) uniform stream buffers (fixed ~0.5 MB) dwarf a tiny CSR floor
and the comparison is meaningless.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from _common import emit, run_once
from repro.experiments import estimate_dispersion
from repro.graphs import cycle_graph, torus_graph

N = int(os.environ.get("BENCH_IMPLICIT_N", 1_000_000))
SIDE = int(os.environ.get("BENCH_IMPLICIT_SIDE", 1000))
REPS = int(os.environ.get("BENCH_IMPLICIT_REPS", 8))
PARTICLES = int(os.environ.get("BENCH_IMPLICIT_PARTICLES", 64))
SEED = 20260808
FULL_SIZE = (N, SIDE) == (1_000_000, 1000)

#: partial-dispersion workloads: (label, build, process, driver kwargs)
WORKLOADS = [
    (
        f"cycle n={N} sequential",
        lambda: cycle_graph(N, implicit=True),
        "sequential",
        # tail_threshold=0 keeps the run pure lock-step: the finisher's
        # per-repetition occupancy lists are O(n) Python objects
        {"num_particles": PARTICLES, "tail_threshold": 0},
    ),
    (
        f"torus {SIDE}x{SIDE} parallel",
        lambda: torus_graph(SIDE, SIDE, implicit=True),
        "parallel",
        {"num_particles": PARTICLES, "tail_threshold": 0},
    ),
]


def _run_workload(label, build, process, kwargs):
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        g = build()
        est = estimate_dispersion(
            g, process, reps=REPS, seed=SEED, batched=True, **kwargs
        )
        elapsed = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # what the materialised build's graph arrays alone would cost
    csr_floor = 8 * (g.n + 1) + 8 * (2 * g.num_edges)
    assert est.samples.shape == (REPS,)
    assert np.all(est.samples >= 1), f"{label}: degenerate dispersion times"
    if g.n >= 10**5:  # below this the O(reps) stream buffers dominate
        assert peak < csr_floor, (
            f"{label}: traced peak {peak / 1e6:.1f} MB reached the CSR-array "
            f"floor {csr_floor / 1e6:.1f} MB — something materialised adjacency"
        )
    return {
        "label": label,
        "n": g.n,
        "tau_mean": float(est.samples.mean()),
        "total_steps": int(est.total_samples.sum()),
        "elapsed_s": elapsed,
        "peak_mb": peak / 1e6,
        "csr_floor_mb": csr_floor / 1e6,
    }


def _cross_build_anchor():
    """Tiny implicit-vs-CSR equality — the contract the scale run rests on."""
    a = estimate_dispersion(
        cycle_graph(512, implicit=True),
        "sequential",
        reps=4,
        seed=SEED,
        num_particles=16,
        batched=True,
    )
    b = estimate_dispersion(
        cycle_graph(512),
        "sequential",
        reps=4,
        seed=SEED,
        num_particles=16,
        batched=True,
    )
    assert np.array_equal(a.samples, b.samples), "implicit diverged from CSR"
    assert np.array_equal(a.total_samples, b.total_samples)


def _experiment():
    _cross_build_anchor()
    rows = [_run_workload(*w) for w in WORKLOADS]
    if FULL_SIZE:
        for row in rows:
            assert row["n"] == 10**6, "full-size run must be n = 10^6"
            # the acceptance claim: whole-estimate peak far below the graph
            # arrays alone (resident graph memory O(1) in m)
            assert row["peak_mb"] < row["csr_floor_mb"] / 2, row["label"]
    return rows


def bench_implicit_scale(benchmark, capsys):
    rows = run_once(benchmark, _experiment)
    emit(
        capsys,
        "implicit_scale",
        f"Implicit families at scale (reps={REPS}, {PARTICLES} particles, "
        f"partial dispersion)",
        [
            "workload",
            "n",
            "mean tau",
            "total steps",
            "time (s)",
            "peak mem (MB)",
            "CSR floor (MB)",
        ],
        [
            [
                r["label"],
                r["n"],
                round(r["tau_mean"], 1),
                r["total_steps"],
                round(r["elapsed_s"], 2),
                round(r["peak_mb"], 1),
                round(r["csr_floor_mb"], 1),
            ]
            for r in rows
        ],
        extra={
            "memory_contract": (
                "tracemalloc peak of the whole estimate < int64 "
                "indptr+indices bytes of the materialised build"
            ),
            "cross_build_anchor": "cycle-512 implicit == CSR (bit-identical)",
            "particles": PARTICLES,
        },
    )
