"""Performance ablations of the simulation engine (DESIGN.md §6.5).

Not a paper experiment: these benches justify two implementation choices —
the vectorised wide-phase stepping and the scalar narrow-phase handoff in
``parallel_idla`` — and time the raw kernels so regressions are visible.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla
from repro.graphs import cycle_graph, torus_graph
from repro.utils.rng import stable_seed
from repro.walks import SingleWalkKernel, WalkEngine


def bench_engine_vector_step(benchmark):
    """Vectorised step of 10k walkers on a 3-d torus."""
    g = torus_graph(10, 10, 10)
    eng = WalkEngine(g, seed=0)
    pos = np.zeros(10_000, dtype=np.int64)

    def step():
        eng.step(pos, out=pos)
        return pos

    benchmark(step)


def bench_engine_scalar_kernel(benchmark):
    """Scalar kernel: 10k single steps (the sequential-IDLA hot loop)."""
    g = torus_graph(10, 10, 10)
    kern = SingleWalkKernel(g, seed=0)

    def run():
        pos = 0
        for _ in range(10_000):
            pos = kern.step(pos)
        return pos

    benchmark(run)


def bench_engine_scalar_threshold_ablation(benchmark, capsys):
    """Dispersion-time law must be invariant to the hybrid threshold, while
    the runtime benefits from the scalar tail phase on long-tailed runs."""

    def experiment():
        g = cycle_graph(48)
        rows = []
        means = {}
        for thr in (0, 16, 10**9):
            d = [
                parallel_idla(
                    g, 0, seed=stable_seed("abl", thr, r), scalar_threshold=thr
                ).dispersion_time
                for r in range(40)
            ]
            means[thr] = float(np.mean(d))
            rows.append([thr, round(float(np.mean(d)), 1), round(float(np.std(d)), 1)])
        return {"rows": rows, "means": means}

    out = run_once(benchmark, experiment)
    emit(
        capsys,
        "engine_threshold_ablation",
        "Ablation — parallel_idla scalar_threshold does not change the law",
        ["scalar_threshold", "E[τ_par]", "std"],
        out["rows"],
    )
    vals = list(out["means"].values())
    assert max(vals) / min(vals) < 1.35  # same distribution, MC slack
