"""§1.3 / Proposition 5.10's ingredient: the IDLA shape theorem on Z².

The grid lower bound conditions on the aggregate containing a large ball
(Jerison–Levine–Sheffield eq. (5): ``B(r − a log r) ⊆ A(πr²) ⊆
B(r + a log r)``).  We grow aggregates at the centre of a large box and
track in-/out-radius against the perfect-disc radius ``√(k/π)``: the
sphericity must increase towards 1 and the fluctuation band must stay on
the ``log r`` scale (far below ``r`` itself).
"""

import numpy as np

from _common import emit, run_once
from repro.core import (
    aggregate_after,
    euclidean_shape_stats,
    grid_coordinates,
    sequential_idla,
)
from repro.graphs import grid_graph
from repro.utils.rng import stable_seed

SIDE = 61
KS = [100, 300, 600, 1200]
REPS = 5


def _experiment():
    g = grid_graph(SIDE, SIDE)
    center = (SIDE // 2) * SIDE + SIDE // 2
    coords = grid_coordinates(SIDE, SIDE)
    rows = []
    spher = []
    for k in KS:
        stats = []
        for r in range(REPS):
            res = sequential_idla(
                g, center, seed=stable_seed("shape", k, r), num_particles=k
            )
            stats.append(euclidean_shape_stats(aggregate_after(res, k), center, coords))
        in_r = np.mean([s.in_radius for s in stats])
        out_r = np.mean([s.out_radius for s in stats])
        target = stats[0].target_radius
        fluct = np.mean([s.fluctuation for s in stats])
        spher.append(in_r / out_r)
        rows.append(
            [
                k,
                round(target, 2),
                round(in_r, 2),
                round(out_r, 2),
                round(in_r / out_r, 3),
                round(fluct, 2),
                round(fluct / np.log(max(target, 2.0)), 2),
            ]
        )
    return {"rows": rows, "sphericity": spher}


def bench_shape(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "shape",
        "§1.3 — LBG/JLS shape theorem: IDLA aggregates on Z² are discs",
        [
            "k",
            "disc radius √(k/π)",
            "in-radius",
            "out-radius",
            "in/out",
            "fluctuation",
            "fluct/log r",
        ],
        out["rows"],
        extra={"paper": "B(r − a log r) ⊆ A(πr²) ⊆ B(r + a log r) w.h.p."},
    )
    s = out["sphericity"]
    # sphericity high and non-degrading with k
    assert s[-1] > 0.75
    assert s[-1] >= s[0] - 0.05
    for row in out["rows"]:
        # radius tracks the perfect disc within 20%
        assert 0.8 < row[3] / row[1] < 1.25
        # fluctuation band stays on the log scale: a bounded multiple of
        # log r, far below r
        assert row[6] < 3.0
