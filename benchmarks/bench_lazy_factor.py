"""Theorem 4.3: lazy IDLA = (2 + o(1)) × non-lazy, for both schedulers.

Laziness wastes exactly half the steps once dispersion times are
polynomially large; the measured ratio should approach 2 from within a
(2 ± small) window on every family.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed

CASES = [("cycle", 48), ("complete", 128), ("hypercube", 128), ("grid2d", 64)]
# dispersion times are maxima of heavy-tailed waits; 100 reps keeps the
# per-cell ratio noise near ±8%
REPS = 100


def _experiment():
    rows = []
    for fam_name, n in CASES:
        g = FAMILIES[fam_name].build(n, seed=stable_seed("lzf-g", fam_name))
        for proc, driver in (("seq", sequential_idla), ("par", parallel_idla)):
            fast = np.mean(
                [
                    driver(
                        g, 0, seed=stable_seed("lzf-f", fam_name, proc, r)
                    ).dispersion_time
                    for r in range(REPS)
                ]
            )
            slow = np.mean(
                [
                    driver(
                        g, 0, seed=stable_seed("lzf-l", fam_name, proc, r), lazy=True
                    ).dispersion_time
                    for r in range(REPS)
                ]
            )
            rows.append(
                [
                    fam_name,
                    g.n,
                    proc,
                    round(fast, 1),
                    round(slow, 1),
                    round(slow / fast, 3),
                ]
            )
    return {"rows": rows}


def bench_lazy_factor(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "lazy_factor",
        "Thm 4.3 — lazy/non-lazy dispersion ratio (paper: 2 + o(1))",
        ["family", "n", "process", "E[τ]", "E[τ lazy]", "ratio"],
        out["rows"],
    )
    for row in out["rows"]:
        assert 1.5 < row[5] < 2.8
    # average across all cases should be very close to 2
    mean_ratio = np.mean([row[5] for row in out["rows"]])
    assert abs(mean_ratio - 2.0) < 0.25
