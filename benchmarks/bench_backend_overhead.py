"""Seam-dispatch overhead of the array-backend refactor (implementation bench).

The ``repro.backends`` seam routes every hot-path primitive (gathers,
bincounts, compresses, RNG-block fills, allocations) through a bound
method on an ``ArrayBackend`` instance instead of a direct ``np.*``
call.  The refactor is pinned bit-identical by the differential
harness; this bench pins its *cost*: the dispatch overhead must stay
**<= 2 % of driver wall time** on the Table-1 cycle and hypercube
Parallel-IDLA smokes.

No pre-refactor binary exists in-tree to race against, so the overhead
is measured constructively instead of by before/after subtraction:

1. a ``CountingBackend`` (a ``NumpyBackend`` subclass) counts every
   primitive call the workload makes — the workload graph is rebuilt
   with it too, so the CSR neighbour-slot gathers inside
   ``Graph.neighbor_slots`` are counted, not just the driver's calls;
2. the per-call *dispatch delta* of each primitive is timed directly —
   seam call minus the raw numpy call it wraps, on small representative
   arrays, min over repeated batches (negative noise clamps to zero);
3. the seam overhead estimate is ``sum(count x delta)``, compared to
   the measured driver wall time on the default backend (min of
   ``REPEAT`` runs).

This over-counts the true cost (the delta includes micro-bench loop
noise, and every delta is taken at small array sizes where dispatch is
proportionally largest), so a pass here is conservative.

Alongside the estimate, the bench anchors ``numpy_strict`` end-to-end:
same seeds through both registered backends must produce byte-identical
results, and the strict wall time is reported for reference (its
assertions are *allowed* to cost more than 2 %; only the default
backend's seam is pinned).

Set ``BENCH_BACKEND_*`` environment variables to shrink the workloads
(CI smoke); the <= 2 % assertion only arms at full size.  The
byte-identity anchor and the are-the-counters-alive sanity checks
assert at every size.
"""

from __future__ import annotations

import os
import time
from collections import Counter

import numpy as np

from _common import emit, run_once
from repro.backends import NumpyBackend, get_backend
from repro.core import batched_parallel_idla
from repro.graphs import cycle_graph, hypercube_graph
from repro.graphs.csr import Graph
from repro.utils.rng import spawn_seed_sequences

CYCLE_N = int(os.environ.get("BENCH_BACKEND_CYCLE_N", 256))
CYCLE_REPS = int(os.environ.get("BENCH_BACKEND_CYCLE_REPS", 64))
CUBE_DIM = int(os.environ.get("BENCH_BACKEND_CUBE_DIM", 10))
CUBE_REPS = int(os.environ.get("BENCH_BACKEND_CUBE_REPS", 32))
REPEAT = int(os.environ.get("BENCH_BACKEND_REPEAT", 3))

SEED = 20260808
OVERHEAD_CAP = 0.02
FULL_SIZE = (CYCLE_N, CYCLE_REPS, CUBE_DIM, CUBE_REPS) == (256, 64, 10, 32)

#: every primitive the protocol names (property ``xp`` is free: drivers
#: alias it once per call, after which portable ops are raw numpy).
PRIMITIVES = (
    "asarray",
    "ascontiguousarray",
    "empty",
    "zeros",
    "full",
    "arange",
    "asnumpy",
    "take",
    "bincount",
    "searchsorted",
    "cumsum",
    "compress",
    "flatnonzero",
    "fill_uniform",
)


def _make_counting_backend():
    """A NumpyBackend whose primitives increment a shared Counter."""
    counts: Counter = Counter()

    class CountingBackend(NumpyBackend):
        name = "counting_bench"  # never registered: instance-only use

    for prim in PRIMITIVES:
        base = getattr(NumpyBackend, prim)

        def wrapped(self, *args, _base=base, _prim=prim, **kwargs):
            counts[_prim] += 1
            return _base(self, *args, **kwargs)

        setattr(CountingBackend, prim, wrapped)
    return CountingBackend(), counts


def _dispatch_deltas(batch=4000, repeats=5):
    """Per-call seam cost of each primitive, in seconds (clamped >= 0)."""
    bk = get_backend("numpy")
    a = np.arange(64, dtype=np.int64)
    idx = (a * 7) % 64
    v = np.asarray([3, 17, 40], dtype=np.int64)
    mask = (a % 3 == 0).astype(np.bool_)
    buf = np.empty(64, dtype=np.float64)
    gen = np.random.default_rng(0)
    pairs = {
        "take": (lambda: bk.take(a, idx), lambda: a[idx]),
        "bincount": (
            lambda: bk.bincount(idx, minlength=64),
            lambda: np.bincount(idx, minlength=64),
        ),
        "searchsorted": (
            lambda: bk.searchsorted(a, v, side="right"),
            lambda: np.searchsorted(a, v, side="right"),
        ),
        "cumsum": (lambda: bk.cumsum(a), lambda: np.cumsum(a)),
        "compress": (lambda: bk.compress(mask, a), lambda: a[mask]),
        "flatnonzero": (
            lambda: bk.flatnonzero(mask),
            lambda: np.flatnonzero(mask),
        ),
        "fill_uniform": (
            lambda: bk.fill_uniform(gen, buf),
            lambda: gen.random(out=buf),
        ),
        "asarray": (lambda: bk.asarray(a), lambda: np.asarray(a)),
        "ascontiguousarray": (
            lambda: bk.ascontiguousarray(a, dtype=np.int64),
            lambda: np.ascontiguousarray(a, dtype=np.int64),
        ),
        "empty": (
            lambda: bk.empty(64, dtype=np.int64),
            lambda: np.empty(64, dtype=np.int64),
        ),
        "zeros": (
            lambda: bk.zeros(64, dtype=np.int64),
            lambda: np.zeros(64, dtype=np.int64),
        ),
        "full": (
            lambda: bk.full(64, -1, dtype=np.int64),
            lambda: np.full(64, -1, dtype=np.int64),
        ),
        "arange": (
            lambda: bk.arange(64, dtype=np.int64),
            lambda: np.arange(64, dtype=np.int64),
        ),
        "asnumpy": (lambda: bk.asnumpy(a), lambda: np.asarray(a)),
    }

    def per_call(fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(batch):
                fn()
            best = min(best, time.perf_counter() - t0)
        return best / batch

    return {
        prim: max(per_call(seam) - per_call(direct), 0.0)
        for prim, (seam, direct) in pairs.items()
    }


def _rebind(g, backend):
    """The same CSR build bound to a different backend instance."""
    return Graph(g.indptr, g.indices, name=g.name, backend=backend)


def _run(g, reps, backend):
    seeds = spawn_seed_sequences(SEED, reps)
    return batched_parallel_idla(g, seeds=seeds, backend=backend)


def _timed(fn):
    best = float("inf")
    out = None
    for _ in range(REPEAT):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _measure_workload(label, g, reps, deltas):
    # 1. call counts: the graph itself rebound so neighbour gathers count
    counting, counts = _make_counting_backend()
    _run(_rebind(g, counting), reps, counting)
    # 2. wall time on the default backend, and the strict leg for anchor
    default_results, wall = _timed(lambda: _run(g, reps, "numpy"))
    strict_results, wall_strict = _timed(lambda: _run(g, reps, "numpy_strict"))
    for d, s in zip(default_results, strict_results):
        assert d.steps.tobytes() == s.steps.tobytes()
        assert d.settled_at.tobytes() == s.settled_at.tobytes()
        assert d.settle_order.tobytes() == s.settle_order.tobytes()
        assert d.dispersion_time == s.dispersion_time
    # 3. the constructive overhead estimate
    overhead = sum(counts[p] * deltas.get(p, 0.0) for p in counts)
    return {
        "label": label,
        "n": g.n,
        "reps": reps,
        "calls": sum(counts.values()),
        "counts": dict(counts),
        "wall": wall,
        "wall_strict": wall_strict,
        "overhead": overhead,
        "pct": 100.0 * overhead / wall,
    }


def _experiment():
    deltas = _dispatch_deltas()
    workloads = [
        _measure_workload(
            "cycle (Table 1)", cycle_graph(CYCLE_N), CYCLE_REPS, deltas
        ),
        _measure_workload(
            "hypercube", hypercube_graph(CUBE_DIM), CUBE_REPS, deltas
        ),
    ]
    return {"deltas": deltas, "workloads": workloads}


def bench_backend_overhead(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    rows = [
        [
            w["label"],
            w["n"],
            w["reps"],
            w["calls"],
            f"{w['wall']:.3f}",
            f"{w['wall_strict']:.3f}",
            f"{1e3 * w['overhead']:.2f}",
            f"{w['pct']:.3f}",
        ]
        for w in out["workloads"]
    ]
    emit(
        capsys,
        "backend_overhead",
        "ArrayBackend seam dispatch overhead (parallel IDLA, batched)",
        [
            "workload",
            "n",
            "reps",
            "primitive calls",
            "wall numpy (s)",
            "wall strict (s)",
            "seam est (ms)",
            "overhead %",
        ],
        rows,
        extra={
            "dispatch delta per call (ns)": {
                p: round(1e9 * d, 1) for p, d in sorted(out["deltas"].items())
            },
            "primitive calls (cycle)": out["workloads"][0]["counts"],
            "primitive calls (hypercube)": out["workloads"][1]["counts"],
            "cap": f"<= {100 * OVERHEAD_CAP:.0f}% of driver wall time",
            "full_size": FULL_SIZE,
        },
    )
    for w in out["workloads"]:
        # the seam is alive: the counting pass saw the load-bearing
        # primitives (gathers via the graph, RNG fills, the per-round
        # settlement scatter)
        assert w["counts"].get("take", 0) > 0, w["label"]
        assert w["counts"].get("fill_uniform", 0) > 0, w["label"]
        assert w["counts"].get("bincount", 0) > 0, w["label"]
        if FULL_SIZE:
            # the acceptance pin: dispatch costs <= 2% of the driver
            assert w["overhead"] <= OVERHEAD_CAP * w["wall"], (
                w["label"],
                w["pct"],
            )
