"""Table 1, hypercube row (Theorem 5.7): ``t_seq, t_par = Θ(n)``.

The proof controls returns within mixing windows to show hitting a set S
costs O(n/|S|); the Theorem 3.3 sum then telescopes to Θ(n).  We verify
linear scaling and that Theorem 3.3's computed bound indeed dominates.
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1

SIZES = [64, 128, 256, 512, 1024]
REPS = 10


def _experiment():
    sweep = sweep_dispersion("hypercube", SIZES, reps=REPS, seed=202406)
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / n, 4),
                round(par.dispersion.mean / n, 4),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", TABLE1["hypercube"].seq),
        "par_fit": sweep.constant_fit("parallel", TABLE1["hypercube"].par),
        "pow": sweep.power_law("parallel"),
    }


def bench_table1_hypercube(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_hypercube",
        "Table 1 / Thm 5.7 — hypercube: t_seq, t_par = Θ(n)",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/n", "par/n"],
        out["rows"],
        extra={
            "log-log exponent (par)": round(out["pow"].exponent, 3),
            "n-law trend seq": round(out["seq_fit"].trend, 3),
            "n-law trend par": round(out["par_fit"].trend, 3),
        },
    )
    assert 0.8 < out["pow"].exponent < 1.25
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
    # normalised values stay bounded across the decade sweep
    ratios = [r[4] for r in out["rows"]]
    assert max(ratios) / min(ratios) < 2.0
