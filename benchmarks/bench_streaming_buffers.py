"""Streaming uniform buffers + scalar tail finisher (implementation benchmark).

Two wins are measured, and their results committed for EXPERIMENTS.md:

1. **The memory cap is gone.**  The old runner declined batching whenever
   the preallocated ``reps × block`` uniform buffers would exceed
   ``_BATCHED_MAX_BUFFER_DOUBLES`` (2^25 doubles); the acceptance workload
   here — Parallel-IDLA on the cycle at ``reps=2560`` — sat beyond that
   cap (old estimate ``2560 × 16384`` doubles) and silently fell back to
   the serial loop.  With the streaming buffers the same request batches,
   and this bench asserts ≥ 1.5× over the serial path with bit-identical
   samples on the serially-timed subset (repetitions are i.i.d., so the
   linear extrapolation of the serial time is honest and recorded).

2. **The scalar tail finisher.**  On deep-tail workloads (the cycle's
   ``Θ(n² log n)`` settlement tails) the lock-step tick still costs a
   fixed number of NumPy calls when only a handful of repetitions
   survive; handing each straggler to the serial scalar micro-loop
   mid-stream trims those last seconds.  Measured by running the batched
   drivers with the finisher disabled (``tail_threshold=0``) vs enabled,
   for ``sequential``, ``c-sequential`` (where the win is ~1.5–2×: one
   walking particle per repetition makes the lock-step width collapse
   with the stragglers) and ``parallel`` (whose wide batch keeps the
   lock-step amortised much longer — the finisher must at least not
   regress it).

Set ``BENCH_STREAM_*`` environment variables to shrink the workloads
(CI smoke); the speedup assertions only arm at full size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import emit, run_once
from repro.core import (
    batched_continuous_sequential_idla,
    batched_parallel_idla,
    batched_sequential_idla,
)
from repro.experiments import estimate_dispersion
from repro.experiments.runner import _use_batched
from repro.graphs import cycle_graph
from repro.utils.rng import spawn_seed_sequences

# ---- workload 1: the over-the-old-cap batch
N = int(os.environ.get("BENCH_STREAM_N", 64))
REPS = int(os.environ.get("BENCH_STREAM_REPS", 2560))
SERIAL_REPS = int(os.environ.get("BENCH_STREAM_SERIAL_REPS", 128))
#: the retired cap and the old preallocation estimate it compared against
OLD_CAP_DOUBLES = 2**25
OLD_BLOCK_DOUBLES = 16384

# ---- workload 2: deep-tail finisher (cycle family)
TAIL_N = int(os.environ.get("BENCH_STREAM_TAIL_N", 256))
TAIL_REPS = int(os.environ.get("BENCH_STREAM_TAIL_REPS", 16))
PAR_TAIL_N = int(os.environ.get("BENCH_STREAM_PAR_TAIL_N", 512))
PAR_TAIL_REPS = int(os.environ.get("BENCH_STREAM_PAR_TAIL_REPS", 100))

SEED = 77
FULL_SIZE = (N, REPS, TAIL_N, TAIL_REPS, PAR_TAIL_N, PAR_TAIL_REPS) == (
    64,
    2560,
    256,
    16,
    512,
    100,
)


def _cap_lift():
    g = cycle_graph(N)
    old_estimate = REPS * OLD_BLOCK_DOUBLES
    # the old cap would have declined this batch; auto dispatch now takes it
    declined_by_old_cap = old_estimate > OLD_CAP_DOUBLES
    batches_now = _use_batched("parallel", g, REPS, 1, {}, "auto")

    t0 = time.perf_counter()
    batched = estimate_dispersion(g, "parallel", reps=REPS, seed=SEED)
    batched_s = time.perf_counter() - t0

    serial_reps = min(SERIAL_REPS, REPS)
    t0 = time.perf_counter()
    serial = estimate_dispersion(
        g, "parallel", reps=serial_reps, seed=SEED, batched=False
    )
    serial_s = (time.perf_counter() - t0) * (REPS / serial_reps)

    assert np.array_equal(
        serial.samples, batched.samples[:serial_reps]
    ), "batched samples diverged from the serial oracle"
    return {
        "old_estimate_doubles": old_estimate,
        "declined_by_old_cap": declined_by_old_cap,
        "batches_now": batches_now,
        "serial_s": serial_s,
        "serial_reps_timed": serial_reps,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
    }


def _finisher(driver, n, reps, toggle_kwarg=True):
    g = cycle_graph(n)

    def run(threshold):
        seeds = spawn_seed_sequences(SEED, reps)
        t0 = time.perf_counter()
        if toggle_kwarg:
            out = driver(g, seeds=seeds, tail_threshold=threshold)
        else:
            # c-sequential rides batched_sequential's module default
            import repro.core.batched as batched_mod

            saved = batched_mod._TAIL_THRESHOLD
            batched_mod._TAIL_THRESHOLD = threshold
            try:
                out = driver(g, seeds=seeds)
            finally:
                batched_mod._TAIL_THRESHOLD = saved
        return time.perf_counter() - t0, out

    off_s, off_res = run(0)
    on_s, on_res = run(16)
    for a, b in zip(off_res, on_res):
        assert a.dispersion_time == b.dispersion_time, "finisher changed a result"
        assert np.array_equal(a.steps, b.steps), "finisher changed a result"
    return {"off_s": off_s, "on_s": on_s, "speedup": off_s / on_s}


def _experiment():
    cap = _cap_lift()
    seq = _finisher(batched_sequential_idla, TAIL_N, TAIL_REPS)
    cseq = _finisher(
        batched_continuous_sequential_idla, TAIL_N, TAIL_REPS, toggle_kwarg=False
    )
    par = _finisher(batched_parallel_idla, PAR_TAIL_N, PAR_TAIL_REPS)

    assert cap["batches_now"], "auto dispatch must batch the over-cap workload"
    if FULL_SIZE:
        assert cap["declined_by_old_cap"], "workload must exceed the old cap"
        assert cap["speedup"] >= 1.5, (
            f"streamed batching only {cap['speedup']:.2f}x over serial"
        )
        assert seq["speedup"] >= 1.2, (
            f"sequential finisher only {seq['speedup']:.2f}x"
        )
        assert cseq["speedup"] >= 1.2, (
            f"c-sequential finisher only {cseq['speedup']:.2f}x"
        )
        assert par["speedup"] >= 0.85, (
            f"parallel finisher regressed to {par['speedup']:.2f}x"
        )
    return {"cap": cap, "seq": seq, "cseq": cseq, "par": par}


def bench_streaming_buffers(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    cap, seq, cseq, par = out["cap"], out["seq"], out["cseq"], out["par"]
    emit(
        capsys,
        "streaming_buffers",
        f"Streaming uniform buffers (cycle n={N}, reps={REPS}) + scalar tail "
        f"finisher (cycle deep tails)",
        ["workload", "baseline (s)", "streamed (s)", "speedup"],
        [
            [
                f"parallel n={N} reps={REPS} (old cap declined: serial)",
                round(cap["serial_s"], 1),
                round(cap["batched_s"], 1),
                round(cap["speedup"], 2),
            ],
            [
                f"sequential tail n={TAIL_N} reps={TAIL_REPS}",
                round(seq["off_s"], 1),
                round(seq["on_s"], 1),
                round(seq["speedup"], 2),
            ],
            [
                f"c-sequential tail n={TAIL_N} reps={TAIL_REPS}",
                round(cseq["off_s"], 1),
                round(cseq["on_s"], 1),
                round(cseq["speedup"], 2),
            ],
            [
                f"parallel tail n={PAR_TAIL_N} reps={PAR_TAIL_REPS}",
                round(par["off_s"], 1),
                round(par["on_s"], 1),
                round(par["speedup"], 2),
            ],
        ],
        extra={
            "old_buffer_estimate_doubles": cap["old_estimate_doubles"],
            "old_cap_doubles": OLD_CAP_DOUBLES,
            "declined_by_old_cap": cap["declined_by_old_cap"],
            "serial_reps_timed": cap["serial_reps_timed"],
            "finisher_rows_baseline": "batched with tail_threshold=0",
        },
    )
