"""Table 1, binary-tree row (Theorem 5.14): ``t_seq, t_par = Θ(n log² n)``.

The binary tree is the paper's "unusually slow" well-known graph: its
dispersion time carries the full extra log factor over the hitting time
(``t_hit = Θ(n log n)``), because the last unoccupied cluster hides in a
deep subtree (Lemma 5.12's imbalance argument).
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.graphs import complete_binary_tree
from repro.markov import max_hitting_time
from repro.theory import TABLE1, growth_laws

SIZES = [63, 127, 255, 511]
REPS = 8


def _experiment():
    sweep = sweep_dispersion("binary_tree", SIZES, reps=REPS, seed=202407)
    law = TABLE1["binary_tree"].seq  # n log² n
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        thit = max_hitting_time(
            complete_binary_tree({63: 5, 127: 6, 255: 7, 511: 8}[n])
        )
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / law(n), 4),
                round(par.dispersion.mean / law(n), 4),
                round(par.dispersion.mean / thit, 3),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", law),
        "par_fit": sweep.constant_fit("parallel", law),
        "nlogn_fit": sweep.constant_fit("parallel", growth_laws()["n log n"]),
    }


def bench_table1_binary_tree(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_binary_tree",
        "Table 1 / Thm 5.14 — binary tree: Θ(n log² n) = Θ(t_hit · log n)",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/(n ln² n)", "par/(n ln² n)", "par/t_hit"],
        out["rows"],
        extra={
            "n log² n trend seq": round(out["seq_fit"].trend, 3),
            "n log² n trend par": round(out["par_fit"].trend, 3),
            "n log n trend (should exceed the n log² n one)": round(
                out["nlogn_fit"].trend, 3
            ),
        },
    )
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
    # the extra log over t_hit: par/t_hit must grow with n
    gaps = [r[5] for r in out["rows"]]
    assert gaps[-1] > gaps[0]
    # and n log n alone under-fits relative to n log² n
    assert out["nlogn_fit"].trend > out["par_fit"].trend
