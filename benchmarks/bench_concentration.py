"""Proposition 2.1: the dispersion time does not concentrate.

G₁ (clique with a hair): constant probability of finishing ≈ n× below the
mean; G₂ (clique with a hair on a pimple): probability Ω(1/n) of running
≈ n× above the mean.  We estimate both tail masses and the
mean-to-median distortion each gadget produces.
"""

import numpy as np

from _common import emit, run_once
from repro.core import sequential_idla
from repro.graphs import clique_with_hair, clique_with_hair_on_pimple
from repro.utils.rng import stable_seed

N = 64
REPS = 500


def _experiment():
    g1 = clique_with_hair(N)
    d1 = np.array(
        [
            sequential_idla(g1, 0, seed=stable_seed("conc1", r)).dispersion_time
            for r in range(REPS)
        ]
    )
    g2 = clique_with_hair_on_pimple(N)
    d2 = np.array(
        [
            sequential_idla(g2, N - 2, seed=stable_seed("conc2", r)).dispersion_time
            for r in range(REPS)
        ]
    )
    rows = []
    for name, d, low_thr, high_thr in (
        ("G1 hairy clique", d1, d1.mean() / 8, None),
        ("G2 pimple clique", d2, None, 10 * np.median(d2)),
    ):
        rows.append(
            [
                name,
                round(d.mean(), 1),
                round(float(np.median(d)), 1),
                round(d.mean() / np.median(d), 2),
                round(float((d < low_thr).mean()), 3) if low_thr else "—",
                round(float((d > high_thr).mean()), 3) if high_thr else "—",
                round(float(d.max()), 0),
            ]
        )
    return {"rows": rows, "d1": d1, "d2": d2}


def bench_concentration(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "concentration",
        "Prop 2.1 — no concentration: hairy-clique gadgets (n=64, 500 runs)",
        [
            "gadget",
            "mean",
            "median",
            "mean/median",
            "P[τ < mean/8]",
            "P[τ > 10·median]",
            "max",
        ],
        out["rows"],
        extra={
            "paper G1": "P[τ ≤ O(E[τ]/n)] = Ω(1)  (mass far below the mean)",
            "paper G2": "P[τ ≥ Ω(E[τ]·n)] = Ω(1/n) (heavy upper tail)",
        },
    )
    g1_row, g2_row = out["rows"]
    # G1: a constant fraction of runs far below the mean, mean >> median
    assert g1_row[4] > 0.25
    assert g1_row[3] > 3.0
    # G2: an Ω(1/n)-scale fraction of runs 10x above the median
    assert 1.0 / (4 * N) < g2_row[5] < 0.2
