"""§6.2 variant: dispersion time as a function of the particle count m.

The paper's closing remarks conjecture that the parallel dispersion time
is *maximal when m = n* ("it is conceivable to believe that the parallel
dispersion time is maximal if the two numbers are equal"): fewer particles
leave sites unfilled (less work), surplus particles add search power.  We
sweep ``m/n`` on a torus and a cycle and locate the peak.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla
from repro.graphs import cycle_graph, torus_graph
from repro.utils.rng import stable_seed

RATIOS = [0.25, 0.5, 1.0, 2.0, 4.0]
REPS = 30


def _experiment():
    rows = []
    peaks = {}
    for g in (torus_graph(8, 8), cycle_graph(48)):
        n = g.n
        means = []
        for ratio in RATIOS:
            m = max(1, int(round(ratio * n)))
            d = np.mean(
                [
                    parallel_idla(
                        g, 0, seed=stable_seed("pc", g.name, ratio, r), num_particles=m
                    ).dispersion_time
                    for r in range(REPS)
                ]
            )
            means.append(d)
            rows.append([g.name, n, m, round(ratio, 2), round(d, 1)])
        peaks[g.name] = RATIOS[int(np.argmax(means))]
    return {"rows": rows, "peaks": peaks}


def bench_particle_count(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "particle_count",
        "§6.2 — E[τ_par] vs particle count m (conjecture: peak at m = n)",
        ["graph", "n", "m", "m/n", "E[τ_par]"],
        out["rows"],
        extra={"peak m/n per graph": out["peaks"]},
    )
    # the conjecture: the m = n column dominates both directions
    for name, peak in out["peaks"].items():
        assert peak == 1.0, f"{name}: dispersion peaked at m/n={peak}, not 1"
