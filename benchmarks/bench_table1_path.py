"""Table 1, path row + Theorem 5.4 (κ_p).

Paper claims: ``t_seq(P_n) = t_par(P_n) = (1 ± o(1)) E[M]`` with ``M`` the
max of n independent end-to-end hitting times, and simulations give
``t ≈ κ_p n² log n`` with κ_p ≈ 0.6 (Table 1 footnote).  We sweep the
path, fit the constant against n² log n, and verify seq ≈ par.
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1

SIZES = [32, 48, 64, 96, 128]
REPS = 12


def _experiment():
    sweep = sweep_dispersion("path", SIZES, reps=REPS, seed=202402)
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        law = TABLE1["path"].seq
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(par.dispersion.mean / seq.dispersion.mean, 3),
                round(seq.dispersion.mean / law(n), 4),
                round(par.dispersion.mean / law(n), 4),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", TABLE1["path"].seq),
        "par_fit": sweep.constant_fit("parallel", TABLE1["path"].par),
        "seq_pow": sweep.power_law("sequential"),
    }


def bench_table1_path(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_path",
        "Table 1 / Thm 5.4 — path: t ≈ κ_p n² log n, κ_p ≈ 0.6; seq ≈ par",
        ["n", "E[τ_seq]", "E[τ_par]", "par/seq", "seq/(n²ln n)", "par/(n²ln n)"],
        out["rows"],
        extra={
            "fitted κ_p (seq, largest n)": round(out["seq_fit"].constant, 4),
            "fitted κ_p (par, largest n)": round(out["par_fit"].constant, 4),
            "paper κ_p (simulated)": 0.6,
            "log-log exponent (seq)": round(out["seq_pow"].exponent, 3),
        },
    )
    # n² log n has effective local exponent ~2.2 at these sizes
    assert 1.8 < out["seq_pow"].exponent < 2.6
    # κ_p in the paper's simulated ballpark
    assert 0.3 < out["seq_fit"].constant < 1.0
    assert 0.3 < out["par_fit"].constant < 1.1
    # sequential and parallel equal up to lower-order terms; the
    # parallel overhead is still ~1.7x at n = 32 and decays with n
    for row in out["rows"]:
        assert 0.7 < row[3] < 1.9
    assert out["rows"][-1][3] < 1.6
