"""Theorem 4.1: ``τ_seq ⪯ τ_par`` and total steps are equidistributed.

The Cut & Paste coupling says: (i) the dispersion time of the parallel
process stochastically dominates the sequential one — checked here at
every decile; (ii) the total number of jumps has *identical* law in both
processes — checked with a two-sample Kolmogorov–Smirnov distance well
below the rejection threshold.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla
from repro.graphs import complete_graph, cycle_graph, grid_graph
from repro.utils.rng import stable_seed

REPS = 200
GRAPHS = [cycle_graph(32), complete_graph(64), grid_graph(6, 6)]


def _samples(driver, g, tag):
    disp = np.empty(REPS)
    tot = np.empty(REPS)
    for r in range(REPS):
        res = driver(g, 0, seed=stable_seed("dom", tag, g.name, r))
        disp[r], tot[r] = res.dispersion_time, res.total_steps
    return disp, tot


def _ks(a, b):
    grid = np.unique(np.concatenate([a, b]))
    ca = np.searchsorted(np.sort(a), grid, side="right") / a.size
    cb = np.searchsorted(np.sort(b), grid, side="right") / b.size
    return float(np.abs(ca - cb).max())


def _experiment():
    rows = []
    for g in GRAPHS:
        ds, ts = _samples(sequential_idla, g, "s")
        dp, tp = _samples(parallel_idla, g, "p")
        deciles_ok = sum(
            np.quantile(ds, q) <= np.quantile(dp, q) * 1.2
            for q in np.arange(0.1, 1.0, 0.1)
        )
        rows.append(
            [
                g.name,
                round(ds.mean(), 1),
                round(dp.mean(), 1),
                round(dp.mean() / ds.mean(), 3),
                int(deciles_ok),
                round(_ks(ts, tp), 4),
                round(ts.mean(), 1),
                round(tp.mean(), 1),
            ]
        )
    return {"rows": rows}


def bench_domination(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    # KS rejection threshold at alpha = 0.001 for two samples of size REPS
    ks_crit = 1.95 * np.sqrt(2 / REPS)
    emit(
        capsys,
        "domination",
        "Thm 4.1 — τ_seq ⪯ τ_par; total steps equidistributed",
        [
            "graph",
            "E[τ_seq]",
            "E[τ_par]",
            "par/seq",
            "deciles ordered (of 9)",
            "KS(total)",
            "E[total] seq",
            "E[total] par",
        ],
        out["rows"],
        extra={"KS rejection threshold (α=0.001)": round(ks_crit, 4)},
    )
    for row in out["rows"]:
        assert row[3] >= 0.95          # parallel at least as slow on average
        assert row[4] == 9             # all deciles ordered (with slack)
        assert row[5] < ks_crit        # total steps: same distribution
