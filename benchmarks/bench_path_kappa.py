"""Theorem 5.4 + Table 1 footnote: the path constant κ_p.

``t_seq(P_n) = (1 ± o(1)) E[M]`` where ``M = max`` of n independent
end-to-end hitting times; the paper credits simulations (Nikolaus Howe)
for ``κ_p ≈ 0.6`` in ``t ≈ κ_p n² log n``.  We regenerate both sides: the
dispersion sweep and the pure max-hitting Monte Carlo, each normalised by
``n² ln n``.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla
from repro.graphs import path_graph
from repro.utils.rng import stable_seed
from repro.walks import empirical_max_hitting_of_path

SIZES = [32, 64, 128, 192]
REPS = 12


def _experiment():
    rows = []
    for n in SIZES:
        g = path_graph(n)
        law = n * n * np.log(n)
        seq = np.mean(
            [
                sequential_idla(g, 0, seed=stable_seed("kp-s", n, r)).dispersion_time
                for r in range(REPS)
            ]
        )
        par = np.mean(
            [
                parallel_idla(g, 0, seed=stable_seed("kp-p", n, r)).dispersion_time
                for r in range(REPS)
            ]
        )
        M = empirical_max_hitting_of_path(
            n, reps=REPS, seed=stable_seed("kp-m", n)
        ).mean()
        rows.append(
            [
                n,
                round(seq / law, 4),
                round(par / law, 4),
                round(M / law, 4),
                round(seq / M, 3),
            ]
        )
    return {"rows": rows}


def bench_path_kappa(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "path_kappa",
        "Thm 5.4 — κ_p estimates: dispersion and E[M], both / (n² ln n)",
        ["n", "seq/(n²ln n)", "par/(n²ln n)", "E[M]/(n²ln n)", "seq/E[M]"],
        out["rows"],
        extra={"paper": "κ_p ≈ 0.6 (simulated); t_seq = (1±o(1)) E[M]"},
    )
    last = out["rows"][-1]
    # κ_p ballpark at the largest size
    assert 0.3 < last[1] < 0.9
    assert 0.3 < last[2] < 1.0
    # the seq/E[M] ratio must drift towards 1 as n grows (Thm 5.4)
    ratios = [r[4] for r in out["rows"]]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] <= 1.1
