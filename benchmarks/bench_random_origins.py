"""§6.2 variant: uniformly random origins per particle.

The paper suggests studying dispersion "where the origin is sampled
uniformly at random for each particle" (cf. the uniform-starting-point
IDLA of [18]).  Spreading the sources removes the congestion around a
single origin: on the path the speed-up is dramatic (quadratic → the
bottleneck becomes local rearrangement), on the clique it vanishes (the
clique has no geometry).  Total work drops correspondingly.
"""

import numpy as np

from _common import emit, run_once
from repro.core import sequential_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed

CASES = [("path", 64), ("cycle", 64), ("grid2d", 64), ("complete", 128)]
REPS = 25


def _experiment():
    rows = []
    for fam_name, n in CASES:
        g = FAMILIES[fam_name].build(n, seed=stable_seed("rog", fam_name))
        single_d, single_t, spread_d, spread_t = [], [], [], []
        for r in range(REPS):
            a = sequential_idla(g, 0, seed=stable_seed("ro1", fam_name, r))
            b = sequential_idla(g, "uniform", seed=stable_seed("ro2", fam_name, r))
            single_d.append(a.dispersion_time)
            single_t.append(a.total_steps)
            spread_d.append(b.dispersion_time)
            spread_t.append(b.total_steps)
        rows.append(
            [
                fam_name,
                g.n,
                round(np.mean(single_d), 1),
                round(np.mean(spread_d), 1),
                round(np.mean(single_d) / np.mean(spread_d), 2),
                round(np.mean(single_t) / np.mean(spread_t), 2),
            ]
        )
    return {"rows": rows}


def bench_random_origins(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "random_origins",
        "§6.2 — single-origin vs uniform-origin Sequential-IDLA",
        ["family", "n", "E[τ] single", "E[τ] uniform", "τ speed-up", "work speed-up"],
        out["rows"],
    )
    by = {r[0]: r for r in out["rows"]}
    # geometry-rich families speed up substantially, the clique barely,
    # and the ordering path > clique reflects congestion relief
    assert by["path"][4] > 1.8
    assert by["cycle"][4] > 1.5
    assert by["complete"][4] < 1.5
    assert by["path"][4] > by["complete"][4]
    # random origins can only help (never hurt) in the mean
    for row in out["rows"]:
        assert row[4] >= 0.9
