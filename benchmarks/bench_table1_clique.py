"""Table 1, complete-graph row + Theorem 5.2.

Paper claims: ``t_seq(K_n) ~ κ_cc n`` (κ_cc ≈ 1.2552, Lemma 5.1) and
``t_par(K_n) ~ (π²/6) n ≈ 1.6449 n`` — the parallel process is ≈ 31%
slower.  We sweep n, extract both constants, and cross-check the
sequential one against the *exact* coupon-collector maximum
(:func:`repro.bounds.expected_max_geometric_sum`).
"""


from _common import emit, run_once
from repro.bounds import KAPPA_CC, PI2_OVER_6, expected_max_geometric_sum
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1

SIZES = [128, 256, 512, 1024]
REPS = 24


def _experiment():
    sweep = sweep_dispersion("complete", SIZES, reps=REPS, seed=202401)
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        exact = expected_max_geometric_sum(n - 1)
        rows.append(
            [
                n,
                round(seq.dispersion.mean / n, 4),
                round(exact / n, 4),
                round(par.dispersion.mean / n, 4),
                round(par.dispersion.mean / seq.dispersion.mean, 4),
            ]
        )
    seq_fit = sweep.constant_fit("sequential", TABLE1["complete"].seq)
    par_fit = sweep.constant_fit("parallel", TABLE1["complete"].par)
    return {"rows": rows, "seq_fit": seq_fit, "par_fit": par_fit}


def bench_table1_clique(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_clique",
        "Table 1 / Thm 5.2 — clique: E[τ_seq]/n -> κ_cc, E[τ_par]/n -> π²/6",
        ["n", "seq/n", "exact CC/n", "par/n", "par/seq"],
        out["rows"],
        extra={
            "paper κ_cc": round(KAPPA_CC, 4),
            "paper π²/6": round(PI2_OVER_6, 4),
            "fitted seq constant (largest n)": round(out["seq_fit"].constant, 4),
            "fitted par constant (largest n)": round(out["par_fit"].constant, 4),
            "seq trend (≈0 ⇒ Θ(n))": round(out["seq_fit"].trend, 4),
            "par trend (≈0 ⇒ Θ(n))": round(out["par_fit"].trend, 4),
        },
    )
    # Shape assertions: linear scaling with the right constants and ordering.
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
    largest = out["rows"][-1]
    n, seq_c, exact_c, par_c, ratio = largest
    assert abs(seq_c - exact_c) < 0.12  # matches exact coupon collector
    assert 1.0 < seq_c < 1.45  # -> κ_cc = 1.2552 (slow convergence from below)
    assert 1.35 < par_c < 1.95  # -> π²/6 = 1.6449
    assert ratio > 1.15  # parallel strictly slower (≈1.31 in the limit)
