"""Table 1, d-dimensional grid row for d = 3 (Theorem 5.11): ``Θ(n)``.

Above two dimensions the dispersion time becomes linear — transient-like
return probabilities (``p^t ≤ 1/n + O(t^{-d/2})``) make hitting times of
sets scale as n/|S| and the Theorem 3.3 sum telescopes to O(n).
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1

SIZES = [64, 125, 343, 729]
REPS = 10


def _experiment():
    sweep = sweep_dispersion("torus3d", SIZES, reps=REPS, seed=202405)
    law = TABLE1["torus3d"].seq  # n
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / n, 4),
                round(par.dispersion.mean / n, 4),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", law),
        "par_fit": sweep.constant_fit("parallel", law),
        "pow": sweep.power_law("parallel"),
    }


def bench_table1_grid3d(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_grid3d",
        "Table 1 / Thm 5.11 — 3-d torus: t_seq, t_par = Θ(n)",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/n", "par/n"],
        out["rows"],
        extra={
            "log-log exponent (par)": round(out["pow"].exponent, 3),
            "n-law trend seq": round(out["seq_fit"].trend, 3),
            "n-law trend par": round(out["par_fit"].trend, 3),
        },
    )
    assert 0.75 < out["pow"].exponent < 1.35
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
