"""Shared-memory shard fan-out vs the legacy per-repetition pool.

Before :mod:`repro.experiments.fanout`, ``estimate_dispersion(n_jobs>1)``
pickled the whole graph into every one of the ``reps`` pool jobs and ran
the *serial* driver per repetition — the pool and the lock-step batching
could not compose.  The fan-out path exports the CSR arrays once into
``multiprocessing.shared_memory`` and hands each worker one contiguous
repetition shard to run through the *batched* drivers.

This bench runs the acceptance workload — Parallel-IDLA on the 32×32
grid at ``reps=256``, ``n_jobs=2`` — through three paths:

* the in-process runner (``n_jobs=1``; the bit-identity oracle),
* the legacy per-repetition pool, re-enacted here exactly as the old
  runner branch dispatched it (one pickled ``(process, graph, origin,
  seed, kwargs)`` job per repetition),
* the shared-memory shard fan-out (``n_jobs=2``),

and asserts the fan-out samples are bit-identical to the oracle, that no
shared-memory segment outlives the run, and that the fan-out is at least
2× faster than the legacy pool.  The 2× does not depend on core count:
it comes from shards *batching* (≈4× on this workload) while the per-rep
pool cannot — on a multi-core box the pool parallelism stacks on top.

``BENCH_FANOUT_SIDE`` / ``BENCH_FANOUT_REPS`` shrink the workload (the
CI smoke job runs ``SIDE=8, REPS=32``); the ≥2× assertion only applies
at full size.  ``BENCH_FANOUT_POOL_REPS`` times the slow legacy pool on
a subset and extrapolates linearly — repetitions are i.i.d., so for a
fixed worker count the pool's cost is linear in the job count and the
extrapolation is honest (the printed table records it).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from _common import emit, run_once
from repro.experiments import estimate_dispersion
from repro.experiments.runner import _one_run
from repro.graphs import grid_graph
from repro.utils.rng import spawn_seed_sequences

SIDE = int(os.environ.get("BENCH_FANOUT_SIDE", 32))
REPS = int(os.environ.get("BENCH_FANOUT_REPS", 256))
POOL_REPS = int(os.environ.get("BENCH_FANOUT_POOL_REPS", 64))
JOBS = 2
SEED = 123
FULL_SIZE = SIDE >= 32 and REPS >= 256


def _legacy_pool(g, reps: int) -> np.ndarray:
    """The pre-fan-out ``n_jobs>1`` branch: pickle the graph per repetition."""
    children = spawn_seed_sequences(SEED, reps)
    jobs = [("parallel", g, 0, s, {}) for s in children]
    with ProcessPoolExecutor(max_workers=JOBS) as pool:
        outcomes = list(pool.map(_one_run, jobs))
    return np.asarray([o[0] for o in outcomes])


def _segments() -> set[str]:
    shm_dir = Path("/dev/shm")
    if not shm_dir.exists():
        return set()
    return {p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")}


def _experiment():
    g = grid_graph(SIDE, SIDE)
    pool_reps = min(POOL_REPS, REPS)
    before = _segments()

    t0 = time.perf_counter()
    oracle = estimate_dispersion(g, "parallel", reps=REPS, seed=SEED, n_jobs=1)
    inprocess_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fanned = estimate_dispersion(g, "parallel", reps=REPS, seed=SEED, n_jobs=JOBS)
    fanout_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    legacy_samples = _legacy_pool(g, pool_reps)
    legacy_s = (time.perf_counter() - t0) * (REPS / pool_reps)

    assert np.array_equal(
        fanned.samples, oracle.samples
    ), "fan-out samples diverged from the in-process runner"
    assert np.array_equal(
        legacy_samples, oracle.samples[:pool_reps]
    ), "legacy pool samples diverged from the in-process runner"
    leaked = _segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    return {
        "inprocess_s": inprocess_s,
        "legacy_s": legacy_s,
        "legacy_reps_timed": pool_reps,
        "fanout_s": fanout_s,
        "speedup_vs_pool": legacy_s / fanout_s,
        "mean_tau": float(fanned.dispersion.mean),
    }


def bench_fanout(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    rows = [
        [
            "in-process (n_jobs=1)",
            round(out["inprocess_s"], 1),
            round(1e3 * out["inprocess_s"] / REPS, 1),
        ],
        [
            "legacy per-rep pool",
            round(out["legacy_s"], 1),
            round(1e3 * out["legacy_s"] / REPS, 1),
        ],
        [
            f"shared-memory fan-out (n_jobs={JOBS})",
            round(out["fanout_s"], 1),
            round(1e3 * out["fanout_s"] / REPS, 1),
        ],
    ]
    emit(
        capsys,
        "fanout",
        f"Shared-memory shard fan-out vs per-repetition pool — parallel "
        f"IDLA, {SIDE}x{SIDE} grid, reps={REPS}, n_jobs={JOBS}",
        ["runner", "wall-clock (s)", "per-rep (ms)"],
        rows,
        extra={
            "speedup vs per-rep pool": f"{out['speedup_vs_pool']:.1f}x",
            "mean tau": round(out["mean_tau"], 1),
            "legacy pool reps timed (rest extrapolated)": out["legacy_reps_timed"],
            "samples bit-identical to n_jobs=1": True,
            "leaked shared-memory segments": 0,
        },
    )
    if FULL_SIZE:
        assert (
            out["speedup_vs_pool"] >= 2.0
        ), f"expected >=2x over the per-rep pool, got {out['speedup_vs_pool']:.2f}x"


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(_experiment())
