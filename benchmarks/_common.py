"""Shared plumbing for the benchmark suite.

Every bench follows the same contract:

* the *experiment body* is executed once inside ``benchmark.pedantic`` so
  pytest-benchmark reports its wall-clock cost;
* the body returns a dict of result rows which the bench then
  (a) prints as an ASCII table straight to the terminal (bypassing pytest
  capture via ``capsys.disabled``), (b) persists under
  ``benchmarks/results/<name>.json`` for EXPERIMENTS.md, and (c) asserts
  the *shape* claims of the paper (who wins, rough factors, scaling
  exponents) — never exact numbers.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import render_table, save_json

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["RESULTS_DIR", "emit", "run_once"]


def emit(capsys, name: str, title: str, headers, rows, extra=None) -> None:
    """Print a result table to the real terminal and persist it as JSON."""
    payload = {
        "experiment": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(r) for r in rows],
    }
    if extra:
        payload["extra"] = extra
    save_json(RESULTS_DIR / f"{name}.json", payload)
    text = f"\n== {title} ==\n" + render_table(headers, rows)
    if extra:
        text += "\n" + "\n".join(f"  {k}: {v}" for k, v in extra.items())
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:  # pragma: no cover - direct script usage
        print(text)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
