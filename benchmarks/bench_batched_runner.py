"""Batched vs serial Monte-Carlo runner (implementation benchmark).

The batched drivers advance all repetitions in lock-step, amortising the
per-round NumPy dispatch cost that dominates long settlement tails.  This
bench runs the acceptance workload — Parallel-IDLA on the 1024-vertex
cycle at ``reps=100`` — through both paths of ``estimate_dispersion``,
checks the samples are bit-identical (batching must never change the
numbers) and asserts the batched path is at least 3× faster.

The serial reference on this workload takes ~10 minutes; set
``BENCH_BATCHED_SERIAL_REPS`` (e.g. to 10) to time the serial path on a
subset and extrapolate linearly — repetitions are i.i.d. and the serial
runner's cost is the sum of per-repetition costs, so the extrapolation is
honest and the printed table records it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import emit, run_once
from repro.experiments import estimate_dispersion
from repro.graphs import cycle_graph

N = 1024
REPS = 100
SEED = 77


def _experiment():
    g = cycle_graph(N)
    serial_reps = int(os.environ.get("BENCH_BATCHED_SERIAL_REPS", REPS))

    t0 = time.perf_counter()
    batched = estimate_dispersion(g, "parallel", reps=REPS, seed=SEED, batched=True)
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = estimate_dispersion(
        g, "parallel", reps=serial_reps, seed=SEED, batched=False
    )
    serial_s = (time.perf_counter() - t0) * (REPS / serial_reps)

    # bit-identity on the repetitions both paths ran
    assert np.array_equal(
        serial.samples, batched.samples[: serial_reps]
    ), "batched samples diverged from the serial oracle"

    return {
        "serial_s": serial_s,
        "serial_reps_timed": serial_reps,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
        "mean_tau": batched.dispersion.mean,
    }


def bench_batched_runner(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "batched_runner",
        f"Batched lock-step runner vs serial loop — parallel IDLA, "
        f"cycle n={N}, reps={REPS}",
        ["runner", "wall-clock (s)", "per-rep (ms)"],
        [
            [
                "serial",
                round(out["serial_s"], 1),
                round(1e3 * out["serial_s"] / REPS, 1),
            ],
            [
                "batched",
                round(out["batched_s"], 1),
                round(1e3 * out["batched_s"] / REPS, 1),
            ],
        ],
        extra={
            "speedup": f"{out['speedup']:.1f}x",
            "mean tau": round(out["mean_tau"], 1),
            "serial reps timed (rest extrapolated)": out["serial_reps_timed"],
            "samples bit-identical": True,
        },
    )
    assert out["speedup"] >= 3.0, f"expected >=3x, got {out['speedup']:.2f}x"


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(_experiment())
