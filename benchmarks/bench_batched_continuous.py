"""Batched vs serial continuous-time/uniform Monte-Carlo drivers.

The tick-scheduled processes (Uniform-IDLA, CTU-IDLA, Poissonised
Sequential-IDLA) advance one particle per repetition per tick, so their
batched drivers in ``repro.core.batched_continuous`` amortise the
per-ring interpreter cost across one lane per live repetition.  This
bench runs the acceptance workloads — the 1024-vertex cycle and the
32×32 grid at ``reps=100`` — through both paths of
``estimate_dispersion``, checks the samples are bit-identical (batching
must never change the numbers) and asserts the cycle speedups are at
least 3×.

The serial reference on the full cycle workload takes hours, so the
serial path is timed on ``BENCH_BC_SERIAL_REPS`` repetitions (default 4)
and extrapolated linearly — repetitions are i.i.d. and the serial
runner's cost is the sum of per-repetition costs, so the extrapolation
is honest and the printed table records it.  ``BENCH_BC_N`` /
``BENCH_BC_REPS`` shrink the whole workload (the CI smoke job runs
``N=64, REPS=16``); the ≥3× assertion only applies at full size.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from _common import emit, run_once
from repro.experiments import estimate_dispersion
from repro.graphs import cycle_graph, grid_graph

N = int(os.environ.get("BENCH_BC_N", 1024))
REPS = int(os.environ.get("BENCH_BC_REPS", 100))
SERIAL_REPS = int(os.environ.get("BENCH_BC_SERIAL_REPS", 4))
SEED = 99

#: (graph label, process) rows; the cycle rows are the acceptance claim.
WORKLOADS = [
    ("cycle", "ctu"),
    ("cycle", "uniform"),
    ("grid", "ctu"),
    ("grid", "uniform"),
    ("grid", "c-sequential"),
]


def _time_pair(g, process):
    t0 = time.perf_counter()
    batched = estimate_dispersion(
        g, process, reps=REPS, seed=SEED, batched=True
    )
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = estimate_dispersion(
        g, process, reps=SERIAL_REPS, seed=SEED, batched=False
    )
    serial_s = (time.perf_counter() - t0) * (REPS / SERIAL_REPS)

    # bit-identity on the repetitions both paths ran
    assert np.array_equal(
        serial.samples, batched.samples[:SERIAL_REPS]
    ), f"batched {process} samples diverged from the serial oracle"
    return serial_s, batched_s, float(batched.dispersion.mean)


def _experiment():
    side = max(int(round(math.sqrt(N))), 2)
    graphs = {"cycle": cycle_graph(N), "grid": grid_graph(side, side)}
    rows = []
    for graph_label, process in WORKLOADS:
        serial_s, batched_s, mean_tau = _time_pair(graphs[graph_label], process)
        rows.append(
            {
                "graph": graphs[graph_label].name,
                "process": process,
                "serial_s": serial_s,
                "batched_s": batched_s,
                "speedup": serial_s / batched_s,
                "mean_tau": mean_tau,
            }
        )
    return rows


def bench_batched_continuous(benchmark, capsys):
    rows = run_once(benchmark, _experiment)
    emit(
        capsys,
        "batched_continuous",
        f"Batched lock-step continuous/uniform drivers vs serial loop — "
        f"reps={REPS}",
        ["graph", "process", "serial (s)", "batched (s)", "speedup", "mean tau"],
        [
            [
                r["graph"],
                r["process"],
                round(r["serial_s"], 1),
                round(r["batched_s"], 1),
                f"{r['speedup']:.1f}x",
                round(r["mean_tau"], 1),
            ]
            for r in rows
        ],
        extra={
            "serial reps timed (rest extrapolated)": SERIAL_REPS,
            "samples bit-identical": True,
        },
    )
    if N >= 1024 and REPS >= 100:
        for r in rows:
            if r["graph"].startswith("cycle"):
                assert r["speedup"] >= 3.0, (
                    f"{r['process']} on {r['graph']}: expected >=3x, "
                    f"got {r['speedup']:.2f}x"
                )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    print(_experiment())
