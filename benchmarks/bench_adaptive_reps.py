"""Adaptive replication vs fixed provisioning (implementation benchmark).

The question: at equal confidence-interval width, how many repetitions
does the anytime stopping rule save over a fixed budget?  Without
adaptivity a user who wants ``±2%`` on the dispersion time must provision
``max_reps`` conservatively, because tau's variance is unknown before the
run; the confidence sequence instead grows the sample in rounds and stops
the moment the interval closes, on both ends of the cost spectrum:

* **cheap reps, noisy tau** — Parallel-IDLA on the complete graph: each
  repetition is milliseconds but ``std/mean`` is large (~0.56 at
  ``n=1024``), so thousands of reps are needed and every saved rep is
  nearly free to have wasted.  Here adaptivity saves *provisioning slack*.
* **expensive reps, concentrated tau** — Parallel-IDLA on the cycle (the
  acceptance workload: ``Precision(ci_rel=0.02)`` on the 1024-cycle):
  each repetition costs seconds, so stopping even a few hundred reps
  early is minutes of wall clock.

Reported per workload: reps consumed, the round split, achieved anytime
halfwidth vs target, the *oracle* minimum (the smallest ``t`` whose
anytime interval at the final variance estimate closes — unknowable in
advance, shown to bound the overshoot) and the reps saved against the
fixed ``max_reps`` provision.  The cheap workload also re-runs the same
parent seed at fixed ``reps = <adaptive total>`` and asserts the samples
are bit-identical: the stopping rule reads the stream, it never forks it.

Set ``BENCH_ADAPT_*`` environment variables to shrink the workloads (CI
smoke); the savings/overshoot assertions only arm at full size.
"""

from __future__ import annotations

import os

import numpy as np

from _common import emit, run_once
from repro.core.anytime import Precision, anytime_halfwidth
from repro.experiments import estimate_dispersion
from repro.graphs import complete_graph, cycle_graph

CHEAP_N = int(os.environ.get("BENCH_ADAPT_CHEAP_N", 1024))
EXP_N = int(os.environ.get("BENCH_ADAPT_EXP_N", 1024))
CI_REL = float(os.environ.get("BENCH_ADAPT_CI_REL", 0.02))
INITIAL = int(os.environ.get("BENCH_ADAPT_INITIAL", 64))
CHEAP_MAX = int(os.environ.get("BENCH_ADAPT_CHEAP_MAX", 16384))
EXP_MAX = int(os.environ.get("BENCH_ADAPT_EXP_MAX", 2048))

SEED = 20260808
FULL_SIZE = (CHEAP_N, EXP_N, CI_REL, INITIAL, CHEAP_MAX, EXP_MAX) == (
    1024,
    1024,
    0.02,
    64,
    16384,
    2048,
)


def _oracle_reps(variance: float, target_hw: float, max_reps: int) -> int:
    """Smallest t whose anytime interval at the final sigma-hat closes.

    Binary search over the (eventually monotone) halfwidth curve; this is
    the hindsight optimum no provisioner can know before running.
    """
    lo, hi = 2, max_reps
    if anytime_halfwidth(hi, variance) > target_hw:
        return max_reps
    while lo < hi:
        mid = (lo + hi) // 2
        if anytime_halfwidth(mid, variance) <= target_hw:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _workload(label, g, max_reps, *, anchor):
    precision = Precision(
        ci_rel=CI_REL, initial=INITIAL, max_reps=max_reps
    )
    est = estimate_dispersion(g, "parallel", precision=precision, seed=SEED)
    info = est.adaptive
    if anchor:
        fixed = estimate_dispersion(g, "parallel", reps=info.reps, seed=SEED)
        assert np.array_equal(est.samples, fixed.samples), (
            "adaptive top-up diverged from the fixed-reps run"
        )
    oracle = _oracle_reps(
        est.dispersion.std**2, info.target_halfwidth, max_reps
    )
    return {
        "label": label,
        "n": g.n,
        "reps": info.reps,
        "rounds": list(info.rounds),
        "mean": info.mean,
        "halfwidth": info.halfwidth,
        "target_halfwidth": info.target_halfwidth,
        "met": info.met,
        "stopped_by": info.stopped_by,
        "oracle_reps": oracle,
        "fixed_provision": max_reps,
        "reps_saved": max_reps - info.reps,
        "elapsed_s": info.elapsed_s,
        "anchored": anchor,
    }


def _experiment():
    # the expensive workload re-running a fixed anchor would double a
    # multi-minute bench; the differential suite already pins adaptive
    # top-up == fixed reps at test size, so only the cheap workload
    # anchors at full size (both anchor at smoke size)
    cheap = _workload(
        "complete/parallel", complete_graph(CHEAP_N), CHEAP_MAX, anchor=True
    )
    exp = _workload(
        "cycle/parallel", cycle_graph(EXP_N), EXP_MAX, anchor=not FULL_SIZE
    )

    if FULL_SIZE:
        for w in (cheap, exp):
            assert w["met"] and w["stopped_by"] == "target", (
                f"{w['label']} did not close its interval: {w}"
            )
            assert w["reps"] < w["fixed_provision"], (
                f"{w['label']} saved no reps over the fixed provision"
            )
            # the doubling schedule overshoots the hindsight optimum by
            # less than one growth factor plus prediction noise
            assert w["reps"] <= 2.5 * w["oracle_reps"], (
                f"{w['label']} overshot the oracle: {w}"
            )
    return {"cheap": cheap, "expensive": exp}


def bench_adaptive_reps(benchmark, capsys):
    res = run_once(benchmark, _experiment)
    headers = [
        "workload",
        "n",
        "reps",
        "rounds",
        "+/-hw",
        "target",
        "oracle",
        "provisioned",
        "saved",
        "seconds",
    ]
    rows = [
        [
            w["label"],
            w["n"],
            w["reps"],
            "+".join(str(r) for r in w["rounds"]),
            f"{w['halfwidth']:.1f}",
            f"{w['target_halfwidth']:.1f}",
            w["oracle_reps"],
            w["fixed_provision"],
            w["reps_saved"],
            f"{w['elapsed_s']:.2f}",
        ]
        for w in (res["cheap"], res["expensive"])
    ]
    emit(
        capsys,
        "adaptive_reps",
        f"Adaptive replication vs fixed provisioning (ci_rel={CI_REL})",
        headers,
        rows,
        extra={
            "ci_rel": CI_REL,
            "initial": INITIAL,
            "seed": SEED,
            "full_size": FULL_SIZE,
            "cheap_anchored_bit_identical": res["cheap"]["anchored"],
        },
    )
