"""Corollary 3.2 + Proposition 5.16 + Theorem 5.9: worst-case envelopes.

General graphs: ``t = O(n³ log n)``, witnessed by the **lollipop** from a
clique origin (``Ω(n³ log n)``); regular graphs: ``O(n² log n)``,
witnessed by the **cycle**.  We sweep both witnesses, fit their growth
against the claimed laws, and verify each stays under its envelope.
"""

from _common import emit, run_once
from repro.bounds import general_envelope, regular_envelope
from repro.experiments import sweep_dispersion
from repro.theory import TABLE1, growth_laws

LOLLIPOP_SIZES = [16, 24, 32, 48]
CYCLE_SIZES = [32, 48, 64, 96]


def _experiment():
    lolli = sweep_dispersion(
        "lollipop", LOLLIPOP_SIZES, reps=6, seed=202409, processes=("sequential",)
    )
    cyc = sweep_dispersion(
        "cycle", CYCLE_SIZES, reps=8, seed=202410, processes=("sequential",)
    )
    n3law = TABLE1["lollipop"].seq  # n³ log n
    n2law = TABLE1["cycle"].seq  # n² log n
    rows = []
    for n in lolli.sizes():
        est = next(p.estimate for p in lolli.points if p.n == n)
        rows.append(
            [
                "lollipop",
                n,
                round(est.dispersion.mean, 0),
                round(est.dispersion.mean / n3law(n), 5),
                round(general_envelope(n), 0),
            ]
        )
    for n in cyc.sizes():
        est = next(p.estimate for p in cyc.points if p.n == n)
        rows.append(
            [
                "cycle",
                n,
                round(est.dispersion.mean, 0),
                round(est.dispersion.mean / n2law(n), 5),
                round(regular_envelope(n), 0),
            ]
        )
    return {
        "rows": rows,
        "lolli_pow": lolli.power_law("sequential"),
        "cyc_pow": cyc.power_law("sequential"),
        "lolli_n2_fit": lolli.constant_fit("sequential", growth_laws()["n² log n"]),
    }


def bench_worst_case(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "worst_case",
        "Cor 3.2 — worst cases: lollipop ~ n³ log n, cycle ~ n² log n",
        ["witness", "n", "E[τ_seq]", "mean/law(n)", "envelope"],
        out["rows"],
        extra={
            "lollipop log-log exponent (expect ≈3+)": round(
                out["lolli_pow"].exponent, 3
            ),
            "cycle log-log exponent (expect ≈2+)": round(out["cyc_pow"].exponent, 3),
            "lollipop trend vs n²log n (must be positive — it outgrows the "
            "regular envelope)": round(out["lolli_n2_fit"].trend, 3),
        },
    )
    assert 2.4 < out["lolli_pow"].exponent < 3.6
    assert 1.8 < out["cyc_pow"].exponent < 2.7
    assert out["lolli_n2_fit"].trend > 0.3  # strictly super-n²logn
    for row in out["rows"]:
        assert row[2] <= row[4]  # below the corollary's envelope
