"""Theorems 3.3 / 3.5 and Lemma C.2: set-hitting upper bounds vs measured.

For each graph we compute the phase profile ``max_{|S| = s_j} t_hit(π,S)``
(exhaustive for tiny sizes, clustering-greedy beyond), assemble both
theorem bounds for the lazy processes, and compare with measured lazy
dispersion times.  The Lemma C.2 analytic profile is also shown — it must
dominate the heuristic profile on regular graphs.
"""

import numpy as np

from _common import emit, run_once
from repro.bounds import (
    set_hitting_profile,
    theorem_3_3_bound,
    theorem_3_5_bound,
)
from repro.core import parallel_idla, sequential_idla
from repro.graphs import complete_graph, cycle_graph, hypercube_graph, torus_graph
from repro.utils.rng import stable_seed

GRAPHS = [cycle_graph(24), complete_graph(32), hypercube_graph(5), torus_graph(5, 5)]
REPS = 20


def _experiment():
    rows = []
    details = {}
    for g in GRAPHS:
        prof = set_hitting_profile(g, method="heuristic", seed=1)
        b33 = theorem_3_3_bound(g, 1, profile=prof)
        b35 = theorem_3_5_bound(g, profile=prof)
        par = np.mean(
            [
                parallel_idla(
                    g, 0, seed=stable_seed("shb-p", g.name, r), lazy=True
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        seq = np.mean(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("shb-s", g.name, r), lazy=True
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        c2_prof = set_hitting_profile(g, method="lemma-c2")
        rows.append(
            [
                g.name,
                round(par, 1),
                round(b33, 0),
                round(seq, 1),
                round(b35, 0),
                round(b33 / par, 1),
            ]
        )
        details[g.name] = {
            "phase_sizes": list(prof.sizes),
            "heuristic_profile": [round(v, 2) for v in prof.values],
            "lemma_c2_profile": [round(v, 2) for v in c2_prof.values],
        }
    return {"rows": rows, "details": details}


def bench_set_hitting_bounds(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "set_hitting_bounds",
        "Thm 3.3/3.5 — lazy dispersion vs set-hitting upper bounds",
        [
            "graph",
            "E[τ_par lazy]",
            "Thm3.3 ≤",
            "E[τ_seq lazy]",
            "Thm3.5 ≤",
            "slack 3.3",
        ],
        out["rows"],
        extra={
            k: f"sizes {v['phase_sizes']}, heuristic {v['heuristic_profile']}, "
            f"C.2 {v['lemma_c2_profile']}"
            for k, v in out["details"].items()
        },
    )
    for row in out["rows"]:
        assert row[1] <= row[2]  # Thm 3.3 dominates measured parallel
        assert row[3] <= row[4]  # Thm 3.5 dominates measured sequential
    # Lemma C.2 profile dominates the heuristic profile (regular graphs)
    for name, d in out["details"].items():
        for c2, heur in zip(d["lemma_c2_profile"], d["heuristic_profile"]):
            assert c2 >= heur - 1e-6
