"""Conjecture 6.1: ``t_par(G) ≤ t_seq(G) + t_cov(G)``.

The paper's proposed route to Open Problem 2: when StP cuts and pastes
trajectory sections, the moved sections need not cover the graph, so the
parallel time should exceed the sequential one by at most one cover time.
We test the inequality (in the mean) on every family — the conjecture
survives everywhere at these sizes.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed
from repro.walks import empirical_cover_times

CASES = [
    ("path", 48),
    ("cycle", 48),
    ("complete", 128),
    ("hypercube", 128),
    ("binary_tree", 63),
    ("grid2d", 64),
    ("torus3d", 125),
    ("expander", 128),
]
REPS = 30


def _experiment():
    rows = []
    for fam_name, n in CASES:
        g = FAMILIES[fam_name].build(n, seed=stable_seed("c61-g", fam_name))
        seq = np.mean(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("c61-s", fam_name, r)
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        par = np.mean(
            [
                parallel_idla(
                    g, 0, seed=stable_seed("c61-p", fam_name, r)
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        cov = empirical_cover_times(
            g, 0, reps=REPS, seed=stable_seed("c61-c", fam_name)
        ).mean()
        rows.append(
            [
                fam_name,
                g.n,
                round(seq, 1),
                round(par, 1),
                round(cov, 1),
                round(seq + cov, 1),
                round((seq + cov) / par, 2),
            ]
        )
    return {"rows": rows}


def bench_conjecture_61(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "conjecture_61",
        "Conj 6.1 — t_par ≤ t_seq + t_cov (means; margin = rhs/lhs)",
        ["family", "n", "E[τ_seq]", "E[τ_par]", "E[t_cov]", "seq+cov", "margin"],
        out["rows"],
    )
    for row in out["rows"]:
        # mean-level inequality with 10% MC slack
        assert row[3] <= 1.1 * row[5], f"conjecture violated on {row[0]}"
