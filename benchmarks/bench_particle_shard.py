"""Budgeted resident state at the million-vertex, full-dispersion scale.

The payoff bench of the ``StateBudget`` layer: a **full-dispersion**
(``m = n``) parallel estimate on an implicit ``n = 2^20 > 10^6`` graph
runs end to end under a stated 256 MB budget, and **tracemalloc pins the
peak**: the whole estimate — graph, cohort state, streams, occupancy,
round transients — stays below the budget, while the unbudgeted layout
would hold ``reps x (104m + n)`` bytes of flat driver state alone.

Family choice: the budget caps *memory*, not physics.  Theorem 3.6 lower-
bounds full dispersion by ``2|E|/Δ`` rounds on every graph, and on the
cycle ``t_par = Θ(n² log n)`` (Table 1) — no memory model makes that
finish at ``n = 10^6``.  The hypercube's ``t_par = Θ(n)`` (Thm 5.7) sits
at the feasible floor, so the flagship workload is the implicit
``hypercube-20`` at ``n = 1,048,576`` — full dispersion, two repetitions,
one budget-forced cohort each.

The ``faithful_r`` waste-skip rides along: in Uniform-IDLA's literal
schedule mode the late run is almost all wasted ticks (the single
unsettled particle is drawn with probability ``1/(m-1)`` per tick), and
the bulk lane scanner of :mod:`repro.core.batched_continuous` replays
whole buffers of wasted ticks per NumPy pass.  The A/B lever is
``max_ticks``: a tick budget routes the run through the per-tick loop
(to preserve exact budget-exceeded raise points), which is precisely the
pre-scanner code path — same seeds, bit-identical results, so the
wall-clock ratio isolates the scanner.

Set ``BENCH_SHARD_*`` environment variables to shrink the workloads (CI
smoke); the bit-identity anchors assert at every size, the memory and
speedup pins arm only at full size.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from _common import emit, run_once
from repro.core.batched_continuous import batched_uniform_idla
from repro.core.budget import parse_state_budget, plan_state
from repro.experiments import estimate_dispersion
from repro.graphs import cycle_graph, hypercube_graph
from repro.utils.rng import spawn_seed_sequences

DIM = int(os.environ.get("BENCH_SHARD_DIM", 20))
REPS = int(os.environ.get("BENCH_SHARD_REPS", 2))
BUDGET_SPEC = os.environ.get("BENCH_SHARD_BUDGET", "256M")
UNIFORM_N = int(os.environ.get("BENCH_SHARD_UNIFORM_N", 512))
SEED = 20260808
FULL_SIZE = (DIM, BUDGET_SPEC, UNIFORM_N) == (20, "256M", 512)


def _budget_anchor():
    """Tiny budgeted-vs-unbudgeted equality — the contract the scale run
    rests on (the differential harness pins the full matrix).

    hypercube-8 rather than a cycle: Θ(n) dispersion keeps the anchor
    sub-second where the cycle's Θ(n² log n) rounds would dominate the
    whole bench."""
    g = hypercube_graph(8, implicit=True)
    a = estimate_dispersion(
        g, "parallel", reps=4, seed=SEED, batched=True, state_budget="512p"
    )
    b = estimate_dispersion(g, "parallel", reps=4, seed=SEED, batched=True)
    assert np.array_equal(a.samples, b.samples), "budget changed a sample"
    assert np.array_equal(a.total_samples, b.total_samples)


def _full_dispersion_under_budget():
    budget = parse_state_budget(BUDGET_SPEC)
    g = hypercube_graph(DIM, implicit=True)
    n = g.n
    plan = plan_state(budget, "parallel", n, n)
    assert plan.cohort_reps < REPS, (
        f"budget {BUDGET_SPEC} does not force cohorts at n={n}: "
        f"cohort_reps={plan.cohort_reps} — grow the workload or shrink it"
    )
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        est = estimate_dispersion(
            g,
            "parallel",
            reps=REPS,
            seed=SEED,
            batched=True,
            state_budget=budget,
        )
        elapsed = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert est.samples.shape == (REPS,)
    assert np.all(est.samples >= 1), "degenerate dispersion times"
    flat_bytes = REPS * (104 * n + n)  # the layout the budget replaces
    if FULL_SIZE:
        assert peak < budget.bytes, (
            f"traced peak {peak / 1e6:.1f} MB exceeded the stated budget "
            f"{budget.bytes / 1e6:.1f} MB"
        )
    return {
        "label": f"hypercube-{DIM} full dispersion",
        "n": n,
        "reps": REPS,
        "cohorts": -(-REPS // plan.cohort_reps),
        "tau_mean": float(est.samples.mean()),
        "elapsed_s": elapsed,
        "peak_mb": peak / 1e6,
        "budget_mb": budget.bytes / 1e6,
        "flat_layout_mb": flat_bytes / 1e6,
    }


def _faithful_waste_skip():
    g = cycle_graph(UNIFORM_N, implicit=True)

    def run(**extra):
        t0 = time.perf_counter()
        out = batched_uniform_idla(
            g,
            "uniform",
            seeds=spawn_seed_sequences(SEED, 1),
            faithful_r=True,
            **extra,
        )
        return out[0], time.perf_counter() - t0

    scanner, t_scan = run()
    # max_ticks routes through the per-tick loop (exact raise points);
    # a budget far above the realised tick count never trips, so this is
    # the pre-scanner path on the same seeds.
    pertick, t_loop = run(max_ticks=2**62)
    assert scanner.dispersion_time == pertick.dispersion_time
    assert scanner.ticks == pertick.ticks
    assert np.array_equal(scanner.schedule, pertick.schedule)
    wasted = scanner.ticks - scanner.total_steps
    if FULL_SIZE:
        assert t_loop > 3.0 * t_scan, (
            f"lane scanner no longer pays off: {t_scan:.2f}s vs per-tick "
            f"{t_loop:.2f}s"
        )
    return {
        "label": f"uniform faithful_r n={UNIFORM_N}",
        "n": UNIFORM_N,
        "ticks": float(scanner.ticks),
        "wasted_frac": wasted / max(scanner.ticks, 1.0),
        "scanner_s": t_scan,
        "per_tick_s": t_loop,
        "speedup": t_loop / max(t_scan, 1e-9),
    }


def _experiment():
    _budget_anchor()
    return {
        "budget": _full_dispersion_under_budget(),
        "faithful": _faithful_waste_skip(),
    }


def bench_particle_shard(benchmark, capsys):
    res = run_once(benchmark, _experiment)
    b, f = res["budget"], res["faithful"]
    emit(
        capsys,
        "particle_shard",
        f"Budgeted resident state (budget={BUDGET_SPEC}, reps={REPS})",
        [
            "workload",
            "n",
            "detail",
            "time (s)",
            "peak / budget (MB)",
        ],
        [
            [
                b["label"],
                b["n"],
                f"{b['cohorts']} cohorts, mean tau {b['tau_mean']:.0f}, "
                f"flat layout {b['flat_layout_mb']:.0f} MB",
                round(b["elapsed_s"], 2),
                f"{b['peak_mb']:.1f} / {b['budget_mb']:.1f}",
            ],
            [
                f["label"],
                f["n"],
                f"{f['ticks']:.0f} ticks, {f['wasted_frac']:.1%} wasted, "
                f"scanner speedup {f['speedup']:.1f}x",
                round(f["scanner_s"], 2),
                "-",
            ],
        ],
        extra={
            "memory_contract": (
                "tracemalloc peak of the whole m=n estimate < stated "
                "StateBudget bytes (full size only)"
            ),
            "faithful_contract": (
                "bulk lane scanner bit-identical to the per-tick loop "
                "(same ticks, schedule, tau) and >3x faster at full size"
            ),
            "budget_anchor": "hypercube-8 budgeted == unbudgeted (bit-identical)",
        },
    )
