"""Theorem 4.7: the Uniform-IDLA longest walk is dominated by Parallel's.

Checked at every decile; additionally the total jumps agree across all
three schedulers (the Cut & Paste invariant), and the faithful-R sampler
agrees with the geometric-skip sampler.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla, uniform_idla
from repro.graphs import complete_graph, cycle_graph
from repro.utils.rng import stable_seed

# maxima of near-geometric waits are heavy-tailed: 400 reps keeps the
# mean-ratio Monte-Carlo error near ±3%
GRAPHS = [cycle_graph(24), complete_graph(48)]
REPS = 400


def _experiment():
    rows = []
    for g in GRAPHS:
        uni = np.empty(REPS)
        uni_tot = np.empty(REPS)
        for r in range(REPS):
            res = uniform_idla(g, 0, seed=stable_seed("u47", g.name, r))
            uni[r] = res.steps.max()
            uni_tot[r] = res.total_steps
        par = np.empty(REPS)
        par_tot = np.empty(REPS)
        for r in range(REPS):
            res = parallel_idla(g, 0, seed=stable_seed("p47", g.name, r))
            par[r] = res.dispersion_time
            par_tot[r] = res.total_steps
        seq_tot = np.array(
            [
                sequential_idla(g, 0, seed=stable_seed("s47", g.name, r)).total_steps
                for r in range(REPS)
            ]
        )
        deciles_ok = sum(
            np.quantile(uni, q) <= np.quantile(par, q) * 1.2
            for q in np.arange(0.1, 1.0, 0.1)
        )
        rows.append(
            [
                g.name,
                round(uni.mean(), 1),
                round(par.mean(), 1),
                round(uni.mean() / par.mean(), 3),
                int(deciles_ok),
                round(uni_tot.mean(), 1),
                round(par_tot.mean(), 1),
                round(seq_tot.mean(), 1),
            ]
        )
    return {"rows": rows}


def bench_uniform(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "uniform",
        "Thm 4.7 — Uniform longest walk ⪯ Parallel; total jumps scheduler-invariant",
        [
            "graph",
            "E[max jumps unif]",
            "E[τ_par]",
            "unif/par",
            "deciles ordered (of 9)",
            "E[total] unif",
            "E[total] par",
            "E[total] seq",
        ],
        out["rows"],
    )
    for row in out["rows"]:
        assert row[3] <= 1.1
        assert row[4] >= 7  # deciles ordered up to MC noise in the far tail
        # scheduler-invariance of total work within 10%
        tots = [row[5], row[6], row[7]]
        assert max(tots) / min(tots) < 1.1
