"""Proposition 3.8: hitting time is NOT a lower bound for dispersion time.

The binary-tree-with-a-path graph has ``t_hit = Ω(n^{3/2−ε})`` (the path
tip is brutally hard to hit from the far leaves) yet ``t_seq = O(n log²
n)``: the dispersion process fills the path early because the root is
visited Ω(n) times.  We sweep the construction at the proposition's
boundary ``path_len = ⌊√n_t⌋`` (ε → 0, where the separation is largest at
laptop scale) and show ``t_hit / t_seq`` crossing 1 and growing —
refuting the natural conjecture ``t_seq = Ω(t_hit)``.
"""

import numpy as np

from _common import emit, run_once
from repro.core import sequential_idla
from repro.graphs import binary_tree_with_path
from repro.markov import max_hitting_time
from repro.utils.rng import stable_seed

HEIGHTS = [5, 6, 7, 8]
REPS = 20


def _experiment():
    rows = []
    gaps = []
    for h in HEIGHTS:
        n_t = (1 << (h + 1)) - 1
        k = int(np.sqrt(n_t))
        g = binary_tree_with_path(h, path_len=k)
        thit = max_hitting_time(g)
        seq = np.mean(
            [
                sequential_idla(g, 0, seed=stable_seed("gap", h, r)).dispersion_time
                for r in range(REPS)
            ]
        )
        gaps.append(thit / seq)
        law = g.n * np.log(g.n) ** 2
        rows.append(
            [
                h,
                g.n,
                k,
                round(thit, 0),
                round(seq, 1),
                round(thit / seq, 2),
                round(seq / law, 4),
            ]
        )
    return {"rows": rows, "gaps": gaps}


def bench_hitting_gap(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "hitting_gap",
        "Prop 3.8 — btree+path(√n): t_hit ≫ t_seq (t_hit no lower bound)",
        [
            "height",
            "n",
            "path len",
            "t_hit",
            "E[τ_seq]",
            "t_hit/τ_seq",
            "τ_seq/(n ln² n)",
        ],
        out["rows"],
        extra={"paper": "t_hit = Ω(n^{3/2−ε}) vs t_seq = O(n log² n)"},
    )
    gaps = out["gaps"]
    # the gap crosses 1 decisively and grows along the sweep
    assert max(gaps) > 1.7
    assert gaps[-1] > 1.3
    assert gaps[-1] > gaps[0]
    # and t_seq itself stays on the n log² n scale (bounded normalised col)
    norms = [r[6] for r in out["rows"]]
    assert max(norms) / min(norms) < 3.0
