"""Proposition A.1: no least-action principle for IDLA.

On the clique-with-a-hair, the modified rule ρ̃ — refuse to settle
anywhere but the hair tip until ``3 n log n`` steps — makes every particle
walk *more* yet completes dispersion in ``O(n log n)`` instead of
``Ω(n²)``: perturbing walks to be longer shortens the dispersion time.
Benched for both schedulers, plus the generic DelayedRule ablation.
"""

import numpy as np

from _common import emit, run_once
from repro.core import DelayedRule, HairRule, parallel_idla, sequential_idla
from repro.graphs import clique_with_hair
from repro.utils.rng import stable_seed

N = 96
REPS = 60


def _experiment():
    g = clique_with_hair(N)
    rule = HairRule.for_clique_with_hair(N)
    rows = []
    stats = {}
    for proc, driver in (("seq", sequential_idla), ("par", parallel_idla)):
        greedy = np.array(
            [
                driver(g, 0, seed=stable_seed("la-g", proc, r)).dispersion_time
                for r in range(REPS)
            ]
        )
        smart = np.array(
            [
                driver(
                    g, 0, seed=stable_seed("la-s", proc, r), rule=rule
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        stats[proc] = (greedy, smart)
        rows.append(
            [
                proc,
                round(greedy.mean(), 1),
                round(smart.mean(), 1),
                round(greedy.mean() / smart.mean(), 2),
                round(float(np.median(greedy)), 1),
                round(float(np.median(smart)), 1),
            ]
        )
    # ablation: a *blind* delay rule (delay but no target) must NOT help
    blind = np.array(
        [
            sequential_idla(
                g, 0, seed=stable_seed("la-b", r), rule=DelayedRule(delay=N)
            ).dispersion_time
            for r in range(REPS // 2)
        ]
    )
    return {"rows": rows, "blind_mean": float(blind.mean()), "stats": stats}


def bench_least_action(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "least_action",
        "Prop A.1 — hair rule ρ̃ beats greedy ρ on the hairy clique (n=96)",
        [
            "process",
            "E[τ] greedy ρ",
            "E[τ] hair ρ̃",
            "speedup",
            "median ρ",
            "median ρ̃",
        ],
        out["rows"],
        extra={
            "blind DelayedRule(n) mean (control, no targeting)": round(
                out["blind_mean"], 1
            ),
            "paper": "ρ̃ gives O(n log n); greedy is Ω(n²) with prob. Ω(1)",
        },
    )
    for row in out["rows"]:
        assert row[3] > 1.5  # longer walks, shorter dispersion
    # the hair rule's mean is on the n log n scale, greedy's far above
    seq_row = out["rows"][0]
    assert seq_row[2] < 6 * N * np.log(N)
    assert seq_row[1] > 10 * N
