"""Cut & Paste machinery: Lemma 4.6 statistics + transform throughput.

Quantifies the coupling that powers Theorem 4.1: across many recorded
runs, StP never shrinks the longest row (Lemma 4.6) and the mean
stretch factor explains the seq→par slowdown.  Also times StP/PtS on a
large block — the transforms are linear in total length.
"""

import numpy as np

from _common import emit, run_once
from repro.core import (
    parallel_to_sequential,
    sequential_idla,
    sequential_to_parallel,
)
from repro.graphs import complete_graph, cycle_graph, grid_graph
from repro.utils.rng import stable_seed

GRAPHS = [cycle_graph(32), complete_graph(64), grid_graph(6, 6)]
REPS = 40


def _experiment():
    rows = []
    for g in GRAPHS:
        stretch = []
        violations = 0
        for r in range(REPS):
            res = sequential_idla(g, 0, seed=stable_seed("cp", g.name, r), record=True)
            b = res.block()
            out = sequential_to_parallel(b)
            if out.max_row_length < b.max_row_length:
                violations += 1
            stretch.append(out.max_row_length / max(b.max_row_length, 1))
            # round trip must be identity
            assert parallel_to_sequential(out) == b
        rows.append(
            [
                g.name,
                REPS,
                violations,
                round(float(np.mean(stretch)), 3),
                round(float(np.max(stretch)), 3),
            ]
        )
    return {"rows": rows}


def bench_cut_paste_lemma46(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "cut_paste",
        "Lemma 4.6 — StP longest-row stretch (never < 1) + bijection round trip",
        ["graph", "runs", "violations", "mean stretch", "max stretch"],
        out["rows"],
    )
    for row in out["rows"]:
        assert row[2] == 0
        assert row[3] >= 1.0


def bench_cut_paste_throughput(benchmark):
    """Pure-performance leg: StP on one large cycle block (timed by rounds)."""
    g = cycle_graph(96)
    res = sequential_idla(g, 0, seed=1234, record=True)
    block = res.block()

    def transform():
        return sequential_to_parallel(block)

    out = benchmark(transform)
    assert out.total_length == block.total_length
