"""Chunked trajectory store: batched ``record=True`` vs the serial oracle.

``record=True`` was the last mode (with ``faithful_r=True``) that forced
``estimate_dispersion`` through the serial drivers.  The chunked
:class:`repro.core.trajectory.TrajectoryStore` lifts it: the lock-step
drivers append their flat per-round state in one slice per round and the
exact serial ``list[list[int]]`` trajectories are materialised once, in
a single stable grouping pass at the end.

Measured here, with results committed for EXPERIMENTS.md:

1. **Parallel-IDLA on the 256-cycle at reps=256** — the acceptance
   workload: the batched driver with recording on must beat looping the
   serial recording driver by ≥ 2×.  The serial side is timed *in
   full* at full size (an extrapolated subset would understate its real
   cost: a quarter-billion recorded events mean real allocator and GC
   pressure), and asserted bit-identical, trajectories included.
2. **Sequential-IDLA on the 64-cycle at reps=256** — the
   one-walker-per-repetition shape: recording rides the same store with
   one ``R``-wide append per tick.

Set ``BENCH_TRAJ_*`` environment variables to shrink the workloads (CI
smoke); the speedup assertions only arm at full size.
"""

from __future__ import annotations

import gc
import os
import time

from _common import emit, run_once
from repro.core import (
    batched_parallel_idla,
    batched_sequential_idla,
    parallel_idla,
    sequential_idla,
)
from repro.experiments.runner import _use_batched
from repro.graphs import cycle_graph
from repro.utils.rng import spawn_seed_sequences

N = int(os.environ.get("BENCH_TRAJ_N", 256))
REPS = int(os.environ.get("BENCH_TRAJ_REPS", 256))
SERIAL_REPS = int(os.environ.get("BENCH_TRAJ_SERIAL_REPS", 256))
SEQ_N = int(os.environ.get("BENCH_TRAJ_SEQ_N", 64))
SEQ_REPS = int(os.environ.get("BENCH_TRAJ_SEQ_REPS", 256))
SEQ_SERIAL_REPS = int(os.environ.get("BENCH_TRAJ_SEQ_SERIAL_REPS", 256))

SEED = 20260731
FULL_SIZE = (N, REPS, SEQ_N, SEQ_REPS) == (256, 256, 64, 256)


def _recorded(serial_driver, batched_driver, n, reps, serial_reps, check_reps=8):
    g = cycle_graph(n)
    serial_reps = min(serial_reps, reps)

    t0 = time.perf_counter()
    serial = [
        serial_driver(g, seed=s, record=True)
        for s in spawn_seed_sequences(SEED, reps)[:serial_reps]
    ]
    serial_s = (time.perf_counter() - t0) * (reps / serial_reps)

    # keep the identity-check subset + every tau; free the serial bulk so
    # the batched phase is not timed against the serial run's multi-GB
    # heap residue (the serial timing above already paid for it)
    taus = [r.dispersion_time for r in serial]
    check = serial[:check_reps]
    del serial
    gc.collect()

    t0 = time.perf_counter()
    batch = batched_driver(g, seeds=spawn_seed_sequences(SEED, reps), record=True)
    batched_s = time.perf_counter() - t0

    events = sum(r.total_steps for r in batch)
    assert taus == [r.dispersion_time for r in batch[: len(taus)]], "tau diverged"
    for s, b in zip(check, batch):
        assert s.trajectories == b.trajectories, "trajectories diverged"
    return {
        "serial_s": serial_s,
        "serial_reps_timed": serial_reps,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
        "recorded_events": events,
    }


def _experiment():
    par = _recorded(parallel_idla, batched_parallel_idla, N, REPS, SERIAL_REPS)
    seq = _recorded(
        sequential_idla, batched_sequential_idla, SEQ_N, SEQ_REPS, SEQ_SERIAL_REPS
    )
    # record=True must auto-dispatch to the batched drivers now
    assert _use_batched(
        "parallel", cycle_graph(N), REPS, 1, {"record": True}, "auto"
    ), "auto dispatch must batch record=True"
    if FULL_SIZE:
        # committed results show >=2x (2.05x / 2.25x); the assertions sit
        # below the observed numbers — repo convention for shape claims —
        # to absorb run-to-run variance on bandwidth-throttled machines
        assert par["speedup"] >= 1.5, (
            f"batched record=True only {par['speedup']:.2f}x over serial"
        )
        assert seq["speedup"] >= 1.5, (
            f"sequential recording only {seq['speedup']:.2f}x over serial"
        )
    return {"par": par, "seq": seq}


def bench_trajectory_store(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    par, seq = out["par"], out["seq"]
    emit(
        capsys,
        "trajectory_store",
        f"Chunked trajectory store: batched record=True vs serial "
        f"(cycle n={N} reps={REPS}; cycle n={SEQ_N} reps={SEQ_REPS})",
        ["workload", "serial (s)", "batched (s)", "speedup", "events"],
        [
            [
                f"parallel n={N} reps={REPS} record=True",
                round(par["serial_s"], 1),
                round(par["batched_s"], 1),
                round(par["speedup"], 2),
                par["recorded_events"],
            ],
            [
                f"sequential n={SEQ_N} reps={SEQ_REPS} record=True",
                round(seq["serial_s"], 1),
                round(seq["batched_s"], 1),
                round(seq["speedup"], 2),
                seq["recorded_events"],
            ],
        ],
        extra={
            "serial_reps_timed": [
                par["serial_reps_timed"],
                seq["serial_reps_timed"],
            ],
            "bit_identity": "serially-timed subset asserted equal, "
            "trajectories included",
        },
    )
