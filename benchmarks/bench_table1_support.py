"""Table 1 support columns: cover, hitting and mixing times per family.

Regenerates the non-dispersion columns of Table 1 at a fixed size per
family: exact ``t_hit(G)``, exact lazy ``t_mix(1/4)``, the Matthews cover
upper bound and an empirical cover time, each next to the paper's
predicted order.
"""

from _common import emit, run_once
from repro.markov import matthews_upper_bound, max_hitting_time, mixing_time
from repro.theory import FAMILIES, TABLE1
from repro.utils.rng import stable_seed
from repro.walks import empirical_cover_times

CASES = [
    ("path", 64),
    ("cycle", 64),
    ("grid2d", 64),
    ("torus3d", 125),
    ("hypercube", 128),
    ("binary_tree", 63),
    ("complete", 128),
    ("expander", 128),
]


def _experiment():
    rows = []
    for fam_name, n in CASES:
        fam = FAMILIES[fam_name]
        g = fam.build(n, seed=stable_seed("t1support", fam_name))
        t1 = TABLE1[fam_name]
        thit = max_hitting_time(g)
        tmix = mixing_time(g, lazy=True)
        cover_ub = matthews_upper_bound(g)
        cover_emp = empirical_cover_times(
            g, 0, reps=60, seed=stable_seed("t1support-cov", fam_name)
        ).mean()
        rows.append(
            [
                fam_name,
                g.n,
                round(thit, 1),
                t1.hitting.label,
                tmix,
                t1.mixing.label,
                round(cover_emp, 1),
                round(cover_ub, 1),
                t1.cover.label,
            ]
        )
    return {"rows": rows}


def bench_table1_support(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_support",
        "Table 1 support columns: hitting / mixing / cover per family",
        [
            "family",
            "n",
            "t_hit",
            "paper",
            "t_mix",
            "paper",
            "cover (MC)",
            "Matthews ≤",
            "paper",
        ],
        out["rows"],
    )
    by_family = {r[0]: r for r in out["rows"]}
    # Matthews bound dominates the empirical cover time everywhere
    for r in out["rows"]:
        assert r[6] <= r[7] * 1.1  # Matthews dominates up to MC noise
    # ordering sanity of the columns across families (paper's qualitative
    # picture): cycle's hitting time is quadratic vs near-linear clique —
    # compare per-vertex since the instances have different sizes
    cycle_per_n = by_family["cycle"][2] / by_family["cycle"][1]
    clique_per_n = by_family["complete"][2] / by_family["complete"][1]
    assert cycle_per_n > 10 * clique_per_n
    # mixing: clique mixes in O(1), cycle in Ω(n²)-many steps
    assert by_family["complete"][4] <= 3
    assert by_family["cycle"][4] > 200
    # binary tree: hitting time carries a log factor over its size
    assert by_family["binary_tree"][2] > 2 * by_family["binary_tree"][1]
