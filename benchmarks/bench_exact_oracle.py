"""Exact-DP oracle vs every scheduler (the sharpest Theorem 4.1 check).

:func:`repro.markov.analyze_sequential_idla` computes ``E[total steps]``
of Sequential-IDLA *exactly*.  By the Cut & Paste coupling the same value
is the expected total for Parallel-, Uniform- and CTU-IDLA.  This bench
pits all four Monte-Carlo drivers against the oracle, with z-scores.
"""

import numpy as np

from _common import emit, run_once
from repro.core import ctu_idla, parallel_idla, sequential_idla, uniform_idla
from repro.graphs import complete_graph, cycle_graph, grid_graph, star_graph
from repro.markov import analyze_sequential_idla
from repro.utils.rng import stable_seed

GRAPHS = [cycle_graph(10), complete_graph(9), star_graph(9), grid_graph(3, 3)]
DRIVERS = [
    ("sequential", sequential_idla),
    ("parallel", parallel_idla),
    ("uniform", uniform_idla),
    ("ctu", ctu_idla),
]
REPS = 400


def _experiment():
    rows = []
    for g in GRAPHS:
        exact = analyze_sequential_idla(g).expected_total_steps
        for name, driver in DRIVERS:
            tot = np.array(
                [
                    driver(
                        g, 0, seed=stable_seed("oracle", g.name, name, r)
                    ).total_steps
                    for r in range(REPS)
                ]
            )
            sem = tot.std() / np.sqrt(REPS)
            z = (tot.mean() - exact) / max(sem, 1e-12)
            rows.append(
                [
                    g.name,
                    name,
                    round(exact, 2),
                    round(tot.mean(), 2),
                    round(sem, 2),
                    round(z, 2),
                ]
            )
    return {"rows": rows}


def bench_exact_oracle(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "exact_oracle",
        "Thm 4.1 (exact) — E[total steps] identical across schedulers",
        ["graph", "scheduler", "exact E[total]", "MC mean", "sem", "z"],
        out["rows"],
    )
    for row in out["rows"]:
        assert abs(row[5]) < 4.5, f"{row[0]}/{row[1]} off the oracle: z={row[5]}"
