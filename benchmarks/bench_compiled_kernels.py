"""Compiled inner-loop kernels vs pure numpy (implementation bench).

The :mod:`repro.kernels` seam swaps three inner loops for compiled
twins — the fused offset+gather walk step, the counting-scatter
settlement round, and the scalar tail finishers' per-step micro-loops —
behind the ``REPRO_KERNELS`` registry.  The differential harness pins
every swap bit-identical; this bench pins the *point* of the layer:

* **sequential tail (Table-1 cycle)**: with ``reps`` below the tail
  threshold every repetition runs in the scalar finisher, so the
  workload is exactly the per-step Python micro-loop the compiled
  ``finish_seq`` kernel replaces.  The acceptance pin: **>= 3x** over
  the pure-numpy provider at full size (measured ~20x with the cffi
  provider on x86-64).
* **parallel lock-step (Table-1 cycle)**: wide rounds drive the fused
  step + compiled settlement round; narrow tail rounds stay on numpy
  under the ``min_width`` gate and the stragglers use the compiled
  finisher.  Reported for reference; the pin here is byte-identity and
  no regression below **0.9x** (the layer must never cost the default
  path its performance).

Both workloads assert the byte-identity anchor: the full result set
(``steps``, ``settled_at``, ``settle_order``, ``dispersion_time``) of
the compiled provider equals the pure-numpy run byte for byte.

The compiled provider is whichever of ``numba``/``cffi`` resolves here
(auto-detection order); the bench skips when neither toolchain is
available.  Set ``BENCH_KERNELS_*`` environment variables to shrink the
workloads (CI smoke); the speedup assertions only arm at full size.
"""

from __future__ import annotations

import os
import time

import pytest

from _common import emit, run_once
from repro.core.batched import batched_parallel_idla, batched_sequential_idla
from repro.graphs import cycle_graph
from repro.kernels import available_kernels, get_kernels
from repro.utils.rng import spawn_seed_sequences

SEQ_N = int(os.environ.get("BENCH_KERNELS_SEQ_N", 384))
SEQ_REPS = int(os.environ.get("BENCH_KERNELS_SEQ_REPS", 6))
PAR_N = int(os.environ.get("BENCH_KERNELS_PAR_N", 256))
PAR_REPS = int(os.environ.get("BENCH_KERNELS_PAR_REPS", 32))
REPEAT = int(os.environ.get("BENCH_KERNELS_REPEAT", 3))

SEED = 20260808
SEQ_FLOOR = 3.0
PAR_FLOOR = 0.9
FULL_SIZE = (SEQ_N, SEQ_REPS, PAR_N, PAR_REPS) == (384, 6, 256, 32)

COMPILED = next(
    (name for name in ("numba", "cffi") if available_kernels().get(name)), None
)


def _timed(fn):
    best = float("inf")
    out = None
    for _ in range(REPEAT):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _assert_identical(plain, compiled):
    for p, c in zip(plain, compiled):
        assert p.dispersion_time == c.dispersion_time
        assert p.steps.tobytes() == c.steps.tobytes()
        assert p.settled_at.tobytes() == c.settled_at.tobytes()
        assert p.settle_order.tobytes() == c.settle_order.tobytes()


def _measure(label, driver, g, reps):
    seeds = lambda: spawn_seed_sequences(SEED, reps)  # noqa: E731
    plain, wall_np = _timed(lambda: driver(g, 0, seeds=seeds(), kernels="numpy"))
    comp, wall_k = _timed(lambda: driver(g, 0, seeds=seeds(), kernels=COMPILED))
    _assert_identical(plain, comp)
    return {
        "label": label,
        "n": g.n,
        "reps": reps,
        "wall_numpy": wall_np,
        "wall_compiled": wall_k,
        "speedup": wall_np / wall_k,
    }


def _experiment():
    return [
        _measure(
            "sequential tail (cycle)",
            batched_sequential_idla,
            cycle_graph(SEQ_N),
            SEQ_REPS,
        ),
        _measure(
            "parallel lock-step (cycle)",
            batched_parallel_idla,
            cycle_graph(PAR_N),
            PAR_REPS,
        ),
    ]


def bench_compiled_kernels(benchmark, capsys):
    if COMPILED is None:
        pytest.skip("no compiled kernel provider available (numba or cffi)")
    workloads = run_once(benchmark, _experiment)
    rows = [
        [
            w["label"],
            w["n"],
            w["reps"],
            f"{w['wall_numpy']:.3f}",
            f"{w['wall_compiled']:.3f}",
            f"{w['speedup']:.2f}",
        ]
        for w in workloads
    ]
    emit(
        capsys,
        "compiled_kernels",
        f"Compiled inner-loop kernels ({COMPILED}) vs pure numpy",
        ["workload", "n", "reps", "wall numpy (s)", "wall compiled (s)", "speedup"],
        rows,
        extra={
            "provider": COMPILED,
            "min_width": get_kernels(COMPILED).min_width,
            "byte_identity": "asserted on steps/settled_at/settle_order/tau",
            "pins": f"sequential >= {SEQ_FLOOR}x, parallel >= {PAR_FLOOR}x",
            "full_size": FULL_SIZE,
        },
    )
    if FULL_SIZE:
        seq, par = workloads
        assert seq["speedup"] >= SEQ_FLOOR, seq
        assert par["speedup"] >= PAR_FLOOR, par
