"""Theorem 4.2 + Open Problem 2: ``E[τ_par] = O(log n · E[τ_seq])``.

The coupling proof pays a log n factor; Open Problem 2 asks whether O(1)
suffices.  We chart the ratio across every family and sweep the clique
(the family with the largest known asymptotic gap, π²/6 : κ_cc ≈ 1.31) to
show the ratio stays far below log n — consistent with the conjecture.
"""

import numpy as np

from _common import emit, run_once
from repro.core import parallel_idla, sequential_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed

CASES = [
    ("path", 64, 20),
    ("cycle", 64, 20),
    ("complete", 256, 30),
    ("hypercube", 256, 30),
    ("binary_tree", 127, 20),
    ("grid2d", 100, 20),
    ("torus3d", 125, 20),
    ("expander", 256, 30),
    ("lollipop", 32, 10),
]


def _experiment():
    rows = []
    for fam_name, n, reps in CASES:
        fam = FAMILIES[fam_name]
        g = fam.build(n, seed=stable_seed("ratio-g", fam_name))
        origin = fam.worst_origin(g)
        seq = np.mean(
            [
                sequential_idla(
                    g, origin, seed=stable_seed("ratio-s", fam_name, r)
                ).dispersion_time
                for r in range(reps)
            ]
        )
        par = np.mean(
            [
                parallel_idla(
                    g, origin, seed=stable_seed("ratio-p", fam_name, r)
                ).dispersion_time
                for r in range(reps)
            ]
        )
        rows.append(
            [
                fam_name,
                g.n,
                round(seq, 1),
                round(par, 1),
                round(par / seq, 3),
                round(np.log(g.n), 2),
            ]
        )
    return {"rows": rows}


def bench_par_seq_ratio(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "par_seq_ratio",
        "Thm 4.2 — E[τ_par]/E[τ_seq] vs the proven log n envelope",
        ["family", "n", "E[τ_seq]", "E[τ_par]", "par/seq", "log n"],
        out["rows"],
        extra={
            "paper": "ratio ≤ O(log n) proven; O(1) conjectured (Open Problem 2)"
        },
    )
    for row in out["rows"]:
        # Theorem 4.2 envelope with a 2x constant allowance
        assert row[4] < 2.0 * row[5]
        # and empirically consistent with the O(1) conjecture
        assert row[4] < 3.0
