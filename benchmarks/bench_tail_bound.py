"""Theorem 3.1: ``Pr[τ > 6 t_hit log₂ n] ≤ 1/n²`` and ``t = O(t_hit log n)``.

For each family we compute the exact threshold, run many realisations of
both processes and count exceedances (expected: none at these n), and
report the measured-to-bound ratio — the bound is loose by design but must
always dominate.
"""

import numpy as np

from _common import emit, run_once
from repro.bounds import theorem_3_1_threshold
from repro.core import parallel_idla, sequential_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed

CASES = [
    ("cycle", 32, 100),
    ("complete", 64, 100),
    ("hypercube", 64, 100),
    ("binary_tree", 63, 80),
    ("grid2d", 49, 80),
]


def _experiment():
    rows = []
    for fam_name, n, reps in CASES:
        g = FAMILIES[fam_name].build(n, seed=stable_seed("tail-g", fam_name))
        thr = theorem_3_1_threshold(g)
        worst = 0.0
        exceed = 0
        means = {}
        for proc, driver in (("seq", sequential_idla), ("par", parallel_idla)):
            d = np.array(
                [
                    driver(
                        g, 0, seed=stable_seed("tail", fam_name, proc, r)
                    ).dispersion_time
                    for r in range(reps)
                ]
            )
            exceed += int((d > thr).sum())
            worst = max(worst, float(d.max()))
            means[proc] = float(d.mean())
        rows.append(
            [
                fam_name,
                g.n,
                round(thr, 0),
                round(means["seq"], 1),
                round(means["par"], 1),
                round(worst, 0),
                exceed,
                round(means["par"] / thr, 4),
            ]
        )
    return {"rows": rows}


def bench_tail_bound(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "tail_bound",
        "Thm 3.1 — exceedances of 6·t_hit·log₂n over 2×reps runs (expect 0)",
        [
            "family",
            "n",
            "threshold",
            "E[τ_seq]",
            "E[τ_par]",
            "max τ seen",
            "# exceed",
            "E[τ_par]/bound",
        ],
        out["rows"],
    )
    for row in out["rows"]:
        assert row[6] == 0          # no exceedance observed
        assert row[5] <= row[2]     # even the max stayed below the bound
        assert row[7] < 1.0         # mean strictly inside
