"""Theorem 4.8: CTU-IDLA time = (1 + o(1)) × Parallel-IDLA time.

The continuous-time Uniform process (rate-1 clocks) is the paper's bridge
between schedulers: its dispersion clock matches the parallel round count
asymptotically, and its per-particle jump counts match the parallel
longest row.  Checked on the clique and hypercube at two sizes each.
"""

import numpy as np

from _common import emit, run_once
from repro.core import ctu_idla, parallel_idla
from repro.theory import FAMILIES
from repro.utils.rng import stable_seed

CASES = [("complete", 128), ("complete", 512), ("hypercube", 128), ("hypercube", 512)]
REPS = 25


def _experiment():
    rows = []
    for fam_name, n in CASES:
        g = FAMILIES[fam_name].build(n, seed=stable_seed("ctu-g", fam_name, n))
        par = np.mean(
            [
                parallel_idla(
                    g, 0, seed=stable_seed("ctu-p", fam_name, n, r)
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        clocks = np.empty(REPS)
        jumps = np.empty(REPS)
        for r in range(REPS):
            res = ctu_idla(g, 0, seed=stable_seed("ctu-c", fam_name, n, r))
            clocks[r] = res.dispersion_time
            jumps[r] = res.steps.max()
        rows.append(
            [
                fam_name,
                g.n,
                round(par, 1),
                round(clocks.mean(), 1),
                round(clocks.mean() / par, 3),
                round(jumps.mean() / par, 3),
            ]
        )
    return {"rows": rows}


def bench_ctu_parallel(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "ctu_parallel",
        "Thm 4.8 — CTU-IDLA clock ≈ Parallel-IDLA rounds (ratio -> 1)",
        ["family", "n", "E[τ_par]", "E[τ_ctu clock]", "clock/par", "max-jumps/par"],
        out["rows"],
    )
    # (1 + o(1)) with slow finite-size convergence: at n = 128 the clock
    # runs ~25% hot/cold depending on the family; the window would still
    # catch any constant-factor (≥1.5×) separation.
    for row in out["rows"]:
        assert 0.65 < row[4] < 1.35
        assert 0.6 < row[5] < 1.35
    # convergence: larger n sits closer to 1 on the clique
    clique = [r for r in out["rows"] if r[0] == "complete"]
    assert abs(clique[1][4] - 1.0) <= abs(clique[0][4] - 1.0) + 0.15
