"""Table 1, expander row (Theorem 5.5): ``t_seq, t_par = Θ(n)``.

Random 6-regular graphs have 1 − λ₂ = Ω(1) w.h.p.; Lemma C.3's set-hitting
estimate O(n log|S| / ((1−λ₂)|S|)) plugged into Theorem 3.3 gives Θ(n).
We also record each instance's spectral gap so the linearity can be read
against it.
"""

from _common import emit, run_once
from repro.experiments import sweep_dispersion
from repro.markov import spectral_gap
from repro.theory import FAMILIES, TABLE1
from repro.utils.rng import stable_seed

SIZES = [64, 128, 256, 512]
REPS = 10


def _experiment():
    sweep = sweep_dispersion("expander", SIZES, reps=REPS, seed=202408)
    fam = FAMILIES["expander"]
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        g = fam.build(n, seed=stable_seed(202408, "graph", n))
        gap = spectral_gap(g, lazy=True)
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / n, 4),
                round(par.dispersion.mean / n, 4),
                round(gap, 4),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", TABLE1["expander"].seq),
        "par_fit": sweep.constant_fit("parallel", TABLE1["expander"].par),
        "pow": sweep.power_law("parallel"),
    }


def bench_table1_expander(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_expander",
        "Table 1 / Thm 5.5 — random 6-regular expanders: Θ(n)",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/n", "par/n", "lazy gap"],
        out["rows"],
        extra={
            "log-log exponent (par)": round(out["pow"].exponent, 3),
            "n-law trend seq": round(out["seq_fit"].trend, 3),
            "n-law trend par": round(out["par_fit"].trend, 3),
        },
    )
    assert 0.8 < out["pow"].exponent < 1.25
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
    # expander hypothesis itself: constant spectral gap across the sweep
    assert min(r[5] for r in out["rows"]) > 0.03
