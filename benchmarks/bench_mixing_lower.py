"""Proposition 3.9: ``t_seq = Ω(t_mix)``, tight up to log n on the cycle.

The cycle has ``t_mix = Θ(n²)`` and ``t_seq = Θ(n² log n)``: the measured
ratio ``t_seq / t_mix`` must stay ≥ 1 and grow like log n (the bound is
tight up to exactly that factor).  The barbell shows the bound is also
informative on strongly bottlenecked graphs.
"""

import numpy as np

from _common import emit, run_once
from repro.core import sequential_idla
from repro.graphs import barbell_graph, cycle_graph
from repro.markov import mixing_time
from repro.utils.rng import stable_seed

CYCLE_SIZES = [24, 32, 48, 64]
REPS = 15


def _experiment():
    rows = []
    ratios = []
    for n in CYCLE_SIZES:
        g = cycle_graph(n)
        tmix = mixing_time(g, lazy=True)
        lazy = np.mean(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("ml", n, r), lazy=True
                ).dispersion_time
                for r in range(REPS)
            ]
        )
        ratios.append(lazy / tmix)
        rows.append(
            [g.name, tmix, round(lazy, 1), round(lazy / tmix, 2), round(np.log(n), 2)],
        )
    g = barbell_graph(12, 4)
    tmix = mixing_time(g, lazy=True)
    lazy = np.mean(
        [
            sequential_idla(
                g, 0, seed=stable_seed("ml-b", r), lazy=True
            ).dispersion_time
            for r in range(REPS)
        ]
    )
    rows.append([g.name, tmix, round(lazy, 1), round(lazy / tmix, 2), "—"])
    return {"rows": rows, "cycle_ratios": ratios}


def bench_mixing_lower(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "mixing_lower",
        "Prop 3.9 — lazy t_seq ≥ Ω(t_mix); ratio grows ~log n on the cycle",
        ["graph", "t_mix (lazy)", "E[τ_seq lazy]", "τ/t_mix", "log n"],
        out["rows"],
    )
    # bound holds on every instance
    for row in out["rows"]:
        assert row[3] >= 1.0
    # tight-up-to-log: the cycle ratio increases along the sweep
    r = out["cycle_ratios"]
    assert r[-1] > r[0]
