"""Table 1, cycle row (Theorem 5.9): ``t_seq, t_par = Θ(n² log n)``.

The cycle also witnesses tightness of the regular-graph worst case
``O(n² log n)`` of Corollary 3.2.  We fit both the unconstrained power law
(expect effective exponent ≳ 2) and the constant against n² log n
(expect a flat trend), and check the Theorem 3.1 envelope dominates.
"""

from _common import emit, run_once
from repro.bounds import theorem_3_1_threshold
from repro.experiments import sweep_dispersion
from repro.graphs import cycle_graph
from repro.theory import TABLE1

SIZES = [32, 48, 64, 96, 128]
REPS = 10


def _experiment():
    sweep = sweep_dispersion("cycle", SIZES, reps=REPS, seed=202403)
    law = TABLE1["cycle"].seq
    rows = []
    for n in sweep.sizes():
        seq = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "sequential"
        )
        par = next(
            p.estimate for p in sweep.points if p.n == n and p.process == "parallel"
        )
        thr = theorem_3_1_threshold(cycle_graph(n))
        rows.append(
            [
                n,
                round(seq.dispersion.mean, 1),
                round(par.dispersion.mean, 1),
                round(seq.dispersion.mean / law(n), 4),
                round(par.dispersion.mean / law(n), 4),
                round(thr, 0),
            ]
        )
    return {
        "rows": rows,
        "seq_fit": sweep.constant_fit("sequential", law),
        "par_fit": sweep.constant_fit("parallel", law),
        "seq_pow": sweep.power_law("sequential"),
        "par_pow": sweep.power_law("parallel"),
    }


def bench_table1_cycle(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "table1_cycle",
        "Table 1 / Thm 5.9 — cycle: Θ(n² log n) for both processes",
        ["n", "E[τ_seq]", "E[τ_par]", "seq/(n²ln n)", "par/(n²ln n)", "Thm3.1 bound"],
        out["rows"],
        extra={
            "log-log exponent seq": round(out["seq_pow"].exponent, 3),
            "log-log exponent par": round(out["par_pow"].exponent, 3),
            "n²log n trend seq (≈0 ⇒ right law)": round(out["seq_fit"].trend, 3),
            "n²log n trend par": round(out["par_fit"].trend, 3),
        },
    )
    assert 1.8 < out["seq_pow"].exponent < 2.7
    assert 1.8 < out["par_pow"].exponent < 2.7
    assert out["seq_fit"].is_flat and out["par_fit"].is_flat
    # measured mean below the Theorem 3.1 envelope everywhere
    for row in out["rows"]:
        assert row[1] <= row[5] and row[2] <= row[5]
