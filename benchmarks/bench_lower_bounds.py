"""Theorems 3.6 / 3.7 and Proposition 3.9: lower bounds vs measured.

``t_seq ≥ 2|E|/Δ`` (worst origin), trees ``≥ 2n − 3``, and
``t_seq = Ω(t_mix)`` for lazy walks.  Each row reports measured mean /
bound — always ≥ 1 up to Monte-Carlo slack.
"""

import numpy as np

from _common import emit, run_once
from repro.bounds import (
    proposition_3_9_bound,
    theorem_3_6_bound,
    theorem_3_7_tree_bound,
)
from repro.core import sequential_idla
from repro.graphs import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    double_star,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import is_tree
from repro.utils.rng import stable_seed

GRAPHS = [
    path_graph(32),
    star_graph(32),
    double_star(15, 15),
    complete_binary_tree(4),
    cycle_graph(32),
    complete_graph(64),
    hypercube_graph(6),
    torus_graph(6, 6),
]
REPS = 40


def _experiment():
    rows = []
    for g in GRAPHS:
        measured = np.mean(
            [
                sequential_idla(g, 0, seed=stable_seed("lb", g.name, r)).dispersion_time
                for r in range(REPS)
            ]
        )
        b36 = theorem_3_6_bound(g)
        b37 = theorem_3_7_tree_bound(g) if is_tree(g) else float("nan")
        b39 = proposition_3_9_bound(g)
        lazy_measured = np.mean(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("lb-lazy", g.name, r), lazy=True
                ).dispersion_time
                for r in range(REPS // 2)
            ]
        )
        rows.append(
            [
                g.name,
                round(measured, 1),
                round(b36, 1),
                round(measured / b36, 2),
                round(b37, 1) if b37 == b37 else "—",
                round(lazy_measured, 1),
                round(b39, 1),
            ]
        )
    return {"rows": rows}


def bench_lower_bounds(benchmark, capsys):
    out = run_once(benchmark, _experiment)
    emit(
        capsys,
        "lower_bounds",
        "Thm 3.6/3.7 & Prop 3.9 — lower bounds below measured dispersion",
        ["graph", "E[τ_seq]", "2|E|/Δ", "ratio", "tree 2n−3", "E[τ_seq lazy]", "t_mix"],
        out["rows"],
    )
    for row in out["rows"]:
        assert row[1] >= 0.8 * row[2]            # Thm 3.6 (MC slack)
        if row[4] != "—":
            assert row[1] >= 0.85 * float(row[4])  # Thm 3.7 on trees
        assert row[5] >= row[6]                   # Prop 3.9: lazy t >= t_mix
