"""Legacy shim so ``pip install -e .`` works in offline environments
(no ``wheel`` package available for the PEP-660 editable build).
Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
