"""Tests for the experiment harness (stats, runner, fitting, sweeps, io)."""

import json

import numpy as np
import pytest

from repro.experiments import (
    bootstrap_ci,
    empirical_quantile,
    estimate_dispersion,
    fit_constant,
    fit_power_law,
    format_value,
    load_json,
    render_table,
    run_process,
    save_json,
    summarize,
    sweep_dispersion,
    to_jsonable,
)
from repro.graphs import complete_graph, cycle_graph
from repro.theory import growth_laws


class TestStats:
    def test_summarize_basics(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == 4.0 and s.median == 4.0
        assert s.min == 2.0 and s.max == 6.0
        assert s.ci95_low < 4.0 < s.ci95_high

    def test_summarize_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.sem == 0.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_contains_mean_for_tight_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10, 1, size=200)
        lo, hi = bootstrap_ci(x, seed=1)
        assert lo < 10.2 and hi > 9.8

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], level=1.5)

    def test_quantile(self):
        assert empirical_quantile([1, 2, 3, 4], 0.5) == 2.5
        with pytest.raises(ValueError):
            empirical_quantile([1], 2.0)

    def test_format(self):
        s = summarize([1.0, 2.0, 3.0])
        assert "median" in s.format()


class TestRunner:
    def test_run_process_dispatch(self):
        g = complete_graph(12)
        for proc in ("sequential", "parallel", "uniform", "ctu", "c-sequential"):
            res = run_process(proc, g, seed=0)
            assert res.is_complete_dispersion()

    def test_run_process_unknown(self):
        with pytest.raises(KeyError, match="available"):
            run_process("quantum", complete_graph(4))

    def test_estimate_shapes(self):
        est = estimate_dispersion(complete_graph(16), "parallel", reps=5, seed=1)
        assert est.samples.shape == (5,)
        assert est.dispersion.n == 5
        assert est.n == 16

    def test_estimate_deterministic(self):
        a = estimate_dispersion(cycle_graph(12), "sequential", reps=3, seed=9)
        b = estimate_dispersion(cycle_graph(12), "sequential", reps=3, seed=9)
        assert np.array_equal(a.samples, b.samples)

    def test_estimate_kwargs_forwarded(self):
        est = estimate_dispersion(
            cycle_graph(10), "sequential", reps=3, seed=2, lazy=True
        )
        assert est.dispersion.mean > 0

    def test_estimate_reps_validation(self):
        with pytest.raises(ValueError):
            estimate_dispersion(cycle_graph(8), reps=0)

    def test_parallel_jobs_match_serial(self):
        # the shared-memory shard path preserves repetition order, so the
        # equality is exact and elementwise, not merely as multisets
        g = complete_graph(12)
        a = estimate_dispersion(g, "sequential", reps=4, seed=3, n_jobs=1)
        b = estimate_dispersion(g, "sequential", reps=4, seed=3, n_jobs=2)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.total_samples, b.total_samples)


class TestFitting:
    def test_power_law_exact(self):
        f = fit_power_law([10, 20, 40], [100, 400, 1600])
        assert abs(f.exponent - 2.0) < 1e-9
        assert f.r_squared > 0.999

    def test_power_law_noisy(self):
        rng = np.random.default_rng(1)
        ns = np.array([16, 32, 64, 128, 256])
        ys = 3.0 * ns**1.5 * np.exp(rng.normal(0, 0.05, ns.size))
        f = fit_power_law(ns, ys)
        assert abs(f.exponent - 1.5) < 0.15

    def test_power_law_predict(self):
        f = fit_power_law([10, 100], [10, 100])
        assert np.allclose(f.predict([1000]), [1000])

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_constant_fit_recovers_constant(self):
        law = growth_laws()["n log n"]
        ns = [32, 64, 128, 256]
        ys = [2.5 * law(n) for n in ns]
        f = fit_constant(ns, ys, law)
        assert abs(f.constant - 2.5) < 1e-9
        assert abs(f.trend) < 1e-9
        assert f.is_flat

    def test_constant_fit_detects_wrong_law(self):
        # quadratic data against linear law: trend ~ 1
        law = growth_laws()["n"]
        ns = [32, 64, 128, 256]
        ys = [n**2 for n in ns]
        f = fit_constant(ns, ys, law)
        assert f.trend > 0.8
        assert not f.is_flat


class TestSweep:
    def test_sweep_points_and_rows(self):
        res = sweep_dispersion("complete", [16, 32], reps=2, seed=4)
        assert len(res.points) == 4
        assert res.sizes() == [16, 32]
        rows = res.rows()
        assert rows[0]["family"] == "complete"
        assert {r["process"] for r in rows} == {"sequential", "parallel"}

    def test_sweep_means_and_fit(self):
        res = sweep_dispersion("complete", [32, 64, 128], reps=3, seed=5)
        ns, ys = res.means("parallel")
        assert ns.tolist() == [32, 64, 128]
        fit = res.power_law("parallel")
        assert 0.5 < fit.exponent < 1.6  # Theta(n)

    def test_sweep_unknown_process_query(self):
        res = sweep_dispersion("complete", [16], reps=1, seed=6)
        with pytest.raises(KeyError):
            res.means("ctu")

    def test_sweep_snaps_sizes(self):
        res = sweep_dispersion("hypercube", [50], reps=1, seed=7)
        assert res.sizes() == [64]

    def test_sweep_dedupes_snapped_sizes(self):
        # 50, 60 and 64 all snap to the 64-vertex hypercube; measuring the
        # point three times with identical streams would silently
        # triple-weight it in power_law / constant_fit
        res = sweep_dispersion("hypercube", [50, 60, 64], reps=1, seed=7)
        assert res.sizes() == [64]
        assert len(res.points) == 2  # one per process, not one per request

    def test_sweep_seeds_from_snapped_size(self):
        # regression: graphs used to be seeded from the *requested* size,
        # so two requests realising the same size built different random
        # graphs yet shared one estimate stream; both seeds now derive
        # from the snapped size, making the sweep label-independent
        a = sweep_dispersion("expander", [7], reps=2, seed=11)
        b = sweep_dispersion("expander", [8], reps=2, seed=11)
        assert len(a.points) == len(b.points)
        for pa, pb in zip(a.points, b.points):
            assert pa.n == pb.n == 8
            assert np.array_equal(pa.estimate.samples, pb.estimate.samples)

    def test_sweep_fixed_origin(self):
        res = sweep_dispersion("cycle", [12], reps=1, seed=8, origin=3)
        assert res.points[0].estimate.origin == 3


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.0], [33, 4.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_value(self):
        assert format_value(1.0) == "1"
        assert format_value(123456.0) == "1.235e+05"
        assert format_value("x") == "x"
        assert format_value(float("nan")) == "nan"


class TestIO:
    def test_roundtrip(self, tmp_path):
        est = estimate_dispersion(complete_graph(8), reps=2, seed=10)
        p = tmp_path / "out" / "est.json"
        save_json(p, est)
        data = load_json(p)
        assert data["n"] == 8
        assert len(data["samples"]) == 2

    def test_to_jsonable_numpy(self):
        out = to_jsonable({"a": np.int64(3), "b": np.array([1.5]), "c": (1, 2)})
        json.dumps(out)
        assert out == {"a": 3, "b": [1.5], "c": [1, 2]}

    def test_to_jsonable_numpy_bool(self):
        out = to_jsonable({"yes": np.bool_(True), "no": np.bool_(False)})
        assert out == {"yes": True, "no": False}
        assert isinstance(out["yes"], bool) and isinstance(out["no"], bool)

    def test_to_jsonable_nonfinite_floats_become_null(self):
        out = to_jsonable(
            {
                "nan": float("nan"),
                "inf": np.float64("inf"),
                "arr": np.array([1.5, np.nan, -np.inf]),
            }
        )
        assert out == {"nan": None, "inf": None, "arr": [1.5, None, None]}
        json.dumps(out, allow_nan=False)  # strict standard JSON

    def test_nonfinite_roundtrip(self, tmp_path):
        p = tmp_path / "x.json"
        save_json(p, {"sem": np.float64("nan"), "mean": 2.0})
        assert load_json(p) == {"sem": None, "mean": 2.0}
        # the raw file must not contain the non-standard NaN token
        assert "NaN" not in p.read_text()

    def test_to_jsonable_rejects_exotic(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
