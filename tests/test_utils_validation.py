"""Tests for repro.utils.validation and repro.utils.timing."""

import numpy as np
import pytest

from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)


class TestCheckFraction:
    def test_open_interval(self):
        check_fraction("p", 0.5)
        with pytest.raises(ValueError):
            check_fraction("p", 0.0)
        with pytest.raises(ValueError):
            check_fraction("p", 1.0)

    def test_inclusive(self):
        check_fraction("p", 0.0, inclusive=True)
        check_fraction("p", 1.0, inclusive=True)
        with pytest.raises(ValueError):
            check_fraction("p", 1.0001, inclusive=True)


class TestCheckIndex:
    def test_valid(self):
        assert check_index("v", 3, 10) == 3
        assert check_index("v", np.int64(0), 5) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_index("v", 10, 10)
        with pytest.raises(ValueError):
            check_index("v", -1, 10)

    def test_non_integer(self):
        with pytest.raises(ValueError):
            check_index("v", 1.5, 10)


class TestCheckProbabilityVector:
    def test_valid(self):
        out = check_probability_vector("pi", [0.25, 0.75])
        assert out.dtype == np.float64

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector("pi", [-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector("pi", [0.3, 0.3])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_probability_vector("pi", [[0.5, 0.5]])


class TestStopwatch:
    def test_measures_nonnegative(self):
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.elapsed >= 0.0

    def test_running_state(self):
        sw = Stopwatch()
        assert not sw.running()
        with sw:
            assert sw.running()
        assert not sw.running()
