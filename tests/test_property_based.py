"""Hypothesis property-based tests on the core data structures.

Strategies generate random small graphs, random walk blocks (by simulating
the actual processes with a random seed) and random Cut & Paste chains; the
properties are the paper's structural invariants.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    is_valid_parallel_block,
    is_valid_sequential_block,
    parallel_idla,
    parallel_to_sequential,
    sequential_idla,
    sequential_to_parallel,
)
from repro.graphs import Graph
from repro.markov import (
    hitting_time_matrix,
    stationary_distribution,
    transition_matrix,
    walk_eigenvalues,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_n=10):
    """Random connected graph: a random spanning tree + random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = set()
    # random spanning tree via random attachment
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((u, v))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(n, edges, name=f"hyp-{n}")


@st.composite
def process_blocks(draw, sequential: bool):
    g = draw(connected_graphs())
    seed = draw(st.integers(min_value=0, max_value=2**31))
    origin = draw(st.integers(min_value=0, max_value=g.n - 1))
    driver = sequential_idla if sequential else parallel_idla
    res = driver(g, origin, seed=seed, record=True)
    return g, origin, res.block()


# ----------------------------------------------------------------------
# graph invariants
# ----------------------------------------------------------------------


class TestGraphProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.degrees.sum()) == 2 * g.num_edges

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_stationary_sums_to_one_and_reversible(self, g):
        pi = stationary_distribution(g)
        P = transition_matrix(g)
        assert np.isclose(pi.sum(), 1.0)
        # detailed balance
        F = pi[:, None] * P
        assert np.allclose(F, F.T, atol=1e-12)

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_eigenvalues_in_unit_interval(self, g):
        ev = walk_eigenvalues(g)
        assert np.all(ev <= 1.0 + 1e-9) and np.all(ev >= -1.0 - 1e-9)
        assert np.isclose(ev[-1], 1.0)

    @given(connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_hitting_times_satisfy_one_step_recurrence(self, g):
        H = hitting_time_matrix(g)
        P = transition_matrix(g)
        n = g.n
        # h_v = 1 + sum_u P[w,u] h_u for w != v
        for v in range(n):
            h = H[:, v]
            rec = 1.0 + P @ h
            mask = np.arange(n) != v
            assert np.allclose(h[mask], rec[mask], atol=1e-6)


# ----------------------------------------------------------------------
# block / cut & paste invariants
# ----------------------------------------------------------------------


class TestBlockProperties:
    @given(process_blocks(sequential=True))
    @settings(max_examples=30, deadline=None)
    def test_sequential_runs_yield_valid_blocks(self, data):
        g, origin, block = data
        assert is_valid_sequential_block(block, g, origin)

    @given(process_blocks(sequential=False))
    @settings(max_examples=30, deadline=None)
    def test_parallel_runs_yield_valid_blocks(self, data):
        g, origin, block = data
        assert is_valid_parallel_block(block, g, origin)

    @given(process_blocks(sequential=True))
    @settings(max_examples=30, deadline=None)
    def test_stp_invariants(self, data):
        g, origin, block = data
        out = sequential_to_parallel(block)
        assert is_valid_parallel_block(out, g, origin)
        assert out.total_length == block.total_length
        assert out.visit_multiset() == block.visit_multiset()
        assert out.max_row_length >= block.max_row_length  # Lemma 4.6
        # round trip is the identity (bijection, Lemma 4.4 / Remark 4.5)
        assert parallel_to_sequential(out) == block

    @given(process_blocks(sequential=False))
    @settings(max_examples=30, deadline=None)
    def test_pts_invariants(self, data):
        g, origin, block = data
        out = parallel_to_sequential(block)
        assert is_valid_sequential_block(out, g, origin)
        assert out.total_length == block.total_length
        assert sequential_to_parallel(out) == block

    @given(
        process_blocks(sequential=True),
        st.lists(st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)), max_size=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_cut_paste_chains_preserve_invariants(self, data, raw_ops):
        _, _, block = data
        visits = block.visit_multiset()
        arcs = block.arc_multiset()
        total = block.total_length
        endpoints = sorted(block.endpoints())
        for a, b in raw_ops:
            i = a % block.n
            t = b % (block.row_length(i) + 1)
            block.cut_paste(i, t)
            assert block.total_length == total
            assert block.visit_multiset() == visits
            assert block.arc_multiset() == arcs
            assert sorted(block.endpoints()) == endpoints
            for v in endpoints:
                assert block.rows[block.endpoint_row(v)][-1] == v


# ----------------------------------------------------------------------
# recorded-trajectory invariants (chunked TrajectoryStore, all processes)
# ----------------------------------------------------------------------

#: (label, batched driver kwargs) covering every recording code path:
#: lock-step appends, lazy holds, the scalar tail finisher (default
#: threshold engages immediately at these repetition counts) and the
#: pure lock-step path (tail_threshold=0 where the knob exists).
RECORDED_PROCESSES = [
    ("sequential", {}),
    ("sequential", {"lazy": True}),
    ("sequential", {"tail_threshold": 0}),
    ("parallel", {}),
    ("parallel", {"lazy": True, "tail_threshold": 0}),
    ("uniform", {}),
    ("uniform", {"faithful_r": True}),
    ("ctu", {}),
    ("c-sequential", {}),
]


class TestTrajectoryProperties:
    @given(
        connected_graphs(max_n=8),
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(RECORDED_PROCESSES),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_recorded_trajectories_are_valid_walks(self, g, seed, case, reps):
        """Every recorded trajectory starts at its origin, moves along CSR
        edges (staying put only on lazy hold ticks), and — for settled
        particles — ends at the settlement site after ``steps`` entries."""
        from repro.experiments.runner import BATCHED_DRIVERS
        from repro.utils.rng import spawn_seed_sequences

        process, kwargs = case
        lazy = bool(kwargs.get("lazy"))
        batch = BATCHED_DRIVERS[process](
            g, 0, seeds=spawn_seed_sequences(seed, reps), record=True, **kwargs
        )
        for res in batch:
            assert res.trajectories is not None
            assert len(res.trajectories) == res.m
            for p, traj in enumerate(res.trajectories):
                assert traj[0] == 0  # classic single origin
                for a, b in zip(traj, traj[1:]):
                    if a == b:
                        assert lazy, f"non-lazy walk held at {a}"
                    else:
                        assert g.has_edge(a, b), f"non-edge ({a}, {b})"
                assert len(traj) - 1 == res.steps[p]
                if res.settled_at[p] >= 0:
                    assert traj[-1] == res.settled_at[p]


class TestProcessProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_every_process_disperses_completely(self, g, seed):
        for driver in (sequential_idla, parallel_idla):
            res = driver(g, 0, seed=seed)
            assert res.is_complete_dispersion()
            assert res.dispersion_time == res.steps.max()

    @given(connected_graphs(max_n=8), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_block_reconstructs_settlement(self, g, seed):
        res = sequential_idla(g, 0, seed=seed, record=True)
        b = res.block()
        assert b.endpoints() == res.settled_at.tolist()
        assert b.row_lengths() == res.steps.tolist()
        assert b.max_row_length == res.dispersion_time
