"""Shared fixtures: small canonical graphs reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def p8():
    return path_graph(8)


@pytest.fixture
def c8():
    return cycle_graph(8)


@pytest.fixture
def k8():
    return complete_graph(8)


@pytest.fixture
def s8():
    return star_graph(8)


@pytest.fixture
def q3():
    return hypercube_graph(3)


@pytest.fixture
def btree3():
    return complete_binary_tree(3)  # 15 vertices


@pytest.fixture
def g44():
    return grid_graph(4, 4)


@pytest.fixture
def lolli12():
    return lollipop_graph(12)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


SMALL_GRAPH_FACTORIES = [
    lambda: path_graph(6),
    lambda: cycle_graph(7),
    lambda: complete_graph(6),
    lambda: star_graph(7),
    lambda: hypercube_graph(3),
    lambda: complete_binary_tree(2),
    lambda: grid_graph(3, 3),
    lambda: lollipop_graph(8),
]


@pytest.fixture(params=range(len(SMALL_GRAPH_FACTORIES)))
def small_graph(request):
    """Parametrised fixture covering one representative of each family."""
    return SMALL_GRAPH_FACTORIES[request.param]()
