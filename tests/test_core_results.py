"""Tests for the DispersionResult container itself."""

import numpy as np
import pytest

from repro.core import (
    DispersionResult,
    batched_sequential_idla,
    sequential_idla,
)
from repro.experiments.io import load_json, save_json, to_jsonable
from repro.graphs import cycle_graph


def make_result(**overrides):
    base = dict(
        process="sequential",
        graph_name="test",
        n=3,
        origin=0,
        dispersion_time=2,
        total_steps=3,
        steps=np.array([0, 1, 2]),
        settled_at=np.array([0, 1, 2]),
        settle_order=np.array([0, 1, 2]),
    )
    base.update(overrides)
    return DispersionResult(**base)


class TestValidation:
    def test_shape_mismatch_steps(self):
        with pytest.raises(ValueError, match="steps"):
            make_result(steps=np.array([0, 1]))

    def test_shape_mismatch_settled(self):
        with pytest.raises(ValueError, match="settled_at"):
            make_result(settled_at=np.array([0]))

    def test_m_defaults_to_n(self):
        assert make_result().m == 3

    def test_m_with_num_particles(self):
        r = make_result(
            num_particles=2,
            steps=np.array([0, 1]),
            settled_at=np.array([0, 1]),
            settle_order=np.array([0, 1]),
        )
        assert r.m == 2


class TestCompleteness:
    def test_complete(self):
        assert make_result().is_complete_dispersion()

    def test_duplicate_settlement_detected(self):
        r = make_result(settled_at=np.array([0, 1, 1]))
        assert not r.is_complete_dispersion()

    def test_unsettled_particle_detected(self):
        r = make_result(settled_at=np.array([0, 1, -1]))
        assert not r.is_complete_dispersion()

    def test_surplus_mode(self):
        # m = 4 > n = 3: three settled at distinct vertices, one wanderer
        r = make_result(
            num_particles=4,
            steps=np.array([0, 1, 2, 2]),
            settled_at=np.array([0, 1, 2, -1]),
            settle_order=np.array([0, 1, 2]),
        )
        assert r.is_complete_dispersion()


class TestAccessors:
    def test_block_requires_recording(self):
        res = sequential_idla(cycle_graph(6), 0, seed=1)
        with pytest.raises(ValueError, match="record=True"):
            res.block()

    def test_block_requires_recording_on_batched_results(self):
        """The batched drivers' record=False error path matches serial."""
        (res,) = batched_sequential_idla(cycle_graph(6), 0, reps=1, seed=1)
        assert res.trajectories is None
        with pytest.raises(ValueError, match="trajectories were not recorded"):
            res.block()

    def test_block_round_trips_recorded_trajectories(self):
        g = cycle_graph(8)
        for res in (
            sequential_idla(g, 0, seed=3, record=True),
            *batched_sequential_idla(g, 0, reps=1, seed=3, record=True),
        ):
            b = res.block()
            assert b.rows == res.trajectories
            assert b.endpoints() == res.settled_at.tolist()
            assert b.row_lengths() == res.steps.tolist()
            assert b.max_row_length == res.dispersion_time

    def test_summary_contains_key_fields(self):
        res = sequential_idla(cycle_graph(6), 0, seed=2)
        s = res.summary()
        assert "cycle-6" in s and "dispersion" in s and "total_steps" in s

    def test_frozen(self):
        res = make_result()
        with pytest.raises(Exception):
            res.n = 5


class TestJsonRoundTrip:
    def test_trajectory_bearing_result_round_trips(self, tmp_path):
        """A recorded result survives to_jsonable -> save_json -> load_json
        with its trajectories (nested Python int lists) intact."""
        res = sequential_idla(cycle_graph(8), 0, seed=7, record=True)
        payload = to_jsonable(res)
        assert payload["trajectories"] == res.trajectories
        assert payload["steps"] == res.steps.tolist()
        path = tmp_path / "res.json"
        save_json(path, res)
        loaded = load_json(path)
        assert loaded["trajectories"] == res.trajectories
        assert loaded["settled_at"] == res.settled_at.tolist()
        assert loaded["dispersion_time"] == res.dispersion_time

    def test_unrecorded_result_serialises_null_trajectories(self, tmp_path):
        res = sequential_idla(cycle_graph(8), 0, seed=7)
        path = tmp_path / "res.json"
        save_json(path, res)
        assert load_json(path)["trajectories"] is None
