"""Tests for the §6.2 variants: particle count ≠ n, random/explicit origins,
and aggregate shape statistics."""

import numpy as np
import pytest

from repro.core import (
    aggregate_after,
    euclidean_shape_stats,
    grid_coordinates,
    parallel_idla,
    resolve_origins,
    sequential_idla,
)
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.utils.rng import as_generator, stable_seed


class TestResolveOrigins:
    def test_scalar(self):
        g = cycle_graph(6)
        out = resolve_origins(g, 2, 4, as_generator(0))
        assert out.tolist() == [2, 2, 2, 2]

    def test_uniform(self):
        g = cycle_graph(6)
        out = resolve_origins(g, "uniform", 500, as_generator(1))
        assert out.min() >= 0 and out.max() < 6
        assert np.unique(out).size == 6  # all vertices drawn

    def test_array(self):
        g = cycle_graph(6)
        out = resolve_origins(g, [0, 3, 5], 3, as_generator(0))
        assert out.tolist() == [0, 3, 5]

    def test_bad_string(self):
        with pytest.raises(ValueError):
            resolve_origins(cycle_graph(6), "random", 3, as_generator(0))

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            resolve_origins(cycle_graph(6), [0, 1], 3, as_generator(0))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            resolve_origins(cycle_graph(6), [0, 9, 1], 3, as_generator(0))


class TestFewerParticles:
    @pytest.mark.parametrize(
        "driver", [sequential_idla, parallel_idla], ids=lambda d: d.__name__
    )
    def test_m_less_than_n(self, driver):
        g = cycle_graph(12)
        res = driver(g, 0, seed=1, num_particles=5)
        assert res.m == 5
        assert res.steps.shape == (5,)
        assert res.is_complete_dispersion()
        assert np.unique(res.settled_at).size == 5

    def test_m_one_settles_origin(self):
        res = sequential_idla(cycle_graph(8), 3, seed=2, num_particles=1)
        assert res.dispersion_time == 0
        assert res.settled_at.tolist() == [3]

    def test_sequential_rejects_m_greater_n(self):
        with pytest.raises(ValueError):
            sequential_idla(cycle_graph(8), 0, num_particles=9)

    def test_fewer_particles_faster(self):
        g = grid_graph(6, 6)
        full = np.mean(
            [
                parallel_idla(g, 0, seed=stable_seed("fp", r)).dispersion_time
                for r in range(25)
            ]
        )
        half = np.mean(
            [
                parallel_idla(
                    g, 0, seed=stable_seed("fp2", r), num_particles=18
                ).dispersion_time
                for r in range(25)
            ]
        )
        assert half < full


class TestMoreParticles:
    def test_m_greater_than_n_fills_graph(self):
        g = cycle_graph(12)
        res = parallel_idla(g, 0, seed=3, num_particles=30)
        assert res.m == 30
        assert res.is_complete_dispersion()
        settled = res.settled_at[res.settled_at >= 0]
        assert np.unique(settled).size == 12
        assert (res.settled_at < 0).sum() == 18

    def test_more_particles_faster(self):
        g = cycle_graph(24)
        eq = np.mean(
            [
                parallel_idla(g, 0, seed=stable_seed("mp", r)).dispersion_time
                for r in range(25)
            ]
        )
        quad = np.mean(
            [
                parallel_idla(
                    g, 0, seed=stable_seed("mp2", r), num_particles=96
                ).dispersion_time
                for r in range(25)
            ]
        )
        assert quad < eq

    def test_surplus_particles_counted_in_total(self):
        res = parallel_idla(cycle_graph(6), 0, seed=4, num_particles=12)
        # the six wanderers each performed dispersion_time steps at least
        assert res.total_steps >= res.dispersion_time * 6


class TestRandomOrigins:
    @pytest.mark.parametrize(
        "driver", [sequential_idla, parallel_idla], ids=lambda d: d.__name__
    )
    def test_uniform_origins_disperse(self, driver):
        g = grid_graph(5, 5)
        res = driver(g, "uniform", seed=5)
        assert res.is_complete_dispersion()

    def test_explicit_origins_vacant_start_settles(self):
        g = path_graph(6)
        res = sequential_idla(g, [2, 2, 5, 0, 1, 3], seed=6)
        assert res.steps[0] == 0  # vacant start
        assert res.steps[2] == 0  # 5 still vacant when particle 2 starts
        assert res.is_complete_dispersion()

    def test_parallel_round0_settlement(self):
        g = path_graph(4)
        # two particles share a start: only one settles at round 0
        res = parallel_idla(g, [1, 1, 2, 3], seed=7, record=True)
        assert res.is_complete_dispersion()
        assert (res.steps == 0).sum() == 3  # starts 1, 2, 3 settle instantly

    def test_uniform_origins_faster_than_single_on_path(self):
        # spreading the sources drastically reduces congestion on the path
        g = path_graph(32)
        single = np.mean(
            [
                sequential_idla(g, 0, seed=stable_seed("ro", r)).dispersion_time
                for r in range(20)
            ]
        )
        spread = np.mean(
            [
                sequential_idla(
                    g, "uniform", seed=stable_seed("ro2", r)
                ).dispersion_time
                for r in range(20)
            ]
        )
        assert spread < single


class TestAggregateShape:
    def test_aggregate_after_prefix(self):
        g = cycle_graph(10)
        res = sequential_idla(g, 0, seed=8)
        a3 = aggregate_after(res, 3)
        a10 = aggregate_after(res, 10)
        assert a3.size == 3 and a10.size == 10
        assert set(a3.tolist()) <= set(a10.tolist())
        assert 0 in a3.tolist()

    def test_aggregate_after_validation(self):
        res = sequential_idla(cycle_graph(6), 0, seed=9)
        with pytest.raises(ValueError):
            aggregate_after(res, 7)

    def test_grid_coordinates_layout(self):
        c = grid_coordinates(2, 3)
        assert c.shape == (6, 2)
        assert c[0].tolist() == [0, 0]
        assert c[5].tolist() == [1, 2]

    def test_shape_stats_full_disc(self):
        # a perfect L2 ball of radius 2 in a 7x7 grid
        coords = grid_coordinates(7, 7)
        center = 3 * 7 + 3
        d = np.linalg.norm(coords - coords[center], axis=1)
        agg = np.flatnonzero(d <= 2.0)
        st = euclidean_shape_stats(agg, center, coords)
        assert st.in_radius > 2.0  # nearest unoccupied strictly outside
        assert st.out_radius == 2.0
        assert st.sphericity > 1.0 - 1e-9

    def test_shape_stats_idla_near_disc(self):
        side = 31
        g = grid_graph(side, side)
        center = (side // 2) * side + side // 2
        res = sequential_idla(g, center, seed=10, num_particles=200)
        st = euclidean_shape_stats(
            aggregate_after(res, 200), center, grid_coordinates(side, side)
        )
        assert st.size == 200
        assert 0.55 < st.sphericity <= 1.0
        assert 0.7 < st.out_radius / st.target_radius < 1.5

    def test_shape_stats_validation(self):
        coords = grid_coordinates(3, 3)
        with pytest.raises(ValueError):
            euclidean_shape_stats([], 0, coords)
        with pytest.raises(ValueError):
            euclidean_shape_stats([1, 2], 0, coords)  # origin not inside
        with pytest.raises(ValueError):
            euclidean_shape_stats([99], 0, coords)
