"""Tests for Uniform/CTU variants and the PtU_R inverse property."""

import numpy as np
import pytest

from repro.core import (
    ctu_idla,
    parallel_idla,
    parallel_to_uniform,
    sequential_to_parallel,
    uniform_idla,
)
from repro.graphs import complete_graph, cycle_graph, grid_graph
from repro.utils.rng import stable_seed


class TestUniformVariants:
    def test_num_particles(self):
        res = uniform_idla(cycle_graph(12), 0, seed=1, num_particles=5)
        assert res.m == 5
        assert res.is_complete_dispersion()

    def test_rejects_m_over_n(self):
        with pytest.raises(ValueError):
            uniform_idla(cycle_graph(8), 0, num_particles=9)

    def test_uniform_origins(self):
        res = uniform_idla(grid_graph(4, 4), "uniform", seed=2)
        assert res.is_complete_dispersion()

    def test_explicit_origins_round0(self):
        res = uniform_idla(cycle_graph(6), [0, 3, 0, 3, 1, 2], seed=3)
        # particles 0, 1 settle at their vacant starts; 4 and 5 too
        assert res.steps[0] == 0 and res.steps[1] == 0
        assert res.steps[4] == 0 and res.steps[5] == 0
        assert res.is_complete_dispersion()


class TestFaithfulScheduleChunkInvariance:
    """The ``faithful_r`` schedule must not depend on the fetch grid.

    Every draw of the serial driver is a plain uniform double, and NumPy
    double streams are chunk-invariant — so the stream's block size must
    never leak into the realised schedule (or any other field).  This
    regression guards the batched trajectory/schedule store's replay
    contract against fetch-grid drift: if a future change made a result
    depend on *where* the serial driver refills, the batched drivers —
    which refill on a completely different grid — could no longer be
    bit-identical.
    """

    @pytest.mark.parametrize("block", [1, 3, 7, 64, 16384])
    def test_schedule_invariant_to_stream_block(self, monkeypatch, block):
        import repro.core.uniform as uniform_mod

        g = cycle_graph(20)
        ref = uniform_idla(g, seed=42, faithful_r=True, record=True)
        monkeypatch.setattr(uniform_mod, "_BLOCK", block)
        alt = uniform_idla(g, seed=42, faithful_r=True, record=True)
        assert np.array_equal(ref.schedule, alt.schedule)
        assert ref.trajectories == alt.trajectories
        assert ref.dispersion_time == alt.dispersion_time
        assert ref.ticks == alt.ticks
        assert np.array_equal(ref.steps, alt.steps)
        assert np.array_equal(ref.settled_at, alt.settled_at)


class TestCtuVariants:
    def test_num_particles(self):
        res = ctu_idla(complete_graph(16), 0, seed=4, num_particles=6)
        assert res.m == 6
        assert res.is_complete_dispersion()

    def test_rejects_m_over_n(self):
        with pytest.raises(ValueError):
            ctu_idla(cycle_graph(8), 0, num_particles=10)

    def test_uniform_origins(self):
        res = ctu_idla(grid_graph(4, 4), "uniform", seed=5)
        assert res.is_complete_dispersion()

    def test_single_particle_zero_clock(self):
        res = ctu_idla(cycle_graph(8), 2, seed=6, num_particles=1)
        assert res.dispersion_time == 0.0
        assert res.settled_at.tolist() == [2]


class TestPtUInverse:
    """Theorem 4.7's bijection: StP inverts PtU_R exactly."""

    @pytest.mark.parametrize(
        "g", [cycle_graph(8), complete_graph(6), grid_graph(3, 3)], ids=lambda g: g.name
    )
    def test_stp_inverts_ptu(self, g):
        for r in range(8):
            res = parallel_idla(
                g, 0, seed=stable_seed("ptu-inv", g.name, r), record=True
            )
            b = res.block()
            rng = np.random.default_rng(stable_seed("ptu-sched", g.name, r))
            sched = rng.integers(1, g.n, size=200 * b.total_length + 100)
            u = parallel_to_uniform(b, sched.tolist())
            assert sequential_to_parallel(u.block) == b

    def test_uniform_run_roundtrips_through_parallel(self):
        # direct uniform run -> StP -> PtU with the SAME realised schedule
        # recovers the original block
        g = cycle_graph(8)
        for r in range(6):
            res = uniform_idla(
                g, 0, seed=stable_seed("ptu-rt", r), record=True, faithful_r=True
            )
            b = res.block()
            par = sequential_to_parallel(b)
            # pad the realised schedule: reading may need more ticks than
            # the original run used (cells move between rows)
            rng = np.random.default_rng(stable_seed("ptu-pad", r))
            pad = rng.integers(1, g.n, size=100 * b.total_length + 100)
            sched = np.concatenate([res.schedule, pad])
            back = parallel_to_uniform(par, sched.tolist())
            # PtU_R is StP's exact inverse for the realised schedule
            assert back.block == b
