"""Family-equivalence property harness for the implicit graph families.

The lemma that makes driver bit-identity automatic: every driver consumes
uniforms as ``off = floor(u * deg)`` and steps to adjacency *slot*
``off``, so if an implicit family is slot-for-slot equal to its
materialising CSR generator (``implicit.neighbor_slots(v, k) ==
indices[indptr[v] + k]`` for every valid ``(v, k)``) and degree-equal,
then every walk — serial, batched, finisher, fanned-out — is bit-identical
between the two builds with zero RNG changes.  This module pins that
lemma for every family over a size sweep including the odd/edge sizes
(n = 1, 2, side-1 torus axes, non-power-of-two hypercube rejections,
unbalanced tree sizes), plus protocol parity (degrees, num_edges, names,
regularity), descriptor round-trips, and the memory-budget regression
that proves no code path silently materialises ``O(n + m)`` adjacency.
"""

from __future__ import annotations

import pickle
import tracemalloc
from types import SimpleNamespace

import numpy as np
import pytest

from repro.experiments import estimate_dispersion
from repro.graphs import (
    Graph,
    ImplicitGraph,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    implicit_graph,
    neighbor_kernel,
    path_graph,
    torus_graph,
)
from repro.graphs.implicit import ImplicitGraphSpec, from_descriptor
from repro.walks import WalkEngine

#: (family id, builder) x size sweep — every structured Table-1 family.
FAMILIES = [
    ("cycle", cycle_graph, [3, 4, 5, 8, 24, 31]),
    ("path", path_graph, [1, 2, 3, 7, 24]),
    ("complete", complete_graph, [1, 2, 3, 7, 24]),
]
GRID_SIDES = [(1,), (2,), (3,), (2, 3), (4, 4), (1, 5), (3, 1, 4), (2, 2), (5, 5, 5)]
TORUS_SIDES = [(1,), (3,), (4, 4), (1, 5), (3, 1, 4), (3, 4, 5), (5, 5, 5)]
HYPERCUBE_DIMS = [1, 2, 3, 5, 7]
BTREE_HEIGHTS = [0, 1, 2, 3, 6]


def all_valid_slots(csr: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Every valid (vertex, slot) pair of ``csr``, in CSR storage order."""
    deg = csr.degrees
    pos = np.repeat(np.arange(csr.n, dtype=np.int64), deg)
    off = np.arange(int(deg.sum()), dtype=np.int64) - np.repeat(csr.indptr[:-1], deg)
    return pos, off


def assert_family_equivalent(imp: ImplicitGraph, csr: Graph) -> None:
    """The full lemma: protocol parity + slot-for-slot kernel equality."""
    # protocol parity
    assert isinstance(imp, ImplicitGraph)
    assert imp.n == csr.n
    assert imp.num_vertices == csr.num_vertices
    assert imp.name == csr.name  # stable_seed(name, ...) must agree too
    assert imp.num_edges == csr.num_edges
    assert np.array_equal(np.asarray(imp.degrees), csr.degrees)
    assert imp.degrees.dtype == np.int64
    assert imp.is_regular() == csr.is_regular()
    assert imp.max_degree == csr.max_degree
    assert imp.min_degree == csr.min_degree
    if csr.n:
        assert imp.is_almost_regular() == csr.is_almost_regular()
        assert imp.degree(csr.n - 1) == csr.degree(csr.n - 1)
    # slot-for-slot kernel equality over every valid (v, k)
    pos, off = all_valid_slots(csr)
    assert np.array_equal(imp.neighbor_slots(pos, off), csr.indices)
    # scalar access paths used by the serial drivers and tail finishers
    lazy = imp.adjacency_lists()
    assert len(lazy) == csr.n
    ref = csr.adjacency_lists()
    assert [lazy[v] for v in range(csr.n)] == ref
    for v in (0, csr.n // 2, csr.n - 1):
        assert imp.neighbors(v).tolist() == csr.neighbors(v).tolist()
        for u in set(csr.neighbors(v).tolist()) | {v}:
            assert imp.has_edge(v, u) == csr.has_edge(v, u)
    assert sorted(imp.edges()) == sorted(csr.edges())


@pytest.mark.parametrize(
    "builder,size",
    [(b, s) for _, b, sizes in FAMILIES for s in sizes],
    ids=[f"{fam}-{s}" for fam, _, sizes in FAMILIES for s in sizes],
)
def test_basic_families_slot_equal(builder, size):
    assert_family_equivalent(builder(size, implicit=True), builder(size))


@pytest.mark.parametrize("sides", GRID_SIDES, ids=lambda s: "x".join(map(str, s)))
def test_grid_slot_equal(sides):
    assert_family_equivalent(grid_graph(*sides, implicit=True), grid_graph(*sides))


@pytest.mark.parametrize("sides", TORUS_SIDES, ids=lambda s: "x".join(map(str, s)))
def test_torus_slot_equal(sides):
    assert_family_equivalent(torus_graph(*sides, implicit=True), torus_graph(*sides))


@pytest.mark.parametrize("dim", HYPERCUBE_DIMS)
def test_hypercube_slot_equal(dim):
    assert_family_equivalent(
        hypercube_graph(dim, implicit=True), hypercube_graph(dim)
    )


@pytest.mark.parametrize("height", BTREE_HEIGHTS)
def test_btree_slot_equal(height):
    assert_family_equivalent(
        complete_binary_tree(height, implicit=True),
        complete_binary_tree(height),
    )


def test_materialize_is_the_csr_twin():
    for imp, csr in [
        (cycle_graph(9, implicit=True), cycle_graph(9)),
        (grid_graph(3, 4, implicit=True), grid_graph(3, 4)),
        (complete_binary_tree(2, implicit=True), complete_binary_tree(2)),
    ]:
        assert imp.materialize() == csr


def test_kernel_out_buffer_and_aliasing():
    imp = cycle_graph(12, implicit=True)
    pos = np.array([0, 5, 11], dtype=np.int64)
    off = np.array([0, 1, 0], dtype=np.int64)
    expected = np.array([1, 4, 0], dtype=np.int64)
    out = np.empty(3, dtype=np.int64)
    assert imp.neighbor_slots(pos, off, out) is out
    assert np.array_equal(out, expected)
    # out may alias positions (the drivers step in place)
    assert np.array_equal(imp.neighbor_slots(pos, off, pos), expected)


def test_csr_kernel_matches_direct_gather_on_irregular_graph():
    g = path_graph(9)  # irregular: endpoints degree 1
    pos, off = all_valid_slots(g)
    assert np.array_equal(g.neighbor_slots(pos, off), g.indices)
    out = np.empty(pos.size, dtype=np.int64)
    assert g.neighbor_slots(pos, off, out) is out
    assert np.array_equal(out, g.indices)


def test_regular_degrees_are_broadcast_views():
    g = cycle_graph(10**6, implicit=True)
    assert g.degrees.strides == (0,)  # no O(n) array behind it
    assert not g.degrees.flags.writeable
    assert g.is_regular() and g.min_degree == g.max_degree == 2
    assert g.num_edges == 10**6


# ----------------------------------------------------------------------
# registry, rejections and descriptors
# ----------------------------------------------------------------------
def test_implicit_graph_registry_builds_all_families():
    assert implicit_graph("cycle", n=6).name == "cycle-6"
    assert implicit_graph("path", n=4).name == "path-4"
    assert implicit_graph("complete", n=5).name == "complete-5"
    assert implicit_graph("grid", sides=(2, 3)).name == "grid-2x3"
    assert implicit_graph("torus", sides=(3, 4)).name == "torus-3x4"
    assert implicit_graph("hypercube", dim=4).name == "hypercube-4"
    assert implicit_graph("hypercube", n=16).name == "hypercube-4"
    assert implicit_graph("btree", height=2).name == "btree-h2"
    assert implicit_graph("btree", n=7).name == "btree-h2"


def test_registry_rejections():
    with pytest.raises(ValueError, match="unknown implicit family"):
        implicit_graph("moebius", n=8)
    # non-power-of-two hypercube sizes
    for n in (0, 1, 3, 12, 100):
        with pytest.raises(ValueError, match="power of two"):
            implicit_graph("hypercube", n=n)
    with pytest.raises(ValueError, match="exactly one"):
        implicit_graph("hypercube", dim=3, n=8)
    with pytest.raises(ValueError, match="exactly one"):
        implicit_graph("hypercube")
    # unbalanced complete-binary-tree sizes (must be 2^(h+1) - 1)
    for n in (0, 2, 4, 6, 8, 100):
        with pytest.raises(ValueError, match="unbalanced"):
            implicit_graph("btree", n=n)
    with pytest.raises(ValueError, match="exactly one"):
        implicit_graph("btree", height=1, n=3)


def test_constructor_validation_matches_csr_generators():
    for n in (0, 1, 2):
        with pytest.raises(ValueError):
            cycle_graph(n, implicit=True)
        with pytest.raises(ValueError):
            cycle_graph(n)
    for bad in (0, -1):
        with pytest.raises(ValueError):
            path_graph(bad, implicit=True)
        with pytest.raises(ValueError):
            complete_graph(bad, implicit=True)
        with pytest.raises(ValueError):
            hypercube_graph(bad, implicit=True)
    with pytest.raises(ValueError):
        complete_binary_tree(-1, implicit=True)
    # side-2 torus duplicates the wrap edge — same rejection as CSR
    with pytest.raises(ValueError, match="side 2"):
        torus_graph(4, 2, implicit=True)
    with pytest.raises(ValueError, match="side 2"):
        torus_graph(4, 2)
    with pytest.raises(ValueError):
        grid_graph(0, 3, implicit=True)
    with pytest.raises(ValueError):
        grid_graph(implicit=True)


def test_descriptor_round_trip_and_pickle():
    for g in (
        cycle_graph(17, implicit=True),
        path_graph(2, implicit=True),
        torus_graph(3, 1, 4, implicit=True),
        hypercube_graph(5, implicit=True),
        complete_binary_tree(3, implicit=True),
        grid_graph(4, 4, implicit=True),
    ):
        spec = g.descriptor()
        spec = pickle.loads(pickle.dumps(spec))  # crosses process boundary
        rebuilt = from_descriptor(spec)
        assert type(rebuilt) is type(g)
        assert rebuilt.name == g.name and rebuilt.n == g.n
        pos, off = all_valid_slots(g.materialize())
        assert np.array_equal(
            rebuilt.neighbor_slots(pos, off), g.neighbor_slots(pos, off)
        )


def test_descriptor_mismatch_and_bad_counts_rejected():
    good = cycle_graph(9, implicit=True).descriptor()
    with pytest.raises(ValueError, match="n must be >= 0"):
        from_descriptor(
            ImplicitGraphSpec(good.family, good.params, -1, good.name)
        )
    with pytest.raises(ValueError, match="descriptor mismatch"):
        from_descriptor(
            ImplicitGraphSpec(good.family, good.params, good.n, "cycle-10")
        )


# ----------------------------------------------------------------------
# the seam: WalkEngine and the kernel-less error
# ----------------------------------------------------------------------
def test_walk_engine_bit_identical_across_builds():
    starts = np.zeros(7, dtype=np.int64)
    for imp, csr in [
        (cycle_graph(16, implicit=True), cycle_graph(16)),
        (complete_binary_tree(3, implicit=True), complete_binary_tree(3)),
    ]:
        a = WalkEngine(imp, seed=42).trajectories(starts, 64)
        b = WalkEngine(csr, seed=42).trajectories(starts, 64)
        assert np.array_equal(a, b)


def test_kernel_less_graph_raises_clearly():
    fake = SimpleNamespace(n=5, degrees=np.full(5, 2), name="fake-5")
    with pytest.raises(TypeError, match="neighbor_slots"):
        neighbor_kernel(fake)
    with pytest.raises(TypeError, match="neighbor_slots"):
        WalkEngine(fake, seed=0)
    # non-callable attribute is just as kernel-less
    fake.neighbor_slots = 3
    with pytest.raises(TypeError, match="neighbor_slots"):
        neighbor_kernel(fake)


# ----------------------------------------------------------------------
# memory-budget regression: nothing materialises O(n + m)
# ----------------------------------------------------------------------
def test_million_vertex_estimate_stays_under_csr_floor():
    """An implicit cycle at n = 10^6 must run a (partial-dispersion)
    estimate in a fraction of the memory the CSR arrays *alone* would
    take — pinning that no code path silently materialises adjacency."""
    n = 10**6
    # int64 indptr (n + 1) + indices (2m = 2n): 24 MB before any driver state
    csr_floor = 8 * (n + 1) + 8 * (2 * n)
    tracemalloc.start()
    try:
        g = cycle_graph(n, implicit=True)
        est = estimate_dispersion(
            g,
            "sequential",
            reps=2,
            seed=123,
            num_particles=4,
            batched=True,
            tail_threshold=0,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert est.samples.shape == (2,)
    assert np.all(est.samples >= 1)
    # comfortably under half the CSR floor (driver state is O(reps * n / 8)
    # occupancy bits + O(1) stream buffers)
    assert peak < csr_floor / 2, f"peak {peak} vs CSR floor {csr_floor}"
