"""Integration tests: bound calculators vs measured dispersion times.

Each theorem's inequality is checked on instances small enough for a solid
Monte-Carlo estimate.  Upper bounds must dominate the measured mean; lower
bounds must be dominated by it.
"""

import numpy as np
import pytest

from repro.bounds import (
    proposition_3_9_bound,
    set_hitting_profile,
    theorem_3_1_threshold,
    theorem_3_3_bound,
    theorem_3_5_bound,
    theorem_3_6_bound,
    theorem_3_7_tree_bound,
)
from repro.core import parallel_idla, sequential_idla
from repro.graphs import (
    clique_with_hair,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.utils.rng import stable_seed

GRAPHS = [
    path_graph(16),
    cycle_graph(16),
    complete_graph(16),
    star_graph(16),
    hypercube_graph(4),
    complete_binary_tree(3),
    grid_graph(4, 4),
]


def mean_disp(driver, g, reps=60, tag="", **kw):
    return float(
        np.mean(
            [
                driver(
                    g, 0, seed=stable_seed("thm", tag, g.name, r), **kw
                ).dispersion_time
                for r in range(reps)
            ]
        )
    )


class TestTheorem31TailAndMean:
    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_mean_below_threshold(self, g):
        thr = theorem_3_1_threshold(g)
        for driver, tag in ((sequential_idla, "s"), (parallel_idla, "p")):
            assert mean_disp(driver, g, reps=40, tag="31" + tag) <= thr

    def test_tail_probability(self):
        # Pr[τ_par > 6 t_hit log2 n] <= 1/n², so in 100 runs we expect ~0
        g = cycle_graph(16)
        thr = theorem_3_1_threshold(g)
        exceed = sum(
            parallel_idla(g, 0, seed=stable_seed("31t", r)).dispersion_time > thr
            for r in range(100)
        )
        assert exceed == 0


class TestTheorems33And35:
    @pytest.mark.parametrize(
        "g",
        [cycle_graph(12), complete_graph(12), hypercube_graph(3)],
        ids=lambda g: g.name,
    )
    def test_33_dominates_lazy_parallel(self, g):
        prof = set_hitting_profile(g, method="exact")
        bound = theorem_3_3_bound(g, 1, profile=prof)
        measured = mean_disp(parallel_idla, g, reps=40, tag="33", lazy=True)
        assert measured <= bound

    @pytest.mark.parametrize(
        "g",
        [cycle_graph(12), complete_graph(12), hypercube_graph(3)],
        ids=lambda g: g.name,
    )
    def test_35_dominates_lazy_sequential(self, g):
        prof = set_hitting_profile(g, method="exact")
        bound = theorem_3_5_bound(g, profile=prof)
        measured = mean_disp(sequential_idla, g, reps=40, tag="35", lazy=True)
        assert measured <= bound


class TestLowerBoundsVsMeasured:
    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_thm_3_6(self, g):
        # t_seq(G) >= 2|E|/Δ for the worst-case origin; our fixed origin 0
        # can only give a larger-or-comparable value on these symmetric
        # instances.  Allow 20% MC slack.
        measured = mean_disp(sequential_idla, g, reps=60, tag="36")
        assert measured >= 0.8 * theorem_3_6_bound(g)

    @pytest.mark.parametrize(
        "g",
        [path_graph(16), star_graph(16), complete_binary_tree(3)],
        ids=lambda g: g.name,
    )
    def test_thm_3_7_trees(self, g):
        measured = mean_disp(sequential_idla, g, reps=80, tag="37")
        assert measured >= 0.85 * theorem_3_7_tree_bound(g)

    def test_prop_3_9_mixing_lower_bound(self):
        # t_seq (lazy) = Ω(t_mix): on the cycle t_mix ~ n² and t_seq ~ n² log n
        g = cycle_graph(16)
        measured = mean_disp(sequential_idla, g, reps=40, tag="39", lazy=True)
        assert measured >= proposition_3_9_bound(g)


class TestStarVsClique:
    def test_star_double_clique(self):
        # remark after Thm 3.7: t_seq(S_n) = 2 t_seq(K_n) (up to 1 + o(1));
        # both sides are heavy-tailed maxima, so use many reps and a wide
        # window around 2.
        n = 64
        star = mean_disp(sequential_idla, star_graph(n), reps=200, tag="svc-s")
        cliq = mean_disp(sequential_idla, complete_graph(n), reps=200, tag="svc-c")
        assert 1.5 < star / cliq < 2.8


class TestProposition21NonConcentration:
    def test_hairy_clique_bimodal(self):
        n = 48
        g = clique_with_hair(n)
        d = np.array(
            [
                sequential_idla(g, 0, seed=stable_seed("p21", r)).dispersion_time
                for r in range(150)
            ]
        )
        # constant fraction of runs finish in O(n) (hair found instantly)
        frac_fast = (d < 8 * n).mean()
        # and a constant fraction take Ω(n²)-ish (hair found late)
        frac_slow = (d > n * n / 8).mean()
        assert frac_fast > 0.3
        assert frac_slow > 0.2
