"""Documentation smoke tests: the docs' code blocks must actually run.

Extracts every fenced ``python`` block from README.md and executes it,
and drives the CLI entry points the README advertises — so the front
door cannot drift from the library.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    blocks = _FENCE.findall(README.read_text())
    assert blocks, "README.md lost its python quickstart block"
    return blocks


@pytest.mark.parametrize("block_index", range(len(_python_blocks())))
def test_readme_python_blocks_execute(block_index):
    code = _python_blocks()[block_index]
    exec(compile(code, f"README.md[block {block_index}]", "exec"), {})


def test_cli_help_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "families" in proc.stdout and "table1" in proc.stdout


def test_cli_families_runs():
    from repro.cli import main
    import io

    out = io.StringIO()
    assert main(["families"], out=out) == 0
    assert "cycle" in out.getvalue()


def test_quickstart_example_importable():
    """The example scripts the README points at exist and compile."""
    for name in ("quickstart.py", "table1_mini.py"):
        path = ROOT / "examples" / name
        compile(path.read_text(), str(path), "exec")
