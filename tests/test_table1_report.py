"""Tests for the Table 1 report assembler and its CLI command."""

import io

import pytest

from repro.cli import main
from repro.experiments import build_table1_report, render_table1_report


class TestReport:
    def test_small_subset(self):
        entries = build_table1_report({"complete": 32, "cycle": 16}, reps=3, seed=1)
        assert len(entries) == 2
        by = {e.family: e for e in entries}
        assert by["complete"].n == 32
        assert by["complete"].seq_order == "n"
        assert by["cycle"].t_hit == pytest.approx(64.0)  # (n/2)^2
        assert by["complete"].seq_normalised > 0

    def test_normalisation_definition(self):
        from repro.theory import TABLE1

        entries = build_table1_report({"complete": 32}, reps=3, seed=2)
        e = entries[0]
        assert e.seq_normalised == pytest.approx(
            e.seq_mean / TABLE1["complete"].seq(32)
        )

    def test_deterministic(self):
        a = build_table1_report({"cycle": 16}, reps=2, seed=3)
        b = build_table1_report({"cycle": 16}, reps=2, seed=3)
        assert a[0].seq_mean == b[0].seq_mean

    def test_render(self):
        entries = build_table1_report({"complete": 16}, reps=2, seed=4)
        text = render_table1_report(entries)
        assert "complete" in text and "paper order" in text


class TestCliTable1:
    def test_cli_runs(self):
        out = io.StringIO()
        # full default family set is slow; patch sizes via a tiny subset by
        # calling the underlying function — CLI smoke test with low reps
        code = main(["table1", "--reps", "1"], out=out)
        assert code == 0
        text = out.getvalue()
        for fam in ("path", "cycle", "complete", "hypercube"):
            assert fam in text
