"""Integration tests of the coupling theorems (§4) via simulation.

These are statistical tests with fixed seeds and generous tolerances: each
verifies the *direction* or *factor* a theorem asserts, on graphs small
enough to run hundreds of repetitions.
"""

import numpy as np
import pytest

from repro.core import ctu_idla, parallel_idla, sequential_idla, uniform_idla
from repro.graphs import complete_graph, cycle_graph, grid_graph, path_graph
from repro.utils.rng import stable_seed


def samples(driver, g, reps, tag, attr="dispersion_time", **kw):
    out = np.empty(reps)
    for r in range(reps):
        res = driver(g, 0, seed=stable_seed(tag, g.name, r), **kw)
        out[r] = getattr(res, attr)
    return out


GRAPHS = [cycle_graph(24), complete_graph(32), grid_graph(5, 5)]


class TestTheorem41Domination:
    """τ_seq ⪯ τ_par and total steps equidistributed."""

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_mean_domination(self, g):
        seq = samples(sequential_idla, g, 120, "t41s")
        par = samples(parallel_idla, g, 120, "t41p")
        # allow a small slack for Monte Carlo noise
        assert seq.mean() <= par.mean() * 1.10

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_quantile_domination(self, g):
        # stochastic domination => every quantile ordered (up to MC noise)
        seq = np.sort(samples(sequential_idla, g, 160, "t41qs"))
        par = np.sort(samples(parallel_idla, g, 160, "t41qp"))
        for q in (0.25, 0.5, 0.75):
            qs = np.quantile(seq, q)
            qp = np.quantile(par, q)
            assert qs <= qp * 1.25

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_total_steps_equidistributed(self, g):
        seq = samples(sequential_idla, g, 150, "t41ts", attr="total_steps")
        par = samples(parallel_idla, g, 150, "t41tp", attr="total_steps")
        # means within 3 pooled standard errors
        se = np.sqrt(seq.var() / seq.size + par.var() / par.size)
        assert abs(seq.mean() - par.mean()) < 3.5 * se + 1e-9

    def test_total_steps_ks_like(self):
        # crude two-sample CDF distance on the clique (where laws are known
        # to match exactly): max CDF gap should be small
        g = complete_graph(24)
        a = np.sort(samples(sequential_idla, g, 300, "ks-a", attr="total_steps"))
        b = np.sort(samples(parallel_idla, g, 300, "ks-b", attr="total_steps"))
        grid = np.unique(np.concatenate([a, b]))
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        assert np.abs(cdf_a - cdf_b).max() < 0.15  # KS_alpha ~ 1.36/sqrt(150)=0.11


class TestTheorem42LogFactor:
    def test_par_over_seq_bounded(self):
        # E[τ_par] <= O(log n · E[τ_seq]): check the ratio is far below
        # log(n) on the standard families (it is O(1) for all of them)
        for g in GRAPHS:
            seq = samples(sequential_idla, g, 80, "t42s").mean()
            par = samples(parallel_idla, g, 80, "t42p").mean()
            assert par / seq < np.log(g.n) * 2.0


class TestTheorem43Laziness:
    @pytest.mark.parametrize(
        "g", [cycle_graph(24), complete_graph(48)], ids=lambda g: g.name
    )
    def test_lazy_sequential_factor_2(self, g):
        fast = samples(sequential_idla, g, 80, "t43f").mean()
        slow = samples(sequential_idla, g, 80, "t43l", lazy=True).mean()
        assert 1.6 < slow / fast < 2.5

    def test_lazy_parallel_factor_2(self):
        g = complete_graph(48)
        fast = samples(parallel_idla, g, 80, "t43pf").mean()
        slow = samples(parallel_idla, g, 80, "t43pl", lazy=True).mean()
        assert 1.6 < slow / fast < 2.5


class TestTheorem48CTU:
    def test_ctu_matches_parallel_on_clique(self):
        # τ_ctu = (1+o(1)) τ_par; at n=128 expect agreement within ~20%
        g = complete_graph(128)
        par = samples(parallel_idla, g, 60, "t48p").mean()
        ctu = samples(ctu_idla, g, 60, "t48c").mean()
        assert 0.75 < ctu / par < 1.3

    def test_ctu_jump_counts_match_parallel_longest_row(self):
        # the coupling equates longest-row lengths up to lower order terms
        g = complete_graph(96)
        par = samples(parallel_idla, g, 60, "t48jr").mean()
        ctu_jumps = np.empty(60)
        for r in range(60):
            res = ctu_idla(g, 0, seed=stable_seed("t48j", r))
            ctu_jumps[r] = res.steps.max()
        assert 0.7 < ctu_jumps.mean() / par < 1.35


class TestTheorem47Uniform:
    @pytest.mark.parametrize(
        "g", [cycle_graph(20), complete_graph(32)], ids=lambda g: g.name
    )
    def test_uniform_longest_walk_dominated_by_parallel(self, g):
        uni = np.empty(120)
        for r in range(120):
            res = uniform_idla(g, 0, seed=stable_seed("t47u", g.name, r))
            uni[r] = res.steps.max()
        par = samples(parallel_idla, g, 120, "t47p")
        assert uni.mean() <= par.mean() * 1.10


class TestTheorem52CliqueConstants:
    def test_sequential_constant(self):
        n = 512
        seq = samples(sequential_idla, complete_graph(n), 40, "t52s")
        # kappa_cc with finite-n slack (convergence is slow from below)
        assert 1.0 < seq.mean() / n < 1.45

    def test_parallel_constant(self):
        n = 512
        par = samples(parallel_idla, complete_graph(n), 40, "t52p")
        assert 1.35 < par.mean() / n < 1.95

    def test_parallel_strictly_slower(self):
        n = 256
        seq = samples(sequential_idla, complete_graph(n), 60, "t52rs").mean()
        par = samples(parallel_idla, complete_graph(n), 60, "t52rp").mean()
        assert par / seq > 1.12  # -> pi^2/6 / kappa_cc ~ 1.31 in the limit


class TestTheorem54Path:
    def test_seq_and_par_agree_on_path(self):
        # asymptotically equal; at n = 24 the parallel process still runs a
        # modest (~15%) finite-size overhead, so accept a generous window
        # that would still catch an Ω(log n) separation.
        g = path_graph(24)
        seq = samples(sequential_idla, g, 150, "t54s").mean()
        par = samples(parallel_idla, g, 150, "t54p").mean()
        assert 0.75 < par / seq < 1.6

    def test_path_matches_max_hitting_characterisation(self):
        # t_seq(P_n) = (1 ± o(1)) E[M]; the o(1) approaches from below
        # (dispersion walks settle before reaching the far endpoint), so at
        # n = 24 the ratio sits near 0.55 — assert the two-sided window the
        # asymptotics permit at this size.
        from repro.walks import empirical_max_hitting_of_path

        n = 24
        g = path_graph(n)
        disp = samples(sequential_idla, g, 100, "t54m").mean()
        M = empirical_max_hitting_of_path(n, reps=100, seed=0).mean()
        assert 0.3 < disp / M <= 1.1
