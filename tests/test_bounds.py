"""Tests for the theorem-bound calculators."""

import math

import numpy as np
import pytest

from repro.bounds import (
    KAPPA_CC,
    PI2_OVER_6,
    expected_max_geometric_sum,
    general_envelope,
    instance_envelope,
    kappa_cc,
    lemma_c2_bound,
    lemma_c2_polynomial_bound,
    lemma_c5_hit_probability,
    multi_walk_set_hitting_time,
    proposition_3_9_bound,
    proposition_3_9_spectral_bound,
    regular_envelope,
    set_hitting_profile,
    theorem_3_1_expectation_bound,
    theorem_3_1_threshold,
    theorem_3_3_bound,
    theorem_3_5_bound,
    theorem_3_6_bound,
    theorem_3_7_tree_bound,
    theorem_c4_bound,
    trivial_lower_bound,
)
from repro.graphs import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.markov import max_hitting_time, mixing_time, stationary_set_hitting_time


class TestConstants:
    def test_kappa_cc_value(self):
        assert abs(KAPPA_CC - 1.2552) < 1e-3

    def test_kappa_cc_converges(self):
        assert abs(kappa_cc(100_000) - kappa_cc(200_000)) < 1e-9

    def test_kappa_cc_matches_exact_finite_n(self):
        # E[max Geom(i/n)]/n -> kappa_cc; at n = 3000 within ~2e-3
        n = 3000
        assert abs(expected_max_geometric_sum(n) / n - KAPPA_CC) < 3e-3

    def test_pi2_over_6(self):
        assert abs(PI2_OVER_6 - math.pi**2 / 6) < 1e-15

    def test_parallel_slower_constant(self):
        # the ~30% gap quoted in §1.1
        assert 1.25 < PI2_OVER_6 / KAPPA_CC < 1.35

    def test_expected_max_geometric_validation(self):
        with pytest.raises(ValueError):
            expected_max_geometric_sum(0)


class TestTheorem31:
    def test_threshold_formula(self):
        g = cycle_graph(16)
        expected = 6.0 * max_hitting_time(g) * math.log2(16)
        assert np.isclose(theorem_3_1_threshold(g), expected)

    def test_expectation_bound_slightly_larger(self, small_graph):
        thr = theorem_3_1_threshold(small_graph)
        exp_b = theorem_3_1_expectation_bound(small_graph)
        assert thr < exp_b < 1.1 * thr


class TestSetProfileAndUpperBounds:
    def test_profile_sizes(self):
        prof = set_hitting_profile(cycle_graph(16), method="exact")
        assert prof.sizes == (1, 1, 2, 4)  # ceil(2^{j-2}) for j=1..4
        assert len(prof.values) == 4
        assert prof.t_mix == mixing_time(cycle_graph(16), lazy=True)

    def test_profile_values_decreasing(self):
        # larger sets are easier to hit
        prof = set_hitting_profile(cycle_graph(16), method="exact")
        assert all(a >= b - 1e-9 for a, b in zip(prof.values, prof.values[1:]))

    def test_profile_exact_matches_exhaustive(self):
        from repro.markov import max_set_hitting_time

        g = cycle_graph(8)
        prof = set_hitting_profile(g, method="exact")
        for s, v in zip(prof.sizes, prof.values):
            exact, _ = max_set_hitting_time(g, s, lazy=True, method="exhaustive")
            assert np.isclose(v, exact)

    def test_thm_3_3_k_monotone(self):
        g = cycle_graph(16)
        prof = set_hitting_profile(g, method="exact")
        b1 = theorem_3_3_bound(g, 1, profile=prof)
        b2 = theorem_3_3_bound(g, 2, profile=prof)
        assert b2 < b1

    def test_thm_3_3_k_validation(self):
        g = cycle_graph(16)
        prof = set_hitting_profile(g, method="exact")
        with pytest.raises(ValueError):
            theorem_3_3_bound(g, 99, profile=prof)

    def test_thm_3_5_le_thm_3_3_scale(self):
        # paper remark: the 3.5 bound is at most the 3.3 bound up to consts
        g = hypercube_graph(4)
        prof = set_hitting_profile(g, method="heuristic", seed=0)
        assert theorem_3_5_bound(g, profile=prof) <= 2 * theorem_3_3_bound(
            g, 1, profile=prof
        )

    def test_lemma_c2_profile_upper_bounds_exact(self):
        # the analytic surrogate dominates the exact max for regular graphs
        g = cycle_graph(12)
        exact_prof = set_hitting_profile(g, method="exact")
        c2_prof = set_hitting_profile(g, method="lemma-c2")
        for a, b in zip(c2_prof.values, exact_prof.values):
            assert a >= b - 1e-9


class TestLowerBounds:
    def test_thm_3_6_complete(self):
        # 2m/Delta = n for K_n
        assert theorem_3_6_bound(complete_graph(10)) == 10.0

    def test_thm_3_6_star(self):
        # 2(n-1)/(n-1) = 2 — stars genuinely have tiny |E|/Delta
        assert theorem_3_6_bound(star_graph(10)) == 2.0

    def test_thm_3_7_values(self):
        assert theorem_3_7_tree_bound(path_graph(10)) == 17.0
        assert theorem_3_7_tree_bound(complete_binary_tree(3)) == 27.0

    def test_thm_3_7_rejects_non_tree(self):
        with pytest.raises(ValueError):
            theorem_3_7_tree_bound(cycle_graph(5))

    def test_prop_3_9_is_mixing_time(self):
        g = cycle_graph(16)
        assert proposition_3_9_bound(g) == mixing_time(g, lazy=True)

    def test_prop_3_9_spectral_chain(self):
        out = proposition_3_9_spectral_bound(cycle_graph(16))
        assert out["relaxation_term"] > 0
        assert out["inv_conductance_lower"] <= out["inv_conductance_upper"]

    def test_trivial_lower(self):
        assert trivial_lower_bound(path_graph(9)) == 8.0


class TestAppendixC:
    def test_lemma_c2_dominates_exact_max(self):
        g = cycle_graph(10)
        for size in (1, 2, 3):
            exact = stationary_set_hitting_time(g, list(range(size)), lazy=True)
            assert lemma_c2_bound(g, size) >= exact

    def test_lemma_c2_rejects_irregular(self):
        with pytest.raises(ValueError, match="almost-regular"):
            lemma_c2_bound(star_graph(30), 2)

    def test_lemma_c2_polynomial_form(self):
        g = hypercube_graph(4)
        v = lemma_c2_polynomial_bound(g, 4, C=2.0, eps=1.0)
        assert v > 0
        with pytest.raises(ValueError):
            lemma_c2_polynomial_bound(g, 4, C=-1.0, eps=1.0)

    def test_lemma_c5_probability_range(self):
        g = cycle_graph(12)
        p = lemma_c5_hit_probability(g, 2, tau=10)
        assert 0.0 <= p <= 10 * 2 / 12  # capped by tau|S|/n

    def test_lemma_c5_rejects_irregular(self):
        with pytest.raises(ValueError):
            lemma_c5_hit_probability(path_graph(8), 2, 5)

    def test_multi_walk_speedup(self):
        g = cycle_graph(16)
        t1 = multi_walk_set_hitting_time(g, [0], 1, reps=60, seed=0)
        t4 = multi_walk_set_hitting_time(g, [0], 4, reps=60, seed=1)
        assert t4 < t1

    def test_theorem_c4_positive(self):
        g = complete_graph(8)
        b = theorem_c4_bound(g, k=3, reps=8, seed=2)
        assert b > 0


class TestWorstCase:
    def test_envelopes_monotone(self):
        assert general_envelope(64) > general_envelope(32)
        assert regular_envelope(64) > regular_envelope(32)

    def test_general_dominates_regular_eventually(self):
        assert general_envelope(128) > regular_envelope(128)

    def test_instance_envelope_matches_thm31(self):
        g = cycle_graph(12)
        assert np.isclose(instance_envelope(g), theorem_3_1_threshold(g))

    def test_tiny_n(self):
        assert general_envelope(1) == 0.0
