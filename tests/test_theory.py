"""Tests for the theory layer (Table 1 rows, growth laws, family registry)."""

import math

import pytest

from repro.bounds import KAPPA_CC, PI2_OVER_6
from repro.theory import FAMILIES, TABLE1, get_family, growth_laws, table1_row


class TestGrowthLaws:
    def test_labels_unique(self):
        laws = growth_laws()
        assert len(laws) >= 8

    def test_values(self):
        laws = growth_laws()
        assert laws["n"](10) == 10
        assert laws["n²"](10) == 100
        assert math.isclose(laws["n log n"](10), 10 * math.log(10))
        assert math.isclose(laws["n² log n"](10), 100 * math.log(10))

    def test_log_floor_at_small_n(self):
        # laws clamp log at n=2 to stay positive for fitting
        assert growth_laws()["log n"](1) > 0


class TestTable1:
    def test_all_paper_rows_present(self):
        for fam in [
            "path",
            "cycle",
            "grid2d",
            "torus3d",
            "hypercube",
            "binary_tree",
            "complete",
            "expander",
        ]:
            assert fam in TABLE1

    def test_clique_constants(self):
        row = table1_row("complete")
        assert row.seq_constant == KAPPA_CC
        assert row.par_constant == PI2_OVER_6

    def test_grid2d_gap_encoded(self):
        row = table1_row("grid2d")
        assert row.dispersion_upper is not None
        assert row.dispersion_upper.label == "n log² n"
        assert row.seq.label == "n log n"

    def test_unknown_row(self):
        with pytest.raises(KeyError, match="available"):
            table1_row("petersen")


class TestFamilies:
    def test_all_registered(self):
        assert {
            "path",
            "cycle",
            "complete",
            "hypercube",
            "binary_tree",
            "grid2d",
            "torus2d",
            "torus3d",
            "expander",
            "lollipop",
        } <= set(
            FAMILIES
        )

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_build_connected_and_snap(self, name):
        fam = get_family(name)
        g = fam.build(60, seed=0)
        assert g.is_connected()
        assert g.n == fam.snap(60)
        assert 0 <= fam.worst_origin(g) < g.n

    def test_hypercube_snaps_pow2(self):
        fam = get_family("hypercube")
        assert fam.build(100).n == 128
        assert fam.snap(100) == 128

    def test_binary_tree_snaps(self):
        fam = get_family("binary_tree")
        assert fam.build(100).n == 127

    def test_grid_snaps_square(self):
        fam = get_family("grid2d")
        assert fam.build(100).n == 100
        assert fam.build(90).n == 81

    def test_torus3d_snaps_cube(self):
        assert get_family("torus3d").build(100).n == 125

    def test_expander_even_and_regular(self):
        g = get_family("expander").build(33, seed=1)
        assert g.n % 2 == 0
        assert g.is_regular()

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="available"):
            get_family("nope")

    def test_expander_deterministic_with_seed(self):
        fam = get_family("expander")
        assert fam.build(32, seed=5) == fam.build(32, seed=5)
