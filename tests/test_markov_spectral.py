"""Tests for spectral quantities (eigenvalues, gaps, relaxation times)."""

import numpy as np

from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    random_regular_graph,
)
from repro.markov import (
    conductance_cheeger_bounds,
    relaxation_time,
    second_absolute_eigenvalue,
    second_eigenvalue,
    spectral_gap,
    transition_matrix,
    walk_eigenvalues,
)


class TestEigenvalues:
    def test_complete_graph_spectrum(self):
        # K_n walk eigenvalues: 1 and -1/(n-1) (multiplicity n-1)
        ev = walk_eigenvalues(complete_graph(5))
        assert np.allclose(ev[-1], 1.0)
        assert np.allclose(ev[:-1], -0.25)

    def test_cycle_spectrum(self):
        # C_n: cos(2 pi k / n)
        n = 8
        ev = np.sort(walk_eigenvalues(cycle_graph(n)))
        expected = np.sort([np.cos(2 * np.pi * k / n) for k in range(n)])
        assert np.allclose(ev, expected, atol=1e-10)

    def test_hypercube_spectrum(self):
        # Q_d: 1 - 2k/d with multiplicity C(d, k)
        d = 4
        ev = np.sort(walk_eigenvalues(hypercube_graph(d)))
        from math import comb

        expected = np.sort(
            np.concatenate([[1 - 2 * k / d] * comb(d, k) for k in range(d + 1)])
        )
        assert np.allclose(ev, expected, atol=1e-10)

    def test_matches_general_eigensolver(self, small_graph):
        ev = np.sort(walk_eigenvalues(small_graph))
        general = np.sort(np.linalg.eigvals(transition_matrix(small_graph)).real)
        assert np.allclose(ev, general, atol=1e-8)

    def test_lazy_eigenvalues_nonnegative(self, small_graph):
        ev = walk_eigenvalues(small_graph, lazy=True)
        assert np.all(ev >= -1e-12)
        assert np.allclose(ev, (1 + walk_eigenvalues(small_graph)) / 2)


class TestGaps:
    def test_second_eigenvalue_bipartite_absolute(self):
        # bipartite: lambda_min = -1, so absolute second eigenvalue is 1
        assert np.isclose(second_absolute_eigenvalue(cycle_graph(6)), 1.0)
        assert second_eigenvalue(cycle_graph(6)) < 1.0

    def test_lazy_gap_positive(self, small_graph):
        assert spectral_gap(small_graph, lazy=True) > 0

    def test_relaxation_time_complete(self):
        # lazy K_n: lambda2 = (1 - 1/(n-1))/2 + 1/2
        n = 6
        trel = relaxation_time(complete_graph(n), lazy=True)
        lam2 = 0.5 + 0.5 * (-1 / (n - 1))
        lam2 = max(abs(lam2), abs(0.5 + 0.5 * (-1 / (n - 1))))
        # lazy spectrum: (1 + ev)/2; second largest abs = (1 - 1/(n-1))/2... compute directly
        ev = walk_eigenvalues(complete_graph(n), lazy=True)
        expected = 1.0 / (1.0 - max(abs(ev[0]), abs(ev[-2])))
        assert np.isclose(trel, expected)

    def test_expander_gap_constant(self):
        g = random_regular_graph(64, 6, seed=3)
        assert spectral_gap(g, lazy=True) > 0.05

    def test_path_gap_shrinks(self):
        g1 = spectral_gap(path_graph(8), lazy=True)
        g2 = spectral_gap(path_graph(32), lazy=True)
        assert g2 < g1

    def test_cheeger_bracket_valid(self, small_graph):
        lo, hi = conductance_cheeger_bounds(small_graph)
        assert 0 <= lo <= hi

    def test_cheeger_complete_graph(self):
        # K_n conductance is ~1/2 for the lazy walk; bracket must contain
        # a constant independent of n
        lo, hi = conductance_cheeger_bounds(complete_graph(16))
        assert lo > 0.1 and hi < 2.0
