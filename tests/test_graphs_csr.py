"""Tests for the CSR Graph type."""

import numpy as np
import pytest

from repro.graphs import Graph, cycle_graph, path_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.num_edges == 2
        assert g.degrees.tolist() == [1, 2, 1]

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edges(2, [(0, 5)])

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loops"):
            Graph.from_edges(2, [(1, 1)])

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1, 2)])

    def test_from_edges_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            Graph.from_edges(0, [])

    def test_empty_graph_single_vertex(self):
        g = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert g.n == 1 and g.num_edges == 0

    def test_parallel_edges_allowed(self):
        g = Graph.from_edges(2, [(0, 1), (0, 1)])
        assert g.degree(0) == 2
        assert g.num_edges == 2

    def test_from_adjacency_lists(self):
        g = Graph.from_adjacency_lists([[1], [0, 2], [1]])
        assert g.degrees.tolist() == [1, 2, 1]

    def test_raw_constructor_validates_symmetry(self):
        # arc 0->1 without 1->0
        with pytest.raises(ValueError, match="symmetric"):
            Graph(np.array([0, 1, 1]), np.array([1], dtype=np.int64))

    def test_raw_constructor_validates_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 0]), np.array([], dtype=np.int64))

    def test_indices_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1, 2]), np.array([5, 0], dtype=np.int64))

    def test_arrays_frozen(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            g.indices[0] = 3


class TestAccessors:
    def test_neighbors_sorted_content(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 3]
        assert g.neighbors(1).tolist() == [0]

    def test_has_edge(self):
        g = path_graph(4)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_edges_iteration_roundtrip(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        g = Graph.from_edges(4, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_max_min_degree(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3
        assert g.min_degree == 1

    def test_equality_and_hash(self):
        a, b = path_graph(5), path_graph(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != cycle_graph(5)

    def test_adjacency_lists(self):
        g = path_graph(3)
        assert [sorted(a) for a in g.adjacency_lists()] == [[1], [0, 2], [1]]


class TestPredicates:
    def test_regularity(self):
        assert cycle_graph(5).is_regular()
        assert not path_graph(5).is_regular()

    def test_almost_regular(self):
        assert cycle_graph(6).is_almost_regular()
        assert path_graph(6).is_almost_regular()  # 2/1 <= 4

    def test_connected(self):
        assert path_graph(10).is_connected()
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not g.is_connected()

    def test_single_vertex_connected(self):
        g = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert g.is_connected()

    def test_bipartite(self):
        assert path_graph(5).is_bipartite()
        assert cycle_graph(6).is_bipartite()
        assert not cycle_graph(5).is_bipartite()


class TestSelfLoops:
    def test_with_self_loops_default_is_lazy_graph(self):
        g = cycle_graph(6)
        gl = g.with_self_loops()
        # each vertex now has deg + deg slots; half point to itself
        assert gl.degrees.tolist() == [4] * 6
        for v in range(6):
            nbrs = gl.neighbors(v).tolist()
            assert nbrs.count(v) == 2

    def test_with_self_loops_fixed_count(self):
        g = path_graph(3)
        gl = g.with_self_loops(1)
        assert gl.degrees.tolist() == [2, 3, 2]

    def test_with_self_loops_rejects_negative(self):
        with pytest.raises(ValueError):
            path_graph(3).with_self_loops(-1)

    def test_num_edges_ignores_loops(self):
        g = cycle_graph(5)
        assert g.with_self_loops().num_edges == g.num_edges
