"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, stable_seed


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")

    def test_numpy_integer_accepted(self):
        g = as_generator(np.int64(5))
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_independent(self):
        a, b = spawn_generators(3, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_deterministic_given_seed(self):
        xs = [g.random() for g in spawn_generators(11, 3)]
        ys = [g.random() for g in spawn_generators(11, 3)]
        assert xs == ys

    def test_spawn_from_generator(self):
        base = np.random.default_rng(5)
        kids = spawn_generators(base, 2)
        assert len(kids) == 2
        assert not np.array_equal(kids[0].random(4), kids[1].random(4))

    def test_spawn_from_seed_sequence(self):
        kids = spawn_generators(np.random.SeedSequence(9), 2)
        assert len(kids) == 2


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_sensitive_to_parts(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_range(self):
        s = stable_seed("x", 123, "y")
        assert 0 <= s < 2**63

    def test_no_concat_collision(self):
        # ("ab", "c") must differ from ("a", "bc") — separator prevents it.
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_usable_as_numpy_seed(self):
        g = np.random.default_rng(stable_seed("exp", 1))
        assert 0.0 <= g.random() < 1.0
