"""Unit and edge-case tests of the budgeted resident-state layer.

The differential harness (``tests/test_differential_drivers.py``) pins
every budget geometry bit-identical to the serial oracles; this module
covers the layer's own contracts:

* budget-spec parsing and normalisation;
* :func:`plan_state` boundary behaviours — a budget larger than the
  whole run is a *no-op plan* (the drivers take their unbudgeted
  allocation path unchanged), a budget smaller than one repetition's
  floor still runs (``cohort_reps`` never drops below 1);
* cohort boundaries straddling the scalar tail finisher;
* cohort-aligned fan-out shard planning;
* the zero-copy trajectory array view (:class:`TrajectoryArrays`,
  ``DispersionResult.trajectory_arrays()``, ``Block`` accepting both
  row shapes) and the chunked occupancy probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import batched_parallel_idla, batched_sequential_idla, stream_block
from repro.core.blocks import Block
from repro.core.budget import (
    NO_BUDGET_PLAN,
    StateBudget,
    as_state_budget,
    cohort_slices,
    parse_state_budget,
    plan_state,
    resident_bytes_per_rep,
)
from repro.core.parallel import parallel_idla
from repro.core.settlement import chunked_vacancies
from repro.core.trajectory import TrajectoryArrays
from repro.experiments.fanout import budget_aligned_shard, plan_shards
from repro.experiments.runner import estimate_dispersion
from repro.graphs import cycle_graph
from repro.utils.rng import spawn_seed_sequences

# ---------------------------------------------------------------------------
# parsing / normalisation


def test_parse_bytes_suffixes():
    assert parse_state_budget("4096") == StateBudget(bytes=4096)
    assert parse_state_budget("2k") == StateBudget(bytes=2048)
    assert parse_state_budget("256M") == StateBudget(bytes=256 * 1024**2)
    assert parse_state_budget("1G") == StateBudget(bytes=1024**3)
    assert parse_state_budget(" 16 K ") == StateBudget(bytes=16384)


def test_parse_particles():
    assert parse_state_budget("500000p") == StateBudget(particles=500000)
    assert parse_state_budget("8P") == StateBudget(particles=8)


@pytest.mark.parametrize("bad", ["", "nonsense", "12kp", "-4", "1.5G", "p"])
def test_parse_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_state_budget(bad)


def test_budget_validation():
    with pytest.raises(ValueError):
        StateBudget()
    with pytest.raises(ValueError):
        StateBudget(bytes=0)
    with pytest.raises(ValueError):
        StateBudget(particles=0)


def test_as_state_budget_normalises():
    b = StateBudget(particles=4)
    assert as_state_budget(None) is None
    assert as_state_budget(b) is b
    assert as_state_budget("64p") == StateBudget(particles=64)


def test_as_state_budget_accepts_integral_byte_counts():
    """Regression: a plain int byte count used to raise TypeError even
    though the identical value as a string parsed."""
    assert as_state_budget(268435456) == as_state_budget("268435456")
    assert as_state_budget(1024) == StateBudget(bytes=1024)
    assert as_state_budget(np.int64(1024)) == StateBudget(bytes=1024)
    with pytest.raises(TypeError):
        as_state_budget(True)  # a bool is not a byte count
    with pytest.raises(TypeError):
        as_state_budget(1024.0)  # floats stay rejected: bytes are counted


# ---------------------------------------------------------------------------
# plan_state boundaries


def test_no_budget_is_noop_plan():
    plan = plan_state(None, "parallel", 1000, 1000)
    assert plan is NO_BUDGET_PLAN
    assert plan.is_noop(10**9)


def test_huge_budget_resolves_to_noop():
    """A budget larger than the whole run forces nothing: no cohorts, no
    chunking, and — critically — no stream shrink, so the drivers take
    byte-for-byte the same allocation path as with no budget at all."""
    plan = plan_state(StateBudget(bytes=2**40), "parallel", 1000, 1000)
    assert plan.is_noop(4096)
    assert plan.step_chunk is None
    assert plan.stream_budget_doubles is None
    # the stream sizing the drivers derive is identical to the default
    assert stream_block(
        "parallel", 64, 1000, budget_doubles=plan.stream_budget_doubles
    ) == stream_block("parallel", 64, 1000)


def test_tiny_budget_never_drops_below_one_rep():
    n = m = 1000
    floor = resident_bytes_per_rep("parallel", n, m)
    plan = plan_state(StateBudget(bytes=floor // 100), "parallel", n, m)
    assert plan.cohort_reps == 1  # documented floor, not an error


def test_particle_cap_below_m_chunks_parallel_rounds():
    plan = plan_state(StateBudget(particles=100), "parallel", 1000, 1000)
    assert plan.cohort_reps == 1
    assert plan.step_chunk == 100
    # non-parallel processes cohort but never chunk
    seq = plan_state(StateBudget(particles=100), "sequential", 1000, 1000)
    assert seq.cohort_reps == 1 and seq.step_chunk is None


def test_byte_budget_shrinks_streams_only_downward():
    small = plan_state(StateBudget(bytes=2**16), "uniform", 1000, 1000)
    assert small.stream_budget_doubles == 2**16 // 32
    big = plan_state(StateBudget(bytes=2**34), "uniform", 1000, 1000)
    assert big.stream_budget_doubles is None


def test_cohort_slices_cover_contiguously():
    assert list(cohort_slices(7, 3)) == [(0, 3), (3, 6), (6, 7)]
    assert list(cohort_slices(3, 10)) == [(0, 3)]


def test_unknown_process_raises():
    with pytest.raises(ValueError, match="resident-state model"):
        resident_bytes_per_rep("quantum", 10, 10)


# ---------------------------------------------------------------------------
# driver edge cases


def test_budget_smaller_than_one_rep_still_runs():
    g = cycle_graph(24)
    seeds = spawn_seed_sequences(3, 4)
    plain = batched_parallel_idla(g, 0, seeds=spawn_seed_sequences(3, 4))
    tight = batched_parallel_idla(
        g, 0, seeds=seeds, state_budget=StateBudget(particles=1)
    )
    for s, b in zip(plain, tight):
        assert s.dispersion_time == b.dispersion_time
        assert np.array_equal(s.steps, b.steps)


def test_huge_budget_matches_unbudgeted_results():
    g = cycle_graph(24)
    plain = batched_sequential_idla(g, 0, seeds=spawn_seed_sequences(3, 4))
    roomy = batched_sequential_idla(
        g,
        0,
        seeds=spawn_seed_sequences(3, 4),
        state_budget=StateBudget(bytes=2**40),
    )
    for s, b in zip(plain, roomy):
        assert s.dispersion_time == b.dispersion_time
        assert np.array_equal(s.settled_at, b.settled_at)


def test_cohorts_straddle_scalar_tail_finisher():
    """Cohorts of 9 over 24 repetitions with the default tail threshold:
    every cohort crosses into the scalar finisher independently, and the
    mid-walk handoff still replays the serial oracle bit for bit."""
    g = cycle_graph(32)
    reps = 24
    serial = [
        parallel_idla(g, 0, seed=s, record=True)
        for s in spawn_seed_sequences(11, reps)
    ]
    batch = batched_parallel_idla(
        g,
        0,
        seeds=spawn_seed_sequences(11, reps),
        record=True,
        state_budget=StateBudget(particles=32 * 9),
    )
    for s, b in zip(serial, batch):
        assert s.dispersion_time == b.dispersion_time
        assert np.array_equal(s.steps, b.steps)
        assert s.trajectories == b.trajectories


def test_string_budget_accepted_by_drivers_and_runner():
    g = cycle_graph(24)
    a = batched_parallel_idla(g, 0, seeds=spawn_seed_sequences(5, 4))
    b = batched_parallel_idla(g, 0, seeds=spawn_seed_sequences(5, 4), state_budget="48p")
    assert [r.dispersion_time for r in a] == [r.dispersion_time for r in b]
    est = estimate_dispersion(g, "parallel", reps=4, seed=5, batched=True,
                              state_budget="48p")
    est2 = estimate_dispersion(g, "parallel", reps=4, seed=5, batched=False)
    assert np.array_equal(est.samples, est2.samples)


# ---------------------------------------------------------------------------
# fan-out shard alignment


def test_budget_aligned_shard_rounds_down_to_cohorts():
    assert budget_aligned_shard(64, 4, 6) == 12
    assert budget_aligned_shard(8, 4, 6) == 6  # never below one cohort
    assert budget_aligned_shard(64, 4, 6, max_shard=7) == 6
    assert budget_aligned_shard(64, 4, 16) == 16


def test_budget_aligned_shard_validates():
    for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0)]:
        with pytest.raises(ValueError):
            budget_aligned_shard(*bad)


def test_aligned_shards_partition_reps():
    cap = budget_aligned_shard(24, 4, 9)
    shards = plan_shards(24, 4, max_shard=cap)
    assert shards[0][1] - shards[0][0] <= cap
    assert shards[-1][1] == 24 and shards[0][0] == 0


# ---------------------------------------------------------------------------
# trajectory arrays / Block interop


def _sample_lists():
    return [[3], [3, 2, 1], [1, 0], [0, 5, 6, 4]]


def test_trajectory_arrays_roundtrip_and_views():
    rows = _sample_lists()
    arrs = TrajectoryArrays.from_lists(rows)
    assert len(arrs) == 4
    assert arrs.to_lists() == rows
    assert [list(r) for r in arrs] == rows
    # row() is a zero-copy view into the flat buffer
    assert arrs.row(1).base is arrs.flat or arrs.row(1).base is arrs.flat.base
    assert arrs[3].tolist() == rows[3]


def test_trajectory_arrays_equality_both_directions():
    rows = _sample_lists()
    arrs = TrajectoryArrays.from_lists(rows)
    assert arrs == TrajectoryArrays.from_lists(rows)
    assert arrs == rows and rows == arrs  # reflected eq via NotImplemented
    assert arrs != rows[:-1]
    assert TrajectoryArrays.__hash__ is None  # mutable views: unhashable


def test_block_accepts_array_and_list_rows():
    rows = _sample_lists()
    from_arrays = Block(TrajectoryArrays.from_lists(rows))
    from_lists = Block(rows)
    assert from_arrays.rows == from_lists.rows
    assert all(isinstance(v, int) for r in from_arrays.rows for v in r)


def test_result_trajectory_arrays_accessor():
    g = cycle_graph(16)
    res = parallel_idla(g, 0, seed=1, record=True)
    arrs = res.trajectory_arrays()
    assert arrs == res.trajectories
    res_a = parallel_idla(g, 0, seed=1, record="arrays")
    assert isinstance(res_a.trajectories, TrajectoryArrays)
    assert res_a.trajectory_arrays() is res_a.trajectories
    assert res_a.trajectories == res.trajectories
    bare = parallel_idla(g, 0, seed=1)
    with pytest.raises(ValueError, match="record"):
        bare.trajectory_arrays()


# ---------------------------------------------------------------------------
# chunked occupancy probe


@pytest.mark.parametrize("chunk", [None, 1, 3, 7, 64])
def test_chunked_vacancies_matches_global_probe(chunk):
    rng = np.random.default_rng(9)
    occ = (rng.random(20 * 40) < 0.5).astype(np.uint8)
    rep_off = rng.integers(0, 20, size=37) * 40
    pos = rng.integers(0, 40, size=37)
    expect = np.flatnonzero(occ[rep_off + pos] == 0)
    got = chunked_vacancies(occ, rep_off, pos, chunk)
    assert np.array_equal(got, expect)
    assert got.dtype == expect.dtype or got.size == 0
