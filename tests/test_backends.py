"""Unit tests for the pluggable array-backend seam.

Covers the registry (round-trip, shadowing, unregistration), the
selection precedence (explicit kwarg > graph-bound > ``REPRO_BACKEND``
env > numpy default), capability flags, protocol conformance of both
in-repo backends, strict-mode dtype policing, pickling by name (the
fan-out transport), end-to-end byte-identity of ``numpy_strict``, and
the anytime-valid KS contract for future non-bitstream backends.

The driver-level backend axis (every process, every registered
exact-bitstream backend, vs the serial oracle) lives in
``tests/test_differential_drivers.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.backends as bk_mod
from repro.backends import (
    AnytimeKS,
    ArrayBackend,
    NumpyBackend,
    NumpyStrictBackend,
    available_backends,
    backend_of,
    get_backend,
    ks_statistic,
    register_backend,
)
from repro.backends import ENV_VAR, unregister_backend
from repro.graphs import cycle_graph


# ----------------------------------------------------------------------
# registry + selection
# ----------------------------------------------------------------------
class _DummyBackend(NumpyBackend):
    name = "dummy_for_tests"


class TestRegistry:
    def test_default_backends_are_registered(self):
        names = available_backends()
        assert names[0] == "numpy"  # default leads
        assert "numpy_strict" in names

    def test_round_trip_register_resolve_unregister(self):
        dummy = _DummyBackend()
        register_backend(dummy)
        try:
            assert get_backend("dummy_for_tests") is dummy
            assert "dummy_for_tests" in available_backends()
        finally:
            unregister_backend("dummy_for_tests")
        assert "dummy_for_tests" not in available_backends()

    def test_reregistering_requires_overwrite(self):
        dummy = _DummyBackend()
        register_backend(dummy)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend(_DummyBackend())
            shadow = _DummyBackend()
            register_backend(shadow, overwrite=True)
            assert get_backend("dummy_for_tests") is shadow
        finally:
            unregister_backend("dummy_for_tests")

    def test_register_rejects_non_backends_and_abstract_names(self):
        with pytest.raises(TypeError, match="ArrayBackend instance"):
            register_backend(np)  # a module is not a backend
        with pytest.raises(ValueError, match="concrete"):
            register_backend(ArrayBackend())

    def test_default_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="default"):
            unregister_backend("numpy")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="numpy, numpy_strict"):
            get_backend("cuda")

    def test_get_backend_rejects_non_string_specs(self):
        with pytest.raises(TypeError, match="name or an ArrayBackend"):
            get_backend(42)


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_backend(None).name == "numpy"

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy_strict")
        assert get_backend(None).name == "numpy_strict"

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy_strict")
        assert get_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        inst = NumpyStrictBackend()
        assert get_backend(inst) is inst

    def test_backend_of_precedence(self, monkeypatch):
        from repro.graphs.csr import Graph

        monkeypatch.delenv(ENV_VAR, raising=False)
        g = cycle_graph(8)
        assert backend_of(g).name == "numpy"
        # graph-bound backend wins over the default
        g_strict = Graph(
            g.indptr, g.indices, name=g.name, backend="numpy_strict"
        )
        assert backend_of(g_strict).name == "numpy_strict"
        # explicit override wins over the graph binding
        assert backend_of(g_strict, "numpy").name == "numpy"

    def test_env_reaches_graph_construction(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy_strict")
        assert cycle_graph(8).backend.name == "numpy_strict"


# ----------------------------------------------------------------------
# capability flags + protocol conformance
# ----------------------------------------------------------------------
PRIMITIVES = (
    "asarray",
    "ascontiguousarray",
    "empty",
    "zeros",
    "full",
    "arange",
    "asnumpy",
    "take",
    "bincount",
    "searchsorted",
    "cumsum",
    "compress",
    "flatnonzero",
    "fill_uniform",
)


@pytest.mark.parametrize("name", ["numpy", "numpy_strict"])
class TestProtocolConformance:
    def test_capability_flags(self, name):
        bk = get_backend(name)
        assert bk.name == name
        assert bk.exact_bitstream is True

    def test_every_primitive_is_implemented(self, name):
        bk = get_backend(name)
        base = ArrayBackend()
        for prim in PRIMITIVES:
            assert callable(getattr(bk, prim)), prim
            with pytest.raises(NotImplementedError):
                # the base protocol fails loudly at unported call sites
                getattr(base, prim)(*([np.zeros(1)] * 2)[: 1 if prim in (
                    "asarray", "ascontiguousarray", "empty", "zeros",
                    "arange", "asnumpy", "bincount", "cumsum", "flatnonzero",
                ) else 2])

    def test_primitive_semantics_match_numpy(self, name):
        bk = get_backend(name)
        assert bk.xp is np
        a = np.asarray([5, 1, 4, 1, 3], dtype=np.int64)
        idx = np.asarray([0, 2, 4], dtype=np.int64)
        assert bk.take(a, idx).tolist() == [5, 4, 3]
        out = np.empty(3, dtype=np.int64)
        assert bk.take(a, idx, out=out).tolist() == [5, 4, 3]
        assert bk.bincount(a, minlength=7).tolist() == [0, 2, 0, 1, 1, 1, 0]
        sorted_a = np.sort(a)
        assert int(bk.searchsorted(sorted_a, 3, side="left")) == 2
        assert bk.cumsum(a).tolist() == [5, 6, 10, 11, 14]
        mask = a > 2
        assert bk.compress(mask, a).tolist() == [5, 4, 3]
        assert bk.flatnonzero(mask).tolist() == [0, 2, 4]
        assert bk.asnumpy(a) is np.asarray(a)

    def test_fill_uniform_replays_generator_stream(self, name):
        bk = get_backend(name)
        buf = np.empty(16, dtype=np.float64)
        bk.fill_uniform(np.random.default_rng(7), buf)
        assert np.array_equal(buf, np.random.default_rng(7).random(16))

    def test_pickles_by_name(self, name):
        bk = get_backend(name)
        clone = pickle.loads(pickle.dumps(bk))
        assert clone is bk  # registry lookup, not a copy


class TestStrictPolicing:
    def test_rejects_non_ndarray(self):
        strict = get_backend("numpy_strict")
        with pytest.raises(TypeError, match="numpy.ndarray"):
            strict.take([1, 2, 3], np.zeros(1, dtype=np.int64))

    def test_rejects_off_contract_dtype(self):
        strict = get_backend("numpy_strict")
        with pytest.raises(TypeError, match="off-contract dtype"):
            strict.cumsum(np.zeros(3, dtype=np.float32))

    def test_rejects_non_bool_compress_mask(self):
        strict = get_backend("numpy_strict")
        with pytest.raises(TypeError, match="must be bool"):
            strict.compress(
                np.ones(3, dtype=np.int64), np.zeros(3, dtype=np.int64)
            )

    def test_rejects_non_float64_uniform_buffer(self):
        strict = get_backend("numpy_strict")
        with pytest.raises(TypeError, match="float64"):
            strict.fill_uniform(
                np.random.default_rng(0), np.empty(4, dtype=np.int64)
            )

    def test_rejects_foreign_generators(self):
        strict = get_backend("numpy_strict")
        with pytest.raises(TypeError, match="Generator"):
            strict.fill_uniform(object(), np.empty(4, dtype=np.float64))


# ----------------------------------------------------------------------
# end-to-end byte-identity of numpy_strict
# ----------------------------------------------------------------------
def test_numpy_strict_is_byte_identical_on_a_driver_run():
    """The strict assertions are pure observers: same calls, same bytes."""
    from repro.core.batched import batched_parallel_idla

    def run(backend):
        seeds = np.random.SeedSequence(20260808).spawn(5)
        return batched_parallel_idla(cycle_graph(24), seeds=seeds, backend=backend)

    for default, strict in zip(run("numpy"), run("numpy_strict")):
        assert default.steps.tobytes() == strict.steps.tobytes()
        assert default.settled_at.tobytes() == strict.settled_at.tobytes()
        assert default.settle_order.tobytes() == strict.settle_order.tobytes()
        assert default.dispersion_time == strict.dispersion_time


# ----------------------------------------------------------------------
# the statistical contract (non-bitstream backends)
# ----------------------------------------------------------------------
class TestAnytimeKS:
    def test_ks_statistic_matches_definition(self):
        x = [1.0, 2.0, 3.0]
        y = [1.0, 2.0, 3.0]
        assert ks_statistic(x, y) == 0.0
        assert ks_statistic([0.0] * 4, [1.0] * 4) == 1.0
        with pytest.raises(ValueError, match="non-empty"):
            ks_statistic([], [1.0])

    def test_truthful_backend_survives_many_checkpoints(self):
        rng = np.random.default_rng(1)
        gate = AnytimeKS(alpha=0.05)
        for _ in range(50):
            v = gate.update(rng.exponential(5.0, 40), rng.exponential(5.0, 40))
            assert not v.reject, (v.statistic, v.threshold)
        assert v.checks == 50 and v.margin > 0

    def test_shifted_distribution_is_eventually_rejected(self):
        rng = np.random.default_rng(2)
        gate = AnytimeKS(alpha=0.05)
        for _ in range(60):
            v = gate.update(
                rng.exponential(5.0, 200), rng.exponential(9.0, 200)
            )
            if v.reject:
                break
        assert v.reject and v.margin < 0

    def test_rejection_is_sticky(self):
        gate = AnytimeKS(alpha=0.2)
        first = None
        for _ in range(40):
            first = gate.update(np.zeros(50), np.ones(50))
            if first.reject:
                break
        assert first is not None and first.reject
        again = gate.update(np.zeros(5), np.zeros(5))
        assert again is first  # the rejecting verdict is frozen

    def test_lanes_may_progress_unevenly(self):
        rng = np.random.default_rng(3)
        gate = AnytimeKS()
        gate.update(rng.normal(size=30), rng.normal(size=5))
        v = gate.update([], rng.normal(size=25))
        assert v.n_x == 30 and v.n_y == 30

    def test_first_checkpoint_requires_both_lanes(self):
        gate = AnytimeKS()
        with pytest.raises(ValueError, match="both lanes"):
            gate.update([1.0, 2.0], [])

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            AnytimeKS(alpha=0.0)

    def test_module_reference_is_exported(self):
        # docs and third-party gates import these from the package root
        assert bk_mod.AnytimeKS is AnytimeKS
