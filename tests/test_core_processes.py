"""Tests for the four process drivers: invariants, block validity, laziness,
tie-breaking, stopping rules and determinism."""

import numpy as np
import pytest

from repro.core import (
    DelayedRule,
    HairRule,
    ctu_idla,
    continuous_sequential_idla,
    is_valid_parallel_block,
    is_valid_sequential_block,
    parallel_idla,
    sequential_idla,
    uniform_idla,
)
from repro.graphs import (
    clique_with_hair,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.utils.rng import stable_seed

DRIVERS = [sequential_idla, parallel_idla, uniform_idla, ctu_idla]


class TestCommonInvariants:
    @pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
    def test_complete_dispersion(self, small_graph, driver):
        res = driver(small_graph, 0, seed=1)
        assert res.is_complete_dispersion()
        assert res.settled_at[0] == 0  # particle 0 takes the origin
        assert res.steps[0] == 0

    @pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
    def test_total_steps_consistent(self, c8, driver):
        res = driver(c8, 0, seed=2)
        assert res.total_steps == int(res.steps.sum())

    @pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
    def test_deterministic_given_seed(self, c8, driver):
        a = driver(c8, 0, seed=33)
        b = driver(c8, 0, seed=33)
        assert a.dispersion_time == b.dispersion_time
        assert np.array_equal(a.settled_at, b.settled_at)

    @pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
    def test_origin_validation(self, c8, driver):
        with pytest.raises(ValueError):
            driver(c8, 99, seed=0)

    @pytest.mark.parametrize("driver", DRIVERS, ids=lambda d: d.__name__)
    def test_nontrivial_origin(self, driver):
        g = path_graph(7)
        res = driver(g, 3, seed=4)
        assert res.is_complete_dispersion()
        assert res.settled_at[0] == 3

    @pytest.mark.parametrize(
        "driver",
        [sequential_idla, parallel_idla, uniform_idla],
        ids=lambda d: d.__name__,
    )
    def test_trajectories_consistent_with_steps(self, c8, driver):
        res = driver(c8, 0, seed=5, record=True)
        for i, traj in enumerate(res.trajectories):
            assert len(traj) == res.steps[i] + 1
            assert traj[0] == 0
            assert traj[-1] == res.settled_at[i]

    def test_single_vertex_graph(self):
        from repro.graphs import Graph

        g = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
        res = sequential_idla(g, 0, seed=0)
        assert res.dispersion_time == 0 and res.total_steps == 0


class TestSequential:
    def test_block_validity(self, small_graph):
        res = sequential_idla(small_graph, 0, seed=6, record=True)
        assert is_valid_sequential_block(res.block(), small_graph, 0)

    def test_dispersion_is_max_steps(self, c8):
        res = sequential_idla(c8, 0, seed=7)
        assert res.dispersion_time == res.steps.max()

    def test_complete_graph_is_coupon_collector_scale(self):
        # E[total steps] for K_n sequential = sum_k (n-1)/k ~ n log n
        n = 64
        tot = [
            sequential_idla(complete_graph(n), seed=stable_seed("cc-t", r)).total_steps
            for r in range(30)
        ]
        expected = (n - 1) * sum(1.0 / k for k in range(1, n))
        assert abs(np.mean(tot) - expected) < 0.15 * expected

    def test_lazy_roughly_doubles(self):
        g = grid_graph(5, 5)
        fast = [
            sequential_idla(g, seed=stable_seed("lz", r)).dispersion_time
            for r in range(25)
        ]
        slow = [
            sequential_idla(g, seed=stable_seed("lz", r), lazy=True).dispersion_time
            for r in range(25)
        ]
        ratio = np.mean(slow) / np.mean(fast)
        assert 1.5 < ratio < 2.6

    def test_lazy_block_paths_allow_holds(self):
        g = cycle_graph(6)
        res = sequential_idla(g, 0, seed=8, lazy=True, record=True)
        b = res.block()
        b.check_paths(g, 0)  # repeats allowed, must not raise

    def test_max_total_steps_guard(self):
        g = cycle_graph(32)
        with pytest.raises(RuntimeError, match="max_total_steps"):
            sequential_idla(g, 0, seed=9, max_total_steps=5)

    def test_settle_order_is_identity(self, c8):
        res = sequential_idla(c8, 0, seed=10)
        assert res.settle_order.tolist() == list(range(8))


class TestParallel:
    def test_block_validity_index_tiebreak(self, small_graph):
        res = parallel_idla(small_graph, 0, seed=11, record=True)
        assert is_valid_parallel_block(res.block(), small_graph, 0)

    def test_dispersion_is_max_steps_and_rounds(self, c8):
        res = parallel_idla(c8, 0, seed=12)
        assert res.dispersion_time == res.steps.max()

    def test_scalar_and_vector_phases_agree_statistically(self):
        # force everything through the scalar phase vs everything through
        # the wide phase; means must agree
        g = cycle_graph(12)
        big = [
            parallel_idla(
                g, seed=stable_seed("ph", r), scalar_threshold=0
            ).dispersion_time
            for r in range(60)
        ]
        small = [
            parallel_idla(
                g, seed=stable_seed("ph2", r), scalar_threshold=10**9
            ).dispersion_time
            for r in range(60)
        ]
        assert abs(np.mean(big) - np.mean(small)) < 0.25 * np.mean(big)

    def test_random_tiebreak_valid_dispersion(self, c8):
        res = parallel_idla(c8, 0, seed=13, tie_break="random")
        assert res.is_complete_dispersion()

    def test_bad_tiebreak_rejected(self, c8):
        with pytest.raises(ValueError):
            parallel_idla(c8, 0, seed=0, tie_break="nope")

    def test_max_rounds_guard(self):
        with pytest.raises(RuntimeError, match="max_rounds"):
            parallel_idla(cycle_graph(64), 0, seed=14, max_rounds=3)

    def test_lazy_parallel_runs(self, c8):
        res = parallel_idla(c8, 0, seed=15, lazy=True)
        assert res.is_complete_dispersion()

    def test_settle_round_consistency(self, c8):
        # every settled particle's step count equals its settling round,
        # which is at most the dispersion time
        res = parallel_idla(c8, 0, seed=16)
        assert res.steps.max() == res.dispersion_time
        assert np.all(res.steps[1:] >= 1)


class TestUniform:
    def test_ticks_at_least_jumps(self, c8):
        res = uniform_idla(c8, 0, seed=17)
        assert res.ticks >= res.total_steps

    def test_faithful_r_schedule_recorded(self, c8):
        res = uniform_idla(c8, 0, seed=18, faithful_r=True)
        assert res.schedule.min() >= 1 and res.schedule.max() <= 7
        assert len(res.schedule) == res.ticks

    def test_faithful_and_geometric_agree_statistically(self):
        g = complete_graph(16)
        a = [
            uniform_idla(g, seed=stable_seed("uf", r)).ticks for r in range(80)
        ]
        b = [
            uniform_idla(g, seed=stable_seed("uf2", r), faithful_r=True).ticks
            for r in range(80)
        ]
        assert abs(np.mean(a) - np.mean(b)) < 0.2 * np.mean(a)

    def test_max_ticks_guard(self):
        with pytest.raises(RuntimeError):
            uniform_idla(cycle_graph(32), 0, seed=19, max_ticks=3)


class TestContinuous:
    def test_ctu_clock_positive_and_ordered(self, c8):
        res = ctu_idla(c8, 0, seed=20)
        assert res.dispersion_time > 0
        assert res.settle_clock.max() == res.dispersion_time

    def test_ctu_rate_scales_clock(self):
        g = complete_graph(24)
        t1 = np.mean(
            [ctu_idla(g, seed=stable_seed("r1", r)).dispersion_time for r in range(40)]
        )
        t2 = np.mean(
            [
                ctu_idla(g, rate=2.0, seed=stable_seed("r2", r)).dispersion_time
                for r in range(40)
            ]
        )
        assert 1.5 < t1 / t2 < 2.5

    def test_ctu_rejects_bad_rate(self, c8):
        with pytest.raises(ValueError):
            ctu_idla(c8, rate=0.0)

    def test_continuous_sequential_duration_close_to_steps(self):
        g = grid_graph(5, 5)
        res = continuous_sequential_idla(g, 0, seed=21)
        # Gamma(k,1) concentrates near k: max duration within 3x of max steps
        assert 0.3 * res.steps.max() < res.dispersion_time < 3 * res.steps.max()

    def test_continuous_sequential_has_durations(self, c8):
        res = continuous_sequential_idla(c8, 0, seed=22)
        assert res.durations.shape == (8,)
        assert res.durations[0] == 0.0


class TestStoppingRules:
    def test_delayed_rule_increases_steps(self):
        g = complete_graph(24)
        normal = np.mean(
            [
                sequential_idla(g, seed=stable_seed("d0", r)).total_steps
                for r in range(20)
            ]
        )
        delayed = np.mean(
            [
                sequential_idla(
                    g, seed=stable_seed("d1", r), rule=DelayedRule(delay=10)
                ).total_steps
                for r in range(20)
            ]
        )
        assert delayed > normal + 9 * 23  # every particle walks >= 10 steps

    def test_delayed_rule_still_disperses(self, c8):
        res = sequential_idla(c8, 0, seed=23, rule=DelayedRule(delay=5))
        assert res.is_complete_dispersion()
        assert np.all(res.steps[1:] >= 5)

    def test_hair_rule_settles_tip_early(self):
        n = 32
        g = clique_with_hair(n)
        rule = HairRule.for_clique_with_hair(n)
        res = sequential_idla(g, 0, seed=24, rule=rule)
        assert res.is_complete_dispersion()

    def test_hair_rule_parallel(self):
        n = 24
        g = clique_with_hair(n)
        rule = HairRule.for_clique_with_hair(n)
        res = parallel_idla(g, 0, seed=25, rule=rule)
        assert res.is_complete_dispersion()

    def test_rule_describe(self):
        assert "hair" in HairRule(1, 10.0).describe()
        assert "delayed" in DelayedRule(5).describe()
