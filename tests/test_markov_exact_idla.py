"""Tests for the exact Sequential-IDLA dynamic program.

This module is the library's strongest internal oracle: its outputs are
exact, so the Monte-Carlo drivers must agree with it within sampling
error — including the Theorem 4.1 statement that *all* schedulers share
the expected total step count.
"""

import numpy as np
import pytest

from repro.core import ctu_idla, parallel_idla, sequential_idla, uniform_idla
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph
from repro.markov import analyze_sequential_idla
from repro.utils.rng import stable_seed


class TestSmallClosedForms:
    def test_path3_from_end(self):
        # origin 0 on 0-1-2: particle 1 settles at 1 (1 step).  Particle 2
        # from 0: absorbed at 2; t(0) = 1 + t(1), t(1) = 1 + t(0)/2 =>
        # t(0) = 4.  Total = 0 + 1 + 4 = 5.
        res = analyze_sequential_idla(path_graph(3), origin=0)
        assert np.isclose(res.expected_total_steps, 5.0)
        assert np.allclose(res.expected_steps_per_particle, [0, 1, 4])

    def test_path3_from_middle(self):
        res = analyze_sequential_idla(path_graph(3), origin=1)
        assert np.isclose(res.expected_total_steps, 4.0)

    def test_complete_graph_coupon_collector(self):
        # K_n sequential: particle i settles after Geom((n-i)/(n-1)) steps
        n = 7
        res = analyze_sequential_idla(complete_graph(n))
        expected = [0.0] + [(n - 1) / (n - i) for i in range(1, n)]
        assert np.allclose(res.expected_steps_per_particle, expected)

    def test_star_from_centre(self):
        # each new particle from the centre settles in exactly one step if
        # an unoccupied leaf is drawn, else bounces: Geom(free/(n-1)) walks
        # of length 2 minus 1... simply check particle 1 takes 1 step.
        res = analyze_sequential_idla(star_graph(5), origin=0)
        assert np.isclose(res.expected_steps_per_particle[1], 1.0)

    def test_settle_distribution_rows_and_columns(self):
        g = cycle_graph(6)
        res = analyze_sequential_idla(g)
        S = res.settle_distribution
        assert np.allclose(S.sum(axis=1), 1.0)  # each particle settles
        assert np.allclose(S.sum(axis=0), 1.0)  # each vertex settled once
        assert S[0, 0] == 1.0

    def test_cycle_symmetry(self):
        # settle distribution of particle 1 on a cycle: 1/2 each neighbour
        res = analyze_sequential_idla(cycle_graph(5))
        assert np.isclose(res.settle_distribution[1, 1], 0.5)
        assert np.isclose(res.settle_distribution[1, 4], 0.5)

    def test_lazy_doubles_exactly(self):
        g = path_graph(5)
        fast = analyze_sequential_idla(g)
        slow = analyze_sequential_idla(g, lazy=True)
        assert np.isclose(
            slow.expected_total_steps, 2.0 * fast.expected_total_steps, rtol=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_sequential_idla(path_graph(4), origin=9)
        with pytest.raises(ValueError, match="exponential"):
            analyze_sequential_idla(cycle_graph(30))


class TestAgainstSimulation:
    @pytest.mark.parametrize(
        "g",
        [path_graph(7), cycle_graph(8), complete_graph(7), star_graph(7)],
        ids=lambda g: g.name,
    )
    def test_sequential_driver_matches_exact(self, g):
        exact = analyze_sequential_idla(g)
        reps = 600
        tot = np.array(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("exact-s", g.name, r)
                ).total_steps
                for r in range(reps)
            ]
        )
        sem = tot.std() / np.sqrt(reps)
        assert abs(tot.mean() - exact.expected_total_steps) < 4 * sem + 0.02

    def test_settle_distribution_matches_simulation(self):
        g = cycle_graph(6)
        exact = analyze_sequential_idla(g)
        reps = 2000
        counts = np.zeros((6, 6))
        for r in range(reps):
            res = sequential_idla(g, 0, seed=stable_seed("exact-d", r))
            for i, v in enumerate(res.settled_at):
                counts[i, v] += 1
        emp = counts / reps
        assert np.abs(emp - exact.settle_distribution).max() < 0.05

    @pytest.mark.parametrize(
        "driver",
        [parallel_idla, uniform_idla, ctu_idla],
        ids=lambda d: d.__name__,
    )
    def test_theorem_4_1_total_steps_all_schedulers(self, driver):
        """The exact sequential total must match every scheduler's mean
        total (total steps are equidistributed across protocols)."""
        g = cycle_graph(8)
        exact = analyze_sequential_idla(g)
        reps = 600
        tot = np.array(
            [
                driver(
                    g, 0, seed=stable_seed("exact-t", driver.__name__, r)
                ).total_steps
                for r in range(reps)
            ]
        )
        sem = tot.std() / np.sqrt(reps)
        assert abs(tot.mean() - exact.expected_total_steps) < 4 * sem + 0.05

    def test_pruning_approximates(self):
        g = cycle_graph(10)
        exact = analyze_sequential_idla(g)
        pruned = analyze_sequential_idla(g, prune_below=1e-6)
        assert pruned.num_aggregates <= exact.num_aggregates
        assert np.isclose(
            pruned.expected_total_steps, exact.expected_total_steps, rtol=1e-3
        )
