"""Tests for StP / PtS / PtU_R (Algorithms 1-3) and their coupling facts."""

import numpy as np
import pytest

from repro.core import (
    Block,
    is_valid_parallel_block,
    is_valid_sequential_block,
    is_valid_uniform_block,
    parallel_idla,
    parallel_to_sequential,
    parallel_to_uniform,
    sequential_idla,
    sequential_to_parallel,
    uniform_idla,
)
from repro.graphs import complete_graph, cycle_graph, grid_graph, path_graph
from repro.utils.rng import stable_seed

GRAPHS = [path_graph(6), cycle_graph(7), complete_graph(6), grid_graph(3, 3)]


def seq_blocks(g, count=8):
    for r in range(count):
        res = sequential_idla(g, 0, seed=stable_seed("alg-s", g.name, r), record=True)
        yield res.block()


def par_blocks(g, count=8):
    for r in range(count):
        res = parallel_idla(g, 0, seed=stable_seed("alg-p", g.name, r), record=True)
        yield res.block()


class TestStP:
    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_output_is_valid_parallel(self, g):
        for b in seq_blocks(g):
            out = sequential_to_parallel(b)
            assert is_valid_parallel_block(out, g, 0)

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_preserves_total_length_and_multisets(self, g):
        for b in seq_blocks(g):
            out = sequential_to_parallel(b)
            assert out.total_length == b.total_length
            assert out.visit_multiset() == b.visit_multiset()
            assert out.arc_multiset() == b.arc_multiset()

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_lemma_4_6_max_row_never_shrinks(self, g):
        for b in seq_blocks(g, count=15):
            out = sequential_to_parallel(b)
            assert out.max_row_length >= b.max_row_length

    def test_copy_semantics(self):
        g = cycle_graph(6)
        b = next(iter(seq_blocks(g, 1)))
        rows_before = [list(r) for r in b.rows]
        sequential_to_parallel(b, copy=True)
        assert b.rows == rows_before
        sequential_to_parallel(b, copy=False)
        # in-place call may mutate (no assertion on content, just no crash)

    def test_with_random_order(self):
        g = cycle_graph(8)
        b = next(iter(seq_blocks(g, 1)))
        rng = np.random.default_rng(0)
        order = [0] + (1 + rng.permutation(g.n - 1)).tolist()
        out = sequential_to_parallel(b, order=order)
        assert out.total_length == b.total_length

    def test_rejects_bad_order(self):
        b = Block([[0], [0, 1]])
        with pytest.raises(ValueError, match="permutation"):
            sequential_to_parallel(b, order=[0, 0])


class TestPtS:
    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_output_is_valid_sequential(self, g):
        for b in par_blocks(g):
            out = parallel_to_sequential(b)
            assert is_valid_sequential_block(out, g, 0)

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_preserves_invariants(self, g):
        for b in par_blocks(g):
            out = parallel_to_sequential(b)
            assert out.total_length == b.total_length
            assert out.visit_multiset() == b.visit_multiset()
            assert out.arc_multiset() == b.arc_multiset()

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_pts_shrinks_or_keeps_max_row(self, g):
        # dual of Lemma 4.6: mapping parallel -> sequential cannot grow the
        # longest row (otherwise composing with StP would contradict 4.6
        # on the round trip distributionally); we check the weaker direct
        # fact that PtS(StP(L)) keeps the longest row >= L's for seq L.
        for b in seq_blocks(g, count=6):
            round_trip = parallel_to_sequential(sequential_to_parallel(b))
            assert is_valid_sequential_block(round_trip, g, 0)
            assert round_trip.total_length == b.total_length

    def test_succeeds_on_any_distinct_endpoint_block(self):
        # PtS succeeds on ANY block with distinct endpoints, even ones that
        # are not valid parallel blocks: if a row's endpoint e had been read
        # earlier, the CP at that read would have pasted onto the row then
        # ending at e, so no row can be exhausted without a first
        # occurrence.  Check on a non-parallel block.
        not_parallel = Block([[0, 1], [0]])
        out = parallel_to_sequential(not_parallel)
        assert is_valid_sequential_block(out)
        assert out.total_length == not_parallel.total_length


class TestRoundTrip:
    """StP and PtS are mutually inverse bijections (Lemma 4.4 + Remark 4.5)."""

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_pts_stp_identity_on_parallel_blocks(self, g):
        for b in par_blocks(g):
            assert sequential_to_parallel(parallel_to_sequential(b)) == b

    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_stp_pts_identity_on_sequential_blocks(self, g):
        for b in seq_blocks(g):
            assert parallel_to_sequential(sequential_to_parallel(b)) == b


class TestPtU:
    @pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
    def test_output_valid_uniform(self, g):
        rng = np.random.default_rng(stable_seed("ptu", g.name))
        for b in par_blocks(g, count=5):
            schedule = rng.integers(1, g.n, size=50 * b.total_length + 50)
            out = parallel_to_uniform(b, schedule.tolist())
            assert out.block.total_length == b.total_length
            # reconstruct the consumed schedule prefix for validity check
            assert is_valid_uniform_block(out.block, schedule.tolist())

    def test_read_ticks_monotone_per_row(self):
        g = cycle_graph(7)
        b = next(iter(par_blocks(g, 1)))
        rng = np.random.default_rng(1)
        schedule = rng.integers(1, g.n, size=100 * b.total_length)
        out = parallel_to_uniform(b, schedule.tolist())
        for i, ticks in enumerate(out.read_ticks):
            assert len(ticks) == len(out.block.rows[i])
            assert all(a < b_ for a, b_ in zip(ticks, ticks[1:]))

    def test_dispersion_ticks(self):
        g = complete_graph(5)
        b = next(iter(par_blocks(g, 1)))
        rng = np.random.default_rng(2)
        schedule = rng.integers(1, g.n, size=1000)
        out = parallel_to_uniform(b, schedule.tolist())
        assert out.dispersion_ticks == max(out.settle_ticks)

    def test_schedule_exhaustion_raises(self):
        g = cycle_graph(6)
        b = next(iter(par_blocks(g, 1)))
        if b.total_length > 1:
            with pytest.raises(ValueError, match="exhausted"):
                parallel_to_uniform(b, [1])

    def test_against_direct_uniform_simulation(self):
        """A uniform run's block, pushed through StP, is a valid parallel
        block (Theorem 4.7's bijection direction)."""
        g = cycle_graph(8)
        for r in range(6):
            res = uniform_idla(g, 0, seed=stable_seed("ptu-d", r), record=True)
            b = res.block()
            out = sequential_to_parallel(b)  # StP is schedule-oblivious
            assert is_valid_parallel_block(out, g, 0)
            assert out.total_length == b.total_length
