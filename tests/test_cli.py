"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFamilies:
    def test_lists_all(self):
        code, text = run_cli("families")
        assert code == 0
        for fam in ("cycle", "complete", "hypercube", "lollipop"):
            assert fam in text


class TestConstants:
    def test_prints_constants(self):
        code, text = run_cli("constants")
        assert code == 0
        assert "1.255" in text and "1.644" in text


class TestRun:
    def test_run_sequential(self):
        code, text = run_cli("run", "complete", "32", "--reps", "3")
        assert code == 0
        assert "sequential" in text and "E[τ]" in text

    def test_run_parallel_lazy(self):
        code, text = run_cli(
            "run", "cycle", "16", "--process", "parallel", "--reps", "2", "--lazy"
        )
        assert code == 0

    def test_run_rejects_lazy_ctu(self):
        code, _ = run_cli("run", "cycle", "16", "--process", "ctu", "--lazy")
        assert code == 2

    def test_run_rejects_lazy_before_building_graph(self, monkeypatch):
        # flag validation must precede graph construction: a bad flag combo
        # on a huge size must not first pay for (or crash in) the build
        from repro.theory import families

        def _fail_build(self, n, seed=None):
            raise AssertionError("graph must not be built for invalid flags")

        monkeypatch.setattr(families.Family, "build", _fail_build)
        code, _ = run_cli("run", "cycle", "16", "--process", "uniform", "--lazy")
        assert code == 2

    def test_run_rejects_bad_jobs_before_building_graph(self, monkeypatch):
        from repro.theory import families

        def _fail_build(self, n, seed=None):
            raise AssertionError("graph must not be built for invalid flags")

        monkeypatch.setattr(families.Family, "build", _fail_build)
        code, _ = run_cli("run", "cycle", "16", "--jobs", "0")
        assert code == 2

    def test_run_jobs_and_batched_flags(self):
        code, text = run_cli(
            "run", "complete", "16", "--reps", "4", "--jobs", "2", "--batched", "false"
        )
        assert code == 0
        assert "E[τ]" in text

    def test_process_choices_track_driver_registry(self):
        # --process choices derive from PROCESS_DRIVERS, not a copied list
        from repro.experiments.runner import PROCESS_DRIVERS

        parser = build_parser()
        for proc in PROCESS_DRIVERS:
            args = parser.parse_args(["run", "cycle", "8", "--process", proc])
            assert args.process == proc
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "cycle", "8", "--process", "quantum"])

    def test_run_unknown_family(self):
        with pytest.raises(KeyError):
            run_cli("run", "petersen", "16")


    def test_run_precision_flag(self):
        code, text = run_cli(
            "run",
            "complete",
            "32",
            "--process",
            "parallel",
            "--ci-rel",
            "0.5",
            "--reps",
            "4",
            "--max-reps",
            "64",
        )
        assert code == 0
        assert "adaptive:" in text and "round(s)" in text

    def test_run_rejects_bad_precision_combo(self):
        # Precision validation errors surface as exit code 2, not tracebacks
        code, _ = run_cli(
            "run", "complete", "32", "--ci-rel", "-0.1"
        )
        assert code == 2


class TestSweep:
    def test_sweep_output(self):
        code, text = run_cli("sweep", "complete", "32", "64", "--reps", "2")
        assert code == 0
        assert "exponent" in text
        assert "constant" in text

    def test_sweep_single_realised_size_skips_fits(self):
        # 50, 60 and 64 all snap to the 64-vertex hypercube; the deduped
        # sweep has one size, so the CLI must explain rather than crash
        # on an unfittable single point
        code, text = run_cli("sweep", "hypercube", "50", "60", "64", "--reps", "1")
        assert code == 0
        assert "single realised size" in text
        assert "exponent" not in text


    def test_sweep_precision_flag(self):
        code, text = run_cli(
            "sweep",
            "complete",
            "32",
            "64",
            "--ci-rel",
            "0.5",
            "--reps",
            "2",
            "--max-reps",
            "32",
        )
        assert code == 0


class TestBounds:
    def test_bounds_table(self):
        code, text = run_cli("bounds", "cycle", "16", "--reps", "5")
        assert code == 0
        assert "Thm 3.1" in text and "Thm 3.6" in text and "Prop 3.9" in text

    def test_bounds_tree_row(self):
        code, text = run_cli("bounds", "binary_tree", "15", "--reps", "5")
        assert code == 0
        assert "Thm 3.7" in text
