"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFamilies:
    def test_lists_all(self):
        code, text = run_cli("families")
        assert code == 0
        for fam in ("cycle", "complete", "hypercube", "lollipop"):
            assert fam in text


class TestConstants:
    def test_prints_constants(self):
        code, text = run_cli("constants")
        assert code == 0
        assert "1.255" in text and "1.644" in text


class TestRun:
    def test_run_sequential(self):
        code, text = run_cli("run", "complete", "32", "--reps", "3")
        assert code == 0
        assert "sequential" in text and "E[τ]" in text

    def test_run_parallel_lazy(self):
        code, text = run_cli(
            "run", "cycle", "16", "--process", "parallel", "--reps", "2", "--lazy"
        )
        assert code == 0

    def test_run_rejects_lazy_ctu(self):
        code, _ = run_cli("run", "cycle", "16", "--process", "ctu", "--lazy")
        assert code == 2

    def test_run_unknown_family(self):
        with pytest.raises(KeyError):
            run_cli("run", "petersen", "16")


class TestSweep:
    def test_sweep_output(self):
        code, text = run_cli("sweep", "complete", "32", "64", "--reps", "2")
        assert code == 0
        assert "exponent" in text
        assert "constant" in text


class TestBounds:
    def test_bounds_table(self):
        code, text = run_cli("bounds", "cycle", "16", "--reps", "5")
        assert code == 0
        assert "Thm 3.1" in text and "Thm 3.6" in text and "Prop 3.9" in text

    def test_bounds_tree_row(self):
        code, text = run_cli("bounds", "binary_tree", "15", "--reps", "5")
        assert code == 0
        assert "Thm 3.7" in text
