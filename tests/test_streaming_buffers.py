"""Streaming uniform buffers + the scalar tail finisher.

Three contracts under test:

* **finisher handoff bit-identity** — handing straggler repetitions to
  the serial scalar micro-loop mid-stream must not change a bit, for any
  handoff threshold (never / default / immediately), across all five
  processes and the draw-pattern variants (lazy wide/narrow, random
  tie-break, ``m ≠ n``, custom rules);
* **chunk-invariance of the streaming draws** — the per-repetition refill
  chunk size must be invisible in the results (NumPy double streams have
  no block boundaries), including chunks far smaller than the serial
  fetch blocks;
* **sizing honesty** — ``buffer_doubles`` must report exactly what the
  drivers' :class:`repro.utils.rng.UniformStreams` allocate (the old
  version sized ``c-sequential`` with an unrelated module constant), the
  total must stay within the streaming budget, and the sequential
  driver must leave every generator at the serial stream position (the
  Poissonised driver keeps consuming it).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.batched as batched_mod
import repro.core.batched_continuous as bc_mod
from repro.core import (
    DelayedRule,
    batched_continuous_sequential_idla,
    batched_ctu_idla,
    batched_parallel_idla,
    batched_sequential_idla,
    batched_uniform_idla,
    continuous_sequential_idla,
    ctu_idla,
    parallel_idla,
    sequential_idla,
    uniform_idla,
)
from repro.core.batched import buffer_doubles, stream_block
from repro.experiments.stats import bootstrap_ci
from repro.graphs import complete_graph, cycle_graph, grid_graph
from repro.utils.rng import (
    UniformStream,
    UniformStreams,
    as_generator,
    resolve_stream_block,
    spawn_generators,
    spawn_seed_sequences,
)

PARENT_SEED = 20260731


def assert_results_identical(serial, batch, extras=()):
    assert len(serial) == len(batch)
    for s, b in zip(serial, batch):
        assert s.process == b.process
        assert s.origin == b.origin
        assert s.dispersion_time == b.dispersion_time
        assert s.total_steps == b.total_steps
        assert s.ticks == b.ticks
        assert np.array_equal(s.steps, b.steps)
        assert np.array_equal(s.settled_at, b.settled_at)
        assert np.array_equal(s.settle_order, b.settle_order)
        for name in extras:
            assert np.array_equal(getattr(s, name), getattr(b, name)), name


# ----------------------------------------------------------------------
# finisher handoff bit-identity
# ----------------------------------------------------------------------

#: never hand off / module default / hand off from round 0
TAIL_THRESHOLDS = [0, None, 10**9]

PARALLEL_VARIANTS = [
    {},
    {"lazy": True},
    {"lazy": True, "scalar_threshold": 2},
    {"tie_break": "random"},
    {"num_particles": 9},
    {"num_particles": 40},  # m > n: surplus particles
]

SEQUENTIAL_VARIANTS = [
    {},
    {"lazy": True},
    {"num_particles": 9},
]


@pytest.mark.parametrize("threshold", TAIL_THRESHOLDS, ids=lambda t: f"tail={t}")
@pytest.mark.parametrize(
    "variant", PARALLEL_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_parallel_finisher_bit_identical(variant, threshold):
    g = cycle_graph(32)
    serial = [
        parallel_idla(g, seed=s, **variant)
        for s in spawn_seed_sequences(PARENT_SEED, 5)
    ]
    batch = batched_parallel_idla(
        g,
        seeds=spawn_seed_sequences(PARENT_SEED, 5),
        tail_threshold=threshold,
        **variant,
    )
    assert_results_identical(serial, batch)


@pytest.mark.parametrize("threshold", TAIL_THRESHOLDS, ids=lambda t: f"tail={t}")
@pytest.mark.parametrize(
    "variant", SEQUENTIAL_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_sequential_finisher_bit_identical(variant, threshold):
    g = cycle_graph(32)
    serial = [
        sequential_idla(g, seed=s, **variant)
        for s in spawn_seed_sequences(PARENT_SEED, 5)
    ]
    batch = batched_sequential_idla(
        g,
        seeds=spawn_seed_sequences(PARENT_SEED, 5),
        tail_threshold=threshold,
        **variant,
    )
    assert_results_identical(serial, batch)


@pytest.mark.parametrize("reps", [2, 16, 24])
def test_parallel_reps_straddle_default_threshold(reps):
    """Repetition counts below / at / above the default handoff total:
    small batches go straight to the finisher, large ones cross into it
    mid-run as stragglers thin out — all bit-identical to serial."""
    g = cycle_graph(24)
    serial = [
        parallel_idla(g, seed=s) for s in spawn_seed_sequences(PARENT_SEED, reps)
    ]
    batch = batched_parallel_idla(g, seeds=spawn_seed_sequences(PARENT_SEED, reps))
    assert_results_identical(serial, batch)


@pytest.mark.parametrize("reps", [2, 16, 24])
def test_sequential_reps_straddle_default_threshold(reps):
    g = cycle_graph(24)
    serial = [
        sequential_idla(g, seed=s)
        for s in spawn_seed_sequences(PARENT_SEED, reps)
    ]
    batch = batched_sequential_idla(g, seeds=spawn_seed_sequences(PARENT_SEED, reps))
    assert_results_identical(serial, batch)


def test_parallel_finisher_with_custom_rule():
    g = grid_graph(5, 5)
    rule = DelayedRule(3)
    serial = [
        parallel_idla(g, seed=s, rule=rule)
        for s in spawn_seed_sequences(3, 4)
    ]
    batch = batched_parallel_idla(
        g, seeds=spawn_seed_sequences(3, 4), rule=rule, tail_threshold=10**9
    )
    assert_results_identical(serial, batch)


def test_sequential_finisher_budget_error_matches_serial():
    g = cycle_graph(64)
    with pytest.raises(RuntimeError, match="max_total_steps=5"):
        batched_sequential_idla(
            g,
            seeds=spawn_seed_sequences(0, 3),
            max_total_steps=5,
            tail_threshold=10**9,
        )
    with pytest.raises(RuntimeError, match="max_rounds=5"):
        batched_parallel_idla(
            g, seeds=spawn_seed_sequences(0, 3), max_rounds=5, tail_threshold=10**9
        )


def test_tail_threshold_validation():
    g = cycle_graph(8)
    with pytest.raises(ValueError, match="tail_threshold"):
        batched_parallel_idla(g, reps=2, tail_threshold=-1)
    with pytest.raises(ValueError, match="tail_threshold"):
        batched_sequential_idla(g, reps=2, tail_threshold=-1)


@pytest.mark.parametrize("default", [1, 4, 64])
def test_cseq_rides_finisher_at_any_default_threshold(monkeypatch, default):
    """c-sequential consumes each generator *after* the discrete walks,
    so the finisher (engaged at whatever module default) must land every
    generator exactly on the serial fetch grid."""
    monkeypatch.setattr(batched_mod, "_TAIL_THRESHOLD", default)
    g = cycle_graph(24)
    serial = [
        continuous_sequential_idla(g, seed=s)
        for s in spawn_seed_sequences(PARENT_SEED, 6)
    ]
    batch = batched_continuous_sequential_idla(
        g, seeds=spawn_seed_sequences(PARENT_SEED, 6)
    )
    assert_results_identical(serial, batch, ["durations"])


def test_all_five_processes_bit_identical_across_thresholds(monkeypatch):
    """One sweep over every process at repetition counts straddling the
    handoff threshold (the tick-scheduled drivers have no finisher but
    share the streaming buffers)."""
    monkeypatch.setattr(batched_mod, "_TAIL_THRESHOLD", 4)
    g = grid_graph(5, 5)
    pairs = [
        (parallel_idla, batched_parallel_idla),
        (sequential_idla, batched_sequential_idla),
        (uniform_idla, batched_uniform_idla),
        (ctu_idla, batched_ctu_idla),
        (continuous_sequential_idla, batched_continuous_sequential_idla),
    ]
    for reps in (3, 4, 8):
        for serial_driver, batched_driver in pairs:
            serial = [
                serial_driver(g, seed=s)
                for s in spawn_seed_sequences(PARENT_SEED, reps)
            ]
            batch = batched_driver(g, seeds=spawn_seed_sequences(PARENT_SEED, reps))
            assert_results_identical(serial, batch)


def test_sequential_generators_land_on_serial_positions():
    """After batched_sequential_idla — finisher or not — each repetition's
    generator must sit exactly where the serial driver leaves it, so any
    later consumer (the Gamma durations) reads the serial stream."""
    g = cycle_graph(24)
    for threshold in (0, 10**9):
        serial_gens = [
            as_generator(s) for s in spawn_seed_sequences(PARENT_SEED, 4)
        ]
        batch_gens = [
            as_generator(s) for s in spawn_seed_sequences(PARENT_SEED, 4)
        ]
        for gen in serial_gens:
            sequential_idla(g, seed=gen)
        batched_sequential_idla(g, seeds=batch_gens, tail_threshold=threshold)
        for sg, bg in zip(serial_gens, batch_gens):
            assert np.array_equal(sg.random(8), bg.random(8))


# ----------------------------------------------------------------------
# chunk-invariance of the streaming draws
# ----------------------------------------------------------------------


@pytest.mark.parametrize("block", [64, 256, 4096])
def test_synchronous_chunk_invariance(monkeypatch, block):
    """Tiny refill chunks (powers of two, dividing the serial fetch
    block) must reproduce the serial results exactly — the streaming
    scheme's whole correctness argument."""
    g = cycle_graph(24)
    ref_par = [parallel_idla(g, seed=s) for s in spawn_seed_sequences(11, 5)]
    ref_seq = [sequential_idla(g, seed=s) for s in spawn_seed_sequences(11, 5)]
    monkeypatch.setattr(batched_mod, "_BLOCK", block)
    assert_results_identical(
        ref_par,
        batched_parallel_idla(
            g, seeds=spawn_seed_sequences(11, 5), tail_threshold=0
        ),
    )
    assert_results_identical(
        ref_seq,
        batched_sequential_idla(
            g, seeds=spawn_seed_sequences(11, 5), tail_threshold=0
        ),
    )
    # and with the finisher crossing a chunk boundary mid-stream
    assert_results_identical(
        ref_par,
        batched_parallel_idla(g, seeds=spawn_seed_sequences(11, 5)),
    )
    assert_results_identical(
        ref_seq,
        batched_sequential_idla(g, seeds=spawn_seed_sequences(11, 5)),
    )


@pytest.mark.parametrize("block", [3, 7, 64])
def test_tick_scheduled_chunk_invariance(monkeypatch, block):
    """The continuous drivers' streaming chunks may be any size >= one
    tick's worst-case 3 doubles, including sizes that straddle a tick."""
    g = cycle_graph(24)
    ref_ctu = [ctu_idla(g, seed=s) for s in spawn_seed_sequences(11, 5)]
    ref_uni = [uniform_idla(g, seed=s) for s in spawn_seed_sequences(11, 5)]
    monkeypatch.setattr(bc_mod, "_BLOCK", block)
    assert_results_identical(
        ref_ctu,
        batched_ctu_idla(g, seeds=spawn_seed_sequences(11, 5)),
        ["settle_clock"],
    )
    assert_results_identical(
        ref_uni, batched_uniform_idla(g, seeds=spawn_seed_sequences(11, 5))
    )


def test_uniform_stream_initial_prefix_continues_stream():
    """A stream primed with leftover doubles is the same stream: prefix
    first, then the generator, across refills — with `drawn` counting
    only generator fetches."""
    ref = as_generator(42).random(40)
    gen = as_generator(42)
    prefix = gen.random(10)  # simulate a buffer drawn ahead of consumption
    s = UniformStream(gen, block=8, initial=prefix)
    assert s.drawn == 0
    got = [s.uniform() for _ in range(15)] + s.take(25)
    assert np.array_equal(np.asarray(got), ref)
    assert s.drawn == 32  # four 8-blocks fetched past the prefix
    s2 = UniformStream(as_generator(42), block=8, initial=None)
    logs = [s2.log1mu() for _ in range(40)]
    assert np.array_equal(np.asarray(logs), np.log1p(-ref))


def test_uniform_streams_tail_and_refill_roundtrip():
    """UniformStreams row draws equal one flat per-repetition stream,
    through fill, remainder-copy refills and a tail handoff."""
    gens = spawn_generators(7, 2)
    streams = UniformStreams(gens, per_rep_min=4, block=16)
    streams.fill(range(2))
    consumed = [streams.buf[r, :10].tolist() for r in range(2)]
    for r in range(2):
        streams.refill_tail(r, 10)
        consumed[r].extend(streams.buf[r, :6])  # the moved-down remainder
    tails = [streams.tail(r, 6) for r in range(2)]
    for r in range(2):
        consumed[r].extend(tails[r].take(30))
        ref = spawn_generators(7, 2)[r].random(46)
        assert np.array_equal(np.asarray(consumed[r]), ref)


# ----------------------------------------------------------------------
# sizing honesty
# ----------------------------------------------------------------------


def test_buffer_doubles_matches_actual_allocation():
    """The reported size equals the real UniformStreams allocation, per
    process — including c-sequential, which rides the sequential driver
    (the regression the old per-module block constants got wrong)."""
    cases = [
        ("parallel", 100, 64),
        ("parallel", 50000, 64),
        ("sequential", 100, 64),
        ("sequential", 50000, 64),
        ("ctu", 33, 64),
        ("uniform", 4097, 64),
    ]
    for process, reps, m in cases:
        gens = spawn_generators(0, reps)
        if process == "parallel":
            streams = batched_mod._parallel_streams(gens, m)
        elif process == "sequential":
            streams = batched_mod._sequential_streams(gens)
        else:
            streams = bc_mod._lane_streams(gens)
        assert buffer_doubles(process, reps, m) == streams.buf.size, process
    # c-sequential's allocation is the sequential driver's
    assert buffer_doubles("c-sequential", 640, 64) == buffer_doubles(
        "sequential", 640, 64
    )
    with pytest.raises(ValueError, match="no synchronous"):
        stream_block("ctu", 4, 4)
    with pytest.raises(ValueError, match="no tick-scheduled"):
        bc_mod.stream_block("parallel", 4, 4)


def test_resolve_stream_block_policy():
    from repro.utils.rng import _STREAM_BUDGET_DOUBLES, _STREAM_MAX_BLOCK

    # budget bound: R * block <= budget once R exceeds budget/max_block
    for reps in (1, 64, 1000, 10**5, 10**6):
        block = resolve_stream_block(reps, per_rep_min=1)
        assert block <= _STREAM_MAX_BLOCK
        if reps * _STREAM_MAX_BLOCK > _STREAM_BUDGET_DOUBLES and block > 1:
            assert reps * block <= _STREAM_BUDGET_DOUBLES
    # per-repetition floor always wins (one round must fit)
    assert resolve_stream_block(10**6, per_rep_min=2048) == 2048
    # align: result divides the serial fetch block
    for reps in (1, 100, 50000):
        block = resolve_stream_block(reps, align=16384)
        assert 16384 % block == 0
    assert resolve_stream_block(1, align=16384) == 16384
    # align + per_rep_min: the floor survives the power-of-two rounding
    tiny = resolve_stream_block(10**7, per_rep_min=5, align=16384)
    assert tiny >= 5 and 16384 % tiny == 0
    # overrides are validated
    with pytest.raises(ValueError, match="power of two"):
        resolve_stream_block(4, align=100)
    with pytest.raises(ValueError, match="divide"):
        resolve_stream_block(4, align=16384, block=100)
    with pytest.raises(ValueError, match="minimum"):
        resolve_stream_block(4, per_rep_min=8, block=4)
    with pytest.raises(ValueError, match="exceed align"):
        resolve_stream_block(4, per_rep_min=32768, align=16384)


# ----------------------------------------------------------------------
# runner plumbing for the tail_threshold knob
# ----------------------------------------------------------------------


def test_runner_accepts_tail_threshold():
    """The knob flows through every dispatch mode without changing a
    sample: batched drivers receive it, serial paths strip it (it is a
    performance knob the serial oracles have no counterpart for)."""
    from repro.experiments import estimate_dispersion

    g = cycle_graph(24)
    ref = estimate_dispersion(g, "parallel", reps=6, seed=2, batched=False)
    for mode in (True, "auto", False):
        for threshold in (0, 10**9):
            est = estimate_dispersion(
                g,
                "parallel",
                reps=6,
                seed=2,
                batched=mode,
                tail_threshold=threshold,
            )
            assert np.array_equal(ref.samples, est.samples), (mode, threshold)
    # below the auto crossover the serial fallback strips the knob too
    low = estimate_dispersion(
        g, "parallel", reps=2, seed=2, tail_threshold=4
    )
    low_ref = estimate_dispersion(g, "parallel", reps=2, seed=2)
    assert np.array_equal(low.samples, low_ref.samples)
    # and the fan-out path forwards it per shard
    fanned = estimate_dispersion(
        g, "sequential", reps=4, seed=2, n_jobs=2, tail_threshold=2
    )
    fanned_ref = estimate_dispersion(g, "sequential", reps=4, seed=2)
    assert np.array_equal(fanned.samples, fanned_ref.samples)
    # processes with no batched counterpart for the knob still reject it
    with pytest.raises(TypeError, match="tail_threshold"):
        estimate_dispersion(g, "uniform", reps=2, seed=2, tail_threshold=4)


# ----------------------------------------------------------------------
# bootstrap_ci fast path
# ----------------------------------------------------------------------


def test_bootstrap_ci_mean_fast_path_unchanged():
    """The vectorised default-statistic path returns the identical
    interval for a fixed seed, and matches the generic path bitwise."""
    rng = np.random.default_rng(5)
    x = rng.gamma(2.0, 3.0, size=200)
    lo, hi = bootstrap_ci(x, seed=123)
    assert (lo, hi) == bootstrap_ci(x, seed=123)
    # the generic path, forced through a wrapper that is not np.mean
    lo_ref, hi_ref = bootstrap_ci(x, stat=lambda row: np.mean(row), seed=123)
    assert (lo, hi) == (lo_ref, hi_ref)
    # the interval brackets the sample mean for a well-behaved sample
    assert lo < float(x.mean()) < hi
    # non-default statistics still work
    lo_med, hi_med = bootstrap_ci(x, stat=np.median, seed=123)
    assert lo_med < float(np.median(x)) < hi_med
