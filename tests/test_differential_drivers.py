"""Differential driver harness: one sweep pinning every execution mode.

The batched subsystem's whole contract is that **dispatch is purely a
performance decision**: for every process, running the serial oracle per
repetition, the lock-step batched driver, or the shared-memory fan-out
over the children of one ``SeedSequence`` must produce bit-identical
results — ``τ``, step counts, settlement, settle order, the per-process
extras (``settle_clock``, ``durations``, the ``faithful_r`` schedule)
and, since the chunked trajectory store landed, full ``record=True``
trajectories.

Instead of one hand-written pin per driver per PR, this module sweeps
the whole matrix in the style of scikit-learn's estimator checks:

    5 processes (+ lazy / faithful_r variants)
      x {serial oracle, batched lock-step, batched w/ finisher, n_jobs=2}
        x {record on, record off}

Repetition count and graph are chosen to *straddle the scalar tail
finisher*: with ``REPS`` below the default ``tail_threshold`` the
sequential family hands every repetition to the scalar micro-loop
mid-stream, while the parallel driver starts wide (``reps x particles``
live walkers) and crosses the threshold only deep in the cycle's
settlement tail — so both the pure lock-step and the handoff paths are
exercised and compared against the same serial oracle.

Since the neighbour-kernel seam landed, the whole matrix additionally
runs on the *implicit* build of the same family (``cycle_graph(24,
implicit=True)``): the serial oracle always runs on the CSR build, so
each implicit case pins cross-build bit-identity through every driver —
including the descriptor round-trip across the ``n_jobs=2`` shard
boundary, where the implicit graph ships as ``(family, params)`` instead
of a shared-memory segment.

Since the array-backend seam landed, the matrix additionally runs with
``backend`` set to every registered exact-bitstream backend
(``numpy``, ``numpy_strict``): the seam, like dispatch, must be purely
a performance decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import StateBudget
from repro.experiments import estimate_dispersion
from repro.experiments.runner import BATCHED_DRIVERS, PROCESS_DRIVERS
from repro.graphs import cycle_graph
from repro.kernels import available_kernels
from repro.utils.rng import spawn_seed_sequences

PARENT_SEED = 20260731
REPS = 6  # < default tail_threshold: the sequential finisher engages at once
GRAPH = cycle_graph(24)  # the serial oracle's build — always CSR

#: The graph the mode-under-test runs on: the CSR build (classic
#: self-consistency) or the implicit build (cross-build bit-identity).
GRAPH_BUILDS = {
    "csr": GRAPH,
    "implicit": cycle_graph(24, implicit=True),
}

#: (process, driver kwargs) — every supported mode of every process.
CASES = [
    ("sequential", {}),
    ("sequential", {"lazy": True}),
    ("parallel", {}),
    ("parallel", {"lazy": True}),
    ("uniform", {}),
    ("uniform", {"faithful_r": True}),
    ("ctu", {}),
    ("c-sequential", {}),
]

#: Extra (object.__setattr__) attributes each process attaches.
EXTRAS = {
    "ctu": ("settle_clock",),
    "c-sequential": ("durations",),
}

#: Processes whose batched driver takes the finisher knob.
TAIL_TUNABLE = {"sequential", "parallel"}


def case_id(case):
    process, kwargs = case
    return process + ("-" + ",".join(sorted(kwargs)) if kwargs else "")


def assert_result_identical(s, b, extras=()):
    assert s.process == b.process
    assert s.graph_name == b.graph_name
    assert (s.n, s.origin, s.num_particles) == (b.n, b.origin, b.num_particles)
    assert s.dispersion_time == b.dispersion_time
    assert s.total_steps == b.total_steps
    assert s.ticks == b.ticks
    assert np.array_equal(s.steps, b.steps)
    assert np.array_equal(s.settled_at, b.settled_at)
    assert np.array_equal(s.settle_order, b.settle_order)
    assert s.trajectories == b.trajectories  # None == None when not recording
    for name in extras:
        assert np.array_equal(getattr(s, name), getattr(b, name)), name


def serial_oracle(process, kwargs, record):
    return [
        PROCESS_DRIVERS[process](GRAPH, 0, seed=s, record=record, **kwargs)
        for s in spawn_seed_sequences(PARENT_SEED, REPS)
    ]


@pytest.mark.parametrize("build", GRAPH_BUILDS, ids=GRAPH_BUILDS)
@pytest.mark.parametrize("record", [False, True], ids=["plain", "record"])
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_batched_drivers_match_serial_oracle(case, record, build):
    """Lock-step drivers (finisher on and off) vs the serial reference."""
    process, kwargs = case
    extras = EXTRAS.get(process, ())
    if kwargs.get("faithful_r"):
        extras = (*extras, "schedule")
    serial = serial_oracle(process, kwargs, record)
    modes = [{}]
    if process in TAIL_TUNABLE:
        # 0 = pure lock-step to the last settlement; default straddles
        modes.append({"tail_threshold": 0})
    for mode in modes:
        batch = BATCHED_DRIVERS[process](
            GRAPH_BUILDS[build],
            0,
            seeds=spawn_seed_sequences(PARENT_SEED, REPS),
            record=record,
            **kwargs,
            **mode,
        )
        assert len(batch) == REPS
        for s, b in zip(serial, batch):
            assert_result_identical(s, b, extras)
            if record:
                assert b.trajectories is not None


@pytest.mark.parametrize("build", GRAPH_BUILDS, ids=GRAPH_BUILDS)
@pytest.mark.parametrize("record", [False, True], ids=["plain", "record"])
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_estimate_modes_match_serial_oracle(case, record, build):
    """serial / forced-batched / auto / n_jobs=2 estimates, one seed plan."""
    process, kwargs = case
    serial = serial_oracle(process, kwargs, record)
    tau = np.asarray([float(r.dispersion_time) for r in serial])
    totals = np.asarray([r.total_steps for r in serial], dtype=np.int64)
    trajectories = [r.trajectories for r in serial] if record else None
    schedules = (
        [r.schedule for r in serial] if kwargs.get("faithful_r") else None
    )
    for mode in ({"batched": True}, {"batched": "auto"}, {"n_jobs": 2}):
        est = estimate_dispersion(
            GRAPH_BUILDS[build],
            process,
            reps=REPS,
            seed=PARENT_SEED,
            record=record,
            **kwargs,
            **mode,
        )
        assert np.array_equal(est.samples, tau), mode
        assert np.array_equal(est.total_samples, totals), mode
        assert est.trajectories == trajectories, mode
        if schedules is None:
            assert est.schedules is None
        else:
            assert all(
                np.array_equal(a, b) for a, b in zip(est.schedules, schedules)
            ), mode


#: Budget shapes forcing every cohort geometry on GRAPH (n = m = 24,
#: REPS = 6): one repetition per cohort, 3-repetition cohorts (two
#: cohorts), a particle cap *below one repetition's m* (parallel
#: additionally chunks mid-round), and a byte budget tight enough to
#: force cohorts and shrink the streaming uniform buffers.
BUDGETS = {
    "cohort1": StateBudget(particles=24),
    "cohort3": StateBudget(particles=72),
    "subrep": StateBudget(particles=8),
    "bytes2k": StateBudget(bytes=2000),
}


@pytest.mark.parametrize("budget", BUDGETS, ids=BUDGETS)
@pytest.mark.parametrize("record", [False, True], ids=["plain", "record"])
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_budgeted_batched_matches_serial_oracle(case, record, budget):
    """Every budget geometry replays the serial oracle bit for bit.

    Cohort boundaries, mid-round particle chunks and shrunken stream
    buffers are all invisible in the results — the same guarantees that
    make batching itself invisible (per-repetition streams, ufunc
    slice-invariance, double-stream chunk-invariance)."""
    process, kwargs = case
    extras = EXTRAS.get(process, ())
    if kwargs.get("faithful_r"):
        extras = (*extras, "schedule")
    serial = serial_oracle(process, kwargs, record)
    modes = [{}]
    if process in TAIL_TUNABLE:
        modes.append({"tail_threshold": 0})
    for mode in modes:
        batch = BATCHED_DRIVERS[process](
            GRAPH,
            0,
            seeds=spawn_seed_sequences(PARENT_SEED, REPS),
            record=record,
            state_budget=BUDGETS[budget],
            **kwargs,
            **mode,
        )
        assert len(batch) == REPS
        for s, b in zip(serial, batch):
            assert_result_identical(s, b, extras)


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_budgeted_estimates_match_serial_oracle(case):
    """``state_budget`` through the runner: forced batch and fan-out.

    ``n_jobs=2`` with a 3-repetition cohort exercises the cohort-aligned
    shard planning (each worker gets whole cohorts)."""
    process, kwargs = case
    serial = serial_oracle(process, kwargs, True)
    tau = np.asarray([float(r.dispersion_time) for r in serial])
    trajectories = [r.trajectories for r in serial]
    for mode in ({"batched": True}, {"batched": True, "n_jobs": 2}):
        est = estimate_dispersion(
            GRAPH,
            process,
            reps=REPS,
            seed=PARENT_SEED,
            record=True,
            state_budget=StateBudget(particles=72),
            **kwargs,
            **mode,
        )
        assert np.array_equal(est.samples, tau), mode
        assert est.trajectories == trajectories, mode


@pytest.mark.parametrize("backend", ["numpy", "numpy_strict"])
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_backend_axis_matches_serial_oracle(case, backend):
    """Every registered exact-bitstream backend replays the serial oracle.

    The ``backend=`` axis of the lock-step drivers and the runner: the
    default ``numpy`` backend must be bit-identical by the dispatch
    contract, and ``numpy_strict`` additionally asserts every primitive
    call on the hot path stays on protocol dtypes — a call site that
    drifts off the seam fails loudly here rather than silently pinning
    the code to host numpy."""
    process, kwargs = case
    extras = EXTRAS.get(process, ())
    if kwargs.get("faithful_r"):
        extras = (*extras, "schedule")
    serial = serial_oracle(process, kwargs, False)
    batch = BATCHED_DRIVERS[process](
        GRAPH,
        0,
        seeds=spawn_seed_sequences(PARENT_SEED, REPS),
        backend=backend,
        **kwargs,
    )
    assert len(batch) == REPS
    for s, b in zip(serial, batch):
        assert_result_identical(s, b, extras)
    est = estimate_dispersion(
        GRAPH, process, reps=REPS, seed=PARENT_SEED, backend=backend, **kwargs
    )
    tau = np.asarray([float(r.dispersion_time) for r in serial])
    assert np.array_equal(est.samples, tau)


#: Kernel providers forced through the drivers: ``numpy`` is the always-
#: available reference fallback; compiled providers are skipped (not
#: silently passed) when their toolchain is absent on this host — CI runs
#: dedicated legs with each one installed.
KERNEL_PROVIDERS = [
    pytest.param(
        name,
        marks=()
        if ok
        else pytest.mark.skip(reason=f"kernel provider {name!r} unavailable"),
    )
    for name, ok in sorted(available_kernels().items())
]


@pytest.mark.parametrize("kernels", KERNEL_PROVIDERS)
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_kernels_axis_matches_serial_oracle(case, kernels, monkeypatch):
    """Every kernel provider replays the serial oracle bit for bit.

    The compiled seam, like dispatch and the array backend, must be a
    pure performance decision: the fused offset+gather step, the
    counting-scatter settlement round, the vectorised vacancy probe and
    both scalar tail finishers all engage here (``record=True`` keeps the
    store-active paths honest too — recording disables the compiled
    finishers but not the lock-step kernels), and every result field must
    stay byte-identical to the per-repetition serial loop.

    ``min_width`` is forced to 0 so this small graph still drives the
    compiled array kernels — under the default width gate these rounds
    would stay on the numpy expressions and pin nothing."""
    from repro.kernels import CompiledKernels

    monkeypatch.setattr(CompiledKernels, "min_width", 0)
    process, kwargs = case
    extras = EXTRAS.get(process, ())
    if kwargs.get("faithful_r"):
        extras = (*extras, "schedule")
    for record in (False, True):
        serial = serial_oracle(process, kwargs, record)
        modes = [{}]
        if process in TAIL_TUNABLE:
            modes.append({"tail_threshold": 0})
        for mode in modes:
            for build in GRAPH_BUILDS:
                # implicit builds expose no CSR arrays: the fused step and
                # the finishers fall back per-graph while the settlement
                # kernels stay engaged — both gates must be invisible
                batch = BATCHED_DRIVERS[process](
                    GRAPH_BUILDS[build],
                    0,
                    seeds=spawn_seed_sequences(PARENT_SEED, REPS),
                    record=record,
                    kernels=kernels,
                    **kwargs,
                    **mode,
                )
                assert len(batch) == REPS
                for s, b in zip(serial, batch):
                    assert_result_identical(s, b, extras)


@pytest.mark.parametrize("kernels", KERNEL_PROVIDERS)
@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_kernels_through_runner(case, kernels):
    """``kernels=`` through ``estimate_dispersion``: forced batch and the
    ``n_jobs=2`` fan-out, whose shard workers re-resolve the provider
    from the pickled :class:`~repro.kernels.KernelSet`."""
    process, kwargs = case
    serial = serial_oracle(process, kwargs, False)
    tau = np.asarray([float(r.dispersion_time) for r in serial])
    for mode in ({"batched": True}, {"batched": True, "n_jobs": 2}):
        est = estimate_dispersion(
            GRAPH,
            process,
            reps=REPS,
            seed=PARENT_SEED,
            kernels=kernels,
            **kwargs,
            **mode,
        )
        assert np.array_equal(est.samples, tau), mode


@pytest.mark.parametrize("kernels", KERNEL_PROVIDERS)
def test_kernels_deep_tail_and_budget(kernels):
    """Compiled finishers against a genuine mid-run handoff (reps above
    the tail threshold) and compiled lock-step under budget cohorts."""
    g = cycle_graph(32)
    reps = 24
    for process in ("sequential", "parallel"):
        serial = [
            PROCESS_DRIVERS[process](g, 0, seed=s)
            for s in spawn_seed_sequences(11, reps)
        ]
        batch = BATCHED_DRIVERS[process](
            g, 0, seeds=spawn_seed_sequences(11, reps), kernels=kernels
        )
        for s, b in zip(serial, batch):
            assert_result_identical(s, b)
        budgeted = BATCHED_DRIVERS[process](
            g,
            0,
            seeds=spawn_seed_sequences(11, reps),
            kernels=kernels,
            state_budget=StateBudget(particles=32 * 9),
        )
        for s, b in zip(serial, budgeted):
            assert_result_identical(s, b)


@pytest.mark.parametrize("build", ["csr", "implicit"])
def test_deep_tail_straddles_finisher_with_recording(build):
    """A repetition count above the threshold: the lock-step phase runs
    first and the finisher takes over only for the last stragglers, so
    the trajectory store's handoff seeds the scalar micro-loop mid-walk.
    On the implicit build the finisher's adjacency access goes through
    the lazy per-vertex view instead of materialised lists."""
    oracle_g = cycle_graph(32)
    g = cycle_graph(32, implicit=(build == "implicit"))
    reps = 24  # > default tail_threshold=16: genuine mid-run handoff
    for process in ("sequential", "parallel"):
        serial = [
            PROCESS_DRIVERS[process](oracle_g, 0, seed=s, record=True)
            for s in spawn_seed_sequences(11, reps)
        ]
        batch = BATCHED_DRIVERS[process](
            g, 0, seeds=spawn_seed_sequences(11, reps), record=True
        )
        for s, b in zip(serial, batch):
            assert_result_identical(s, b)
