"""Tests for the shared-memory fan-out subsystem (experiments.fanout)."""

import gc
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import estimate_dispersion
from repro.experiments.fanout import (
    SharedGraph,
    SharedGraphSpec,
    attach,
    plan_shards,
    run_shard,
)
from repro.graphs import cycle_graph, grid_graph
from repro.graphs.csr import Graph
from repro.utils.rng import spawn_seed_sequences

_SHM_DIR = Path("/dev/shm")


def _segments() -> set[str]:
    """Names of live POSIX shared-memory segments created by Python."""
    if not _SHM_DIR.exists():
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in _SHM_DIR.iterdir() if p.name.startswith("psm_")}


class TestSharedGraph:
    def test_roundtrip_is_zero_copy(self):
        g = grid_graph(4, 4)
        with SharedGraph(g) as sg:
            assert sg.spec.n == g.n and sg.spec.nnz == g.indices.size
            shm, g2 = attach(sg.spec)
            try:
                assert g2 == g
                assert g2.name == g.name
                assert g2.degrees.tolist() == g.degrees.tolist()
                # the reattached CSR arrays are views of the mapping
                packed = np.ndarray(
                    (g.n + 1 + g.indices.size,), dtype=np.int64, buffer=shm.buf
                )
                assert np.shares_memory(g2.indptr, packed)
                assert np.shares_memory(g2.indices, packed)
                assert not g2.indptr.flags.writeable
            finally:
                del g2, packed
                shm.close()

    def test_context_exit_unlinks(self):
        with SharedGraph(cycle_graph(8)) as sg:
            name = sg.spec.block
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self):
        sg = SharedGraph(cycle_graph(8))
        sg.close()
        sg.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=sg.spec.block)

    def test_finalizer_backstop_unlinks_on_gc(self):
        sg = SharedGraph(cycle_graph(8))
        name = sg.spec.block
        del sg
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_exception_inside_context_still_unlinks(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedGraph(cycle_graph(8)) as sg:
                name = sg.spec.block
                raise RuntimeError("boom")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_from_shared_rejects_short_buffer(self):
        with pytest.raises(ValueError, match="too small"):
            Graph.from_shared(bytearray(8), n=4, nnz=8)


class TestPlanShards:
    def test_partitions_contiguously(self):
        for reps in (1, 2, 7, 16, 257):
            for n_jobs in (1, 2, 3, 8):
                shards = plan_shards(reps, n_jobs)
                assert len(shards) == min(n_jobs, reps)
                assert shards[0][0] == 0 and shards[-1][1] == reps
                for (a0, a1), (b0, b1) in zip(shards, shards[1:]):
                    assert a1 == b0  # contiguous, in order
                sizes = [stop - start for start, stop in shards]
                assert min(sizes) >= 1
                assert max(sizes) - min(sizes) <= 1  # balanced

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 2)
        with pytest.raises(ValueError):
            plan_shards(4, 0)


class TestFanoutEstimate:
    # one synchronous and one tick-scheduled process; repetition counts
    # chosen so each 2-way shard crosses its batched-dispatch threshold
    @pytest.mark.parametrize("process,reps", [("parallel", 8), ("ctu", 32)])
    def test_tri_modal_bit_identity(self, process, reps):
        """Serial oracle, forced in-process batching and the shared-memory
        shard path must agree bit for bit over the same seed."""
        g = cycle_graph(16)
        serial = estimate_dispersion(g, process, reps=reps, seed=5, batched=False)
        batched = estimate_dispersion(g, process, reps=reps, seed=5, batched=True)
        fanned = estimate_dispersion(g, process, reps=reps, seed=5, n_jobs=2)
        assert np.array_equal(serial.samples, batched.samples)
        assert np.array_equal(serial.samples, fanned.samples)
        assert np.array_equal(serial.total_samples, fanned.total_samples)

    def test_more_jobs_than_reps(self):
        g = cycle_graph(12)
        a = estimate_dispersion(g, "sequential", reps=2, seed=4, n_jobs=1)
        b = estimate_dispersion(g, "sequential", reps=2, seed=4, n_jobs=8)
        assert np.array_equal(a.samples, b.samples)

    def test_forced_batched_composes_with_jobs(self):
        g = cycle_graph(12)
        a = estimate_dispersion(g, "parallel", reps=6, seed=3, batched=True)
        b = estimate_dispersion(g, "parallel", reps=6, seed=3, batched=True, n_jobs=2)
        assert np.array_equal(a.samples, b.samples)

    def test_forced_batched_rejects_unsupported_kwargs_before_fanout(self):
        # unknown kwargs now die in the upfront driver-kwargs validation
        # (TypeError naming the options), still before any worker spawns
        with pytest.raises(TypeError, match="faithful_r"):
            estimate_dispersion(
                cycle_graph(12),
                "parallel",
                reps=4,
                seed=0,
                batched=True,
                n_jobs=2,
                faithful_r=True,
            )

    def test_n_jobs_validation(self):
        with pytest.raises(ValueError, match="n_jobs"):
            estimate_dispersion(cycle_graph(8), reps=2, n_jobs=0)

    def test_no_leaked_segments(self):
        before = _segments()
        estimate_dispersion(cycle_graph(12), "parallel", reps=6, seed=1, n_jobs=2)
        assert _segments() - before == set()

    def test_worker_failure_propagates_and_cleans_up(self):
        """A shard raising mid-run must surface the error in the parent and
        still unlink the graph segment (the crash-cleanup guarantee)."""
        before = _segments()
        with pytest.raises(RuntimeError, match="max_rounds"):
            estimate_dispersion(
                cycle_graph(12),
                "parallel",
                reps=4,
                seed=2,
                n_jobs=2,
                batched=False,
                max_rounds=0,
            )
        assert _segments() - before == set()

    def test_shards_batch_at_any_repetition_count(self):
        """The old buffer cap could decline a large in-process batch that
        its half-shards would have accepted; with the streaming buffers
        there is no memory criterion left — full batch and shards both
        route through the lock-step drivers."""
        from repro.experiments.runner import _use_batched

        g = cycle_graph(8)
        full, half = 3000, 1500  # plan_shards(3000, 2) -> two 1500-rep shards
        assert _use_batched("parallel", g, full, 1, {}, "auto")
        assert _use_batched("parallel", g, half, 1, {}, "auto")

    def test_n_jobs_clamped_to_reps(self, monkeypatch):
        """n_jobs > reps must not plan empty shards or idle workers: the
        worker count is clamped to reps, and reps=1 never pays for a
        process pool at all (regression: n_jobs=4 with reps in {1, 2})."""
        import repro.experiments.fanout as fanout_mod

        g = cycle_graph(12)
        ref1 = estimate_dispersion(g, "sequential", reps=1, seed=9, n_jobs=1)
        ref2 = estimate_dispersion(g, "sequential", reps=2, seed=9, n_jobs=1)

        def _no_pool(*args, **kwargs):
            raise AssertionError("reps=1 must run in-process, not fan out")

        monkeypatch.setattr(fanout_mod, "fanout_estimate", _no_pool)
        solo = estimate_dispersion(g, "sequential", reps=1, seed=9, n_jobs=4)
        assert np.array_equal(ref1.samples, solo.samples)
        monkeypatch.undo()

        captured = {}
        real_fanout = fanout_mod.fanout_estimate

        def _spy(*args, **kwargs):
            captured["n_jobs"] = kwargs["n_jobs"]
            return real_fanout(*args, **kwargs)

        monkeypatch.setattr(fanout_mod, "fanout_estimate", _spy)
        duo = estimate_dispersion(g, "sequential", reps=2, seed=9, n_jobs=4)
        assert captured["n_jobs"] == 2
        assert np.array_equal(ref2.samples, duo.samples)


class TestRunShard:
    def test_run_shard_matches_serial_oracle(self):
        """Direct worker-entry-point check, without a pool in between."""
        g = cycle_graph(16)
        children = spawn_seed_sequences(17, 6)
        oracle = estimate_dispersion(
            g, "parallel", reps=6, seed=17, batched=False
        )
        with SharedGraph(g) as sg:
            out = run_shard(sg.spec, "parallel", 0, children[2:5], {}, "auto")
        assert [o[0] for o in out] == oracle.samples[2:5].tolist()

    def test_spec_is_plain_data(self):
        spec = SharedGraphSpec(block="x", n=1, nnz=0, name="g")
        assert (spec.block, spec.n, spec.nnz, spec.name) == ("x", 1, 0, "g")
