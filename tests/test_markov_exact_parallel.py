"""Tests for the exact Parallel-IDLA analyzer — and through it, *exact*
verification of Theorem 4.1 on small graphs."""

import numpy as np
import pytest

from repro.core import parallel_idla
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph
from repro.markov import (
    analyze_parallel_idla,
    analyze_sequential_idla,
    exact_expected_sequential_dispersion,
)
from repro.utils.rng import stable_seed

GRAPHS_ORIGINS = [
    (path_graph(3), 1),
    (path_graph(4), 0),
    (cycle_graph(5), 0),
    (cycle_graph(6), 0),
    (complete_graph(5), 0),
    (star_graph(5), 0),
]


class TestClosedForms:
    def test_path3_middle(self):
        # round 1 settles one side; w.p. 1/2 the loser sits on an occupied
        # endpoint and needs the endpoint-to-endpoint hitting time 4:
        # E[τ_par] = 1 + (1/2)·4 = 3
        res = analyze_parallel_idla(path_graph(3), 1)
        assert np.isclose(res.expected_dispersion, 3.0)

    def test_two_vertices(self):
        from repro.graphs import Graph

        g = Graph.from_edges(2, [(0, 1)])
        res = analyze_parallel_idla(g, 0)
        assert np.isclose(res.expected_dispersion, 1.0)
        assert np.isclose(res.expected_total_steps, 1.0)

    def test_single_vertex(self):
        from repro.graphs import Graph

        g = Graph(np.array([0, 0]), np.array([], dtype=np.int64))
        res = analyze_parallel_idla(g, 0)
        assert res.expected_dispersion == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_parallel_idla(cycle_graph(12))
        with pytest.raises(ValueError):
            analyze_parallel_idla(cycle_graph(5), origin=9)


class TestTheorem41Exact:
    @pytest.mark.parametrize("g,o", GRAPHS_ORIGINS, ids=lambda x: getattr(x, "name", x))
    def test_total_steps_identity_exact(self, g, o):
        """Two independent exact computations — the parallel joint-chain
        solve and the sequential aggregate DP — must produce the *same*
        expected total step count (Theorem 4.1's equidistribution)."""
        par = analyze_parallel_idla(g, o)
        seq = analyze_sequential_idla(g, o)
        assert np.isclose(
            par.expected_total_steps, seq.expected_total_steps, rtol=1e-9
        )

    @pytest.mark.parametrize("g,o", GRAPHS_ORIGINS, ids=lambda x: getattr(x, "name", x))
    def test_domination_exact(self, g, o):
        """E[τ_seq] ≤ E[τ_par] exactly (tolerance covers the sequential
        CDF's truncated-tail extrapolation)."""
        par = analyze_parallel_idla(g, o).expected_dispersion
        seq = exact_expected_sequential_dispersion(g, o)
        assert seq <= par + 1e-6

    def test_strict_gap_on_clique(self):
        # the clique's parallel slowdown is strict already at n = 5
        par = analyze_parallel_idla(complete_graph(5)).expected_dispersion
        seq = exact_expected_sequential_dispersion(complete_graph(5))
        assert par > seq * 1.05


class TestAgainstSimulation:
    @pytest.mark.parametrize(
        "g", [cycle_graph(6), complete_graph(5), path_graph(4)], ids=lambda g: g.name
    )
    def test_driver_matches_exact(self, g):
        exact = analyze_parallel_idla(g, 0)
        reps = 1500
        disp = np.empty(reps)
        tot = np.empty(reps)
        for r in range(reps):
            res = parallel_idla(g, 0, seed=stable_seed("xp", g.name, r))
            disp[r], tot[r] = res.dispersion_time, res.total_steps
        assert (
            abs(disp.mean() - exact.expected_dispersion)
            < 4 * disp.std() / np.sqrt(reps) + 0.02
        )
        assert (
            abs(tot.mean() - exact.expected_total_steps)
            < 4 * tot.std() / np.sqrt(reps) + 0.02
        )
