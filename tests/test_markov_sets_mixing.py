"""Tests for set hitting times, mixing times, cover bounds and returns."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
)
from repro.markov import (
    expected_visits,
    harmonic_number,
    hitting_time,
    lemma_c1_bound,
    matthews_lower_bound,
    matthews_upper_bound,
    max_set_hitting_time,
    mixing_time,
    mixing_time_bounds,
    return_probabilities,
    set_hitting_time_from,
    set_hitting_times,
    stationary_distribution,
    stationary_set_hitting_time,
    step_distributions,
    total_variation_distance,
    worst_case_tv,
)


class TestSetHitting:
    def test_singleton_matches_hitting_time(self, small_graph):
        v = small_graph.n - 1
        h_set = set_hitting_times(small_graph, [v])
        for u in range(small_graph.n):
            assert np.isclose(h_set[u], hitting_time(small_graph, u, v), atol=1e-8)

    def test_zero_on_targets(self, c8):
        h = set_hitting_times(c8, [1, 5])
        assert h[1] == 0 and h[5] == 0

    def test_full_set_is_zero(self, c8):
        assert np.allclose(set_hitting_times(c8, range(8)), 0.0)

    def test_monotone_in_set(self, c8):
        # adding targets can only reduce hitting times
        h1 = set_hitting_times(c8, [0])
        h2 = set_hitting_times(c8, [0, 4])
        assert np.all(h2 <= h1 + 1e-9)

    def test_cycle_two_targets_gamblers_ruin(self):
        # on C_6 with targets {0, 3}: from 1, ruin on segment 0-1-2-3 => 1*2=2
        h = set_hitting_times(cycle_graph(6), [0, 3])
        assert np.isclose(h[1], 2.0)
        assert np.isclose(h[2], 2.0)

    def test_from_distribution(self, c8):
        pi = stationary_distribution(c8)
        val = set_hitting_time_from(c8, pi, [0])
        assert np.isclose(val, stationary_set_hitting_time(c8, [0]))

    def test_from_vertex_int(self, c8):
        assert np.isclose(
            set_hitting_time_from(c8, 2, [0]), hitting_time(c8, 2, 0)
        )

    def test_empty_target_rejected(self, c8):
        with pytest.raises(ValueError):
            set_hitting_times(c8, [])

    def test_max_set_exhaustive_clusters(self):
        # t_hit(pi, S) is maximised by a *clustered* pair (adjacent on the
        # cycle), not a spread-out one — hitting any point of a tight
        # cluster from stationarity is a single long excursion.
        g = cycle_graph(8)
        val, subset = max_set_hitting_time(g, 2, method="exhaustive")
        d = abs(int(subset[0]) - int(subset[1]))
        assert min(d, 8 - d) == 1
        antipodal = stationary_set_hitting_time(g, [0, 4])
        assert val > antipodal

    def test_max_set_heuristics_lower_bound_exact(self):
        g = cycle_graph(10)
        exact, _ = max_set_hitting_time(g, 2, method="exhaustive")
        greedy, _ = max_set_hitting_time(g, 2, method="greedy")
        sampled, _ = max_set_hitting_time(g, 2, method="sample", samples=60, seed=0)
        assert greedy <= exact + 1e-9
        assert sampled <= exact + 1e-9
        # the clustering greedy is exact on the vertex-transitive cycle
        assert np.isclose(greedy, exact)

    def test_max_set_size_validation(self, c8):
        with pytest.raises(ValueError):
            max_set_hitting_time(c8, 0)
        with pytest.raises(ValueError):
            max_set_hitting_time(c8, 9)


class TestMixing:
    def test_tv_distance_basic(self):
        assert total_variation_distance([1, 0], [0, 1]) == 1.0
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_tv_rejects_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance([1, 0], [1, 0, 0])

    def test_worst_case_tv_decreasing(self, k8):
        ds = [worst_case_tv(k8, t) for t in range(0, 6)]
        assert all(a >= b - 1e-12 for a, b in zip(ds, ds[1:]))

    def test_worst_case_tv_t0(self, c8):
        assert np.isclose(worst_case_tv(c8, 0), 1 - stationary_distribution(c8).max())

    def test_mixing_time_definition(self, c8):
        t = mixing_time(c8, 0.25)
        assert worst_case_tv(c8, t) <= 0.25
        assert worst_case_tv(c8, t - 1) > 0.25

    def test_complete_graph_mixes_fast(self):
        assert mixing_time(complete_graph(64), lazy=True) <= 3

    def test_cycle_mixing_quadratic(self):
        t16 = mixing_time(cycle_graph(16))
        t32 = mixing_time(cycle_graph(32))
        ratio = t32 / t16
        assert 3.0 < ratio < 5.5  # ~4 for Theta(n^2)

    def test_nonlazy_bipartite_raises(self):
        with pytest.raises(RuntimeError):
            mixing_time(cycle_graph(6), lazy=False, t_max=10_000)

    def test_bounds_sandwich(self, small_graph):
        lo, hi = mixing_time_bounds(small_graph, 0.25)
        t = mixing_time(small_graph, 0.25)
        assert lo <= t + 1  # lower bound (integer slack)
        assert t <= hi + 1

    def test_mixing_eps_validation(self, c8):
        with pytest.raises(ValueError):
            mixing_time(c8, 0.0)


class TestCover:
    def test_harmonic(self):
        assert harmonic_number(0) == 0.0
        assert np.isclose(harmonic_number(3), 1 + 0.5 + 1 / 3)

    def test_matthews_upper_complete(self):
        # K_n cover time = n H_{n-1} exactly; Matthews gives (n-1) H_{n-1}
        n = 16
        ub = matthews_upper_bound(complete_graph(n))
        exact = (n - 1) * harmonic_number(n - 1)
        assert np.isclose(ub, exact)

    def test_matthews_upper_dominates_lower(self, small_graph):
        assert matthews_upper_bound(small_graph) >= matthews_lower_bound(small_graph)

    def test_matthews_lower_subset(self):
        g = path_graph(8)
        full = matthews_lower_bound(g)
        ends = matthews_lower_bound(g, subset=[0, 7])
        assert ends >= full  # endpoints are far apart -> better bound

    def test_matthews_lower_needs_two(self, c8):
        with pytest.raises(ValueError):
            matthews_lower_bound(c8, subset=[0])


class TestReturns:
    def test_step_distributions_rows_stochastic(self, c8):
        D = step_distributions(c8, 0, 5)
        assert np.allclose(D.sum(axis=1), 1.0)
        assert D[0, 0] == 1.0

    def test_return_probabilities_cycle_parity(self):
        p = return_probabilities(cycle_graph(8), 0, 4)
        assert p[1] == 0.0 and p[3] == 0.0  # odd steps impossible
        assert p[2] > 0

    def test_expected_visits_additive(self, c8):
        ev_a = expected_visits(c8, 0, [1], 6)
        ev_b = expected_visits(c8, 0, [2], 6)
        ev_ab = expected_visits(c8, 0, [1, 2], 6)
        assert np.isclose(ev_ab, ev_a + ev_b)

    def test_lemma_c1_dominates_exact(self):
        # lazy return probability <= bound, checked across several t
        g = hypercube_graph(3)
        for t in range(0, 8):
            exact = step_distributions(g, 0, t, lazy=True)[t, 0]
            assert exact <= lemma_c1_bound(g, 0, 0, t) + 1e-12

    def test_lemma_c1_cross_pair(self):
        g = cycle_graph(9)
        for t in range(0, 10):
            exact = step_distributions(g, 0, t, lazy=True)[t, 3]
            assert exact <= lemma_c1_bound(g, 0, 3, t) + 1e-12
