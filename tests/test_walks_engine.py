"""Tests for the vectorised walk engine and single-walker kernels."""

import numpy as np
import pytest

from repro.graphs import complete_graph, path_graph, star_graph
from repro.markov import stationary_distribution, transition_matrix
from repro.walks import SingleWalkKernel, WalkEngine, random_walk, walk_until_hit


class TestWalkEngineStep:
    def test_steps_land_on_neighbors(self, small_graph):
        eng = WalkEngine(small_graph, seed=0)
        pos = np.zeros(50, dtype=np.int64)
        new = eng.step(pos)
        nbrs = set(small_graph.neighbors(0).tolist())
        assert set(new.tolist()) <= nbrs

    def test_in_place_output(self, c8):
        eng = WalkEngine(c8, seed=1)
        pos = np.zeros(10, dtype=np.int64)
        out = eng.step(pos, out=pos)
        assert out is pos

    def test_one_step_distribution_chi2(self):
        # from the centre of a star: uniform over leaves
        g = star_graph(5)
        eng = WalkEngine(g, seed=2)
        pos = np.zeros(40_000, dtype=np.int64)
        new = eng.step(pos)
        counts = np.bincount(new, minlength=5)[1:]
        expected = 10_000
        chi2 = ((counts - expected) ** 2 / expected).sum()
        assert chi2 < 16.3  # 99.9% quantile of chi2(3) is 16.27

    def test_deterministic_by_seed(self, c8):
        a = WalkEngine(c8, seed=7).step(np.zeros(5, dtype=np.int64))
        b = WalkEngine(c8, seed=7).step(np.zeros(5, dtype=np.int64))
        assert np.array_equal(a, b)

    def test_lazy_step_holds(self, c8):
        eng = WalkEngine(c8, seed=3)
        pos = np.zeros(20_000, dtype=np.int64)
        new = eng.step_lazy(pos)
        frac_held = (new == 0).mean()
        assert 0.45 < frac_held < 0.55

    def test_lazy_hold_probability_param(self, c8):
        eng = WalkEngine(c8, seed=4)
        pos = np.zeros(20_000, dtype=np.int64)
        new = eng.step_lazy(pos, hold=0.9)
        assert (new == 0).mean() > 0.85

    def test_lazy_rejects_bad_hold(self, c8):
        eng = WalkEngine(c8, seed=0)
        with pytest.raises(ValueError):
            eng.step_lazy(np.zeros(2, dtype=np.int64), hold=1.0)

    def test_step_subset(self, c8):
        eng = WalkEngine(c8, seed=5)
        pos = np.zeros(6, dtype=np.int64)
        active = np.array([True, False, True, False, False, False])
        eng.step_subset(pos, active)
        assert pos[1] == 0 and pos[3] == 0
        assert pos[0] in (1, 7) and pos[2] in (1, 7)


class TestTrajectoriesAndDistribution:
    def test_trajectories_shape_and_validity(self, c8):
        eng = WalkEngine(c8, seed=6)
        traj = eng.trajectories(np.zeros(4, dtype=np.int64), 10)
        assert traj.shape == (11, 4)
        for t in range(10):
            for k in range(4):
                assert c8.has_edge(int(traj[t, k]), int(traj[t + 1, k]))

    def test_endpoint_distribution_converges_to_pi(self):
        # K_n mixes in O(1); empirical law after 8 steps ~ pi
        g = complete_graph(6)
        eng = WalkEngine(g, seed=8)
        dist = eng.endpoint_distribution(0, 8, 30_000)
        pi = stationary_distribution(g)
        assert np.abs(dist - pi).max() < 0.02

    def test_two_step_distribution_matches_matrix(self):
        g = path_graph(5)
        eng = WalkEngine(g, seed=9)
        dist = eng.endpoint_distribution(0, 2, 40_000)
        P = transition_matrix(g)
        exact = (P @ P)[0]
        assert np.abs(dist - exact).max() < 0.02


class TestSingleWalker:
    def test_random_walk_is_path(self, small_graph):
        traj = random_walk(small_graph, 0, 30, seed=1)
        assert traj[0] == 0 and len(traj) == 31
        for a, b in zip(traj[:-1], traj[1:]):
            assert small_graph.has_edge(int(a), int(b))

    def test_random_walk_zero_steps(self, c8):
        assert random_walk(c8, 3, 0, seed=0).tolist() == [3]

    def test_random_walk_negative_steps(self, c8):
        with pytest.raises(ValueError):
            random_walk(c8, 0, -1)

    def test_kernel_lazy(self, c8):
        kern = SingleWalkKernel(c8, seed=2)
        holds = sum(kern.step_lazy(0) == 0 for _ in range(4000))
        assert 1700 < holds < 2300

    def test_walk_until_hit_zero_if_start_in_set(self, c8):
        assert walk_until_hit(c8, 2, [2, 5], seed=0) == 0

    def test_walk_until_hit_mean_matches_exact(self):
        # path endpoint hitting: exact 16 for P_5
        g = path_graph(5)
        times = [walk_until_hit(g, 0, [4], seed=s) for s in range(400)]
        assert abs(np.mean(times) - 16.0) < 2.5

    def test_walk_until_hit_max_steps(self, c8):
        with pytest.raises(RuntimeError):
            walk_until_hit(c8, 0, [4], seed=0, max_steps=1)

    def test_walk_until_hit_empty_set(self, c8):
        with pytest.raises(ValueError):
            walk_until_hit(c8, 0, [])


class TestCsrStepDeprecation:
    def test_csr_step_warns_and_matches_neighbor_step(self):
        from repro.graphs import cycle_graph
        from repro.graphs.csr import neighbor_kernel
        from repro.walks.engine import csr_step, neighbor_step

        g = cycle_graph(12)
        rng = np.random.default_rng(5)
        pos = rng.integers(0, g.n, size=64)
        u = rng.random(64)
        with pytest.warns(DeprecationWarning, match="neighbor_step"):
            legacy = csr_step(g.indptr, g.indices, g.degrees, pos, u)
        modern = neighbor_step(neighbor_kernel(g), g.degrees, pos, u)
        assert np.array_equal(legacy, modern)

    def test_csr_step_out_param_still_works(self):
        from repro.graphs import cycle_graph
        from repro.walks.engine import csr_step

        g = cycle_graph(12)
        pos = np.arange(12)
        u = np.full(12, 0.25)
        out = np.empty(12, dtype=pos.dtype)
        with pytest.warns(DeprecationWarning):
            res = csr_step(g.indptr, g.indices, g.degrees, pos, u, out=out)
        assert res is out
