"""Tests for Block, Cut & Paste, and validity predicates."""

import numpy as np
import pytest

from repro.core import (
    Block,
    is_valid_parallel_block,
    is_valid_sequential_block,
    is_valid_uniform_block,
)
from repro.graphs import path_graph


def paper_example_block():
    """The worked example from §4 of the paper (vertices relabelled 0-3)."""
    return Block(
        [
        [0],
        [0, 1],
        [0, 1, 1, 2],
        [0, 1, 0, 1, 2, 3],
        ],
    )


class TestBlockBasics:
    def test_row_lengths(self):
        b = paper_example_block()
        assert b.row_lengths() == [0, 1, 3, 5]
        assert b.total_length == 9
        assert b.max_row_length == 5

    def test_endpoints(self):
        b = paper_example_block()
        assert b.endpoints() == [0, 1, 2, 3]
        assert b.endpoint_row(2) == 2

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Block([[0], [1, 0]])

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            Block([[0], []])

    def test_no_rows_rejected(self):
        with pytest.raises(ValueError):
            Block([])

    def test_copy_independent(self):
        b = paper_example_block()
        c = b.copy()
        c.rows[1].append(9)
        assert b.rows[1] == [0, 1]

    def test_equality(self):
        assert paper_example_block() == paper_example_block()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(paper_example_block())

    def test_visit_multiset(self):
        b = Block([[0], [0, 1]])
        assert b.visit_multiset() == {0: 2, 1: 1}

    def test_arc_multiset(self):
        b = Block([[0], [0, 1], [0, 1, 0, 2]])
        arcs = b.arc_multiset()
        assert arcs[(0, 1)] == 2
        assert arcs[(1, 0)] == 1
        assert arcs[(0, 2)] == 1


class TestCutPaste:
    def test_paper_example(self):
        # CP at (3, 1) of the paper's example (our row 3, cell index 1):
        # cuts [0,1,2,3] tail after the '1' and pastes onto row ending at 1.
        b = paper_example_block()
        b.cut_paste(3, 1)
        assert b.rows == [
            [0],
            [0, 1, 0, 1, 2, 3],
            [0, 1, 1, 2],
            [0, 1],
        ]

    def test_identity_at_endpoints(self):
        b = paper_example_block()
        before = [list(r) for r in b.rows]
        for i in range(b.n):
            b.cut_paste(i, b.row_length(i))
        assert b.rows == before

    def test_preserves_total_length(self):
        b = paper_example_block()
        b.cut_paste(3, 1)
        assert b.total_length == 9

    def test_preserves_endpoint_distinctness(self):
        b = paper_example_block()
        b.cut_paste(3, 1)
        assert sorted(b.endpoints()) == [0, 1, 2, 3]

    def test_preserves_visit_and_arc_multisets(self):
        b = paper_example_block()
        visits, arcs = b.visit_multiset(), b.arc_multiset()
        b.cut_paste(3, 1)
        assert b.visit_multiset() == visits
        assert b.arc_multiset() == arcs

    def test_endpoint_index_maintained(self):
        b = paper_example_block()
        b.cut_paste(3, 1)
        for v in range(4):
            assert b.rows[b.endpoint_row(v)][-1] == v

    def test_out_of_range_cell(self):
        b = paper_example_block()
        with pytest.raises(IndexError):
            b.cut_paste(0, 5)

    def test_chain_of_cut_pastes_stays_consistent(self):
        rng = np.random.default_rng(0)
        b = paper_example_block()
        for _ in range(50):
            i = int(rng.integers(b.n))
            t = int(rng.integers(b.row_length(i) + 1))
            b.cut_paste(i, t)
            assert b.total_length == 9
            assert sorted(b.endpoints()) == [0, 1, 2, 3]


class TestValidity:
    def test_sequential_example_valid(self):
        # paper's sequential reading: rows end at first new vertex
        b = Block([[0], [0, 1], [0, 1, 1, 2], [0, 1, 0, 1, 2, 3]])
        assert is_valid_sequential_block(b)

    def test_sequential_violation(self):
        # vertex 2 first occurs mid-row
        b = Block([[0], [0, 2, 1], [0, 2]])
        assert not is_valid_sequential_block(b)

    def test_parallel_property(self):
        # column-major reading: row 1 must claim vertex 1 at its end
        b = Block([[0], [0, 1], [0, 1, 2]])
        assert is_valid_parallel_block(b)

    def test_parallel_violation(self):
        # in column 1 (reading rows top-down), vertex 1 first occurs in
        # row 1 which continues afterwards
        b = Block([[0], [0, 1, 2], [0, 1]])
        assert not is_valid_parallel_block(b)

    def test_path_check_against_graph(self):
        g = path_graph(3)
        good = Block([[0], [0, 1], [0, 1, 0, 1, 2]])
        assert is_valid_sequential_block(good, g, 0)
        bad_edge = Block([[0], [0, 2], [0, 1]])  # 0-2 not an edge
        assert not is_valid_sequential_block(bad_edge, g, 0)
        bad_origin = Block([[1], [1, 0], [1, 2]])
        assert not is_valid_sequential_block(bad_origin, g, 0)

    def test_uniform_validity(self):
        # schedule moves particle 1 twice then particle 2 twice
        b = Block([[0], [0, 1], [0, 1, 2]])
        # tick0 reads (0,0),(1,0),(2,0); schedule: 1 -> reads (1,1)=1 new,
        # ends row 1 ok; 2 -> (2,1)=1 seen; 2 -> (2,2)=2 new, ends row 2.
        assert is_valid_uniform_block(b, [1, 2, 2])

    def test_uniform_invalid_if_unread(self):
        b = Block([[0], [0, 1], [0, 1, 2]])
        assert not is_valid_uniform_block(b, [1])  # row 2 never finishes

    def test_uniform_wasted_ticks_ok(self):
        b = Block([[0], [0, 1]])
        assert is_valid_uniform_block(b, [1, 1, 1, 0])
