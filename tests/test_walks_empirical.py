"""Tests for Monte-Carlo hitting/cover estimators and Poissonisation."""

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_graph, path_graph
from repro.markov import harmonic_number, hitting_time
from repro.walks import (
    empirical_cover_times,
    empirical_hitting_times,
    empirical_max_hitting_of_path,
    empirical_set_hitting_times,
    exponential_race,
    poissonise_steps,
)


class TestEmpiricalHitting:
    def test_matches_exact_path(self):
        g = path_graph(6)
        samples = empirical_hitting_times(g, 0, 5, reps=600, seed=0)
        exact = hitting_time(g, 0, 5)  # 25
        assert abs(samples.mean() - exact) < 0.15 * exact

    def test_matches_exact_complete(self):
        g = complete_graph(12)
        samples = empirical_hitting_times(g, 0, 5, reps=2000, seed=1)
        assert abs(samples.mean() - 11.0) < 1.0

    def test_zero_when_start_is_target(self, c8):
        samples = empirical_set_hitting_times(c8, 3, [3], reps=5, seed=0)
        assert np.all(samples == 0)

    def test_set_hitting_faster_than_single(self, c8):
        single = empirical_set_hitting_times(c8, 0, [4], reps=400, seed=2).mean()
        both = empirical_set_hitting_times(c8, 0, [3, 4], reps=400, seed=2).mean()
        assert both < single

    def test_lazy_roughly_doubles(self):
        g = cycle_graph(10)
        fast = empirical_set_hitting_times(g, 0, [5], reps=600, seed=3).mean()
        slow = empirical_set_hitting_times(
            g, 0, [5], reps=600, seed=4, lazy=True
        ).mean()
        assert 1.6 < slow / fast < 2.4

    def test_reps_validation(self, c8):
        with pytest.raises(ValueError):
            empirical_hitting_times(c8, 0, 1, reps=0)


class TestEmpiricalCover:
    def test_complete_graph_coupon_collector(self):
        # E[cover K_n] = (n-1) H_{n-1}
        n = 10
        samples = empirical_cover_times(complete_graph(n), 0, reps=800, seed=5)
        exact = (n - 1) * harmonic_number(n - 1)
        assert abs(samples.mean() - exact) < 0.1 * exact

    def test_cycle_cover_exact(self):
        # E[cover C_n] = n(n-1)/2 exactly
        n = 8
        samples = empirical_cover_times(cycle_graph(n), 0, reps=800, seed=6)
        exact = n * (n - 1) / 2
        assert abs(samples.mean() - exact) < 0.12 * exact

    def test_cover_at_least_n_minus_1(self, small_graph):
        samples = empirical_cover_times(small_graph, 0, reps=20, seed=7)
        assert np.all(samples >= small_graph.n - 1)


class TestMaxHittingOfPath:
    def test_dominates_single_hitting(self):
        n = 12
        single = empirical_set_hitting_times(path_graph(n), 0, [n - 1], n, seed=8)
        max_samples = empirical_max_hitting_of_path(n, reps=30, seed=9)
        assert max_samples.mean() > single.mean()

    def test_at_least_distance_squared_scale(self):
        n = 10
        m = empirical_max_hitting_of_path(n, reps=20, seed=10)
        assert np.all(m >= (n - 1))  # must at least traverse the path


class TestPoissonisation:
    def test_zero_steps_zero_duration(self):
        d = poissonise_steps([0, 0], seed=0)
        assert np.all(d == 0)

    def test_mean_matches_count(self):
        d = poissonise_steps(np.full(4000, 50), seed=1)
        assert abs(d.mean() - 50.0) < 1.0

    def test_rate_scaling(self):
        d1 = poissonise_steps(np.full(3000, 40), seed=2, rate=1.0)
        d2 = poissonise_steps(np.full(3000, 40), seed=2, rate=2.0)
        assert abs(d1.mean() / d2.mean() - 2.0) < 0.2

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            poissonise_steps([-1])

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            poissonise_steps([1], rate=0.0)


class TestExponentialRace:
    def test_mean_waiting_time(self):
        rng = np.random.default_rng(3)
        dts = [exponential_race(5, rng)[0] for _ in range(4000)]
        assert abs(np.mean(dts) - 0.2) < 0.02

    def test_winner_uniform(self):
        rng = np.random.default_rng(4)
        winners = np.array([exponential_race(4, rng)[1] for _ in range(8000)])
        counts = np.bincount(winners, minlength=4)
        assert counts.min() > 1700

    def test_k_validation(self):
        with pytest.raises(ValueError):
            exponential_race(0, np.random.default_rng(0))
