"""Unit tests for the chunked trajectory / schedule stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trajectory import ScheduleStore, TrajectoryStore, _ChunkedLog


class TestChunkedLog:
    def test_append_and_gather_across_chunk_boundaries(self):
        log = _ChunkedLog((np.uint16, np.int32), chunk=4)
        log.append([0, 1, 2], [10, 11, 12])
        log.append([3, 4, 5, 6, 7], [13, 14, 15, 16, 17])  # straddles twice
        assert len(log) == 8
        a, b = log.gathered()
        assert a.dtype == np.uint16 and b.dtype == np.int32
        assert a.tolist() == [0, 1, 2, 3, 4, 5, 6, 7]
        assert b.tolist() == [10, 11, 12, 13, 14, 15, 16, 17]

    def test_empty_append_is_noop(self):
        log = _ChunkedLog((np.int32,) * 3, chunk=4)
        log.append(np.empty(0), np.empty(0), np.empty(0))
        assert len(log) == 0
        assert all(c.size == 0 for c in log.gathered())

    def test_gather_cache_invalidated_by_append(self):
        log = _ChunkedLog((np.int32,), chunk=2)
        log.append([1])
        assert log.gathered()[0].tolist() == [1]
        log.append([2, 3])
        assert log.gathered()[0].tolist() == [1, 2, 3]

    def test_oversized_single_append(self):
        log = _ChunkedLog((np.int32,), chunk=3)
        vals = list(range(11))
        log.append(vals)
        assert log.gathered()[0].tolist() == vals
        assert [c[0].tolist() for c in log.chunks()] == [
            [0, 1, 2],
            [3, 4, 5],
            [6, 7, 8],
            [9, 10],
        ]


class TestTrajectoryStore:
    def test_finalize_seeds_starts_and_groups_per_particle(self):
        starts = np.array([[5, 6], [7, 8]])
        store = TrajectoryStore(starts)
        # tick 1: rep 0 particle 1 -> 3; rep 1 particle 0 -> 2
        store.append([0, 1], [1, 0], [3, 2])
        # tick 2: rep 0 particle 1 -> 4
        store.append([0], [1], [4])
        out = store.finalize()
        assert out == [[[5], [6, 3, 4]], [[7, 2], [8]]]

    def test_event_order_within_a_call_groups_by_particle(self):
        starts = np.array([[0, 0, 0]])
        store = TrajectoryStore(starts)
        store.append([0, 0, 0], [2, 0, 1], [9, 7, 8])  # any in-call order
        store.append([0, 0, 0], [0, 1, 2], [1, 2, 3])
        out = store.finalize()
        assert out == [[[0, 7, 1], [0, 8, 2], [0, 9, 3]]]

    def test_handoff_returns_prefix_and_wins_at_finalize(self):
        starts = np.array([[1, 2], [3, 4]])
        store = TrajectoryStore(starts)
        store.append([0, 1], [0, 0], [5, 6])
        rows = store.handoff(1)
        assert rows == [[3, 6], [4]]
        rows[0].append(9)  # the scalar finisher keeps appending
        out = store.finalize()
        assert out[0] == [[1, 5], [2]]  # untouched rep: from the log
        assert out[1] == [[3, 6, 9], [4]]  # handed-off rep: the live lists

    def test_no_events_finalizes_to_bare_starts(self):
        store = TrajectoryStore(np.array([[2, 3]]))
        assert store.finalize() == [[[2], [3]]]


class TestScheduleStore:
    def test_per_repetition_tick_order(self):
        store = ScheduleStore(3)
        store.append([0, 1, 2], [5, 6, 7])
        store.append([0, 2], [8, 9])
        store.append([0], [1])
        out = store.finalize()
        assert [a.tolist() for a in out] == [[5, 8, 1], [6], [7, 9]]
        assert all(a.dtype == np.int64 for a in out)

    def test_empty(self):
        out = ScheduleStore(2).finalize()
        assert [a.tolist() for a in out] == [[], []]


@pytest.mark.parametrize("chunk", [1, 2, 5])
def test_store_is_chunk_size_invariant(monkeypatch, chunk):
    """The chunk is a pure storage granularity: any size yields the same
    finalised trajectories."""
    import repro.core.trajectory as traj_mod

    rng = np.random.default_rng(0)
    starts = rng.integers(0, 10, size=(4, 3))
    events = [
        (rng.integers(0, 4, size=k), rng.integers(0, 3, size=k),
         rng.integers(0, 10, size=k))
        for k in rng.integers(0, 6, size=12)
    ]

    def run():
        store = TrajectoryStore(starts)
        for e in events:
            store.append(*e)
        return store.finalize()

    ref = run()
    monkeypatch.setattr(traj_mod, "_CHUNK", chunk)
    # _ChunkedLog reads the default at construction time via TrajectoryStore
    # (defaults tuple covers the trailing (chunk, backend) parameters)
    monkeypatch.setattr(
        traj_mod._ChunkedLog.__init__, "__defaults__", (chunk, None)
    )
    assert run() == ref
