"""Tests for exact hitting times against closed forms and networkx-free
independent computations."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.markov import (
    commute_time,
    commute_time_from_resistance,
    effective_resistance,
    effective_resistance_matrix,
    hitting_time,
    hitting_time_matrix,
    hitting_times_to_target,
    laplacian,
    max_hitting_time,
)


class TestClosedForms:
    @pytest.mark.parametrize("n", [3, 5, 10])
    def test_path_endpoint(self, n):
        # t_hit(0, n-1) on P_n is (n-1)^2
        assert np.isclose(hitting_time(path_graph(n), 0, n - 1), (n - 1) ** 2)

    def test_path_interior(self):
        # birth-death: t_hit(i, j) for i<j on path = j^2 - i^2... standard:
        # t_hit(i,j) = (j-i)(j+i) for the path indexed from 0
        g = path_graph(10)
        for i in range(3):
            for j in range(i + 1, 6):
                assert np.isclose(hitting_time(g, i, j), (j - i) * (j + i))

    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_complete(self, n):
        # K_n: geometric with success 1/(n-1) => mean n-1
        assert np.isclose(hitting_time(complete_graph(n), 0, 1), n - 1)

    @pytest.mark.parametrize("n,k", [(8, 1), (8, 3), (9, 4)])
    def test_cycle(self, n, k):
        # C_n: t_hit over distance k is k(n-k)
        assert np.isclose(hitting_time(cycle_graph(n), 0, k), k * (n - k))

    def test_star(self):
        # centre -> leaf: 2(n-1) - 1 (essential edge lemma); leaf -> centre: 1
        n = 9
        g = star_graph(n)
        assert np.isclose(hitting_time(g, 1, 0), 1.0)
        assert np.isclose(hitting_time(g, 0, 1), 2 * (n - 1) - 1)

    def test_lazy_doubles(self, small_graph):
        h = hitting_time(small_graph, 0, small_graph.n - 1)
        hl = hitting_time(small_graph, 0, small_graph.n - 1, lazy=True)
        assert np.isclose(hl, 2 * h, rtol=1e-9)


class TestMatrixConsistency:
    def test_matrix_matches_target_solver(self, small_graph):
        H = hitting_time_matrix(small_graph)
        for v in range(small_graph.n):
            h = hitting_times_to_target(small_graph, v)
            assert np.allclose(H[:, v], h, atol=1e-7)

    def test_zero_diagonal(self, small_graph):
        H = hitting_time_matrix(small_graph)
        assert np.allclose(np.diag(H), 0.0)

    def test_max_hitting_time(self, small_graph):
        H = hitting_time_matrix(small_graph)
        assert np.isclose(max_hitting_time(small_graph), H.max())

    def test_path_max_is_endpoint_pair(self):
        assert np.isclose(max_hitting_time(path_graph(12)), 11**2)

    def test_target_out_of_range(self):
        with pytest.raises(ValueError):
            hitting_times_to_target(path_graph(4), 10)


class TestCommuteAndResistance:
    def test_commute_symmetric(self, small_graph):
        u, v = 0, small_graph.n - 1
        assert np.isclose(
            commute_time(small_graph, u, v), commute_time(small_graph, v, u)
        )

    def test_commute_time_identity(self, small_graph):
        # t_com(u,v) = 2m R(u,v)
        u, v = 0, small_graph.n - 1
        assert np.isclose(
            commute_time(small_graph, u, v),
            commute_time_from_resistance(small_graph, u, v),
            rtol=1e-8,
        )

    def test_resistance_path_series(self):
        # series circuit: R(0, k) = k on a path
        g = path_graph(6)
        for k in range(1, 6):
            assert np.isclose(effective_resistance(g, 0, k), k)

    def test_resistance_cycle_parallel(self):
        # two arcs in parallel: R = k(n-k)/n
        n = 8
        g = cycle_graph(n)
        for k in range(1, n):
            assert np.isclose(effective_resistance(g, 0, k), k * (n - k) / n)

    def test_resistance_complete(self):
        # K_n: R(u,v) = 2/n
        n = 7
        assert np.isclose(effective_resistance(complete_graph(n), 0, 3), 2 / n)

    def test_resistance_matrix_symmetric_triangle(self, small_graph):
        R = effective_resistance_matrix(small_graph)
        assert np.allclose(R, R.T)
        n = small_graph.n
        # metric property (resistance distance is a metric)
        for _ in range(10):
            i, j, k = np.random.default_rng(0).integers(0, n, 3)
            assert R[i, j] <= R[i, k] + R[k, j] + 1e-9

    def test_laplacian_rowsums_zero(self, small_graph):
        L = laplacian(small_graph)
        assert np.allclose(L.sum(axis=1), 0.0)
        assert np.allclose(L, L.T)

    def test_resistance_lower_bound_of_thm_3_6(self, small_graph):
        # R(u,v) >= 1/deg(u) + 1/deg(v) for non-adjacent... actually the
        # paper uses R(w,v) >= 1/deg(w) + 1/deg(v) - this holds when u,v
        # non-adjacent; for adjacent pairs R >= 1/deg ... check weak form:
        R = effective_resistance_matrix(small_graph)
        deg = small_graph.degrees
        for u in range(small_graph.n):
            for v in range(small_graph.n):
                if u != v and not small_graph.has_edge(u, v):
                    assert R[u, v] >= 1 / deg[u] + 1 / deg[v] - 1e-9
