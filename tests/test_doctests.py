"""Run the library's doctests so documented examples can never drift."""

import doctest

import pytest

import repro.bounds.constants
import repro.core.aggregate
import repro.core.batched
import repro.core.batched_continuous
import repro.core.blocks
import repro.core.continuous
import repro.core.parallel
import repro.core.sequential
import repro.core.uniform
import repro.experiments.fitting
import repro.experiments.runner
import repro.experiments.stats
import repro.experiments.sweep
import repro.experiments.tables
import repro.graphs.csr
import repro.graphs.generators.basic
import repro.graphs.generators.composite
import repro.graphs.generators.grids
import repro.graphs.generators.random
import repro.graphs.generators.trees
import repro.markov.exact_idla
import repro.markov.hitting
import repro.markov.sets
import repro.markov.spectral
import repro.utils.rng
import repro.utils.timing
import repro.walks.continuous
import repro.walks.engine

MODULES = [
    repro.utils.rng,
    repro.utils.timing,
    repro.graphs.csr,
    repro.graphs.generators.basic,
    repro.graphs.generators.trees,
    repro.graphs.generators.grids,
    repro.graphs.generators.composite,
    repro.graphs.generators.random,
    repro.markov.hitting,
    repro.markov.sets,
    repro.markov.spectral,
    repro.markov.exact_idla,
    repro.walks.engine,
    repro.walks.continuous,
    repro.core.blocks,
    repro.core.sequential,
    repro.core.parallel,
    repro.core.uniform,
    repro.core.continuous,
    repro.core.batched,
    repro.core.batched_continuous,
    repro.core.aggregate,
    repro.bounds.constants,
    repro.experiments.stats,
    repro.experiments.fitting,
    repro.experiments.runner,
    repro.experiments.sweep,
    repro.experiments.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
