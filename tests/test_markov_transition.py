"""Tests for transition matrices and stationary distributions."""

import numpy as np
import pytest

from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.markov import (
    laziness_matrix,
    lazy_transition_matrix,
    sparse_transition_matrix,
    stationary_distribution,
    stationary_from_matrix,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_stochastic(self, small_graph):
        P = transition_matrix(small_graph)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_path_values(self):
        P = transition_matrix(path_graph(3))
        expected = np.array([[0, 1, 0], [0.5, 0, 0.5], [0, 1, 0]])
        assert np.allclose(P, expected)

    def test_parallel_edges_weighting(self):
        g = Graph.from_edges(3, [(0, 1), (0, 1), (0, 2)])
        P = transition_matrix(g)
        assert np.isclose(P[0, 1], 2 / 3)
        assert np.isclose(P[0, 2], 1 / 3)

    def test_self_loop_slots(self):
        g = cycle_graph(4).with_self_loops()  # lazy graph
        P = transition_matrix(g)
        assert np.allclose(np.diag(P), 0.5)

    def test_isolated_vertex_rejected(self):
        g = Graph(np.array([0, 0, 2, 4]), np.array([2, 2, 1, 1], dtype=np.int64))
        with pytest.raises(ValueError, match="isolated"):
            transition_matrix(g)


class TestLazyMatrix:
    def test_lazy_is_half_identity_plus_half_P(self, small_graph):
        P = transition_matrix(small_graph)
        L = lazy_transition_matrix(small_graph)
        assert np.allclose(L, 0.5 * np.eye(small_graph.n) + 0.5 * P)

    def test_laziness_matrix_general(self):
        P = transition_matrix(cycle_graph(5))
        L = laziness_matrix(P, 0.25)
        assert np.allclose(np.diag(L), 0.25)
        assert np.allclose(L.sum(axis=1), 1.0)

    def test_laziness_rejects_bad_hold(self):
        P = transition_matrix(cycle_graph(5))
        with pytest.raises(ValueError):
            laziness_matrix(P, 1.0)


class TestSparse:
    def test_matches_dense(self, small_graph):
        S = sparse_transition_matrix(small_graph).toarray()
        assert np.allclose(S, transition_matrix(small_graph))

    def test_lazy_matches_dense(self, small_graph):
        S = sparse_transition_matrix(small_graph, lazy=True).toarray()
        assert np.allclose(S, lazy_transition_matrix(small_graph))


class TestStationary:
    def test_proportional_to_degree(self, small_graph):
        pi = stationary_distribution(small_graph)
        deg = small_graph.degrees
        assert np.allclose(pi, deg / deg.sum())

    def test_is_left_eigenvector(self, small_graph):
        P = transition_matrix(small_graph)
        pi = stationary_distribution(small_graph)
        assert np.allclose(pi @ P, pi, atol=1e-12)

    def test_from_matrix_agrees(self, small_graph):
        P = transition_matrix(small_graph)
        pi_exact = stationary_distribution(small_graph)
        pi_solved = stationary_from_matrix(P)
        assert np.allclose(pi_solved, pi_exact, atol=1e-8)

    def test_from_matrix_periodic_chain(self):
        # two-state flip chain is periodic; the direct solve still works
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        pi = stationary_from_matrix(P)
        assert np.allclose(pi, [0.5, 0.5])

    def test_from_matrix_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.ones((2, 3)))

    def test_uniform_on_regular(self):
        pi = stationary_distribution(complete_graph(6))
        assert np.allclose(pi, 1 / 6)

    def test_star_weighted(self):
        pi = stationary_distribution(star_graph(5))
        assert np.isclose(pi[0], 0.5)
        assert np.allclose(pi[1:], 0.125)
