"""Tests for the exact dispersion-time CDF of Sequential-IDLA.

The CDF oracle cross-validates three ways: against the independent-
geometric closed form on the clique, against the expected-max formula,
and against the Monte-Carlo driver on several small graphs.
"""

import numpy as np
import pytest

from repro.bounds import expected_max_geometric_sum
from repro.core import sequential_idla
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph
from repro.markov import (
    exact_expected_sequential_dispersion,
    sequential_dispersion_cdf,
)
from repro.utils.rng import stable_seed


class TestCdfStructure:
    def test_monotone_and_bounded(self):
        cdf = sequential_dispersion_cdf(cycle_graph(6), t_max=120)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0 or cycle_graph(6).n == 1
        assert cdf[-1] <= 1.0 + 1e-12
        assert cdf[-1] > 0.9  # t_max far beyond the mean

    def test_single_vertex_like_start(self):
        # P2: one particle settles at origin, the other in exactly 1 step
        from repro.graphs import Graph

        g = Graph.from_edges(2, [(0, 1)])
        cdf = sequential_dispersion_cdf(g, t_max=3)
        assert cdf.tolist() == [0.0, 1.0, 1.0, 1.0]

    def test_path3_values(self):
        # τ = max(T1, T2); T1 = 1 always; T2 from 0 with {1} occupied... here
        # origin 1: T2 odd, P[T2 = 2k+1] = 2^{-(k+1)}
        cdf = sequential_dispersion_cdf(path_graph(3), 1, t_max=5)
        assert np.isclose(cdf[1], 0.5)
        assert np.isclose(cdf[3], 0.75)
        assert np.isclose(cdf[5], 0.875)

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_dispersion_cdf(cycle_graph(20), t_max=10)
        with pytest.raises(ValueError):
            sequential_dispersion_cdf(cycle_graph(6), origin=9, t_max=10)
        with pytest.raises(ValueError):
            sequential_dispersion_cdf(cycle_graph(6), t_max=-1)


class TestExpectedDispersion:
    def test_clique_matches_independent_geometrics(self):
        # on K_n the particles' waits ARE independent geometrics: the DP
        # must reproduce the coupon-collector longest wait to precision
        for n in (5, 7, 9):
            exact = exact_expected_sequential_dispersion(complete_graph(n))
            ref = expected_max_geometric_sum(n - 1)
            assert abs(exact - ref) < 1e-6

    def test_star_is_double_clique_minus_one(self):
        # S_n sequential from the centre: a walk with k failed excursions
        # takes 2k + 1 steps, i.e. T = 2G − 1 with G ~ Geom(free/(n-1)),
        # so E[τ_seq(S_n)] = 2 E[max_i G_i] − 1 exactly (the paper's
        # t_seq(S_n) = 2 t_seq(K_n) is this, up to the additive constant).
        n = 7
        exact = exact_expected_sequential_dispersion(star_graph(n))
        ref = 2.0 * expected_max_geometric_sum(n - 1) - 1.0
        assert abs(exact - ref) < 1e-6

    @pytest.mark.parametrize(
        "g", [cycle_graph(7), path_graph(6), complete_graph(6)], ids=lambda g: g.name
    )
    def test_matches_monte_carlo(self, g):
        exact = exact_expected_sequential_dispersion(g)
        reps = 1500
        mc = np.array(
            [
                sequential_idla(
                    g, 0, seed=stable_seed("cdf-mc", g.name, r)
                ).dispersion_time
                for r in range(reps)
            ]
        )
        sem = mc.std() / np.sqrt(reps)
        assert abs(mc.mean() - exact) < 4 * sem + 0.05

    def test_lazy_roughly_doubles(self):
        g = path_graph(5)
        fast = exact_expected_sequential_dispersion(g)
        slow = exact_expected_sequential_dispersion(g, lazy=True)
        assert 1.8 < slow / fast < 2.2

    def test_dominates_expected_per_particle_max(self):
        # E[max_i T_i] >= max_i E[T_i]
        from repro.markov import analyze_sequential_idla

        g = cycle_graph(8)
        exact = exact_expected_sequential_dispersion(g)
        per = analyze_sequential_idla(g).expected_steps_per_particle
        assert exact >= per.max() - 1e-9
