"""Unit tests of the compiled-kernel seam (:mod:`repro.kernels`).

The differential harness (``tests/test_differential_drivers.py``) pins
whole driver runs bit-identical across providers; this module covers the
layer's own contracts:

* registry resolution precedence (explicit argument > ``REPRO_KERNELS``
  > auto-detection) and its failure modes — an explicitly requested
  provider that cannot initialise raises, auto-detection falls through
  silently, the numpy fallback is always available;
* pickling resolved providers by name (the fan-out runner's kwargs
  path);
* kernel-by-kernel parity of each compiled provider against the
  :class:`~repro.kernels.NumpyKernels` reference implementations on
  irregular graphs, including the offset-clamp edge at ``u -> 1``;
* the single-walker compiled loops against the pure-Python
  :class:`~repro.walks.single.SingleWalkKernel` path;
* the ``UniformStream.take_block`` handoff contract the compiled tail
  finishers consume.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graphs import complete_binary_tree, cycle_graph, star_graph
from repro.kernels import (
    KernelSet,
    KernelsUnavailableError,
    NumpyKernels,
    available_kernels,
    csr_arrays,
    get_kernels,
)
from repro.utils.rng import UniformStream, as_generator
from repro.walks.single import random_walk, walk_until_hit

AVAILABLE = available_kernels()
COMPILED = [
    pytest.param(
        name,
        marks=()
        if ok
        else pytest.mark.skip(reason=f"kernel provider {name!r} unavailable"),
    )
    for name, ok in sorted(AVAILABLE.items())
    if name != "numpy"
]


# ---------------------------------------------------------------------------
# registry / resolution


def test_numpy_provider_always_available_and_cached():
    ks = get_kernels("numpy")
    assert isinstance(ks, NumpyKernels)
    assert ks.compiled is False
    assert get_kernels("numpy") is ks  # registry caches by name
    assert AVAILABLE["numpy"] is True


def test_kernelset_instance_passes_through():
    ks = get_kernels("numpy")
    assert get_kernels(ks) is ks


def test_explicit_argument_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "definitely-not-a-provider")
    assert get_kernels("numpy").name == "numpy"


def test_environment_resolves_when_no_argument(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    assert get_kernels().name == "numpy"
    monkeypatch.setenv("REPRO_KERNELS", "")
    # empty is unset: auto-detection must yield *some* provider
    assert isinstance(get_kernels(), KernelSet)


def test_unknown_provider_raises_listing_choices(monkeypatch):
    with pytest.raises(ValueError, match="unknown kernel provider"):
        get_kernels("bogus")
    monkeypatch.setenv("REPRO_KERNELS", "bogus")
    with pytest.raises(ValueError, match="bogus"):
        get_kernels()


def test_non_string_spec_raises_typeerror():
    with pytest.raises(TypeError, match="provider name"):
        get_kernels(3)


def test_auto_never_raises():
    assert isinstance(get_kernels("auto"), KernelSet)


@pytest.mark.parametrize(
    "name", [n for n, ok in sorted(AVAILABLE.items()) if not ok]
)
def test_explicitly_requesting_missing_provider_raises(name):
    with pytest.raises(KernelsUnavailableError, match=name):
        get_kernels(name)


@pytest.mark.parametrize("name", [n for n, ok in sorted(AVAILABLE.items()) if ok])
def test_resolved_providers_pickle_by_name(name):
    ks = get_kernels(name)
    clone = pickle.loads(pickle.dumps(ks))
    assert clone is ks  # same process: the registry cache round-trips


@pytest.mark.parametrize("provider", COMPILED)
def test_compiled_providers_declare_a_width_gate(provider):
    """Compiled providers carry a positive ``min_width``: narrow rounds
    stay on the numpy expressions where FFI overhead would lose."""
    ks = get_kernels(provider)
    assert ks.compiled and ks.min_width > 0
    assert get_kernels("numpy").min_width == 0


def test_csr_arrays_gate():
    g = cycle_graph(12)
    csr = csr_arrays(g)
    assert csr is not None
    indptr, indices = csr
    assert indptr.dtype == np.int64 and indices.dtype == np.int64
    assert csr_arrays(cycle_graph(12, implicit=True)) is None
    assert csr_arrays(object()) is None


# ---------------------------------------------------------------------------
# kernel-by-kernel parity against the numpy reference

#: Irregular fixtures (degree varies per vertex, so the per-position
#: degree gather path is exercised); every vertex has degree >= 1.
GRAPHS = [complete_binary_tree(4), star_graph(20), cycle_graph(17)]


def _positions_and_uniforms(g, rng, k=257):
    pos = rng.integers(0, g.n, size=k)
    u = rng.random(k)
    # force the off == deg clamp edge and the exact-0 edge
    u[:3] = [np.nextafter(1.0, 0.0), 0.0, 0.5]
    return pos, u


@pytest.mark.parametrize("provider", COMPILED)
@pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
def test_csr_step_matches_reference(provider, g):
    ks = get_kernels(provider)
    ref = get_kernels("numpy")
    indptr, indices = csr_arrays(g)
    rng = np.random.default_rng(42)
    for _ in range(5):
        pos, u = _positions_and_uniforms(g, rng)
        expect = ref.csr_step(indptr, indices, pos, u)
        assert np.array_equal(ks.csr_step(indptr, indices, pos, u), expect)
        out = np.empty(pos.size, dtype=np.int64)
        assert np.array_equal(ks.csr_step(indptr, indices, pos, u, out), expect)
        # the fused per-graph closure is the same kernel
        fused = ks.stepper(g)
        assert fused is not None
        assert np.array_equal(fused(pos, u), expect)


@pytest.mark.parametrize("provider", COMPILED)
def test_stepper_stands_down_without_csr(provider):
    assert get_kernels(provider).stepper(cycle_graph(12, implicit=True)) is None


@pytest.mark.parametrize("provider", COMPILED)
def test_vacant_candidates_matches_reference(provider):
    ks = get_kernels(provider)
    ref = get_kernels("numpy")
    rng = np.random.default_rng(7)
    for k in (0, 1, 37, 256):
        occ = rng.random(20 * 40) < 0.5
        rep_off = rng.integers(0, 20, size=k) * 40
        pos = rng.integers(0, 40, size=k)
        expect = ref.vacant_candidates(occ, rep_off, pos)
        got = ks.vacant_candidates(occ, rep_off, pos)
        assert np.array_equal(got, expect)


@pytest.mark.parametrize("provider", COMPILED)
def test_settle_round_matches_reference_and_restores_scratch(provider):
    ks = get_kernels(provider)
    ref = get_kernels("numpy")
    rng = np.random.default_rng(11)
    n, reps = 40, 6
    scratch = ks.make_settle_scratch(n)
    for trial in range(20):
        occ = rng.random(reps * n) < 0.4
        k = int(rng.integers(1, 64))
        # rep-grouped ascending, as the drivers' flat state guarantees
        rep_ids = np.sort(rng.integers(0, reps, size=k))
        pos = rng.integers(0, n, size=k)
        prio = rng.permutation(k).astype(np.int64)
        expect = ref.settle_round(occ.copy(), rep_ids, pos, prio, n)
        got = ks.settle_round(occ.copy(), rep_ids, pos, prio, n, scratch)
        assert np.array_equal(got, expect), trial
        # the persistent scratch must come back all -1, or the next
        # round inherits stale contests
        assert np.all(scratch == -1), trial


@pytest.mark.parametrize("provider", COMPILED)
def test_settle_round_tie_priority_keeps_first(provider):
    """Equal priorities: the reference lexsort is stable, so the first
    occurrence in flat order wins; the compiled strict-< compare must
    agree."""
    ks = get_kernels(provider)
    ref = get_kernels("numpy")
    n = 5
    occ = np.zeros(2 * n, dtype=bool)
    rep_ids = np.array([0, 0, 0, 1, 1], dtype=np.int64)
    pos = np.array([2, 2, 3, 4, 4], dtype=np.int64)
    prio = np.array([9, 9, 1, 3, 3], dtype=np.int64)
    expect = ref.settle_round(occ.copy(), rep_ids, pos, prio, n)
    got = ks.settle_round(occ.copy(), rep_ids, pos, prio, n)
    assert np.array_equal(got, expect)


# ---------------------------------------------------------------------------
# single-walker loops


@pytest.mark.parametrize("provider", COMPILED)
@pytest.mark.parametrize("g", GRAPHS, ids=lambda g: g.name)
def test_single_walks_match_python_loop(provider, g):
    for seed in (0, 1234):
        assert np.array_equal(
            random_walk(g, 0, 3000, seed=seed, kernels="numpy"),
            random_walk(g, 0, 3000, seed=seed, kernels=provider),
        )
        assert walk_until_hit(
            g, 0, [g.n - 1], seed=seed, kernels="numpy"
        ) == walk_until_hit(g, 0, [g.n - 1], seed=seed, kernels=provider)


@pytest.mark.parametrize("provider", COMPILED)
def test_walk_until_hit_limit_and_trivial_cases(provider):
    g = cycle_graph(64)
    assert walk_until_hit(g, 5, [5], seed=1, kernels=provider) == 0
    with pytest.raises(RuntimeError, match="max_steps=3"):
        walk_until_hit(g, 0, [32], seed=2, max_steps=3, kernels=provider)


# ---------------------------------------------------------------------------
# UniformStream.take_block handoff contract


def test_take_block_resumes_buffered_suffix_then_whole_blocks():
    rng = as_generator(99)
    ref = as_generator(99).random(20)
    s = UniformStream(rng, block=8)
    head = [s.uniform() for _ in range(3)]
    first = s.take_block()  # remainder of the current block: 5 doubles
    assert head == ref[:3].tolist()
    assert first.tolist() == ref[3:8].tolist()
    second = s.take_block()  # fresh whole block
    assert second.tolist() == ref[8:16].tolist()
    assert s.drawn == 16  # reconcilable with the serial fetch schedule


def test_take_block_consumes_initial_prefix_first():
    leftover = np.array([0.25, 0.75], dtype=np.float64)
    s = UniformStream(as_generator(5), block=4, initial=leftover)
    first = s.take_block()
    assert first.tolist() == leftover.tolist()
    assert s.drawn == 0  # the prefix was already drawn by the caller
    assert s.take_block().tolist() == as_generator(5).random(4).tolist()
    assert s.drawn == 4
