"""Adaptive replication: anytime statistics, Precision targets, determinism.

The contract under test: a ``precision=``-driven estimate that consumed
``N`` repetitions — whatever round split the stopping rule produced — is
bit-identical to a fixed ``reps=N`` run, across serial, batched and
``n_jobs=2`` dispatch, including ``record=True``.  Rounds only move the
``SeedSequence.spawn`` boundary, which the child streams cannot see.
"""

import numpy as np
import pytest

from repro.core.anytime import (
    AdaptiveInfo,
    Precision,
    TauAccumulator,
    anytime_halfwidth,
)
from repro.experiments import estimate_dispersion, sweep_dispersion
from repro.experiments.fanout import plan_shards
from repro.graphs import cycle_graph

# Seed chosen so the first few tau samples are pairwise distinct for both
# processes: a zero-variance early round would (correctly) stop the
# confidence sequence at width 0 and defeat the "unreachable target" trick.
PARENT_SEED = 20260809
GRAPH = cycle_graph(24)

# (initial, growth) pairs chosen to force distinct round splits for the
# same 16-rep total: 16 = 1+1+2+4+8 = 2+4+6+4 = 5+5+6 = 16.
ROUND_SPLITS = [(1, 2.0), (2, 3.0), (5, 2.0), (16, 2.0)]

DISPATCH = [
    {"batched": False},
    {"batched": "auto"},
    {"batched": True},
    {"n_jobs": 2},
]


def _unreachable(initial, growth, total):
    """Precision no sample size can meet: consumes exactly ``total`` reps."""
    return Precision(
        ci_rel=1e-12, initial=initial, growth=growth, max_reps=total
    )


# ----------------------------------------------------------------------
# the determinism contract (satellite: adaptive determinism)


@pytest.mark.parametrize("process", ["parallel", "uniform"])
@pytest.mark.parametrize("initial,growth", ROUND_SPLITS)
@pytest.mark.parametrize("mode", DISPATCH, ids=lambda m: str(sorted(m.items())))
def test_topup_bit_identical_to_fixed_reps(process, initial, growth, mode):
    total = 16
    adaptive = estimate_dispersion(
        GRAPH,
        process,
        precision=_unreachable(initial, growth, total),
        seed=PARENT_SEED,
        **mode,
    )
    info = adaptive.adaptive
    assert info is not None
    assert info.reps == total == sum(info.rounds)
    if initial < total:
        assert len(info.rounds) > 1  # the split really exercised a top-up
    fixed = estimate_dispersion(
        GRAPH, process, reps=total, seed=PARENT_SEED, batched=False
    )
    assert np.array_equal(adaptive.samples, fixed.samples)
    assert np.array_equal(adaptive.total_samples, fixed.total_samples)


@pytest.mark.parametrize("mode", DISPATCH, ids=lambda m: str(sorted(m.items())))
def test_topup_recording_bit_identical(mode):
    total = 12
    adaptive = estimate_dispersion(
        GRAPH,
        "parallel",
        precision=_unreachable(4, 2.0, total),
        seed=PARENT_SEED,
        record=True,
        **mode,
    )
    fixed = estimate_dispersion(
        GRAPH, "parallel", reps=total, seed=PARENT_SEED, batched=False, record=True
    )
    assert len(adaptive.adaptive.rounds) > 1
    assert np.array_equal(adaptive.samples, fixed.samples)
    assert adaptive.trajectories == fixed.trajectories


def test_different_round_splits_agree_with_each_other():
    runs = [
        estimate_dispersion(
            GRAPH,
            "parallel",
            precision=_unreachable(initial, growth, 16),
            seed=PARENT_SEED,
        )
        for initial, growth in ROUND_SPLITS
    ]
    splits = {r.adaptive.rounds for r in runs}
    assert len(splits) > 1  # genuinely different round boundaries
    for r in runs[1:]:
        assert np.array_equal(runs[0].samples, r.samples)


# ----------------------------------------------------------------------
# stopping behaviour and provenance


def test_stops_on_target_with_provenance():
    est = estimate_dispersion(
        GRAPH,
        "parallel",
        precision=Precision(ci_rel=0.2, initial=8, max_reps=2048),
        seed=PARENT_SEED,
    )
    info = est.adaptive
    assert info.stopped_by == "target"
    assert info.met
    assert info.halfwidth <= info.target_halfwidth
    assert info.reps == sum(info.rounds) == len(est.samples)
    assert info.ci_low < info.mean < info.ci_high
    assert info.mean == pytest.approx(est.dispersion.mean)
    assert "adaptive:" in est.format()


def test_stops_on_max_reps_when_target_unreachable():
    est = estimate_dispersion(
        GRAPH,
        "parallel",
        precision=_unreachable(4, 2.0, 16),
        seed=PARENT_SEED,
    )
    assert est.adaptive.stopped_by == "max_reps"
    assert not est.adaptive.met
    assert est.adaptive.reps == 16


def test_stops_on_wall_clock_budget():
    est = estimate_dispersion(
        GRAPH,
        "parallel",
        precision=Precision(ci_rel=1e-12, initial=4, max_seconds=0.0),
        seed=PARENT_SEED,
    )
    # max_seconds=0 trips right after the first round, deterministically
    assert est.adaptive.stopped_by == "max_seconds"
    assert est.adaptive.rounds == (4,)


def test_ci_abs_binds_too():
    est = estimate_dispersion(
        GRAPH,
        "parallel",
        precision=Precision(ci_abs=1e9, initial=4),
        seed=PARENT_SEED,
    )
    assert est.adaptive.stopped_by == "target"
    assert est.adaptive.rounds == (4,)


def test_fixed_reps_estimate_has_no_adaptive_info():
    est = estimate_dispersion(GRAPH, "parallel", reps=4, seed=PARENT_SEED)
    assert est.adaptive is None


def test_reps_and_precision_are_mutually_exclusive():
    with pytest.raises(TypeError, match="not both"):
        estimate_dispersion(
            GRAPH, "parallel", reps=8, precision=Precision(ci_rel=0.1)
        )


def test_sweep_accepts_precision():
    res = sweep_dispersion(
        "complete",
        [16],
        processes=("parallel",),
        precision=Precision(ci_rel=0.5, initial=2, max_reps=64),
        seed=3,
    )
    (point,) = res.points
    assert point.estimate.adaptive is not None
    assert point.estimate.dispersion.n == point.estimate.adaptive.reps


# ----------------------------------------------------------------------
# Precision validation


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"ci_rel": -0.1},
        {"ci_abs": 0.0},
        {"ci_rel": 0.1, "level": 1.0},
        {"ci_rel": 0.1, "initial": 0},
        {"ci_rel": 0.1, "initial": 32, "max_reps": 16},
        {"ci_rel": 0.1, "max_seconds": -1.0},
        {"ci_rel": 0.1, "growth": 1.0},
    ],
)
def test_precision_validation(kwargs):
    with pytest.raises(ValueError):
        Precision(**kwargs)


def test_precision_target_halfwidth_takes_the_tighter_bound():
    p = Precision(ci_rel=0.1, ci_abs=5.0)
    assert p.target_halfwidth(10.0) == pytest.approx(1.0)  # rel binds
    assert p.target_halfwidth(1000.0) == pytest.approx(5.0)  # abs binds


# ----------------------------------------------------------------------
# TauAccumulator and the confidence sequence


def test_accumulator_matches_numpy_moments():
    rng = np.random.default_rng(7)
    chunks = [rng.exponential(100.0, size=s) for s in (1, 7, 64, 128)]
    acc = TauAccumulator()
    for c in chunks:
        acc.add(c)
    x = np.concatenate(chunks)
    assert acc.count == x.size
    assert acc.mean == pytest.approx(x.mean(), rel=1e-12)
    assert acc.variance == pytest.approx(x.var(ddof=1), rel=1e-12)
    assert acc.min == x.min() and acc.max == x.max()
    # under the cap the reservoir is the full sample, insertion-ordered
    assert np.array_equal(acc.reservoir, x)
    assert acc.quantile(0.5) == pytest.approx(np.median(x))


def test_accumulator_is_chunking_invariant():
    x = np.random.default_rng(11).normal(50.0, 3.0, size=200)
    one = TauAccumulator()
    one.add(x)
    many = TauAccumulator()
    for i in range(0, 200, 13):
        many.add(x[i : i + 13])
    assert many.count == one.count
    assert many.mean == pytest.approx(one.mean, rel=1e-12)
    assert many.variance == pytest.approx(one.variance, rel=1e-12)


def test_reservoir_stays_bounded():
    acc = TauAccumulator(reservoir=32)
    acc.add(np.arange(1000, dtype=np.float64))
    res = acc.reservoir
    assert res.size == 32
    assert set(res) <= set(range(1000))


def test_anytime_halfwidth_properties():
    assert anytime_halfwidth(0, 0.0) == np.inf
    assert anytime_halfwidth(1, 0.0) == np.inf
    # wider than the fixed-n CLT interval (the price of optional stopping)
    for t in (8, 64, 512, 4096):
        hw = anytime_halfwidth(t, 1.0)
        assert hw > 1.96 / np.sqrt(t)
    # shrinks in t, scales with sigma
    assert anytime_halfwidth(1024, 1.0) < anytime_halfwidth(128, 1.0)
    assert anytime_halfwidth(64, 4.0) == pytest.approx(
        2.0 * anytime_halfwidth(64, 1.0)
    )
    with pytest.raises(ValueError):
        anytime_halfwidth(8, 1.0, level=0.0)
    with pytest.raises(ValueError):
        anytime_halfwidth(8, -1.0)


def test_adaptive_info_format_mentions_everything():
    info = AdaptiveInfo(
        target=Precision(ci_rel=0.1),
        reps=48,
        rounds=(16, 32),
        mean=100.0,
        halfwidth=9.0,
        target_halfwidth=10.0,
        met=True,
        stopped_by="target",
        elapsed_s=0.5,
    )
    s = info.format()
    assert "48 reps" in s and "2 round(s)" in s and "target" in s


# ----------------------------------------------------------------------
# validated driver-kwargs surface (satellite: api_redesign)


def test_unknown_kwarg_raises_typeerror_naming_options():
    with pytest.raises(TypeError) as exc:
        estimate_dispersion(GRAPH, "parallel", reps=2, seed=0, bogus=1)
    msg = str(exc.value)
    assert "bogus" in msg and "'parallel'" in msg
    # the accepted surface is spelled out, derived from the registry
    for opt in ("lazy", "tie_break", "tail_threshold"):
        assert opt in msg


def test_unknown_kwarg_rejected_for_every_dispatch_mode():
    for mode in ({"batched": False}, {"batched": True}, {"n_jobs": 2}):
        with pytest.raises(TypeError, match="bogus"):
            estimate_dispersion(GRAPH, "parallel", reps=4, seed=0, bogus=1, **mode)


def test_valid_kwargs_still_flow_through():
    est = estimate_dispersion(
        GRAPH, "parallel", reps=2, seed=0, lazy=True, tail_threshold=0
    )
    assert est.dispersion.n == 2


# ----------------------------------------------------------------------
# cost-weighted shard planning


def test_plan_shards_max_shard_caps_sizes():
    shards = plan_shards(10, 2, max_shard=3)
    assert shards == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert all(stop - start <= 3 for start, stop in shards)
    # contiguity and coverage are preserved
    assert shards[0][0] == 0 and shards[-1][1] == 10
    assert all(a[1] == b[0] for a, b in zip(shards, shards[1:]))


def test_plan_shards_max_shard_noop_when_loose():
    assert plan_shards(10, 4, max_shard=100) == plan_shards(10, 4)


def test_plan_shards_max_shard_validation():
    with pytest.raises(ValueError, match="max_shard"):
        plan_shards(4, 2, max_shard=0)


def test_plan_shards_max_shard_one_rep_shards():
    shards = plan_shards(5, 2, max_shard=1)
    assert shards == [(i, i + 1) for i in range(5)]
