"""Tests for all graph generators (structure, sizes, degrees, paper layouts)."""

import numpy as np
import pytest

from repro.graphs import (
    barbell_graph,
    binary_tree_with_path,
    clique_with_hair,
    clique_with_hair_on_pimple,
    comb_graph,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    double_star,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    largest_component,
    lollipop_connector,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import is_tree, leaves


class TestBasicFamilies:
    def test_path_structure(self):
        g = path_graph(6)
        assert g.num_edges == 5
        assert g.degrees.tolist() == [1, 2, 2, 2, 2, 1]
        assert is_tree(g)

    def test_path_n1(self):
        assert path_graph(1).n == 1

    def test_path_rejects_zero(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle_structure(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert g.is_regular() and g.degree(0) == 2
        assert g.has_edge(5, 0)

    def test_cycle_min_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_structure(self):
        g = complete_graph(7)
        assert g.num_edges == 21
        assert g.is_regular() and g.degree(0) == 6
        assert g.is_connected()

    @pytest.mark.parametrize("n", [2, 3, 10])
    def test_complete_all_pairs(self, n):
        g = complete_graph(n)
        for u in range(n):
            for v in range(u + 1, n):
                assert g.has_edge(u, v)

    def test_star_structure(self):
        g = star_graph(9)
        assert g.degree(0) == 8
        assert all(g.degree(v) == 1 for v in range(1, 9))
        assert is_tree(g)


class TestTrees:
    @pytest.mark.parametrize("h,n", [(0, 1), (1, 3), (2, 7), (4, 31)])
    def test_btree_sizes(self, h, n):
        assert complete_binary_tree(h).n == n

    def test_btree_is_tree_with_heap_structure(self):
        g = complete_binary_tree(3)
        assert is_tree(g)
        assert g.degree(0) == 2  # root
        for i in range(1, 7):
            assert g.degree(i) == 3  # internal
        assert len(leaves(g)) == 8

    def test_btree_negative_height(self):
        with pytest.raises(ValueError):
            complete_binary_tree(-1)

    def test_binary_tree_with_path_layout(self):
        g = binary_tree_with_path(2, path_len=3)
        assert g.n == 10
        assert is_tree(g)
        # path hangs off the root 0: 0-7-8-9
        assert g.has_edge(0, 7) and g.has_edge(7, 8) and g.has_edge(8, 9)
        assert g.degree(9) == 1

    def test_binary_tree_with_path_default_len(self):
        g = binary_tree_with_path(5)  # n_t = 63
        n_t = 63
        expected = int(np.floor(n_t ** (0.5 - 0.125)))
        assert g.n == n_t + expected

    def test_comb(self):
        g = comb_graph(4, 3)
        assert g.n == 16
        assert is_tree(g)
        # spine degrees: interior spine vertices have degree 3
        assert g.degree(1) == 3

    def test_comb_no_teeth_path(self):
        g = comb_graph(5, 0)
        assert g.n == 5 and g.num_edges == 4

    def test_double_star(self):
        g = double_star(3, 4)
        assert g.n == 9
        assert g.degree(0) == 4 and g.degree(1) == 5
        assert is_tree(g)


class TestGrids:
    def test_grid_2d_structure(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.max_degree == 4 and g.min_degree == 2

    def test_grid_1d_is_path(self):
        assert grid_graph(5) == path_graph(5)

    def test_grid_3d(self):
        g = grid_graph(3, 3, 3)
        assert g.n == 27
        assert g.max_degree == 6  # centre
        assert g.min_degree == 3  # corners

    def test_torus_regularity(self):
        g = torus_graph(4, 4)
        assert g.is_regular() and g.degree(0) == 4
        assert g.num_edges == 2 * 16

    def test_torus_1d_is_cycle(self):
        assert torus_graph(7) == cycle_graph(7)

    def test_torus_rejects_side_2(self):
        with pytest.raises(ValueError):
            torus_graph(2, 4)

    def test_torus_3d_regular(self):
        g = torus_graph(3, 3, 3)
        assert g.is_regular() and g.degree(0) == 6

    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_hypercube(self, d):
        g = hypercube_graph(d)
        assert g.n == 2**d
        assert g.is_regular() and g.degree(0) == d
        assert g.num_edges == d * 2 ** (d - 1)
        assert g.is_bipartite()

    def test_hypercube_adjacency_is_bitflip(self):
        g = hypercube_graph(4)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1


class TestComposite:
    def test_lollipop_structure(self):
        n = 12
        g = lollipop_graph(n)
        k = (n + 1) // 2
        assert g.n == n
        assert g.num_edges == k * (k - 1) // 2 + (n - k)
        conn = lollipop_connector(n)
        assert g.degree(conn) == k  # k-1 clique edges + 1 path edge
        assert g.degree(n - 1) == 1  # path tip

    def test_lollipop_odd_even(self):
        assert lollipop_graph(11).n == 11
        assert lollipop_graph(10).n == 10

    def test_clique_with_hair(self):
        g = clique_with_hair(10)
        assert g.n == 10
        assert g.degree(9) == 1  # hair tip
        assert g.degree(0) == 9  # v: 8 clique + 1 hair
        assert g.has_edge(0, 9)

    def test_clique_with_hair_on_pimple(self):
        n = 32
        g = clique_with_hair_on_pimple(n, pimple_size=8)
        v, vstar = n - 2, n - 1
        assert g.degree(vstar) == 1
        assert g.degree(v) == 8  # (h-1) clique nbrs + hair
        assert g.has_edge(v, vstar)
        assert g.is_connected()

    def test_pimple_default_size(self):
        n = 64
        g = clique_with_hair_on_pimple(n)
        h = max(2, int(round(n / np.log(n))))
        assert g.degree(n - 2) == h

    def test_pimple_rejects_bad_size(self):
        with pytest.raises(ValueError):
            clique_with_hair_on_pimple(32, pimple_size=1)

    def test_barbell(self):
        g = barbell_graph(5, 3)
        assert g.n == 13
        assert g.is_connected()
        assert g.num_edges == 2 * 10 + 4


class TestRandomFamilies:
    def test_random_regular_basic(self):
        g = random_regular_graph(20, 4, seed=0)
        assert g.n == 20 and g.is_regular() and g.degree(0) == 4
        assert g.is_connected()

    def test_random_regular_deterministic(self):
        a = random_regular_graph(16, 3, seed=9)
        b = random_regular_graph(16, 3, seed=9)
        assert a == b

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_random_regular_rejects_d_ge_n(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_erdos_renyi_bounds(self):
        g = erdos_renyi_graph(25, 0.3, seed=1)
        assert g.n == 25
        assert 0 < g.num_edges < 300

    def test_erdos_renyi_extreme_p(self):
        assert erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45
        assert erdos_renyi_graph(10, 0.0, seed=0).num_edges == 0

    def test_largest_component(self):
        # two cliques, sizes 4 and 3, disconnected
        from repro.graphs import Graph

        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j) for i in range(4, 7) for j in range(i + 1, 7)]
        g = Graph.from_edges(7, edges)
        sub, orig = largest_component(g)
        assert sub.n == 4
        assert sorted(orig.tolist()) == [0, 1, 2, 3]
        assert sub.is_connected()
