"""Batched cross-repetition drivers vs the serial reference oracles.

The contract under test is *bit-identity*: with the same spawned child
streams, ``batched_parallel_idla`` / ``batched_sequential_idla`` must
reproduce every field of every ``DispersionResult`` the serial drivers
produce — dispersion times, per-particle step counts, settlement maps and
settle order — across graph families, laziness, tie-breaking, origin
specifications, particle-count variants and settling rules.  Plus
property-based shape checks for the ``WalkEngine.step_batch`` kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DelayedRule,
    HairRule,
    batched_parallel_idla,
    batched_sequential_idla,
    parallel_idla,
    sequential_idla,
)
from repro.experiments import estimate_dispersion
from repro.graphs import (
    clique_with_hair,
    complete_graph,
    cycle_graph,
    grid_graph,
)
from repro.utils.rng import spawn_seed_sequences
from repro.walks.engine import WalkEngine

REPS = 5
PARENT_SEED = 20240517


def assert_results_identical(serial, batch):
    assert len(serial) == len(batch)
    for s, b in zip(serial, batch):
        assert s.process == b.process
        assert s.graph_name == b.graph_name
        assert s.n == b.n
        assert s.origin == b.origin
        assert s.dispersion_time == b.dispersion_time
        assert s.total_steps == b.total_steps
        assert np.array_equal(s.steps, b.steps)
        assert np.array_equal(s.settled_at, b.settled_at)
        assert np.array_equal(s.settle_order, b.settle_order)
        assert s.num_particles == b.num_particles
        assert b.trajectories is None


def graph_cases():
    return [cycle_graph(32), complete_graph(24), grid_graph(6, 5)]


PARALLEL_VARIANTS = [
    {},
    {"lazy": True},
    {"tie_break": "random"},
    {"origin": "uniform"},
    {"num_particles": 9},
    {"lazy": True, "scalar_threshold": 4},
    {"lazy": True, "scalar_threshold": 1000},  # all-scalar draw pattern
]

SEQUENTIAL_VARIANTS = [
    {},
    {"lazy": True},
    {"origin": "uniform"},
    {"num_particles": 9},
]


@pytest.mark.parametrize("g", graph_cases(), ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant", PARALLEL_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_batched_parallel_bit_identical(g, variant):
    kwargs = dict(variant)
    origin = kwargs.pop("origin", 0)
    serial = [
        parallel_idla(g, origin, seed=s, **kwargs)
        for s in spawn_seed_sequences(PARENT_SEED, REPS)
    ]
    batch = batched_parallel_idla(
        g, origin, seeds=spawn_seed_sequences(PARENT_SEED, REPS), **kwargs
    )
    assert_results_identical(serial, batch)


@pytest.mark.parametrize("g", graph_cases(), ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant", SEQUENTIAL_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_batched_sequential_bit_identical(g, variant):
    kwargs = dict(variant)
    origin = kwargs.pop("origin", 0)
    serial = [
        sequential_idla(g, origin, seed=s, **kwargs)
        for s in spawn_seed_sequences(PARENT_SEED, REPS)
    ]
    batch = batched_sequential_idla(
        g, origin, seeds=spawn_seed_sequences(PARENT_SEED, REPS), **kwargs
    )
    assert_results_identical(serial, batch)


def test_batched_parallel_surplus_particles():
    """m > n: surplus particles never settle but report their step counts."""
    g = cycle_graph(16)
    m = g.n + 5
    serial = [
        parallel_idla(g, seed=s, num_particles=m)
        for s in spawn_seed_sequences(7, REPS)
    ]
    batch = batched_parallel_idla(
        g, seeds=spawn_seed_sequences(7, REPS), num_particles=m
    )
    assert_results_identical(serial, batch)
    for res in batch:
        assert res.is_complete_dispersion()
        assert np.count_nonzero(res.settled_at < 0) == 5


def test_batched_parallel_custom_rule():
    g = clique_with_hair(20)
    rule = HairRule.for_clique_with_hair(g.n)
    serial = [
        parallel_idla(g, seed=s, rule=rule) for s in spawn_seed_sequences(3, REPS)
    ]
    batch = batched_parallel_idla(g, seeds=spawn_seed_sequences(3, REPS), rule=rule)
    assert_results_identical(serial, batch)


def test_batched_sequential_custom_rule():
    g = grid_graph(5, 5)
    rule = DelayedRule(4)
    serial = [
        sequential_idla(g, seed=s, rule=rule) for s in spawn_seed_sequences(11, REPS)
    ]
    batch = batched_sequential_idla(g, seeds=spawn_seed_sequences(11, REPS), rule=rule)
    assert_results_identical(serial, batch)


def test_batched_budget_errors_match_serial():
    g = cycle_graph(64)
    with pytest.raises(RuntimeError, match="max_rounds=5"):
        batched_parallel_idla(g, seeds=spawn_seed_sequences(0, 3), max_rounds=5)
    with pytest.raises(RuntimeError, match="max_total_steps=5"):
        batched_sequential_idla(
            g, seeds=spawn_seed_sequences(0, 3), max_total_steps=5
        )


def test_batched_argument_validation():
    g = cycle_graph(8)
    with pytest.raises(ValueError, match="seeds.*reps|either"):
        batched_parallel_idla(g)
    with pytest.raises(ValueError, match="does not match"):
        batched_parallel_idla(g, reps=3, seeds=spawn_seed_sequences(0, 2))
    with pytest.raises(ValueError, match="tie_break"):
        batched_parallel_idla(g, reps=2, tie_break="bogus")
    with pytest.raises(ValueError, match="num_particles"):
        batched_sequential_idla(g, reps=2, num_particles=g.n + 1)
    assert batched_parallel_idla(g, reps=0) == []


def test_batched_explicit_origin_array():
    g = grid_graph(4, 4)
    origins = np.arange(g.n)[::-1].copy()
    serial = [
        parallel_idla(g, origins, seed=s) for s in spawn_seed_sequences(21, REPS)
    ]
    batch = batched_parallel_idla(g, origins, seeds=spawn_seed_sequences(21, REPS))
    assert_results_identical(serial, batch)


# ----------------------------------------------------------------------
# runner dispatch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("process", ["parallel", "sequential"])
def test_runner_batched_dispatch_is_invisible(process):
    """estimate_dispersion returns identical samples in all three modes."""
    g = cycle_graph(48)
    ref = estimate_dispersion(g, process, reps=6, seed=5, batched=False)
    forced = estimate_dispersion(g, process, reps=6, seed=5, batched=True)
    auto = estimate_dispersion(g, process, reps=6, seed=5)
    assert np.array_equal(ref.samples, forced.samples)
    assert np.array_equal(ref.total_samples, forced.total_samples)
    assert np.array_equal(ref.samples, auto.samples)


def test_runner_batched_rejects_unsupported_kwargs():
    g = cycle_graph(16)
    # unknown driver kwargs fail fast with the accepted-options TypeError
    # (formerly they reached _validate_forced_batched as a ValueError)
    with pytest.raises(TypeError, match="faithful_r"):
        estimate_dispersion(
            g, "parallel", reps=4, seed=0, batched=True, faithful_r=True
        )
    with pytest.raises(KeyError, match="unknown process"):
        estimate_dispersion(g, "unknown-process", reps=4, seed=0, batched=True)
    with pytest.raises(ValueError, match="batched must be"):
        estimate_dispersion(g, "parallel", reps=4, seed=0, batched="true")
    # unsupported kwargs are rejected before any fan-out worker starts
    with pytest.raises(TypeError, match="faithful_r"):
        estimate_dispersion(
            g, "parallel", reps=4, seed=0, batched=True, n_jobs=2, faithful_r=True
        )
    # record=True is no longer a serial-only mode: forced batching takes
    # it and returns the serial trajectories bit for bit
    ref = estimate_dispersion(g, "parallel", reps=4, seed=0, batched=False, record=True)
    forced = estimate_dispersion(g, "parallel", reps=4, seed=0, batched=True, record=True)
    assert np.array_equal(ref.samples, forced.samples)
    assert ref.trajectories == forced.trajectories


def test_runner_auto_dispatch_serialises_stateful_rules():
    """Auto dispatch must not batch rules it cannot prove pure: the batched
    drivers evaluate rules on fewer (particle, vertex) pairs, so a stateful
    rule would silently change the numbers."""

    class CountingRule(DelayedRule):
        calls = 0

        def __call__(self, t, vertex, vacant):
            CountingRule.calls += 1
            return super().__call__(t, vertex, vacant)

    g = cycle_graph(24)
    auto = estimate_dispersion(g, "parallel", reps=4, seed=3, rule=CountingRule(2))
    auto_calls = CountingRule.calls
    CountingRule.calls = 0
    serial = estimate_dispersion(
        g, "parallel", reps=4, seed=3, rule=CountingRule(2), batched=False
    )
    # identical samples *and* identical rule-call traffic == serial path ran
    assert np.array_equal(auto.samples, serial.samples)
    assert auto_calls == CountingRule.calls
    # the known pure library rules do batch (dispatch decision only)
    from repro.experiments.runner import _use_batched

    assert _use_batched("parallel", g, 8, 1, {"rule": DelayedRule(2)}, "auto")
    assert not _use_batched("parallel", g, 8, 1, {"rule": CountingRule(2)}, "auto")


def test_runner_auto_dispatch_has_no_memory_decline():
    """The streaming buffers bound their own allocation, so repetition
    counts that the old ``_BATCHED_MAX_BUFFER_DOUBLES`` cap declined now
    batch — and the allocation the drivers report stays within the
    streaming budget rather than scaling with ``reps × block``."""
    from repro.core.batched import buffer_doubles
    from repro.experiments.runner import _use_batched
    from repro.utils.rng import _STREAM_BUDGET_DOUBLES

    g = cycle_graph(64)
    assert _use_batched("parallel", g, 100, 1, {}, "auto")
    assert _use_batched("parallel", g, 50000, 1, {}, "auto")
    assert _use_batched("sequential", g, 50000, 1, {}, "auto")
    budget_slack = 50000 * (2 * g.n + 2)  # per-round floor dominates budget
    assert buffer_doubles("parallel", 50000, g.n) <= max(
        _STREAM_BUDGET_DOUBLES, budget_slack
    )
    assert buffer_doubles("sequential", 50000, g.n) <= _STREAM_BUDGET_DOUBLES


# ----------------------------------------------------------------------
# step_batch property-based shape checks
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=7),
    cols=st.integers(min_value=1, max_value=9),
    n=st.integers(min_value=3, max_value=33),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_step_batch_shapes_and_validity(rows, cols, n, seed):
    g = cycle_graph(n)
    eng = WalkEngine(g, seed=seed)
    rng = np.random.default_rng(seed)
    pos = rng.integers(0, n, size=(rows, cols), dtype=np.int64)
    new = eng.step_batch(pos)
    assert new.shape == pos.shape
    assert new.dtype == np.int64
    # every move lands on a neighbour of the source vertex
    diff = (new - pos) % n
    assert np.all((diff == 1) | (diff == n - 1))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_step_batch_matches_flat_step(rows, cols, seed):
    """One batched step equals the flat engine step on the same uniforms."""
    g = grid_graph(4, 4)
    eng = WalkEngine(g, seed=seed)
    rng = np.random.default_rng(seed)
    pos = rng.integers(0, g.n, size=(rows, cols), dtype=np.int64)
    u = rng.random((rows, cols))
    batched = eng.step_batch(pos, u=u)
    flat_eng = WalkEngine(g, seed=seed)
    expected = np.empty_like(pos)
    for r in range(rows):
        # identical kernel on each row with that row's uniforms
        from repro.graphs.csr import neighbor_kernel
        from repro.walks.engine import neighbor_step

        expected[r] = neighbor_step(neighbor_kernel(g), g.degrees, pos[r], u[r])
    assert np.array_equal(batched, expected)
    assert flat_eng is not eng  # engines untouched by supplied uniforms


def test_step_batch_out_and_validation():
    g = cycle_graph(8)
    eng = WalkEngine(g, seed=0)
    pos = np.zeros((3, 4), dtype=np.int64)
    out = np.empty_like(pos)
    res = eng.step_batch(pos, out=out)
    assert res is out
    with pytest.raises(ValueError, match="u must match"):
        eng.step_batch(pos, u=np.zeros((2, 2)))
    with pytest.raises(ValueError, match="out must match"):
        eng.step_batch(pos, out=np.empty((2, 2), dtype=np.int64))
    with pytest.raises(ValueError, match="contiguous"):
        eng.step_batch(pos, out=np.empty((3, 8), dtype=np.int64)[:, ::2])
