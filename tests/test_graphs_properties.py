"""Tests for graph structural properties and networkx conversion."""

import pytest

import networkx as nx

from repro.graphs import (
    Graph,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    from_networkx,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    to_networkx,
)
from repro.graphs.properties import (
    bfs_distances,
    degree_histogram,
    diameter,
    eccentricity,
    is_tree,
    leaves,
)


class TestBFS:
    def test_path_distances(self):
        d = bfs_distances(path_graph(5), 0)
        assert d.tolist() == [0, 1, 2, 3, 4]

    def test_cycle_distances(self):
        d = bfs_distances(cycle_graph(6), 0)
        assert d.tolist() == [0, 1, 2, 3, 2, 1]

    def test_disconnected_marked(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        d = bfs_distances(g, 0)
        assert d[2] == -1 and d[3] == -1

    def test_matches_networkx(self, small_graph):
        nxg = to_networkx(small_graph)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        got = bfs_distances(small_graph, 0)
        for v, dist in expected.items():
            assert got[v] == dist


class TestDiameterEccentricity:
    @pytest.mark.parametrize(
        "g,expect",
        [
            (path_graph(7), 6),
            (cycle_graph(8), 4),
            (complete_graph(5), 1),
            (hypercube_graph(4), 4),
            (grid_graph(3, 5), 6),
        ],
    )
    def test_known_diameters(self, g, expect):
        assert diameter(g) == expect

    def test_eccentricity_center_vs_leaf(self):
        g = path_graph(9)
        assert eccentricity(g, 4) == 4
        assert eccentricity(g, 0) == 8

    def test_eccentricity_disconnected_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            eccentricity(g, 0)


class TestTreePredicates:
    def test_trees(self):
        assert is_tree(path_graph(5))
        assert is_tree(star_graph(6))
        assert is_tree(complete_binary_tree(3))
        assert not is_tree(cycle_graph(5))
        assert not is_tree(complete_graph(4))

    def test_leaves(self):
        assert leaves(path_graph(5)).tolist() == [0, 4]
        assert len(leaves(complete_binary_tree(3))) == 8
        assert len(leaves(cycle_graph(5))) == 0

    def test_degree_histogram(self):
        h = degree_histogram(star_graph(6))
        assert h == {1: 5, 5: 1}


class TestNetworkxConversion:
    def test_roundtrip(self, small_graph):
        back = from_networkx(to_networkx(small_graph))
        assert back.n == small_graph.n
        assert sorted(back.edges()) == sorted(set(small_graph.edges()))

    def test_to_networkx_structure(self):
        nxg = to_networkx(cycle_graph(7))
        assert nx.is_connected(nxg)
        assert nxg.number_of_edges() == 7

    def test_from_networkx_relabels(self):
        nxg = nx.Graph()
        nxg.add_edges_from([("c", "a"), ("a", "b")])
        g = from_networkx(nxg)
        assert g.n == 3
        # sorted: a=0, b=1, c=2; edges (0,2) and (0,1)
        assert g.has_edge(0, 2) and g.has_edge(0, 1)

    def test_from_networkx_rejects_loops(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        with pytest.raises(ValueError):
            from_networkx(nxg)

    def test_degrees_match_networkx(self, small_graph):
        nxg = to_networkx(small_graph)
        for v in range(small_graph.n):
            assert small_graph.degree(v) == nxg.degree(v)
