"""Batched continuous/uniform drivers vs the serial reference oracles.

The contract under test is *bit-identity*: with the same spawned child
streams, ``batched_ctu_idla`` / ``batched_uniform_idla`` /
``batched_continuous_sequential_idla`` must reproduce every field of
every ``DispersionResult`` the serial drivers produce — continuous
dispersion times, tick clocks, per-particle step counts, settlement maps,
settle order and the ``settle_clock`` / ``durations`` extras — across
graph families, rates, origin specifications and particle-count variants.
Plus chunk-invariance: the batched buffer block size must not influence a
single bit (the uniform-double streams have no batch boundaries), and the
runner's auto dispatch must be invisible.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.batched_continuous as bc
from repro.core import (
    batched_continuous_sequential_idla,
    batched_ctu_idla,
    batched_uniform_idla,
    continuous_sequential_idla,
    ctu_idla,
    uniform_idla,
)
from repro.core.settlement import UnsettledPool, settle_vacant_starts_inorder
from repro.experiments import estimate_dispersion
from repro.graphs import complete_graph, cycle_graph, grid_graph
from repro.utils.rng import spawn_seed_sequences

REPS = 5
PARENT_SEED = 20260730


def assert_results_identical(serial, batch, extras=()):
    assert len(serial) == len(batch)
    for s, b in zip(serial, batch):
        assert s.process == b.process
        assert s.graph_name == b.graph_name
        assert s.n == b.n
        assert s.origin == b.origin
        assert s.dispersion_time == b.dispersion_time
        assert s.total_steps == b.total_steps
        assert s.ticks == b.ticks
        assert np.array_equal(s.steps, b.steps)
        assert np.array_equal(s.settled_at, b.settled_at)
        assert np.array_equal(s.settle_order, b.settle_order)
        assert s.num_particles == b.num_particles
        assert b.trajectories is None
        for name in extras:
            assert np.array_equal(getattr(s, name), getattr(b, name)), name


def graph_cases():
    return [cycle_graph(32), complete_graph(24), grid_graph(6, 5)]


CTU_VARIANTS = [
    {},
    {"rate": 0.5},
    {"origin": "uniform"},
    {"num_particles": 9},
]

UNIFORM_VARIANTS = [
    {},
    {"origin": "uniform"},
    {"num_particles": 9},
    {"max_ticks": 10**9},
]

CSEQ_VARIANTS = [
    {},
    {"rate": 2.0},
    {"origin": "uniform"},
]


def run_pair(serial_driver, batched_driver, g, variant, extras=()):
    kwargs = dict(variant)
    origin = kwargs.pop("origin", 0)
    serial = [
        serial_driver(g, origin, seed=s, **kwargs)
        for s in spawn_seed_sequences(PARENT_SEED, REPS)
    ]
    batch = batched_driver(
        g, origin, seeds=spawn_seed_sequences(PARENT_SEED, REPS), **kwargs
    )
    assert_results_identical(serial, batch, extras)
    return batch


@pytest.mark.parametrize("g", graph_cases(), ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant", CTU_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_batched_ctu_bit_identical(g, variant):
    batch = run_pair(ctu_idla, batched_ctu_idla, g, variant, ["settle_clock"])
    for res in batch:
        assert res.settle_clock.max() == res.dispersion_time


@pytest.mark.parametrize("g", graph_cases(), ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant", UNIFORM_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_batched_uniform_bit_identical(g, variant):
    batch = run_pair(uniform_idla, batched_uniform_idla, g, variant)
    for res in batch:
        assert res.ticks >= res.total_steps


@pytest.mark.parametrize("g", graph_cases(), ids=lambda g: g.name)
@pytest.mark.parametrize(
    "variant", CSEQ_VARIANTS, ids=lambda v: ",".join(sorted(v)) or "classic"
)
def test_batched_continuous_sequential_bit_identical(g, variant):
    run_pair(
        continuous_sequential_idla,
        batched_continuous_sequential_idla,
        g,
        variant,
        ["durations"],
    )


def test_batched_cseq_all_instant_settlement():
    """K₂: particle 1 sometimes needs no walk at all, exercising the
    serial driver's drawn-but-unconsumed first block (the batched replica
    must burn it so the Gamma stream positions line up)."""
    g = complete_graph(2)
    serial = [
        continuous_sequential_idla(g, seed=s)
        for s in spawn_seed_sequences(5, 12)
    ]
    batch = batched_continuous_sequential_idla(g, seeds=spawn_seed_sequences(5, 12))
    assert_results_identical(serial, batch, ["durations"])


def test_batched_single_particle_no_draws():
    """m=1 settles at time 0 everywhere: no randomness is ever consumed."""
    g = cycle_graph(8)
    serial = [
        ctu_idla(g, 2, seed=s, num_particles=1)
        for s in spawn_seed_sequences(0, REPS)
    ]
    batch = batched_ctu_idla(
        g, 2, seeds=spawn_seed_sequences(0, REPS), num_particles=1
    )
    assert_results_identical(serial, batch, ["settle_clock"])
    assert all(res.dispersion_time == 0.0 for res in batch)


# ----------------------------------------------------------------------
# chunk-invariance: buffer block size must never change a bit
# ----------------------------------------------------------------------


@pytest.mark.parametrize("block", [3, 7, 64])
def test_batched_block_size_invariance(monkeypatch, block):
    """The per-repetition buffers replay one uniform-double stream; any
    refill chunking — including blocks that straddle a tick's 3-double
    consumption — must reproduce the serial results exactly."""
    g = cycle_graph(24)

    def seeds():
        return spawn_seed_sequences(PARENT_SEED, REPS)

    ref_ctu = [ctu_idla(g, seed=s) for s in seeds()]
    ref_uni = [uniform_idla(g, seed=s) for s in seeds()]
    monkeypatch.setattr(bc, "_BLOCK", block)
    assert_results_identical(
        ref_ctu, batched_ctu_idla(g, seeds=seeds()), ["settle_clock"]
    )
    assert_results_identical(ref_uni, batched_uniform_idla(g, seeds=seeds()))


@pytest.mark.parametrize("block", [3, 7, 64])
def test_batched_faithful_schedule_block_size_invariance(monkeypatch, block):
    """The recorded ``faithful_r`` schedule and trajectories must be
    invariant to the streaming refill chunk — the store records what the
    process *consumed*, never where a buffer happened to refill (guards
    against fetch-grid drift in the trajectory/schedule stores)."""
    g = cycle_graph(24)

    def seeds():
        return spawn_seed_sequences(PARENT_SEED, REPS)

    ref = [
        uniform_idla(g, seed=s, faithful_r=True, record=True) for s in seeds()
    ]
    monkeypatch.setattr(bc, "_BLOCK", block)
    batch = batched_uniform_idla(g, seeds=seeds(), faithful_r=True, record=True)
    for s, b in zip(ref, batch):
        assert np.array_equal(s.schedule, b.schedule)
        assert s.trajectories == b.trajectories
        assert s.ticks == b.ticks
        assert np.array_equal(s.steps, b.steps)


def test_serial_stream_block_invariance():
    """The serial oracle itself is chunk-invariant in its stream block."""
    from repro.utils.rng import UniformStream, as_generator

    ref = as_generator(123).random(40)
    for block in (1, 7, 64):
        s = UniformStream(as_generator(123), block=block)
        got = [s.uniform() for _ in range(40)]
        assert np.array_equal(np.asarray(got), ref)
        s2 = UniformStream(as_generator(123), block=block)
        logs = [s2.log1mu() for _ in range(40)]
        assert np.array_equal(np.asarray(logs), np.log1p(-ref))


# ----------------------------------------------------------------------
# budgets and argument validation
# ----------------------------------------------------------------------


def test_batched_budget_errors_match_serial():
    g = cycle_graph(64)
    with pytest.raises(RuntimeError, match="max_ticks=3"):
        batched_uniform_idla(g, seeds=spawn_seed_sequences(0, 3), max_ticks=3)
    with pytest.raises(RuntimeError, match="max_ticks=3"):
        uniform_idla(g, seed=0, max_ticks=3)


def test_batched_argument_validation():
    g = cycle_graph(8)
    with pytest.raises(ValueError, match="either"):
        batched_ctu_idla(g)
    with pytest.raises(ValueError, match="does not match"):
        batched_uniform_idla(g, reps=3, seeds=spawn_seed_sequences(0, 2))
    with pytest.raises(ValueError, match="num_particles"):
        batched_ctu_idla(g, reps=2, num_particles=g.n + 1)
    with pytest.raises(ValueError, match="num_particles"):
        batched_uniform_idla(g, reps=2, num_particles=0)
    with pytest.raises(ValueError, match="rate"):
        batched_ctu_idla(g, reps=2, rate=0.0)
    with pytest.raises(ValueError, match="rate"):
        batched_continuous_sequential_idla(g, reps=2, rate=-1.0)
    assert batched_ctu_idla(g, reps=0) == []
    assert batched_uniform_idla(g, reps=0) == []
    assert batched_continuous_sequential_idla(g, reps=0) == []


# ----------------------------------------------------------------------
# shared settlement helpers
# ----------------------------------------------------------------------


def test_settle_vacant_starts_inorder_duplicate_starts():
    occupied = [False] * 4
    settled_at = np.full(5, -1, dtype=np.int64)
    order: list[int] = []
    uns = settle_vacant_starts_inorder(
        occupied, np.array([2, 2, 0, 0, 3]), settled_at, order
    )
    assert uns == [1, 3]
    assert order == [0, 2, 4]  # lowest particle index wins each vertex
    assert settled_at.tolist() == [2, -1, 0, -1, 3]
    assert occupied == [True, False, True, True]


def test_unsettled_pool_swap_remove():
    pool = UnsettledPool([4, 7, 9, 11])
    assert len(pool) == 4 and pool.pick(1) == 7
    pool.remove_at(1)  # last entry swapped into slot 1
    assert pool.ids == [4, 11, 9]
    pool.remove_at(2)  # removing the last slot is a plain pop
    assert pool.ids == [4, 11]


# ----------------------------------------------------------------------
# runner dispatch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("process", ["uniform", "ctu", "c-sequential"])
def test_runner_batched_dispatch_is_invisible(process):
    """estimate_dispersion returns identical samples in all three modes."""
    g = cycle_graph(48)
    ref = estimate_dispersion(g, process, reps=6, seed=5, batched=False)
    forced = estimate_dispersion(g, process, reps=6, seed=5, batched=True)
    auto = estimate_dispersion(g, process, reps=6, seed=5)
    assert np.array_equal(ref.samples, forced.samples)
    assert np.array_equal(ref.total_samples, forced.total_samples)
    assert np.array_equal(ref.samples, auto.samples)


def test_runner_batched_rejects_unsupported_kwargs():
    g = cycle_graph(16)
    # unknown driver kwargs fail fast with the accepted-options TypeError
    # (formerly they reached _validate_forced_batched as a ValueError)
    with pytest.raises(TypeError, match="faithful_r"):
        estimate_dispersion(g, "ctu", reps=4, seed=0, batched=True, faithful_r=True)
    with pytest.raises(TypeError, match="rate"):
        estimate_dispersion(g, "uniform", reps=4, seed=0, batched=True, rate=2.0)
    # record / faithful_r are no longer serial-only: forced batching
    # accepts them and the estimate carries the recorded artefacts
    est = estimate_dispersion(
        g, "uniform", reps=4, seed=0, batched=True, faithful_r=True, record=True
    )
    ref = estimate_dispersion(
        g, "uniform", reps=4, seed=0, batched=False, faithful_r=True, record=True
    )
    assert est.dispersion.n == 4
    assert est.trajectories == ref.trajectories
    assert all(np.array_equal(a, b) for a, b in zip(est.schedules, ref.schedules))


def test_runner_auto_dispatch_thresholds():
    from repro.experiments.runner import _use_batched

    g = cycle_graph(64)
    for process in ("uniform", "ctu"):
        assert _use_batched(process, g, 16, 1, {}, "auto")
        assert not _use_batched(process, g, 15, 1, {}, "auto")
        # huge repetition counts batch too: the streaming buffers bound
        # their allocation, so there is no memory decline any more
        assert _use_batched(process, g, 50000, 1, {}, "auto")
    assert _use_batched("c-sequential", g, 64, 1, {}, "auto")
    assert not _use_batched("c-sequential", g, 63, 1, {}, "auto")
    assert not _use_batched("uniform", g, 16, 2, {}, "auto")  # process pool
