"""Theoretical bound calculators — one function per theorem/lemma.

=========================  ===========================================
Function                   Paper statement
=========================  ===========================================
``theorem_3_1_threshold``  Pr[τ > 6 t_hit log₂ n] ≤ n⁻²
``theorem_3_3_bound``      t_par ≤ 60 Σ_j (t_mix + max_S t_hit(π,S))
``theorem_3_5_bound``      t_seq ≤ 30 max_j j(t_mix + max_S t_hit(π,S))
``theorem_3_6_bound``      t_seq ≥ 2|E|/Δ
``theorem_3_7_tree_bound`` trees: t_seq ≥ 2n − 3
``proposition_3_9_bound``  t_seq = Ω(t_mix)
``lemma_c2_bound``         t_hit(v,S) ≤ c·n log|S| / ((1−λ₂)|S|)
``theorem_c4_bound``       t_par ≤ Σ_j (t_mix(1/n⁴) + t^j_hit(π,S))
``kappa_cc``               Lemma 5.1's κ_cc ≈ 1.2551
=========================  ===========================================
"""

from repro.bounds.constants import (
    KAPPA_CC,
    KAPPA_P_SIMULATED,
    PI2_OVER_6,
    expected_max_geometric_sum,
    kappa_cc,
)
from repro.bounds.lower import (
    proposition_3_9_bound,
    proposition_3_9_spectral_bound,
    theorem_3_6_bound,
    theorem_3_7_tree_bound,
    trivial_lower_bound,
)
from repro.bounds.sets import (
    lemma_c2_bound,
    lemma_c2_polynomial_bound,
    lemma_c5_hit_probability,
    multi_walk_set_hitting_time,
    theorem_c4_bound,
)
from repro.bounds.upper import (
    SetHittingProfile,
    set_hitting_profile,
    theorem_3_1_expectation_bound,
    theorem_3_1_threshold,
    theorem_3_3_bound,
    theorem_3_5_bound,
)
from repro.bounds.worst_case import (
    general_envelope,
    instance_envelope,
    regular_envelope,
)

__all__ = [
    "KAPPA_CC",
    "KAPPA_P_SIMULATED",
    "PI2_OVER_6",
    "kappa_cc",
    "expected_max_geometric_sum",
    "theorem_3_1_threshold",
    "theorem_3_1_expectation_bound",
    "set_hitting_profile",
    "SetHittingProfile",
    "theorem_3_3_bound",
    "theorem_3_5_bound",
    "theorem_3_6_bound",
    "theorem_3_7_tree_bound",
    "proposition_3_9_bound",
    "proposition_3_9_spectral_bound",
    "trivial_lower_bound",
    "lemma_c2_bound",
    "lemma_c2_polynomial_bound",
    "lemma_c5_hit_probability",
    "multi_walk_set_hitting_time",
    "theorem_c4_bound",
    "general_envelope",
    "regular_envelope",
    "instance_envelope",
]
