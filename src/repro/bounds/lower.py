"""Lower bounds on dispersion times (Theorems 3.6, 3.7; Propositions 3.9,
5.10; Theorem 5.9's cycle bound).

These return the *explicit* quantity each proof produces (e.g. ``2|E|/Δ``),
not just the asymptotic order, so benches can verify
``measured ≥ bound`` instance by instance.
"""

from __future__ import annotations

import math


from repro.graphs.csr import Graph
from repro.graphs.properties import is_tree
from repro.markov.mixing import mixing_time
from repro.markov.spectral import conductance_cheeger_bounds, second_eigenvalue

__all__ = [
    "theorem_3_6_bound",
    "theorem_3_7_tree_bound",
    "proposition_3_9_bound",
    "proposition_3_9_spectral_bound",
    "trivial_lower_bound",
]


def theorem_3_6_bound(g: Graph) -> float:
    """Theorem 3.6: ``t_seq(G) ≥ 2|E|/Δ`` (worst-case origin).

    The proof picks the origin ``w`` maximising one-sided hitting times; the
    last walk then needs ``t_hit(w, v) ≥ ½ t_com(w, v) = |E| R(w, v) ≥
    2|E|/Δ`` steps in expectation.

    >>> from repro.graphs import complete_graph
    >>> theorem_3_6_bound(complete_graph(10))  # 2m/Δ = n(n-1)/(n-1) = n
    10.0
    """
    m = g.num_edges
    return 2.0 * m / g.max_degree


def theorem_3_7_tree_bound(g: Graph) -> float:
    """Theorem 3.7: for any tree ``t_seq(T) ≥ 2n − 3``.

    Raises ``ValueError`` when the graph is not a tree (the bound is
    specific to the essential-edge argument).
    """
    if not is_tree(g):
        raise ValueError(f"{g.name} is not a tree; Theorem 3.7 does not apply")
    return 2.0 * g.n - 3.0


def proposition_3_9_bound(g: Graph, *, constant: float = 1.0) -> float:
    """Proposition 3.9: ``t_seq(G) = Ω(t_mix)`` (lazy walks).

    Returns ``constant · t_mix(1/4)`` with the exact lazy mixing time; the
    proof's universal constant is not made explicit in the paper, so
    ``constant`` defaults to the order-1 reference value used in benches
    (where the measured/`t_mix` ratio is reported rather than a pass/fail).
    """
    return constant * float(mixing_time(g, 0.25, lazy=True))


def proposition_3_9_spectral_bound(g: Graph) -> dict[str, float]:
    """The proposition's chained quantities: ``λ₂/(1-λ₂)`` and ``1/Φ`` brackets.

    Returns a dict with keys ``"relaxation_term"`` (``λ₂/(1−λ₂)`` for the
    lazy walk) and ``"inv_conductance_lower"/"inv_conductance_upper"`` (the
    reciprocal Cheeger bracket for ``1/Φ``).
    """
    lam2 = second_eigenvalue(g, lazy=True)
    rel = lam2 / (1.0 - lam2) if lam2 < 1.0 else math.inf
    phi_lo, phi_hi = conductance_cheeger_bounds(g)
    return {
        "relaxation_term": float(rel),
        "inv_conductance_lower": float(1.0 / phi_hi) if phi_hi > 0 else math.inf,
        "inv_conductance_upper": float(1.0 / phi_lo) if phi_lo > 0 else math.inf,
    }


def trivial_lower_bound(g: Graph) -> float:
    """``t_seq ≥ eccentricity of the origin's antipode`` is graph-dependent;
    the universally valid floor is the last particle's single step — but a
    useful trivial bound is ``n - 1`` walks each needing ≥ 1 step, giving
    dispersion ≥ 1, and on vertex-transitive graphs ≥ diameter.  We return
    ``max(1, diameter)`` as the sanity floor used in tests.
    """
    from repro.graphs.properties import diameter

    return float(max(1, diameter(g)))
