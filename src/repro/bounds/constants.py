"""Closed-form constants appearing in the paper's sharp results.

* ``KAPPA_CC`` (Lemma 5.1): the coupon-collector longest-wait constant —
  ``t_seq(K_n) ~ κ_cc · n`` with

      κ_cc = Σ_{i≥1} (−1)^{i+1} ( 2/(i(3i−1)) + 2/(i(3i+1)) ) ≈ 1.2552

  Note: the paper's display drops the alternating sign and flips the inner
  ``+`` (it prints ``Σ (2/(i(3i-1)) − 2/(i(3i+1)))``, which evaluates to
  ≈ 0.59, inconsistent with the quoted value 1.255).  The form above
  follows from ``κ_cc = ∫₀^∞ (1 − Π_{i≥1}(1 − e^{-ix})) dx`` via Euler's
  pentagonal-number theorem and matches both the quoted 1.255 and the
  exact finite-n computation :func:`expected_max_geometric_sum` (tested).

* ``PI2_OVER_6`` (Theorem 5.2): ``t_par(K_n) ~ (π²/6) n ≈ 1.6449 n``.
* ``KAPPA_P_SIMULATED`` (Table 1 footnote): the path constant κ_p in
  ``t_seq(P_n) ≈ κ_p n² log n``; the paper credits simulations giving
  ``κ_p ≈ 0.6`` — our benches re-estimate it (see
  ``benchmarks/bench_path_kappa.py``).
"""

from __future__ import annotations

import math

__all__ = [
    "kappa_cc",
    "KAPPA_CC",
    "PI2_OVER_6",
    "KAPPA_P_SIMULATED",
    "expected_max_geometric_sum",
]


def kappa_cc(terms: int = 200_000) -> float:
    """Evaluate Lemma 5.1's constant via the alternating series
    ``Σ (−1)^{i+1} (2/(i(3i−1)) + 2/(i(3i+1)))`` (see module docstring for
    the correction to the paper's display).

    Truncation error after ``terms`` addends is below the first omitted
    term, ``≈ (4/3)/terms²`` — ~3e-11 at the default.

    >>> round(kappa_cc(), 4)
    1.2552
    """
    if terms < 1:
        raise ValueError(f"terms must be >= 1, got {terms}")
    total = 0.0
    # Summed in reverse so the tiny tail terms accumulate first.
    for i in range(terms, 0, -1):
        sign = 1.0 if i % 2 == 1 else -1.0
        total += sign * (2.0 / (i * (3 * i - 1)) + 2.0 / (i * (3 * i + 1)))
    return total


#: Lemma 5.1's constant, precomputed.
KAPPA_CC: float = kappa_cc()

#: Theorem 5.2's Parallel-IDLA constant on the clique.
PI2_OVER_6: float = math.pi**2 / 6.0

#: Table 1 footnote: simulated path constant (Nikolaus Howe's simulations).
KAPPA_P_SIMULATED: float = 0.6


def expected_max_geometric_sum(n: int) -> float:
    """Exact ``E[max_i G_i]`` for independent ``G_i ~ Geom(i/n)``, i=1..n.

    This is the coupon collector's longest single wait (the law of
    ``τ_seq(K_{n+1})``'s longest walk up to the +1 boundary effect);
    ``E[T_n]/n → κ_cc``.  Computed by inclusion–exclusion:

        E[max] = Σ_{t≥0} (1 − Π_i (1 − (1−p_i)^t))

    evaluated with the substitution ``q_i = 1 − i/n`` and truncation once
    the summand drops below 1e-14 — O(n · t_max) time, fine for the sizes
    benches compare against.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    import numpy as np

    q = 1.0 - np.arange(1, n + 1) / n  # failure probs, q_n = 0
    total = 0.0
    t = 0
    qt = np.ones(n)
    while True:
        # P[max > t] = 1 - prod_i (1 - q_i^t)
        p_gt = 1.0 - np.prod(1.0 - qt)
        total += p_gt
        if p_gt < 1e-14 and t > n:
            break
        qt *= q
        t += 1
        if t > 10_000_000:  # pragma: no cover - safety valve
            break
    return float(total)
