"""Appendix C: analytic bounds on hitting times of sets.

* Lemma C.2 (regular graphs): ``t_hit(v, S) ≤ (5/(1-e^{-1})) ·
  n(1+⌈log|S|⌉) / ((1-λ₂)|S|)``; with polynomial return-probability decay
  ``p^t_{u,w} ≤ 1/n + C t^{-(1+ε)}`` the sharper
  ``t_hit(v, S) ≤ (5/(1-e^{-1})) (C+2) n / |S|^{ε/(1+ε)}``.
* Lemma C.3: the same bounds for almost-regular graphs up to constants.
* Lemma C.5: the matching-probability lower estimate
  ``Pr[τ_hit(π, S) ≤ τ] ≥ (τ|S|/n)(1 − (1+o(1))⌈log_{λ₂}(1/|S|)⌉/(τ|S|/n))``.
* Theorem C.4: a Parallel-IDLA bound assembled from multi-walk set hitting
  times, estimated by Monte Carlo (the exact product-chain computation is
  exponential).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.spectral import second_absolute_eigenvalue
from repro.utils.rng import as_generator, spawn_generators

__all__ = [
    "lemma_c2_bound",
    "lemma_c2_polynomial_bound",
    "lemma_c5_hit_probability",
    "multi_walk_set_hitting_time",
    "theorem_c4_bound",
]

_C2_PREFACTOR = 5.0 / (1.0 - math.exp(-1.0))


def lemma_c2_bound(g: Graph, size: int, *, lazy: bool = True) -> float:
    """Lemma C.2 / C.3 spectral bound on ``t_hit(v, S)`` for ``|S| = size``.

    Requires an almost-regular graph (warns-by-raising when Δ/δ > 4 since
    the constant is then uncontrolled).
    """
    if not g.is_almost_regular(4.0):
        raise ValueError(
            f"{g.name}: Lemma C.2/C.3 needs an almost-regular graph "
            f"(Δ/δ = {g.max_degree / g.min_degree:.2f})"
        )
    if not 1 <= size <= g.n:
        raise ValueError(f"size must be in [1, {g.n}], got {size}")
    lam = second_absolute_eigenvalue(g, lazy=lazy)
    gap = 1.0 - lam
    if gap <= 0:
        return math.inf
    log_s = math.ceil(math.log(size)) if size > 1 else 0
    return _C2_PREFACTOR * g.n * (1.0 + log_s) / (gap * size)


def lemma_c2_polynomial_bound(
    g: Graph, size: int, C: float, eps: float
) -> float:
    """Lemma C.2's second form under ``p^t ≤ 1/n + C t^{-(1+ε)}`` decay.

    The caller asserts the decay hypothesis (it holds e.g. on tori with
    ``ε = d/2 - 1`` for ``d ≥ 3``, cf. Theorem 5.11's proof).
    """
    if C <= 0 or eps <= 0:
        raise ValueError("C and eps must be positive")
    if not 1 <= size <= g.n:
        raise ValueError(f"size must be in [1, {g.n}], got {size}")
    return _C2_PREFACTOR * (C + 2.0) * g.n / size ** (eps / (1.0 + eps))


def lemma_c5_hit_probability(g: Graph, size: int, tau: float) -> float:
    """Lemma C.5's lower estimate on ``Pr[τ_hit(π, S) ≤ τ]`` (d-regular G).

    Returns ``max(0, (τ|S|/n)(1 − ⌈log_{λ₂}(1/|S|)⌉/(τ|S|/n)))`` — the
    ``(1+o(1))`` factor set to 1 as the reference value.
    """
    if not g.is_regular():
        raise ValueError(f"{g.name}: Lemma C.5 requires a regular graph")
    lam = second_absolute_eigenvalue(g, lazy=True)
    base = tau * size / g.n
    if base <= 0:
        return 0.0
    if lam <= 0 or size <= 1:
        log_term = 0.0
    else:
        log_term = math.ceil(max(0.0, math.log(1.0 / size) / math.log(lam)))
    return max(0.0, base * (1.0 - log_term / base)) if base else 0.0


def multi_walk_set_hitting_time(
    g: Graph,
    targets,
    j: int,
    reps: int = 64,
    seed=None,
    *,
    lazy: bool = True,
    from_stationary: bool = True,
) -> float:
    """Monte-Carlo estimate of ``t^j_hit(π, S)``: expected time until the
    *first* of ``j`` independent walks hits ``S``.

    Walk starts are i.i.d. from π (or the worst single vertex if
    ``from_stationary=False``).  Cost is ``O(reps · j · E[min hit])``.
    """
    from repro.markov.stationary import stationary_distribution
    from repro.walks.engine import WalkEngine

    if j < 1:
        raise ValueError(f"j must be >= 1, got {j}")
    mask = np.zeros(g.n, dtype=bool)
    t_arr = np.asarray(list(targets), dtype=np.int64)
    mask[t_arr] = True
    rng = as_generator(seed)
    pi = stationary_distribution(g)
    eng = WalkEngine(g, rng)
    times = np.empty(reps, dtype=np.int64)
    for r in range(reps):
        if from_stationary:
            pos = rng.choice(g.n, size=j, p=pi)
        else:
            pos = np.full(j, int(np.argmin(pi)), dtype=np.int64)
        t = 0
        while not mask[pos].any():
            t += 1
            if lazy:
                pos = eng.step_lazy(pos)
            else:
                pos = eng.step(pos, out=pos)
        times[r] = t
    return float(times.mean())


def theorem_c4_bound(
    g: Graph,
    k: int | None = None,
    reps: int = 32,
    seed=None,
) -> float:
    """Theorem C.4: ``t_par ≤ Σ_{j=1}^{k} (t_mix(1/n⁴) + t^j_hit(π, S_j))``.

    The theorem quantifies over the *actual* unoccupied sets ``S_j`` (size
    ``j``); as a computable reference we take the hardest singleton
    extended greedily (the same heuristic as the Theorem 3.3 evaluator)
    and estimate ``t^j_hit`` by Monte Carlo.  The result is an order-of-
    magnitude reference curve, flagged as such in benches.
    """
    from repro.markov.mixing import mixing_time_bounds
    from repro.markov.sets import max_set_hitting_time

    n = g.n
    if k is None:
        k = n - 1
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    # t_mix(1/n^4) via the spectral upper bound (exact TV at that accuracy
    # is numerically awkward); this keeps the expression an upper estimate.
    _, tmix_hi = mixing_time_bounds(g, min(0.25, 1.0 / n**4), lazy=True)
    rngs = spawn_generators(seed, k)
    total = 0.0
    for j in range(1, k + 1):
        _, subset = max_set_hitting_time(
            g, j, lazy=True, method="greedy"
        )
        tj = multi_walk_set_hitting_time(
            g, subset, j, reps=reps, seed=rngs[j - 1], lazy=True
        )
        total += tmix_hi + tj
    return total
