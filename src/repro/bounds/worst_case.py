"""Corollary 3.2: worst-case dispersion envelopes over all graphs.

``t_seq, t_par = O(n³ log n)`` in general and ``O(n² log n)`` for regular
graphs, both following from Theorem 3.1 with Lovász's hitting-time bounds
[34, Thm 2.1]; the lollipop and cycle are matching witnesses (Prop 5.16 /
Thm 5.9).  We expose both the reference envelopes (with the explicit
constants the chain of citations yields) and the per-instance computed
bound ``6 t_hit(G) log₂ n``.
"""

from __future__ import annotations

import math

from repro.graphs.csr import Graph
from repro.bounds.upper import theorem_3_1_threshold

__all__ = [
    "general_envelope",
    "regular_envelope",
    "instance_envelope",
]


def general_envelope(n: int) -> float:
    """``(4/27) n³ · 6 log₂ n`` — Theorem 3.1 with the maximum-hitting-time
    bound ``t_hit ≤ (4/27) n³ (1 + o(1))`` of Brightwell–Winkler (via [34]).
    """
    if n < 2:
        return 0.0
    return (4.0 / 27.0) * n**3 * 6.0 * math.log2(n)


def regular_envelope(n: int) -> float:
    """``2 n² · 6 log₂ n`` — Theorem 3.1 with ``t_hit ≤ 2 n²`` on regular
    graphs [34, Corollary 2.2 region]."""
    if n < 2:
        return 0.0
    return 2.0 * n**2 * 6.0 * math.log2(n)


def instance_envelope(g: Graph, *, lazy: bool = False) -> float:
    """The computed Theorem 3.1 bound for a specific instance."""
    return theorem_3_1_threshold(g, lazy=lazy)
