"""Upper bounds on dispersion times (Theorems 3.1, 3.3, 3.5).

Each bound is computed from exact Markov-chain quantities of the instance,
so benches can print "measured vs bound" rows.  Theorems 3.3/3.5 need
``max_{|S| ≥ s} t_hit(π, S)``; by monotonicity under set inclusion the max
is attained at ``|S| = s``, and three evaluation strategies are offered
(exact exhaustive, greedy/sampled heuristics, or the analytic Lemma C.2
surrogate for regular graphs) — see ``set_profile_method``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.bounds.sets import lemma_c2_bound
from repro.graphs.csr import Graph
from repro.markov.hitting import max_hitting_time
from repro.markov.mixing import mixing_time
from repro.markov.sets import max_set_hitting_time

__all__ = [
    "theorem_3_1_threshold",
    "theorem_3_1_expectation_bound",
    "set_hitting_profile",
    "theorem_3_3_bound",
    "theorem_3_5_bound",
    "SetHittingProfile",
]


def theorem_3_1_threshold(g: Graph, *, lazy: bool = False) -> float:
    """Theorem 3.1's tail threshold ``6 · t_hit(G) · log₂ n``.

    The theorem asserts ``Pr[τ_par > threshold] ≤ 1/n²`` (same for τ_seq).
    """
    n = g.n
    return 6.0 * max_hitting_time(g, lazy=lazy) * math.log2(max(n, 2))


def theorem_3_1_expectation_bound(g: Graph, *, lazy: bool = False) -> float:
    """Expectation version: ``t_par ≤ threshold / (1 - n⁻²)``.

    From the proof's phase argument: phases of length ``6 t_hit log₂ n``
    succeed with probability ``1 - n⁻²`` each, so the number of phases is
    dominated by a geometric with that success probability.
    """
    n = g.n
    thr = theorem_3_1_threshold(g, lazy=lazy)
    return thr / (1.0 - 1.0 / max(n, 2) ** 2)


@dataclass(frozen=True)
class SetHittingProfile:
    """Per-phase data for Theorems 3.3/3.5.

    ``sizes[j]`` is the set size ``max(1, ⌈2^{j-2}⌉)`` of phase ``j``
    (``j = 1..⌈log₂ n⌉``) and ``values[j]`` the corresponding
    ``max_{|S| = size} t_hit(π, S)`` estimate for the lazy walk.
    """

    sizes: tuple[int, ...]
    values: tuple[float, ...]
    t_mix: float
    method: str

    @property
    def num_phases(self) -> int:
        return len(self.sizes)


def _phase_sizes(n: int) -> list[int]:
    J = max(1, math.ceil(math.log2(n)))
    return [max(1, min(n, math.ceil(2 ** (j - 2)))) for j in range(1, J + 1)]


def set_hitting_profile(
    g: Graph,
    *,
    method: str = "auto",
    seed=None,
) -> SetHittingProfile:
    """Compute the phase profile used by Theorems 3.3 and 3.5.

    Parameters
    ----------
    method:
        ``"exact"`` — exhaustive subset maximisation (tiny graphs only);
        ``"heuristic"`` — greedy + sampled maximiser (lower-bounds the true
        max, see :func:`repro.markov.sets.max_set_hitting_time`);
        ``"lemma-c2"`` — analytic Lemma C.2 upper bound (regular graphs),
        which keeps the overall expression a genuine upper bound;
        ``"auto"`` — exact for ``n ≤ 12``, else heuristic.
    """
    n = g.n
    sizes = _phase_sizes(n)
    tmix = float(mixing_time(g, 0.25, lazy=True))
    if method == "auto":
        method = "exact" if n <= 12 else "heuristic"
    values: list[float] = []
    for s in sizes:
        if method == "exact":
            val, _ = max_set_hitting_time(g, s, lazy=True, method="exhaustive")
        elif method == "heuristic":
            val, _ = max_set_hitting_time(
                g, s, lazy=True, method="both", samples=100, seed=seed
            )
        elif method == "lemma-c2":
            val = lemma_c2_bound(g, s, lazy=True)
        else:
            raise ValueError(f"unknown method {method!r}")
        values.append(float(val))
    return SetHittingProfile(
        sizes=tuple(sizes), values=tuple(values), t_mix=tmix, method=method
    )


def theorem_3_3_bound(
    g: Graph, k: int = 1, *, profile: SetHittingProfile | None = None, **kw
) -> float:
    """Theorem 3.3: ``t^k_par(G) ≤ 60 Σ_{j=k}^{⌈log₂ n⌉} (t_mix + max_{|S| ≥ 2^{j-2}} t_hit(π, S))``
    for the lazy Parallel-IDLA.

    ``k = 1`` gives the full dispersion time; larger ``k`` bounds the time
    until fewer than ``2^k − 1`` vertices remain unsettled.
    """
    if profile is None:
        profile = set_hitting_profile(g, **kw)
    J = profile.num_phases
    if not 1 <= k <= J:
        raise ValueError(f"k must be in [1, {J}], got {k}")
    total = sum(profile.t_mix + profile.values[j - 1] for j in range(k, J + 1))
    return 60.0 * total


def theorem_3_5_bound(
    g: Graph, *, profile: SetHittingProfile | None = None, **kw
) -> float:
    """Theorem 3.5: ``t_seq(G) ≤ 30 max_j { j (t_mix + max_{|S| ≥ 2^{j-2}} t_hit(π, S)) }``
    for the lazy Sequential-IDLA.
    """
    if profile is None:
        profile = set_hitting_profile(g, **kw)
    best = max(
        j * (profile.t_mix + profile.values[j - 1])
        for j in range(1, profile.num_phases + 1)
    )
    return 30.0 * best
