"""C source for the cffi kernel provider.

One translation unit, compiled with plain ``-O2`` (never ``-ffast-math``:
the offset computation ``(i64)(u * (double)deg)`` must be the same IEEE
double multiply + truncation the numpy path performs, or the bit-identity
contract of :mod:`repro.kernels` breaks).  The functions mirror, line for
line, the numpy round bodies in :mod:`repro.core.batched` and the scalar
micro-loops in ``_finish_parallel_rep`` / ``_finish_sequential_rep`` /
:mod:`repro.walks.single` — every behavioural quirk (the *unclamped*
``int(u * deg)`` of the scalar loops, the clamped vector step, the draw
order around the budget checks) is deliberate and pinned by
``tests/test_differential_drivers.py``.

The loop kernels consume uniforms from a caller-provided buffer and
return ``0`` when it runs dry; the Python wrapper refills in exactly the
serial drivers' block cadence (see ``KernelSet`` in the package root), so
generator fetch positions stay on the serial grid.
"""

from __future__ import annotations

#: Prototypes for ``cffi.FFI.cdef`` — keep in sync with :data:`C_SOURCE`.
CDEF = """
typedef long long i64;
void repro_csr_step(const i64 *indptr, const i64 *indices, const i64 *pos,
                    const double *u, i64 *out, i64 k);
i64 repro_vacant(const unsigned char *occ, const i64 *rep_off,
                 const i64 *pos, i64 k, i64 *out);
i64 repro_settle_round(const unsigned char *occ, const i64 *rep,
                       const i64 *pos, const i64 *prio, i64 k, i64 n,
                       i64 *best, i64 *touched, i64 *winners);
i64 repro_finish_seq(const i64 *indptr, const i64 *indices,
                     unsigned char *occ, const i64 *starts, i64 *steps_row,
                     i64 *settled_row, const double *buf, i64 nbuf,
                     i64 *state, i64 m, i64 lazy, double budget);
i64 repro_finish_par1(const i64 *indptr, const i64 *indices,
                      unsigned char *occ, const double *buf, i64 nbuf,
                      i64 *state, i64 lazy, i64 guard, double budget);
i64 repro_walk_fill(const i64 *indptr, const i64 *indices, i64 *out,
                    i64 steps, const double *buf, i64 nbuf, i64 *state);
i64 repro_walk_hit(const i64 *indptr, const i64 *indices,
                   const unsigned char *hit, const double *buf, i64 nbuf,
                   i64 *state, double limit);
"""

C_SOURCE = """
#include <stdint.h>
#include <stdlib.h>

typedef long long i64;

/* Fused CSR step: deg gather, offset truncation, clamp, slot gather.
 * Bit-identical to the numpy chain
 *     deg = indptr[pos+1]-indptr[pos]; off = (u*deg).astype(int64);
 *     minimum(off, deg-1); indices[indptr[pos]+off]
 * Negative u (the lazy drivers pass 2*(u-0.5) for *hold* walkers whose
 * result is discarded by `where`) clamps to slot 0 instead of numpy's
 * harmless wraparound gather -- any in-range slot works, OOB does not. */
void repro_csr_step(const i64 *indptr, const i64 *indices, const i64 *pos,
                    const double *u, i64 *out, i64 k)
{
    for (i64 i = 0; i < k; i++) {
        i64 p = pos[i];
        i64 s = indptr[p];
        i64 d = indptr[p + 1] - s;
        i64 off = (i64)(u[i] * (double)d);
        if (off > d - 1) off = d - 1;
        if (off < 0) off = 0;
        out[i] = indices[s + off];
    }
}

/* Occupancy probe: indices i with occ[rep_off[i] + pos[i]] == 0,
 * ascending -- what flatnonzero returns, in one pass with no transients. */
i64 repro_vacant(const unsigned char *occ, const i64 *rep_off,
                 const i64 *pos, i64 k, i64 *out)
{
    i64 c = 0;
    for (i64 i = 0; i < k; i++)
        if (!occ[rep_off[i] + pos[i]]) out[c++] = i;
    return c;
}

static int repro_cmp_i64(const void *a, const void *b)
{
    i64 x = *(const i64 *)a, y = *(const i64 *)b;
    return (x > y) - (x < y);
}

/* Fused probe + per-(repetition, vertex) contest of one settlement round.
 * Walkers arrive grouped by repetition ascending (the flat-state
 * invariant), so one n-cell scratch `best` (persistently -1) serves all
 * repetitions.  Winner = smallest priority per vacant cell, first
 * occurrence on ties (matches the stable lexsort of select_settlers);
 * winners are emitted ordered by (repetition, vertex), i.e. by the
 * lexsort's key.  Scratch cells are restored to -1 before returning. */
i64 repro_settle_round(const unsigned char *occ, const i64 *rep,
                       const i64 *pos, const i64 *prio, i64 k, i64 n,
                       i64 *best, i64 *touched, i64 *winners)
{
    i64 total = 0, i = 0;
    while (i < k) {
        i64 r = rep[i], off = r * n, j = i, nt = 0;
        for (; j < k && rep[j] == r; j++) {
            i64 v = pos[j];
            if (occ[off + v]) continue;
            i64 b = best[v];
            if (b < 0) { touched[nt++] = v; best[v] = j; }
            else if (prio[j] < prio[b]) best[v] = j;
        }
        qsort(touched, (size_t)nt, sizeof(i64), repro_cmp_i64);
        for (i64 q = 0; q < nt; q++) {
            winners[total++] = best[touched[q]];
            best[touched[q]] = -1;
        }
        i = j;
    }
    return total;
}

/* _finish_sequential_rep's inner loop.  state = [particle, pos, t, total];
 * returns 1 when all m particles settled (state[3] = consumed doubles),
 * 0 when the uniform buffer ran dry (resume with a fresh buffer), -1 on
 * budget excess.  The serial loop draws u *before* the budget check and
 * indexes nbrs *unclamped* -- both reproduced exactly. */
i64 repro_finish_seq(const i64 *indptr, const i64 *indices,
                     unsigned char *occ, const i64 *starts, i64 *steps_row,
                     i64 *settled_row, const double *buf, i64 nbuf,
                     i64 *state, i64 m, i64 lazy, double budget)
{
    i64 particle = state[0], pos = state[1], t = state[2], total = state[3];
    i64 i = 0;
    for (;;) {
        if (i >= nbuf) {
            state[0] = particle; state[1] = pos;
            state[2] = t; state[3] = total;
            return 0;
        }
        double u = buf[i++];
        total += 1;
        t += 1;
        if ((double)total > budget) {
            state[0] = particle; state[1] = pos;
            state[2] = t; state[3] = total;
            return -1;
        }
        if (lazy) {
            if (u < 0.5) continue;
            u = 2.0 * (u - 0.5);
        }
        {
            i64 s = indptr[pos];
            i64 d = indptr[pos + 1] - s;
            pos = indices[s + (i64)(u * (double)d)];
        }
        if (occ[pos]) continue;
        occ[pos] = 1;
        steps_row[particle] = t;
        settled_row[particle] = pos;
        particle += 1;
        while (particle < m) {           /* instant_settle_chain */
            i64 v = starts[particle];
            if (occ[v]) break;
            occ[v] = 1;
            steps_row[particle] = 0;
            settled_row[particle] = v;
            particle += 1;
        }
        if (particle == m) {
            state[0] = particle; state[1] = pos;
            state[2] = t; state[3] = total;
            return 1;
        }
        pos = starts[particle];
        t = 0;
    }
}

/* The k == 1 branch of _finish_parallel_rep: one straggler particle, no
 * contest.  state = [v, t]; returns 1 settled, 0 buffer dry, -1 budget.
 * `guard` is the serial wide-phase flag (k > scalar_threshold): clamped
 * vector-step offsets when set, the raw scalar truncation otherwise. */
i64 repro_finish_par1(const i64 *indptr, const i64 *indices,
                      unsigned char *occ, const double *buf, i64 nbuf,
                      i64 *state, i64 lazy, i64 guard, double budget)
{
    i64 v = state[0], t = state[1], i = 0;
    for (;;) {
        if (i >= nbuf) { state[0] = v; state[1] = t; return 0; }
        t += 1;
        if ((double)t > budget) { state[0] = v; state[1] = t; return -1; }
        double u = buf[i++];
        if (lazy) {
            if (u < 0.5) continue;
            u = 2.0 * (u - 0.5);
        }
        {
            i64 s = indptr[v];
            i64 d = indptr[v + 1] - s;
            i64 off = (i64)(u * (double)d);
            if (guard && off >= d) off = d - 1;
            v = indices[s + off];
        }
        if (occ[v]) continue;
        occ[v] = 1;
        state[0] = v;
        state[1] = t;
        return 1;
    }
}

/* random_walk's loop: fill out[state[0]+1 ..] until `steps` steps taken.
 * state = [t, pos]; returns 1 done, 0 buffer dry. */
i64 repro_walk_fill(const i64 *indptr, const i64 *indices, i64 *out,
                    i64 steps, const double *buf, i64 nbuf, i64 *state)
{
    i64 t = state[0], pos = state[1], i = 0;
    while (t < steps) {
        if (i >= nbuf) { state[0] = t; state[1] = pos; return 0; }
        double u = buf[i++];
        i64 s = indptr[pos];
        i64 d = indptr[pos + 1] - s;
        pos = indices[s + (i64)(u * (double)d)];
        t += 1;
        out[t] = pos;
    }
    state[0] = t;
    state[1] = pos;
    return 1;
}

/* walk_until_hit's loop.  state = [steps, pos]; returns 1 on hit,
 * 0 buffer dry, -1 when `limit` steps elapsed without a hit. */
i64 repro_walk_hit(const i64 *indptr, const i64 *indices,
                   const unsigned char *hit, const double *buf, i64 nbuf,
                   i64 *state, double limit)
{
    i64 steps = state[0], pos = state[1], i = 0;
    for (;;) {
        if (i >= nbuf) { state[0] = steps; state[1] = pos; return 0; }
        double u = buf[i++];
        i64 s = indptr[pos];
        i64 d = indptr[pos + 1] - s;
        pos = indices[s + (i64)(u * (double)d)];
        steps += 1;
        if (hit[pos]) { state[0] = steps; state[1] = pos; return 1; }
        if ((double)steps >= limit) {
            state[0] = steps; state[1] = pos;
            return -1;
        }
    }
}
"""
