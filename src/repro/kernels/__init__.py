"""Compiled inner-loop kernels behind an import-time seam.

The lock-step drivers are pure array programs, but two costs survive the
vectorisation: per-round numpy dispatch (a fixed number of ufunc calls
whose overhead dominates once the live-walker count is small) and the
scalar tail finisher's plain-Python micro-loops.  This package provides
optional compiled replacements — the pattern scikit-learn applies with
its Cython layer — behind a registry that resolves exactly like
:mod:`repro.backends`:

1. an explicit ``kernels=`` argument (name or :class:`KernelSet`),
2. the ``REPRO_KERNELS`` environment variable,
3. auto-detection: ``numba`` if importable, else the ``cffi`` provider
   (the C twins compiled with the system toolchain), else ``numpy``.

Providers
---------
``numpy``
    The existing vectorised/scalar code paths — no compiled code, always
    available.  ``compiled=False`` makes every driver keep its current
    body, so forcing ``REPRO_KERNELS=numpy`` is the honest fallback mode.
``numba``
    ``@njit`` kernels (:mod:`repro.kernels.numba_impl`); selected only
    when numba imports, compiled and self-checked at selection time.
``cffi``
    The same kernels as C (:mod:`repro.kernels._csource`), built once
    with the system compiler and opened in cffi ABI mode.

Bit-identity contract
---------------------
Compiled kernels activate only on ``exact_bitstream=True`` numpy-family
backends and only for materialised-CSR graphs (:func:`csr_arrays`); the
differential harness in ``tests/test_differential_drivers.py`` pins every
swapped kernel against the serial oracles, double for double.  Each
provider passes a load-time self-check (:func:`_self_check`) exercising
all seven entry points before it can be selected, so a miscompiled or
mis-installed provider fails at resolution, not mid-run.
"""

from __future__ import annotations

import os
import warnings
from importlib.util import find_spec

import numpy as np

__all__ = [
    "ENV_VAR",
    "CompiledKernels",
    "KernelSet",
    "KernelsUnavailableError",
    "NumpyKernels",
    "available_kernels",
    "csr_arrays",
    "get_kernels",
]

ENV_VAR = "REPRO_KERNELS"

#: Auto-detection preference; ``numpy`` is the implicit final fallback.
_AUTO_ORDER = ("numba", "cffi")

_I64 = np.dtype(np.int64)
_F64 = np.dtype(np.float64)


class KernelsUnavailableError(ValueError):
    """A requested kernel provider cannot be initialised here."""


def csr_arrays(g) -> tuple[np.ndarray, np.ndarray] | None:
    """Host CSR arrays of ``g``, or ``None`` when compiled kernels must
    stand down.

    Implicit families expose no ``indptr``/``indices`` (their slot kernel
    is arithmetic, and materialising would defeat their O(1)-in-n
    footprint), and device-backend graphs hold non-host arrays; both keep
    the numpy path.  :class:`repro.graphs.csr.Graph` stores both arrays
    C-contiguous ``int64``, which is exactly what the kernels consume.
    """
    indptr = getattr(g, "indptr", None)
    indices = getattr(g, "indices", None)
    if not isinstance(indptr, np.ndarray) or not isinstance(indices, np.ndarray):
        return None
    if indptr.dtype != _I64 or indices.dtype != _I64:
        return None
    if not (indptr.flags.c_contiguous and indices.flags.c_contiguous):
        return None
    return indptr, indices


def _i64(a: np.ndarray) -> np.ndarray:
    if a.dtype == _I64 and a.flags.c_contiguous:
        return a
    return np.ascontiguousarray(a, dtype=np.int64)


def _f64(a: np.ndarray) -> np.ndarray:
    if a.dtype == _F64 and a.flags.c_contiguous:
        return a
    return np.ascontiguousarray(a, dtype=np.float64)


def _u8(a: np.ndarray) -> np.ndarray:
    if a.dtype == np.bool_:
        return a.view(np.uint8)
    return a if a.dtype == np.uint8 else np.ascontiguousarray(a, dtype=np.uint8)


class KernelSet:
    """Resolved kernel provider: the object the drivers thread around.

    ``compiled`` is the single flag call sites gate on — ``False`` (the
    numpy provider) means "keep the existing code path", so the numpy
    fallback costs nothing and cannot drift.  Instances pickle by name
    (:meth:`__reduce__`), so a resolved provider travels through the
    fan-out runner's kwargs and is re-resolved inside each worker.
    """

    __slots__ = ("name",)
    compiled = False
    #: Narrowest array width at which the lock-step drivers call the
    #: compiled array kernels.  Below it the FFI/launch overhead loses to
    #: numpy's ufunc path (measured crossover ~64 lanes on x86-64), so
    #: the narrowest rounds — the very end of the settlement tail — keep
    #: the numpy expressions; the scalar finishers and single-walker
    #: loops ignore this (they replace per-*step* Python loops, where
    #: compiled always wins).  Irrelevant when ``compiled`` is ``False``.
    min_width = 0

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelSet name={self.name!r} compiled={self.compiled}>"

    def __reduce__(self):
        return (get_kernels, (self.name,))

    # ------------------------------------------------------------------
    def stepper(self, g):
        """Fused-step closure ``step(pos, u, out=None)`` for ``g``, or
        ``None`` when this provider (or this graph) keeps the numpy path."""
        return None


class NumpyKernels(KernelSet):
    """Reference provider: the kernels' semantics in plain numpy.

    The array kernels are implemented (they are what the unit tests
    compare the compiled providers against); the drivers never call them
    because ``compiled=False`` keeps the existing inlined bodies.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__("numpy")

    def csr_step(self, indptr, indices, pos, u, out=None):
        deg = indptr[pos + 1] - indptr[pos]
        offsets = (u * deg).astype(np.int64)
        np.minimum(offsets, deg - 1, out=offsets)
        flat = indptr[pos] + offsets
        if out is None:
            return indices[flat]
        np.take(indices, flat, out=out)
        return out

    def vacant_candidates(self, occupied, rep_off, pos):
        return np.flatnonzero(occupied[rep_off + pos] == 0)

    def make_settle_scratch(self, n: int):
        return None

    def settle_round(self, occupied, rep_ids, pos, priority, n, scratch=None):
        from repro.core.settlement import select_settlers

        rep_off = rep_ids * n
        cand = np.flatnonzero(occupied[rep_off + pos] == 0)
        if cand.size == 0:
            return cand
        winners = select_settlers(rep_off[cand] + pos[cand], priority[cand])
        return cand[winners]


class CompiledKernels(KernelSet):
    """Wrapper over a low-level provider (numba module or cffi namespace).

    The loop kernels speak a shared buffer protocol: they consume
    uniforms from the array they were handed and return ``0`` when it
    runs dry, whereupon the wrapper fetches the next block from the
    stream object (``UniformStream.take_block`` for the finishers, the
    raw generator for the single-walker loops) — the exact fetch cadence
    of the serial scalar loops, so generator positions stay reconcilable
    with the serial grid (``UniformStreams.align_to_serial``).
    """

    __slots__ = ("_impl",)
    compiled = True
    min_width = 64

    def __init__(self, name: str, impl):
        super().__init__(name)
        self._impl = impl

    # ---- array kernels -----------------------------------------------
    def csr_step(self, indptr, indices, pos, u, out=None):
        pos = _i64(pos)
        k = pos.shape[0]
        if out is None:
            out = np.empty(k, dtype=np.int64)
        self._impl.csr_step(indptr, indices, pos, _f64(u), out, k)
        return out

    def stepper(self, g):
        csr = csr_arrays(g)
        if csr is None:
            return None
        indptr, indices = csr

        def step(pos, u, out=None, _self=self, _ip=indptr, _ix=indices):
            return _self.csr_step(_ip, _ix, pos, u, out)

        return step

    def vacant_candidates(self, occupied, rep_off, pos):
        pos = _i64(pos)
        k = pos.shape[0]
        out = np.empty(k, dtype=np.int64)
        c = self._impl.vacant(_u8(occupied), _i64(rep_off), pos, k, out)
        return out[: int(c)]

    def make_settle_scratch(self, n: int) -> np.ndarray:
        """Persistent per-vertex contest scratch (must stay all ``-1``
        between calls; :meth:`settle_round` restores it)."""
        return np.full(n, -1, dtype=np.int64)

    def settle_round(self, occupied, rep_ids, pos, priority, n, scratch=None):
        pos = _i64(pos)
        k = pos.shape[0]
        if scratch is None:
            scratch = self.make_settle_scratch(n)
        touched = np.empty(min(k, n), dtype=np.int64)
        winners = np.empty(k, dtype=np.int64)
        c = self._impl.settle_round(
            _u8(occupied), _i64(rep_ids), pos, _i64(priority), k, n,
            scratch, touched, winners,
        )
        return winners[: int(c)]

    # ---- scalar-tail finisher loops ----------------------------------
    def finish_sequential(
        self, indptr, indices, occ_row, starts, tail, *,
        walker, pos, pstep, total, lazy, budget, limit_msg,
        steps_row, settled_row,
    ) -> int:
        """Compiled ``_finish_sequential_rep``; returns consumed doubles."""
        state = np.array([walker, pos, pstep, total], dtype=np.int64)
        occ = _u8(occ_row)
        starts = _i64(starts)
        m = starts.shape[0]
        lz = 1 if lazy else 0
        buf = tail.take_block()
        while True:
            status = self._impl.finish_seq(
                indptr, indices, occ, starts, steps_row, settled_row,
                _f64(buf), buf.shape[0], state, m, lz, budget,
            )
            if status == 1:
                return int(state[3])
            if status < 0:
                raise RuntimeError(limit_msg)
            buf = tail.take_block()

    def finish_parallel_single(
        self, indptr, indices, occ_arr, tail, *,
        v, t, lazy, guard, budget, limit_msg,
    ) -> tuple[int, int]:
        """Compiled single-straggler loop; returns ``(vertex, round)``."""
        state = np.array([v, t], dtype=np.int64)
        occ = _u8(occ_arr)
        lz = 1 if lazy else 0
        gd = 1 if guard else 0
        buf = tail.take_block()
        while True:
            status = self._impl.finish_par1(
                indptr, indices, occ, _f64(buf), buf.shape[0], state,
                lz, gd, budget,
            )
            if status == 1:
                return int(state[0]), int(state[1])
            if status < 0:
                raise RuntimeError(limit_msg)
            buf = tail.take_block()

    # ---- single-walker loops -----------------------------------------
    def walk_positions(self, indptr, indices, out, rng, block: int):
        """Compiled :func:`repro.walks.single.random_walk` loop.

        ``out[0]`` must hold the start; the first block is drawn eagerly
        (``SingleWalkKernel.__init__`` does), refills are whole blocks.
        """
        steps = out.shape[0] - 1
        state = np.array([0, out[0]], dtype=np.int64)
        buf = rng.random(block)
        while True:
            status = self._impl.walk_fill(
                indptr, indices, out, steps, buf, buf.shape[0], state
            )
            if status == 1:
                return out
            buf = rng.random(block)

    def walk_until_hit(
        self, indptr, indices, hit, start, rng, block: int,
        limit: float, limit_msg: str,
    ) -> int:
        """Compiled :func:`repro.walks.single.walk_until_hit` loop."""
        state = np.array([0, start], dtype=np.int64)
        hit = _u8(hit)
        buf = rng.random(block)
        while True:
            status = self._impl.walk_hit(
                indptr, indices, hit, buf, buf.shape[0], state, limit
            )
            if status == 1:
                return int(state[0])
            if status < 0:
                raise RuntimeError(limit_msg)
            buf = rng.random(block)


# ----------------------------------------------------------------------
# load-time self-check
# ----------------------------------------------------------------------
class _BlockFeeder:
    """Fixed block sequence standing in for a stream (self-check only)."""

    def __init__(self, blocks):
        self._blocks = [np.asarray(b, dtype=np.float64) for b in blocks]
        self.drawn = 0

    def take_block(self) -> np.ndarray:
        if not self._blocks:
            raise AssertionError("kernel self-check over-consumed its stream")
        return self._blocks.pop(0)

    def random(self, n: int) -> np.ndarray:  # stub generator for the walks
        out = self.take_block()
        if out.shape[0] != n:
            raise AssertionError("kernel self-check block size mismatch")
        return out


def _self_check(ks: CompiledKernels) -> None:
    """Exercise every kernel on the path graph P3 and assert the answers.

    Forces numba to compile all kernels at selection time (a broken
    install fails here, loudly) and catches toolchain miscompiles for the
    cffi provider.  Inputs cross a buffer-refill boundary so the resume
    protocol is checked too.
    """
    indptr = np.array([0, 1, 3, 4], dtype=np.int64)
    indices = np.array([1, 0, 2, 1], dtype=np.int64)

    stepped = ks.csr_step(
        indptr, indices,
        np.array([0, 1, 1, 2], dtype=np.int64),
        np.array([0.99, 0.0, 0.51, 0.2]),
    )
    assert stepped.tolist() == [1, 0, 2, 1], stepped

    occ2 = np.array([1, 0, 0, 1, 1, 0], dtype=bool)
    cand = ks.vacant_candidates(
        occ2,
        np.array([0, 0, 3, 3], dtype=np.int64),
        np.array([1, 0, 2, 0], dtype=np.int64),
    )
    assert cand.tolist() == [0, 2], cand

    winners = ks.settle_round(
        occ2,
        np.array([0, 0, 1, 1], dtype=np.int64),
        np.array([1, 1, 2, 2], dtype=np.int64),
        np.array([5, 3, 7, 9], dtype=np.int64),
        3,
    )
    assert winners.tolist() == [1, 2], winners

    occ = np.zeros(3, dtype=bool)
    occ[0] = True
    vertex, rounds = ks.finish_parallel_single(
        indptr, indices, occ, _BlockFeeder([[0.9]]),
        v=0, t=0, lazy=False, guard=False, budget=float("inf"),
        limit_msg="self-check",
    )
    assert (vertex, rounds) == (1, 1) and bool(occ[1])

    occ = np.zeros(3, dtype=bool)
    occ[0] = True
    steps_row = np.zeros(2, dtype=np.int64)
    settled_row = np.full(2, -1, dtype=np.int64)
    consumed = ks.finish_sequential(
        indptr, indices, occ,
        np.array([1, 2], dtype=np.int64),
        _BlockFeeder([[0.9], [0.1]]),
        walker=0, pos=1, pstep=0, total=0, lazy=False,
        budget=float("inf"), limit_msg="self-check",
        steps_row=steps_row, settled_row=settled_row,
    )
    assert consumed == 2
    assert settled_row.tolist() == [2, 1] and steps_row.tolist() == [1, 1]

    out = np.empty(3, dtype=np.int64)
    out[0] = 0
    ks.walk_positions(indptr, indices, out, _BlockFeeder([[0.5, 0.5]]), 2)
    assert out.tolist() == [0, 1, 2], out

    hits = ks.walk_until_hit(
        indptr, indices, np.array([0, 0, 1], dtype=np.uint8), 0,
        _BlockFeeder([[0.9, 0.9]]), 2, float("inf"), "self-check",
    )
    assert hits == 2, hits


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
_CACHE: dict[str, KernelSet] = {}
_FAILED: dict[str, str] = {}


def _dep_present(name: str) -> bool:
    if name == "numba":
        return find_spec("numba") is not None
    if name == "cffi":
        if find_spec("cffi") is None:
            return False
        from shutil import which

        return which(os.environ.get("CC") or "cc") is not None
    return True


def _load(name: str) -> KernelSet:
    if name in _CACHE:
        return _CACHE[name]
    if name in _FAILED:
        raise KernelsUnavailableError(
            f"kernel provider {name!r} unavailable: {_FAILED[name]}"
        )
    if name == "numpy":
        ks: KernelSet = NumpyKernels()
    elif name in _AUTO_ORDER:
        try:
            if name == "numba":
                from repro.kernels import numba_impl

                ks = CompiledKernels("numba", numba_impl)
            else:
                from repro.kernels import cffi_impl

                ks = CompiledKernels("cffi", cffi_impl.load())
            _self_check(ks)
        except Exception as exc:
            _FAILED[name] = f"{type(exc).__name__}: {exc}"
            raise KernelsUnavailableError(
                f"kernel provider {name!r} unavailable: {_FAILED[name]}"
            ) from exc
    else:
        raise ValueError(
            f"unknown kernel provider {name!r}; available: "
            f"{', '.join(('numpy', *_AUTO_ORDER))} (or 'auto')"
        )
    _CACHE[name] = ks
    return ks


def available_kernels() -> dict[str, bool]:
    """Provider name -> availability *here* (probing builds on demand)."""
    out = {"numpy": True}
    for name in _AUTO_ORDER:
        if name in _CACHE:
            out[name] = True
        elif name in _FAILED or not _dep_present(name):
            out[name] = False
        else:
            try:
                _load(name)
                out[name] = True
            except KernelsUnavailableError:
                out[name] = False
    return out


def get_kernels(spec: str | KernelSet | None = None) -> KernelSet:
    """Resolve ``spec`` to a :class:`KernelSet`.

    ``None`` consults ``REPRO_KERNELS`` and falls back to auto-detection;
    a name is a registry lookup (``"auto"`` runs the detection order); a
    :class:`KernelSet` instance passes through unchanged.  An explicitly
    requested provider that cannot initialise raises
    :class:`KernelsUnavailableError` (a ``ValueError``); under
    auto-detection a *present but broken* provider warns and the next one
    is tried — numba simply being absent stays silent.
    """
    if isinstance(spec, KernelSet):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "auto"
    if not isinstance(spec, str):
        raise TypeError(
            f"kernels must be a provider name or a KernelSet instance, "
            f"got {type(spec).__name__}"
        )
    if spec == "auto":
        for name in _AUTO_ORDER:
            if not _dep_present(name):
                continue
            try:
                return _load(name)
            except KernelsUnavailableError as exc:
                warnings.warn(
                    f"kernel provider {name!r} failed to initialise; "
                    f"falling back ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return _load("numpy")
    return _load(spec)
