"""Numba kernel provider: ``@njit`` twins of the C kernels.

Importing this module requires numba; the registry in
:mod:`repro.kernels` gates the import and falls back to the other
providers when it is absent.  Each function mirrors the corresponding C
routine in :mod:`repro.kernels._csource` statement for statement — the
bit-identity argument is made once, in the C comments, and holds here
because numba lowers ``int(u * d)`` to the same IEEE multiply +
truncation.  ``cache=True`` persists the compiled machine code next to
this file so the one-time JIT cost is paid once per environment; the
registry's load-time self-check forces compilation of every kernel up
front, so a broken numba install fails at selection time, not mid-run.
"""

from __future__ import annotations

from numba import njit

name = "numba"


@njit(cache=True)
def csr_step(indptr, indices, pos, u, out, k):
    for i in range(k):
        p = pos[i]
        s = indptr[p]
        d = indptr[p + 1] - s
        off = int(u[i] * d)
        if off > d - 1:
            off = d - 1
        if off < 0:
            off = 0
        out[i] = indices[s + off]


@njit(cache=True)
def vacant(occ, rep_off, pos, k, out):
    c = 0
    for i in range(k):
        if occ[rep_off[i] + pos[i]] == 0:
            out[c] = i
            c += 1
    return c


@njit(cache=True)
def settle_round(occ, rep, pos, prio, k, n, best, touched, winners):
    total = 0
    i = 0
    while i < k:
        r = rep[i]
        off = r * n
        j = i
        nt = 0
        while j < k and rep[j] == r:
            v = pos[j]
            if occ[off + v] == 0:
                b = best[v]
                if b < 0:
                    touched[nt] = v
                    nt += 1
                    best[v] = j
                elif prio[j] < prio[b]:
                    best[v] = j
            j += 1
        touched[:nt].sort()
        for q in range(nt):
            winners[total] = best[touched[q]]
            total += 1
            best[touched[q]] = -1
        i = j
    return total


@njit(cache=True)
def finish_seq(
    indptr, indices, occ, starts, steps_row, settled_row,
    buf, nbuf, state, m, lazy, budget,
):
    particle = state[0]
    pos = state[1]
    t = state[2]
    total = state[3]
    i = 0
    while True:
        if i >= nbuf:
            state[0] = particle
            state[1] = pos
            state[2] = t
            state[3] = total
            return 0
        u = buf[i]
        i += 1
        total += 1
        t += 1
        if total > budget:
            state[0] = particle
            state[1] = pos
            state[2] = t
            state[3] = total
            return -1
        if lazy:
            if u < 0.5:
                continue
            u = 2.0 * (u - 0.5)
        s = indptr[pos]
        d = indptr[pos + 1] - s
        pos = indices[s + int(u * d)]
        if occ[pos]:
            continue
        occ[pos] = 1
        steps_row[particle] = t
        settled_row[particle] = pos
        particle += 1
        while particle < m:  # instant_settle_chain
            v = starts[particle]
            if occ[v]:
                break
            occ[v] = 1
            steps_row[particle] = 0
            settled_row[particle] = v
            particle += 1
        if particle == m:
            state[0] = particle
            state[1] = pos
            state[2] = t
            state[3] = total
            return 1
        pos = starts[particle]
        t = 0


@njit(cache=True)
def finish_par1(indptr, indices, occ, buf, nbuf, state, lazy, guard, budget):
    v = state[0]
    t = state[1]
    i = 0
    while True:
        if i >= nbuf:
            state[0] = v
            state[1] = t
            return 0
        t += 1
        if t > budget:
            state[0] = v
            state[1] = t
            return -1
        u = buf[i]
        i += 1
        if lazy:
            if u < 0.5:
                continue
            u = 2.0 * (u - 0.5)
        s = indptr[v]
        d = indptr[v + 1] - s
        off = int(u * d)
        if guard and off >= d:
            off = d - 1
        v = indices[s + off]
        if occ[v]:
            continue
        occ[v] = 1
        state[0] = v
        state[1] = t
        return 1


@njit(cache=True)
def walk_fill(indptr, indices, out, steps, buf, nbuf, state):
    t = state[0]
    pos = state[1]
    i = 0
    while t < steps:
        if i >= nbuf:
            state[0] = t
            state[1] = pos
            return 0
        u = buf[i]
        i += 1
        s = indptr[pos]
        d = indptr[pos + 1] - s
        pos = indices[s + int(u * d)]
        t += 1
        out[t] = pos
    state[0] = t
    state[1] = pos
    return 1


@njit(cache=True)
def walk_hit(indptr, indices, hit, buf, nbuf, state, limit):
    steps = state[0]
    pos = state[1]
    i = 0
    while True:
        if i >= nbuf:
            state[0] = steps
            state[1] = pos
            return 0
        u = buf[i]
        i += 1
        s = indptr[pos]
        d = indptr[pos + 1] - s
        pos = indices[s + int(u * d)]
        steps += 1
        if hit[pos]:
            state[0] = steps
            state[1] = pos
            return 1
        if steps >= limit:
            state[0] = steps
            state[1] = pos
            return -1
