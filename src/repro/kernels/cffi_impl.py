"""cffi kernel provider: the C kernels compiled with the system toolchain.

The provider that makes the compiled layer available wherever a C
compiler is — no numba wheel required.  ``load()`` compiles
:data:`repro.kernels._csource.C_SOURCE` once into a shared object cached
under a source-hash-keyed path (``$REPRO_KERNELS_CACHE``, defaulting to a
per-user directory below the system temp dir) and opens it in cffi ABI
mode; subsequent processes reuse the cached ``.so`` without recompiling.

Only plain ``-O2`` is passed (see the bit-identity note in ``_csource``).
Build failures raise with the compiler's stderr attached; the registry
turns that into a clean fallback under auto-detection and a loud error
when the provider was requested explicitly.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from types import SimpleNamespace

from repro.kernels._csource import C_SOURCE, CDEF


def _cache_dir() -> str:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return override
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")


def _ensure_built() -> str:
    """Compile the kernel source (once) and return the shared-object path."""
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    os.makedirs(cache, exist_ok=True)
    cc = os.environ.get("CC") or "cc"
    fd, c_path = tempfile.mkstemp(dir=cache, suffix=".c")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(C_SOURCE)
        tmp_so = c_path[:-2] + ".so"
        proc = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} failed to build the kernel library "
                f"(exit {proc.returncode}): {proc.stderr.strip()[-500:]}"
            )
        # atomic within the cache dir: concurrent builders race benignly
        os.replace(tmp_so, so_path)
    finally:
        if os.path.exists(c_path):
            os.unlink(c_path)
    return so_path


def load() -> SimpleNamespace:
    """Build/open the library and return the low-level impl namespace.

    The returned callables follow the provider protocol shared with
    :mod:`repro.kernels.numba_impl`: numpy arrays in, scalar status codes
    out.  Arrays must be C-contiguous with the protocol dtypes (``int64``
    walkers/CSR, ``float64`` uniforms, ``uint8`` occupancy) — the
    ``KernelSet`` wrappers in the package root guarantee that.
    """
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    lib = ffi.dlopen(_ensure_built())
    # typed from_buffer views decay to pointers at the call boundary and
    # cost ~4x less per argument than cast("i64 *", a.ctypes.data) — at
    # kernel call rates the marshalling is a measurable slice of the
    # min_width crossover
    from_buffer = ffi.from_buffer

    def pi(a):
        return from_buffer("i64[]", a)

    def pd(a):
        return from_buffer("double[]", a)

    def pu(a):
        return from_buffer("unsigned char[]", a)

    return SimpleNamespace(
        name="cffi",
        csr_step=lambda indptr, indices, pos, u, out, k: lib.repro_csr_step(
            pi(indptr), pi(indices), pi(pos), pd(u), pi(out), k
        ),
        vacant=lambda occ, rep_off, pos, k, out: lib.repro_vacant(
            pu(occ), pi(rep_off), pi(pos), k, pi(out)
        ),
        settle_round=lambda occ, rep, pos, prio, k, n, best, touched, winners: (
            lib.repro_settle_round(
                pu(occ), pi(rep), pi(pos), pi(prio), k, n,
                pi(best), pi(touched), pi(winners),
            )
        ),
        finish_seq=lambda indptr, indices, occ, starts, steps_row, settled_row,
        buf, nbuf, state, m, lazy, budget: lib.repro_finish_seq(
            pi(indptr), pi(indices), pu(occ), pi(starts), pi(steps_row),
            pi(settled_row), pd(buf), nbuf, pi(state), m, lazy, budget,
        ),
        finish_par1=lambda indptr, indices, occ, buf, nbuf, state, lazy,
        guard, budget: lib.repro_finish_par1(
            pi(indptr), pi(indices), pu(occ), pd(buf), nbuf,
            pi(state), lazy, guard, budget,
        ),
        walk_fill=lambda indptr, indices, out, steps, buf, nbuf, state: (
            lib.repro_walk_fill(
                pi(indptr), pi(indices), pi(out), steps, pd(buf), nbuf,
                pi(state),
            )
        ),
        walk_hit=lambda indptr, indices, hit, buf, nbuf, state, limit: (
            lib.repro_walk_hit(
                pi(indptr), pi(indices), pu(hit), pd(buf), nbuf,
                pi(state), limit,
            )
        ),
    )
