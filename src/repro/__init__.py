"""repro — reproduction of *The Dispersion Time of Random Walks on Finite
Graphs* (Rivera, Stauffer, Sauerwald, Sylvester; SPAA 2019).

Subpackages
-----------
``repro.graphs``
    CSR graph type + every graph family the paper analyses.
``repro.markov``
    Exact Markov-chain quantities: hitting/mixing times, spectra,
    resistances, set hitting.
``repro.walks``
    Vectorised walk engines and Monte-Carlo estimators.
``repro.core``
    The dispersion processes (Sequential/Parallel/Uniform/CTU-IDLA) and the
    Cut & Paste coupling machinery of §4.
``repro.bounds``
    One calculator per theorem (3.1, 3.3, 3.5, 3.6, 3.7, 3.9, C.2-C.5, 5.1).
``repro.theory``
    Table 1 growth-law predictions and the family registry.
``repro.experiments``
    Monte-Carlo runner, sweeps, scaling fits and table rendering.

Quick start
-----------
>>> from repro import graphs, core
>>> g = graphs.cycle_graph(64)
>>> res = core.parallel_idla(g, seed=0)
>>> res.is_complete_dispersion()
True
"""

from repro import bounds, core, experiments, graphs, markov, theory, utils, walks

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "markov",
    "walks",
    "core",
    "bounds",
    "theory",
    "experiments",
    "utils",
    "__version__",
]
