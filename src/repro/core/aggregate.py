"""Aggregate growth and shape statistics (§1.3 / Proposition 5.10).

The lower bound for the 2-d grid leans on the Lawler–Bramson–Griffeath
shape theorem: the IDLA aggregate of ``m`` particles on Z² is a Euclidean
disc of area ``m`` up to ``O(log r)`` fluctuations (Jerison–Levine–
Sheffield).  This module reconstructs aggregates from recorded runs and
measures their sphericity so the ingredient can be checked empirically:

* :func:`aggregate_after` — occupied set after ``k`` settlements;
* :func:`euclidean_shape_stats` — in/out-radius and fluctuation band of an
  aggregate around its origin, given vertex coordinates;
* :func:`grid_coordinates` — coordinate array for ``grid_graph``/
  ``torus_graph`` vertex ids (row-major layout).

The in-radius is the distance to the nearest *unoccupied* vertex and the
out-radius the farthest occupied one, matching the paper's
``B(r - a log r) ⊆ A(πr²) ⊆ B(r + a log r)`` formulation (eq. (5)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import DispersionResult

__all__ = ["aggregate_after", "grid_coordinates", "euclidean_shape_stats", "ShapeStats"]


def aggregate_after(result: DispersionResult, k: int) -> np.ndarray:
    """Occupied vertex set after the first ``k`` settlements.

    Uses ``settle_order``/``settled_at``, so it works for every driver
    without trajectory recording.
    """
    if not 0 <= k <= len(result.settle_order):
        raise ValueError(f"k must be in [0, {len(result.settle_order)}], got {k}")
    particles = result.settle_order[:k]
    return np.sort(result.settled_at[particles])


def grid_coordinates(*sides: int) -> np.ndarray:
    """Coordinates (shape ``(n, d)``) for row-major grid/torus vertex ids."""
    sides = tuple(int(s) for s in sides)
    if not sides or any(s < 1 for s in sides):
        raise ValueError(f"sides must be positive, got {sides}")
    grids = np.meshgrid(*[np.arange(s) for s in sides], indexing="ij")
    return np.stack([c.ravel() for c in grids], axis=1).astype(np.float64)


@dataclass(frozen=True)
class ShapeStats:
    """Sphericity summary of an aggregate around its origin.

    ``in_radius``: distance to the nearest unoccupied vertex (the largest
    ball contained in the aggregate); ``out_radius``: farthest occupied
    vertex; ``target_radius``: the disc radius ``sqrt(k / π)`` a perfect
    LBG aggregate of the same cardinality would have (2-d convention);
    ``fluctuation = out_radius - in_radius``.
    """

    size: int
    in_radius: float
    out_radius: float
    target_radius: float

    @property
    def fluctuation(self) -> float:
        return self.out_radius - self.in_radius

    @property
    def sphericity(self) -> float:
        """in/out ratio in [0, 1]; → 1 under the shape theorem."""
        return self.in_radius / self.out_radius if self.out_radius > 0 else 1.0


def euclidean_shape_stats(
    aggregate, origin: int, coords: np.ndarray
) -> ShapeStats:
    """Measure an aggregate's shape in the Euclidean embedding ``coords``.

    Suitable for box grids (tori would need periodic distances; the bench
    uses a box large enough that the aggregate never wraps).
    """
    agg = np.asarray(list(aggregate), dtype=np.int64)
    if agg.size == 0:
        raise ValueError("aggregate must be non-empty")
    n = coords.shape[0]
    if agg.min() < 0 or agg.max() >= n:
        raise ValueError("aggregate contains out-of-range vertices")
    mask = np.zeros(n, dtype=bool)
    mask[agg] = True
    if not mask[origin]:
        raise ValueError("origin must belong to the aggregate")
    d = np.linalg.norm(coords - coords[origin], axis=1)
    out_radius = float(d[mask].max())
    unocc = ~mask
    in_radius = float(d[unocc].min()) if unocc.any() else float(d.max())
    dim = coords.shape[1]
    if dim == 2:
        target = float(np.sqrt(agg.size / np.pi))
    else:
        # d-dimensional ball volume c_d r^d = k
        from math import gamma, pi

        c_d = pi ** (dim / 2) / gamma(dim / 2 + 1)
        target = float((agg.size / c_d) ** (1.0 / dim))
    return ShapeStats(
        size=int(agg.size),
        in_radius=in_radius,
        out_radius=out_radius,
        target_radius=target,
    )
