"""Budgeted resident state for the batched lock-step drivers.

The lock-step engine's original memory model was "allocate ``reps × m``
flat state up front": profitable at bench scale, fatal in the asymptotic
regime the paper's theory actually speaks to — *full* dispersion needs
``m = n`` particles, so at ``n = 10⁶`` even a modest repetition count
multiplies into gigabytes of resident arrays before the first round.

:class:`StateBudget` is the knob that replaces that model.  A budget is a
cap on **resident simulation state** — either in bytes or in live
particles — that threads from ``estimate_dispersion`` / the CLI down
through dispatch into every batched driver.  :func:`plan_state` resolves
a budget against one run's shape ``(process, n, m, reps)`` into the three
mechanical levers the drivers implement:

* **repetition cohorts** (``cohort_reps``) — the driver runs cohorts of
  at most this many repetitions to completion, one after another, instead
  of all ``reps`` in one flat batch.  Cohort boundaries are invisible in
  the results: repetition ``r`` consumes child ``r``'s stream regardless
  of grouping (the same property that makes batching itself invisible).
* **mid-round particle chunks** (``step_chunk``, parallel process only) —
  within a round, the step/probe transients are computed over slices of
  the flat particle state, bounding the per-round scratch allocations
  when even one repetition's ``m`` exceeds the particle cap.  Elementwise
  ufuncs are slice-invariant, so the chunked round is bit-identical to
  the unchunked one.
* **stream-buffer shrink** (``stream_budget_doubles``) — byte budgets
  also shrink the :class:`repro.utils.rng.UniformStreams` refill chunks
  (chunk-invariance of the double streams makes the chunk size invisible
  in the results), subject to the per-repetition floor one round's
  worst-case consumption imposes.

Two deliberate boundary behaviours, pinned by ``tests/test_state_budget``:
a budget **larger than the whole run resolves to a no-op plan** — the
drivers take exactly the allocation path they take with no budget at all,
byte for byte; a budget **smaller than one repetition's floor still
runs** (``cohort_reps`` never drops below 1 — one repetition's state plus
the settlement-contest transients, which scale with the round's vacant
candidates, are the irreducible floor the plan documents rather than
enforces).

Everything here is a *performance/memory* decision: plans never change a
sample.  The differential harness pins every budget shape bit-identical
to the serial oracles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "StateBudget",
    "BudgetPlan",
    "NO_BUDGET_PLAN",
    "as_state_budget",
    "parse_state_budget",
    "plan_state",
    "resident_bytes_per_rep",
]

#: Default total-doubles budget of the streaming uniform buffers (mirrors
#: :data:`repro.utils.rng._STREAM_BUDGET_DOUBLES`); a byte budget only
#: *shrinks* the stream allocation below this, never grows it — that is
#: what keeps large budgets byte-identical to the no-budget path.
_DEFAULT_STREAM_DOUBLES = 2**22

#: Fraction of a byte budget reserved for round transients (step scratch,
#: occupancy probes, the settlement contest) rather than persistent
#: per-repetition arrays: reserve = budget // _TRANSIENT_DIV.
_TRANSIENT_DIV = 4

#: Rough per-particle bytes of one chunked step's scratch (uniform gather,
#: offsets, new positions, `where` temps, occupancy probe) — sizes
#: ``step_chunk`` from the transient reserve.
_STEP_SCRATCH_BYTES = 64

#: Floor for ``step_chunk``: below this, per-chunk NumPy dispatch overhead
#: dominates and the chunking stops buying anything.
_MIN_STEP_CHUNK = 1024


@dataclass(frozen=True)
class StateBudget:
    """Cap on a batched run's resident simulation state.

    Exactly one of the two caps is usually set; when both are, each lever
    honours the tighter one.

    Attributes
    ----------
    bytes:
        Resident-state byte budget (persistent per-repetition arrays,
        streaming uniform buffers, and the reserve for round transients).
    particles:
        Live-particle cap: at most this many particle lanes resident at
        once — ``cohort_reps = particles // m`` repetitions per cohort,
        and (parallel process) ``step_chunk = particles`` when even one
        repetition's ``m`` exceeds the cap.
    """

    bytes: int | None = None
    particles: int | None = None

    def __post_init__(self):
        if self.bytes is None and self.particles is None:
            raise ValueError("StateBudget needs bytes= or particles=")
        if self.bytes is not None and self.bytes < 1:
            raise ValueError(f"bytes must be >= 1, got {self.bytes}")
        if self.particles is not None and self.particles < 1:
            raise ValueError(f"particles must be >= 1, got {self.particles}")


@dataclass(frozen=True)
class BudgetPlan:
    """One run's resolved budget levers (see module docstring).

    ``cohort_reps`` is absolute (not clamped to the run's ``reps``); a
    plan is a **no-op** for a run when it forces neither cohorts nor
    chunks nor a stream shrink — the drivers then take their unbudgeted
    allocation path unchanged.
    """

    cohort_reps: int
    step_chunk: int | None = None
    stream_budget_doubles: int | None = None

    def is_noop(self, reps: int) -> bool:
        return (
            self.cohort_reps >= reps
            and self.step_chunk is None
            and self.stream_budget_doubles is None
        )


#: The plan of an absent budget: one cohort, no chunking, default streams.
NO_BUDGET_PLAN = BudgetPlan(cohort_reps=2**62)


_BUDGET_RE = re.compile(r"^\s*(\d+)\s*([kmgKMG]?)([bBpP]?)\s*$")
_SCALE = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def parse_state_budget(text: str) -> StateBudget:
    """Parse a CLI budget spec: bytes with K/M/G suffix, or ``<N>p`` particles.

    Examples
    --------
    >>> parse_state_budget("256M")
    StateBudget(bytes=268435456, particles=None)
    >>> parse_state_budget("500000p")
    StateBudget(bytes=None, particles=500000)
    """
    match = _BUDGET_RE.match(text)
    if not match:
        raise ValueError(
            f"cannot parse state budget {text!r}; expected e.g. "
            f"'268435456', '256M', '1G' (bytes) or '500000p' (particles)"
        )
    value, scale, unit = match.groups()
    if unit.lower() == "p":
        if scale:
            raise ValueError(
                f"particle budgets take no K/M/G scale, got {text!r}"
            )
        return StateBudget(particles=int(value))
    return StateBudget(bytes=int(value) * _SCALE[scale.lower()])


def as_state_budget(budget) -> StateBudget | None:
    """Normalise ``None`` / spec / :class:`StateBudget` to a budget.

    A plain ``int`` (or NumPy integer) is a byte count — the same value
    the equivalent spec string parses to (``268435456`` and
    ``"268435456"`` are the same budget), so every seam that takes a
    budget (``estimate_dispersion``, :func:`plan_state`, the fan-out
    runner) accepts the number directly.  Booleans are rejected: ``True``
    silently becoming a 1-byte budget is a bug, not a spec.
    """
    if budget is None or isinstance(budget, StateBudget):
        return budget
    if isinstance(budget, str):
        return parse_state_budget(budget)
    if not isinstance(budget, (bool, np.bool_)) and isinstance(
        budget, (int, np.integer)
    ):
        return StateBudget(bytes=int(budget))
    raise TypeError(
        f"state_budget must be None, a StateBudget, an integral byte "
        f"count or a spec string, got {type(budget).__name__}"
    )


#: Per-repetition persistent bytes, as ``coeff_m · m + coeff_n · n``.
#: Conservative estimates of what each batched driver keeps resident per
#: repetition (start/outcome arrays, flat lock-step state and its round
#: metadata, occupancy) — the uniform-stream buffer is added separately
#: because its per-repetition floor depends on the process.
_PER_REP_COEFFS = {
    # starts 8m + outcomes 24m + flat (rep_ids, pid, pos) 24m + round
    # metadata (counts_exp, rep_off, bidx) 24m + lazy extras ~9m + occ n
    "parallel": (104, 1),
    # starts 8m + steps/settled 16m + O(1) lane state + occ n
    "sequential": (24, 1),
    # starts/pos/steps/settled/uns 40m + lane state + occ n
    "uniform": (48, 1),
    # uniform's arrays + settle_clock 8m
    "ctu": (56, 1),
    "c-sequential": (24, 1),
}


def _stream_floor_doubles(process: str, m: int) -> int:
    """Per-repetition worst-case doubles one refill must cover."""
    if process == "parallel":
        return 2 * m + 2  # one lazy wide round: k hold gates + k steps
    if process in ("uniform", "ctu"):
        return 3
    return 1  # sequential family: one double per tick


def resident_bytes_per_rep(process: str, n: int, m: int) -> int:
    """Estimated persistent resident bytes one repetition adds to a batch.

    The sizing input of :func:`plan_state`'s byte-budget arithmetic — an
    estimate (Python ints, list headers and allocator slack are not
    modelled), deliberately on the conservative side so a stated budget
    holds in practice; the tracemalloc regression in
    ``benchmarks/bench_particle_shard.py`` pins the end-to-end claim.
    """
    try:
        coeff_m, coeff_n = _PER_REP_COEFFS[process]
    except KeyError:
        raise ValueError(
            f"no batched resident-state model for process {process!r}"
        ) from None
    return coeff_m * m + coeff_n * n + 8 * _stream_floor_doubles(process, m)


def plan_state(
    budget: StateBudget | None, process: str, n: int, m: int
) -> BudgetPlan:
    """Resolve a budget against one run's shape into driver levers.

    ``cohort_reps`` is independent of the run's total repetition count —
    which is what makes the drivers' cohort recursion terminate: a cohort
    of ``cohort_reps`` repetitions re-plans to the same value and
    proceeds single-cohort.
    """
    budget = as_state_budget(budget)
    if budget is None:
        return NO_BUDGET_PLAN

    cohort = 2**62
    step_chunk: int | None = None
    stream_doubles: int | None = None

    if budget.particles is not None:
        cohort = max(1, budget.particles // max(m, 1))
        if budget.particles < m and process == "parallel":
            step_chunk = budget.particles

    if budget.bytes is not None:
        per_rep = resident_bytes_per_rep(process, n, m)
        transient = budget.bytes // _TRANSIENT_DIV
        usable = budget.bytes - transient
        cohort = min(cohort, max(1, usable // max(per_rep, 1)))
        # byte budgets also shrink the streaming buffers — but never grow
        # them past the default, so large budgets stay byte-identical to
        # the unbudgeted allocation path
        doubles = budget.bytes // (8 * _TRANSIENT_DIV)
        if doubles < _DEFAULT_STREAM_DOUBLES:
            stream_doubles = max(doubles, 1)
        if process == "parallel" and cohort == 1:
            chunk = max(_MIN_STEP_CHUNK, transient // _STEP_SCRATCH_BYTES)
            if chunk < m:
                step_chunk = chunk if step_chunk is None else min(step_chunk, chunk)

    return BudgetPlan(
        cohort_reps=cohort,
        step_chunk=step_chunk,
        stream_budget_doubles=stream_doubles,
    )


def cohort_slices(total: int, cohort: int):
    """Contiguous ``(start, stop)`` repetition cohorts covering ``total``."""
    start = 0
    while start < total:
        stop = min(start + cohort, total)
        yield start, stop
        start = stop
