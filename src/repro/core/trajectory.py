"""Chunked per-repetition trajectory recording for the batched drivers.

``record=True`` asks a driver for the full vertex sequence of every
particle.  The serial drivers build those sequences the obvious way —
one Python list per particle, appended per step — which is exactly the
per-element bookkeeping the lock-step drivers exist to avoid: a batched
round touches *every live repetition at once*, so appending through
``R`` Python lists per round would hand the whole batching win back.

The :class:`TrajectoryStore` here keeps recording on the vector path.
Each round the driver appends its flat ``(repetition, particle, vertex)``
state in one slice assignment per column into append-only int32
**chunks** (a grown chunk is started, never copied; columns are stored
separately so every later pass streams contiguous memory), and the exact
``list[list[int]]`` shape :class:`repro.core.results.DispersionResult`
exposes is materialised once, by a single sort-free counting scatter
(each append touches a cell at most once, so events are rank-stamped on
the way in) — ``O(events)`` NumPy work plus one ``tolist()`` per
particle instead of per-step interpreter dispatch.  The grouping pass is
computed lazily and cached, so the scalar tail finisher's handoffs and
the final assembly share one scatter.

Two contracts make the store drop-in for the batched subsystem:

* **bit-shape identity** — every particle's sequence starts at its start
  vertex and appends one vertex per recorded event in consumption order,
  so the finalised lists equal the serial drivers' ``trajectories``
  element for element (the differential harness pins this across all
  five processes);
* **mid-stream handoff** — :meth:`handoff` materialises one straggler
  repetition's prefix as mutable per-particle lists for the scalar tail
  finisher to keep appending to, mirroring :meth:`UniformStreams.tail
  <repro.utils.rng.UniformStreams.tail>` on the uniform-stream side; the
  handed-off lists win at :meth:`finalize`.

:class:`ScheduleStore` is the same chunked-append idea for Uniform-IDLA's
``faithful_r`` mode, where the realised i.i.d. schedule is one extra int
per tick per live repetition.
"""

from __future__ import annotations

import contextlib
import gc

import numpy as np

__all__ = ["TrajectoryArrays", "TrajectoryStore", "ScheduleStore"]


@contextlib.contextmanager
def _gc_paused():
    """Pause garbage collection around bulk Python-list materialisation.

    Finalising a big run creates hundreds of millions of ints and lists;
    none of them can participate in a reference cycle, but every
    generational collection the allocations trigger still scans the
    ever-growing heap — a quadratic tax on exactly the hot path this
    store exists to keep linear.
    """
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()

#: Events per chunk.  Chunks are linked, not reallocated: growing the log
#: never copies what was already recorded.
_CHUNK = 1 << 16


class _ChunkedLog:
    """Append-only integer columns, grown chunk by chunk, stored per column.

    Layout is chosen for a memory-bandwidth-bound consumer: columns are
    separate (every finalisation pass streams one column contiguously)
    and each column takes the narrowest dtype its values need — on a
    recording run the log is by far the largest data structure, so bytes
    per event are the constant that matters.
    """

    __slots__ = ("_dtypes", "_chunk", "_full", "_cur", "_fill", "_cache", "_bk")

    def __init__(self, dtypes, chunk: int = _CHUNK, backend=None):
        from repro.backends import get_backend

        self._bk = get_backend(backend)
        self._dtypes = tuple(dtypes)
        self._chunk = chunk
        # per-column lists of exhausted chunks + the open chunk
        self._full: list[list[np.ndarray]] = [[] for _ in self._dtypes]
        self._cur = [self._bk.empty(chunk, dtype=d) for d in self._dtypes]
        self._fill = 0
        self._cache: tuple[int, tuple[np.ndarray, ...]] | None = None

    def __len__(self) -> int:
        return len(self._full[0]) * self._chunk + self._fill

    def append(self, *cols) -> None:
        """Append one event per row of the given equal-length columns."""
        k = len(cols[0])
        if k == 0:
            return
        start = 0
        while start < k:
            room = self._chunk - self._fill
            if room == 0:
                for c, dtype in enumerate(self._dtypes):
                    self._full[c].append(self._cur[c])
                    self._cur[c] = self._bk.empty(self._chunk, dtype=dtype)
                self._fill = 0
                room = self._chunk
            take = min(room, k - start)
            row = slice(self._fill, self._fill + take)
            for c, col in enumerate(cols):
                self._cur[c][row] = col[start : start + take]
            self._fill += take
            start += take

    def chunks(self):
        """Yield the log as per-column chunk tuples, in append order.

        Iterating chunks lets consumers stream the log without ever
        materialising a monolithic copy of it (the log can be gigabytes).
        """
        for i in range(len(self._full[0])):
            yield tuple(self._full[c][i] for c in range(len(self._dtypes)))
        if self._fill:
            yield tuple(c[: self._fill] for c in self._cur)

    def gathered(self) -> tuple[np.ndarray, ...]:
        """Each column so far as one contiguous array (cached by length)."""
        size = len(self)
        if self._cache is not None and self._cache[0] == size:
            return self._cache[1]
        ncols = len(self._dtypes)
        xp = self._bk.xp
        out = tuple(
            xp.concatenate([*self._full[c], self._cur[c][: self._fill]])
            if self._full[c]
            else self._cur[c][: self._fill]
            for c in range(ncols)
        )
        self._cache = (size, out)
        return out


def _narrow_dtype(max_value: int):
    """Narrowest unsigned/signed dtype holding ``0..max_value``."""
    if max_value <= np.iinfo(np.uint16).max:
        return np.uint16
    if max_value <= np.iinfo(np.int32).max:
        return np.int32
    return np.int64


class TrajectoryArrays:
    """One repetition's trajectories as a ragged array pair, zero-copy rows.

    The ``list[list[int]]`` trajectory shape costs one Python object per
    recorded vertex — at large ``n`` the final materialisation dominates a
    recording run (the ROADMAP's "trajectory list tax").  This container
    is the array-native alternative ``record="arrays"`` produces: one flat
    vertex array plus an ``(m + 1,)`` int64 offset array, with
    :meth:`row` returning a **view** (no copy, no Python ints) of particle
    ``p``'s vertex sequence.

    Equality is by content against either another :class:`TrajectoryArrays`
    or the serial drivers' list-of-lists shape (``lists == arrays`` also
    works — Python's reflected ``__eq__`` lands here), which is what lets
    the differential harness compare the two recording modes directly.
    :class:`repro.core.blocks.Block` accepts either shape as rows.
    """

    __slots__ = ("offsets", "flat")

    def __init__(self, offsets: np.ndarray, flat: np.ndarray):
        self.offsets = offsets
        self.flat = flat

    @classmethod
    def from_lists(cls, rows) -> TrajectoryArrays:
        """Build from the serial drivers' ``list[list[int]]`` shape."""
        lens = np.fromiter(
            (len(row) for row in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.concatenate(([0], np.cumsum(lens)))
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        at = 0
        for row in rows:
            flat[at : at + len(row)] = row
            at += len(row)
        return cls(offsets, flat)

    def __len__(self) -> int:
        return self.offsets.size - 1

    def row(self, p: int) -> np.ndarray:
        """Particle ``p``'s vertex sequence — a zero-copy view."""
        return self.flat[self.offsets[p] : self.offsets[p + 1]]

    def __getitem__(self, p: int) -> np.ndarray:
        return self.row(p)

    def __iter__(self):
        for p in range(len(self)):
            yield self.row(p)

    def to_lists(self) -> list[list[int]]:
        """Materialise the serial ``list[list[int]]`` shape (pays the tax)."""
        with _gc_paused():
            return [self.row(p).tolist() for p in range(len(self))]

    def __eq__(self, other):
        if isinstance(other, TrajectoryArrays):
            return np.array_equal(self.offsets, other.offsets) and np.array_equal(
                self.flat, other.flat
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return all(
                self.row(p).tolist() == list(other[p]) for p in range(len(self))
            )
        return NotImplemented

    __hash__ = None  # mutable array content

    def __repr__(self) -> str:
        return (
            f"TrajectoryArrays(particles={len(self)}, "
            f"events={self.flat.size})"
        )


class TrajectoryStore:
    """Record ``(repetition, particle, vertex)`` events for a batched run.

    Grouping events back into per-particle sequences never sorts: every
    lock-step round advances each ``(repetition, particle)`` cell at most
    once, so :meth:`append` can stamp each event with its per-cell rank —
    a conflict-free gather/scatter against one cache-resident counter
    table — and :meth:`_grouped` places all events with a single O(events)
    scatter through the cells' cumulative counts.

    Parameters
    ----------
    starts2d:
        ``(R, m)`` start vertices — particle ``p`` of repetition ``r``
        seeds its trajectory with ``starts2d[r, p]``, exactly like the
        serial drivers' ``[[int(v)] for v in starts]`` initialisation
        (instantly-settled particles therefore finalise to ``[start]``
        without ever producing an event).
    """

    __slots__ = ("_starts", "_log", "_counter", "_handoff", "_groups", "_bk")

    def __init__(self, starts2d: np.ndarray, n: int | None = None, backend=None):
        from repro.backends import get_backend

        self._bk = get_backend(backend)
        self._starts = self._bk.asarray(starts2d)
        R, m = self._starts.shape
        if R * m - 1 > np.iinfo(np.int32).max:
            raise ValueError(
                f"trajectory recording supports at most 2^31 (repetition, "
                f"particle) cells, got {R} x {m}"
            )
        self._counter = self._bk.zeros(R * m, dtype=np.int64)
        vert_max = int(n) - 1 if n is not None else np.iinfo(np.int32).max
        # cell id, rank within cell, vertex — each as narrow as it can be
        self._log = _ChunkedLog(
            (_narrow_dtype(R * m - 1), np.int32, _narrow_dtype(vert_max)),
            backend=self._bk,
        )
        self._handoff: dict[int, list[list[int]]] = {}
        self._groups: tuple[int, tuple] | None = None

    def append(self, rep_ids, pids, verts) -> None:
        """Record one vertex per ``(repetition, particle)`` row, in order.

        Called once per lock-step round/tick with the driver's flat state.
        Within a call each ``(repetition, particle)`` cell may appear **at
        most once** (every driver's round advances a particle at most one
        step) — that is what keeps the rank stamping conflict-free;
        per-particle chronology is the append-call order.
        """
        if len(rep_ids) == 0:
            return
        keys = self._bk.asarray(rep_ids) * self._starts.shape[1] + pids
        rank = self._counter[keys]
        self._counter[keys] = rank + 1
        self._log.append(keys, rank, verts)

    def _grouped(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Events grouped by ``(repetition, particle)`` cell, chronological
        within each group: ``(group cell ids, group bounds, grouped verts)``.

        One counting scatter over the whole log — no sort — cached by log
        length so the tail finisher's per-straggler :meth:`handoff` calls
        and the final :meth:`finalize` pass all share it.
        """
        size = len(self._log)
        if self._groups is not None and self._groups[0] == size:
            return self._groups[1]
        xp = self._bk.xp
        cell_start = xp.concatenate(([0], self._bk.cumsum(self._counter)))
        grouped_verts = self._bk.empty(size, dtype=self._log._dtypes[2])
        # stream the log chunk by chunk: the per-chunk dest temps stay
        # cache-resident and the multi-gigabyte log is never copied whole
        for keys, rank, vert in self._log.chunks():
            dest = cell_start[keys]
            dest += rank
            grouped_verts[dest] = vert
        cells = self._bk.flatnonzero(self._counter)
        bounds = xp.concatenate(([0], self._bk.cumsum(self._counter[cells])))
        grouped = (cells, bounds, grouped_verts)
        self._groups = (size, grouped)
        return grouped

    def handoff(self, r: int) -> list[list[int]]:
        """Materialise repetition ``r``'s prefix for the scalar tail finisher.

        Returns one mutable list per particle — ``[start]`` plus every
        event recorded so far — which the finisher keeps appending to in
        the serial drivers' own shape.  The returned lists (not the event
        log) are what :meth:`finalize` reports for this repetition.
        """
        rows = [[int(v)] for v in self._starts[r]]
        if len(self._log):
            m = self._starts.shape[1]
            cells, bounds, verts = self._grouped()
            lo = int(self._bk.searchsorted(cells, r * m))
            hi = int(self._bk.searchsorted(cells, (r + 1) * m))
            with _gc_paused():
                for i in range(lo, hi):
                    p = int(cells[i]) - r * m
                    rows[p].extend(verts[bounds[i] : bounds[i + 1]].tolist())
        self._handoff[r] = rows
        return rows

    def finalize_arrays(self) -> list[TrajectoryArrays]:
        """Materialise every repetition's :class:`TrajectoryArrays`.

        The ``record="arrays"`` finaliser: the same (cached) grouping
        scatter as :meth:`finalize`, but the grouped vertices land in one
        flat array with each particle's start vertex prepended — no
        Python ints, no per-particle lists.  Per-repetition results are
        zero-copy views into that one array; repetitions previously
        handed to a scalar finisher contribute their (finisher-mutated)
        :meth:`handoff` lists, converted.
        """
        R, m = self._starts.shape
        # +1: every particle's sequence is seeded with its start vertex
        xp = self._bk.xp
        lens = self._counter + 1
        offsets_all = xp.concatenate(([0], self._bk.cumsum(lens)))
        flat = self._bk.empty(int(offsets_all[-1]), dtype=self._log._dtypes[2])
        seq_start = offsets_all[:-1]
        flat[seq_start] = self._starts.reshape(-1)
        if len(self._log):
            # the grouped pass orders events by cell then rank — exactly
            # the order of the non-start positions of `flat`
            _, _, grouped_verts = self._grouped()
            mask = xp.ones(flat.size, dtype=bool)
            mask[seq_start] = False
            flat[mask] = grouped_verts
        out = []
        for r in range(R):
            if r in self._handoff:
                out.append(TrajectoryArrays.from_lists(self._handoff[r]))
                continue
            lo, hi = int(offsets_all[r * m]), int(offsets_all[(r + 1) * m])
            out.append(
                TrajectoryArrays(
                    offsets_all[r * m : (r + 1) * m + 1] - lo, flat[lo:hi]
                )
            )
        return out

    def finalize(self) -> list[list[list[int]]]:
        """Materialise every repetition's ``list[list[int]]`` trajectories.

        One bulk ``extend`` per particle over the (cached) grouping pass;
        repetitions previously handed to a scalar finisher contribute
        their (finisher-mutated) :meth:`handoff` lists instead of their
        logged prefix.
        """
        R, m = self._starts.shape
        with _gc_paused():
            out = [
                self._handoff[r]
                if r in self._handoff
                else [[int(v)] for v in self._starts[r]]
                for r in range(R)
            ]
            if not len(self._log):
                return out
            cells, bounds, verts = self._grouped()
            for i, cell in enumerate(cells.tolist()):
                r, p = divmod(cell, m)
                if r in self._handoff:
                    continue  # the handed-off lists already hold this prefix
                out[r][p].extend(verts[bounds[i] : bounds[i + 1]].tolist())
        return out


class ScheduleStore:
    """Record Uniform-IDLA's realised ``faithful_r`` schedule per repetition.

    One ``(repetition, pick)`` event per tick per live repetition —
    including wasted ticks, exactly like the serial driver's
    ``schedule.append(p)``.  The same rank-stamped counting scatter as
    :class:`TrajectoryStore` (a repetition ticks at most once per append)
    groups the log without sorting.  Finalises to one int64 array per
    repetition (the dtype ``uniform_idla`` attaches as
    ``result.schedule``).
    """

    __slots__ = ("_reps", "_counter", "_log", "_bk")

    def __init__(self, reps: int, backend=None):
        from repro.backends import get_backend

        self._bk = get_backend(backend)
        self._reps = reps
        self._counter = self._bk.zeros(reps, dtype=np.int64)
        # repetition, rank within it, pick
        self._log = _ChunkedLog(
            (_narrow_dtype(max(reps - 1, 0)), np.int32, np.int32),
            backend=self._bk,
        )

    def append(self, rep_ids, picks) -> None:
        if len(rep_ids) == 0:
            return
        rank = self._counter[rep_ids]
        self._counter[rep_ids] = rank + 1
        self._log.append(rep_ids, rank, picks)

    def append_run(self, r: int, picks) -> None:
        """Record a consecutive run of picks for one repetition.

        The bulk path of the ``faithful_r`` wasted-tick scanner
        (:func:`repro.core.batched_continuous._finish_faithful_lane`): a
        whole run of schedule picks — the wasted ticks plus the first
        active one — lands as one slice append with consecutive ranks,
        equivalent to ``run-length`` single-repetition :meth:`append`
        calls.
        """
        count = len(picks)
        if count == 0:
            return
        start = int(self._counter[r])
        self._counter[r] = start + count
        self._log.append(
            self._bk.full(count, r, dtype=np.int64),
            self._bk.arange(start, start + count, dtype=np.int64),
            picks,
        )

    def finalize(self) -> list[np.ndarray]:
        xp = self._bk.xp
        out = [self._bk.empty(0, dtype=np.int64)] * self._reps
        if not len(self._log):
            return out
        rep, rank, pick = self._log.gathered()
        rep_start = xp.concatenate(([0], self._bk.cumsum(self._counter)))
        grouped = self._bk.empty(len(self._log), dtype=np.int64)
        grouped[rep_start[rep] + rank] = pick
        for r in self._bk.flatnonzero(self._counter).tolist():
            # copy: a view would pin the whole all-repetitions array (and
            # the serial driver hands out independent arrays)
            out[r] = grouped[rep_start[r] : rep_start[r + 1]].copy()
        return out
