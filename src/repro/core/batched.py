"""Batched cross-repetition dispersion drivers.

Monte-Carlo estimation of ``E[τ]`` repeats one stochastic process ``R``
times.  The serial runner replays the full per-round NumPy dispatch cost
``R`` times — on graphs with long settlement tails (the cycle spends
``Θ(n² log n)`` rounds on a handful of stragglers) that overhead dwarfs
the useful element work.  The drivers here advance **all repetitions in
lock-step** instead: one flat state vector concatenates every
repetition's unsettled particles, one :func:`repro.walks.engine.csr_step`
gather advances them together, and one lexsort resolves settlement per
``(repetition, vertex)`` cell.  Per-repetition completion masks drop
finished repetitions from the flat state, so round ``t`` costs
``O(live particles at t)`` plus a constant number of NumPy calls — the
same vectorise-the-outer-loop move the serial engine applies to
particles, lifted one level up to repetitions.

Bit-identical replay
--------------------
Each repetition consumes uniforms from its **own child generator** in
exactly the order the serial driver would.  NumPy's ``Generator.random``
produces an identical double stream regardless of how draws are chunked
(``random(a)`` then ``random(b)`` equals ``random(a + b)`` split), so the
per-repetition block buffers here replay the serial drivers'
``random(k)``-per-round / block-buffered-scalar draw patterns double for
double.  Consequently::

    batched_parallel_idla(g, seeds=seeds) ==
        [parallel_idla(g, seed=s) for s in seeds]      # bit for bit

including the lazy variants, random tie-breaking, custom origins and the
``m ≠ n`` particle-count variants (enforced by
``tests/test_core_batched.py``).  Two serial quirks are reproduced
deliberately:

* the serial parallel driver's scalar-tail fallback changes the *lazy*
  draw pattern below ``scalar_threshold`` active particles (two uniforms
  per particle per round above it, one below); the batched driver tracks
  a per-repetition wide/narrow mode so the streams stay aligned;
* settling rules are evaluated only on vacant candidates — identical
  outcomes for the library's (pure) rules, far fewer Python calls.

``record=True`` and unknown keyword arguments are *not* supported; the
runner treats that as its cue to fall back to the serial reference path,
which remains the oracle the batched subsystem is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.settlement import (
    instant_settle_chain,
    select_settlers,
    settle_vacant_starts,
)
from repro.core.stopping_rules import StoppingRule, standard_rule
from repro.graphs.csr import Graph
from repro.utils.rng import as_generator, spawn_generators
from repro.walks.engine import csr_step

__all__ = ["batched_parallel_idla", "batched_sequential_idla", "buffer_doubles"]

#: Minimum per-repetition uniform buffer (doubles); matches the serial
#: drivers' scalar block size.  The parallel driver enlarges it so one
#: round's consumption (≤ 2·m doubles per repetition) always fits.
_BLOCK = 16384


def _parallel_block(reps: int, m: int) -> int:
    """Per-repetition buffer length for the parallel driver.

    One round consumes at most ``2·m + 2`` doubles per repetition, so the
    block must cover that; above the floor, bigger blocks amortise refill
    overhead (capped so the whole ``reps × block`` allocation stays modest
    even at large repetition counts).
    """
    return max(2 * m + 2, _BLOCK if reps * 65536 * 8 > 2**28 else 65536)


def buffer_doubles(process: str, reps: int, num_particles: int) -> int:
    """Uniform-buffer doubles a batched run would allocate.

    The single source of truth for buffer sizing — the runner's auto
    dispatch uses it to decline batching when the allocation would be
    excessive.  Covers the continuous/uniform drivers of
    :mod:`repro.core.batched_continuous` too (one lane per repetition,
    one fixed-size buffer row each).
    """
    if process == "parallel":
        return reps * _parallel_block(reps, num_particles)
    if process in ("ctu", "uniform"):
        from repro.core.batched_continuous import _BLOCK as _CONT_BLOCK

        return reps * _CONT_BLOCK
    return reps * _BLOCK


def _resolve_generators(seeds, seed, reps) -> list[np.random.Generator]:
    """Normalise the (seeds | seed+reps) repetition-stream specification."""
    if seeds is not None:
        gens = [as_generator(s) for s in seeds]
        if reps is not None and reps != len(gens):
            raise ValueError(f"reps={reps} does not match len(seeds)={len(gens)}")
        return gens
    if reps is None:
        raise ValueError("either `seeds` or `reps` must be given")
    if reps < 0:
        raise ValueError(f"reps must be >= 0, got {reps}")
    return spawn_generators(seed, reps)


# ----------------------------------------------------------------------
# Parallel-IDLA
# ----------------------------------------------------------------------
def batched_parallel_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    lazy: bool = False,
    tie_break: str = "index",
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    scalar_threshold: int = 16,
    max_rounds: float | None = None,
) -> list[DispersionResult]:
    """Run ``R`` independent Parallel-IDLA realisations in lock-step.

    Parameters
    ----------
    reps, seeds, seed:
        Either pass ``seeds`` — one seed/generator per repetition (the
        runner passes the children of one ``SeedSequence``) — or ``reps``
        plus an optional parent ``seed`` from which children are spawned
        exactly like :func:`repro.utils.rng.spawn_generators`.
    lazy, tie_break, rule, num_particles, scalar_threshold, max_rounds:
        As in :func:`repro.core.parallel.parallel_idla`; ``rule`` must be
        a pure predicate (it is evaluated only on vacant candidates).

    Returns
    -------
    list[DispersionResult]
        Entry ``r`` is bit-identical to
        ``parallel_idla(g, origin, seed=seeds[r], ...)``.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> batch = batched_parallel_idla(cycle_graph(16), reps=3, seed=7)
    >>> [r.is_complete_dispersion() for r in batch]
    [True, True, True]
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if m < 1:
        raise ValueError(f"num_particles must be >= 1, got {m}")
    if tie_break not in ("index", "random"):
        raise ValueError(f"tie_break must be 'index' or 'random', got {tie_break!r}")
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    use_default_rule = rule is None or rule is standard_rule
    budget = float("inf") if max_rounds is None else float(max_rounds)
    process = "parallel-lazy" if lazy else "parallel"

    # ---- per-repetition initial draws, in the serial driver's order.
    # With the default "index" tie-break the priority of particle p is p
    # itself, so `pid` doubles as the priority vector and prio2d stays None.
    arange_m = np.arange(m, dtype=np.int64)
    starts2d = np.empty((R, m), dtype=np.int64)
    prio2d = None if tie_break == "index" else np.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)
        if prio2d is not None:
            # σ(1) = 1 as in the serial driver: particle 0 keeps top priority
            prio2d[r, 0] = 0
            prio2d[r, 1:] = 1 + gen.permutation(m - 1)

    occ = np.zeros(R * n, dtype=bool)
    free = np.full(R, n, dtype=np.int64)
    steps2d = np.zeros((R, m), dtype=np.int64)
    settled2d = np.full((R, m), -1, dtype=np.int64)
    round2d = np.full((R, m), -1, dtype=np.int64)
    steps2d_flat = steps2d.reshape(-1)
    settled2d_flat = settled2d.reshape(-1)
    round2d_flat = round2d.reshape(-1)

    # ---- round 0: per-repetition settlement pass over the starts
    for r in range(R):
        occ_r = occ[r * n : (r + 1) * n]
        prio_r = arange_m if prio2d is None else prio2d[r]
        winners = settle_vacant_starts(occ_r, starts2d[r], prio_r)
        if winners.size:
            occ_r[starts2d[r, winners]] = True
            free[r] -= winners.size
            settled2d[r, winners] = starts2d[r, winners]
            round2d[r, winners] = 0

    # ---- flat lock-step state: all repetitions' unsettled particles,
    # grouped by repetition, ascending particle index within each group
    rep_ids, pid = np.nonzero(settled2d < 0)
    if np.any(free[rep_ids] == 0):
        # a repetition already complete at round 0 (m > n with covering
        # starts): its surplus particles performed 0 steps — drop them
        alive = free[rep_ids] > 0
        rep_ids, pid = rep_ids[alive], pid[alive]
    pos = starts2d[rep_ids, pid].copy()

    block = _parallel_block(R, m)
    buf = np.empty((R, block), dtype=np.float64)
    for r, gen in enumerate(gens):
        gen.random(out=buf[r])
    buf_flat = buf.reshape(-1)
    bptr = np.zeros(R, dtype=np.int64)

    # per-round flat metadata, recomputed whenever particles leave
    k = counts = counts_exp = rep_off = prio_flat = bidx = None
    k_exp = wide_exp = None
    rounds_buffered = 0

    def buffered_rounds() -> int:
        """Rounds the repetition buffers can serve before the next refill."""
        live = counts > 0
        if not np.any(live):
            return 1
        return int(np.min((block - bptr[live]) // counts[live]))

    def rebuild():
        nonlocal k, counts, counts_exp, rep_off, prio_flat, bidx
        nonlocal k_exp, wide_exp, rounds_buffered
        k = np.bincount(rep_ids, minlength=R)
        if lazy:
            # the serial driver's wide phase (active > threshold) consumes
            # 2 uniforms per particle per round, the scalar tail only 1
            wide = k > scalar_threshold
            counts = np.where(wide, 2 * k, k)
            k_exp = k[rep_ids]
            wide_exp = wide[rep_ids]
        else:
            counts = k
        counts_exp = counts[rep_ids]
        rep_off = rep_ids * n
        prio_flat = pid if prio2d is None else prio2d[rep_ids, pid]
        group_start = (np.cumsum(k) - k)[rep_ids]
        within = np.arange(rep_ids.size, dtype=np.int64) - group_start
        bidx = rep_ids * block + bptr[rep_ids] + within
        rounds_buffered = buffered_rounds()

    def compact(keep, affected):
        """Drop masked-out particles, fixing only the affected repetitions.

        Incremental replacement for :func:`rebuild` on settlement rounds:
        per-particle
        metadata is preserved by the mask for every repetition that lost no
        particles (a particle's buffer slot ``bidx`` and ``counts_exp``
        depend only on its repetition's state and its rank *within* that
        repetition), so only the few repetitions in ``affected`` need their
        slices rewritten.
        """
        nonlocal rep_ids, pid, pos, counts_exp, rep_off, prio_flat, bidx
        nonlocal k_exp, wide_exp, rounds_buffered
        rep_ids, pid, pos = rep_ids[keep], pid[keep], pos[keep]
        counts_exp, rep_off, bidx = counts_exp[keep], rep_off[keep], bidx[keep]
        prio_flat = pid if prio2d is None else prio_flat[keep]
        if lazy:
            k_exp, wide_exp = k_exp[keep], wide_exp[keep]
        group_start = np.cumsum(k) - k
        for r in affected:
            kr = int(k[r])
            if lazy:
                wide_r = kr > scalar_threshold
                counts[r] = 2 * kr if wide_r else kr
            sl = slice(int(group_start[r]), int(group_start[r]) + kr)
            counts_exp[sl] = counts[r]
            bidx[sl] = r * block + bptr[r] + np.arange(kr, dtype=np.int64)
            if lazy:
                k_exp[sl] = kr
                wide_exp[sl] = wide_r
        rounds_buffered = buffered_rounds()

    def refill():
        nonlocal rounds_buffered
        for r in np.flatnonzero(bptr + counts > block):
            remainder = block - bptr[r]
            if remainder:
                buf[r, :remainder] = buf[r, bptr[r] :]
            gens[r].random(out=buf[r, remainder:])
            bidx[rep_ids == r] -= bptr[r]
            bptr[r] = 0
        rounds_buffered = buffered_rounds()

    rebuild()
    indptr_g, indices_g, degrees_g = g.indptr, g.indices, g.degrees
    degm1 = degrees_g - 1
    degf = degrees_g.astype(np.float64)
    # regular graphs (most of Table 1): constant degree turns the degree
    # gathers and the indptr gather into scalar arithmetic — the round
    # body drops from five random gathers to three
    regular = n > 0 and int(degrees_g.min()) == int(degrees_g.max())
    if regular:
        c_int = int(degrees_g[0])
        c_float = float(c_int)
    t = 0

    while rep_ids.size:
        t += 1
        if t > budget:
            raise RuntimeError(f"parallel IDLA exceeded max_rounds={max_rounds}")
        if rounds_buffered <= 0:
            refill()
        rounds_buffered -= 1
        if lazy:
            u = buf_flat[bidx]
            u2 = buf_flat[bidx + np.where(wide_exp, k_exp, 0)]
            move = u >= 0.5
            # wide phase: independent step uniform; scalar tail: upper half
            ustep = np.where(wide_exp, u2, 2.0 * (u - 0.5))
            new = csr_step(indptr_g, indices_g, degrees_g, pos, ustep)
            pos = np.where(move, new, pos)
        elif regular:
            # uniform rows make indptr[v] == c·v, so only the uniform
            # lookup, the CSR hop and the occupancy probe remain gathers
            u = buf_flat[bidx]
            offsets = (u * c_float).astype(np.int64)
            np.minimum(offsets, c_int - 1, out=offsets)
            offsets += pos * c_int
            pos = indices_g[offsets]
        else:
            # csr_step inlined with precomputed float degrees / degrees-1
            # arrays: the fast path is these seven vector ops plus the
            # occupancy probe
            u = buf_flat[bidx]
            deg = degf[pos]
            offsets = (u * deg).astype(np.int64)
            np.minimum(offsets, degm1[pos], out=offsets)
            pos = indices_g[indptr_g[pos] + offsets]
        bptr += counts
        bidx += counts_exp
        occv = occ[rep_off + pos]
        if occv.all():
            continue
        cand = np.flatnonzero(~occv)
        if not use_default_rule:
            allowed = np.fromiter(
                (bool(rule(t, int(v), True)) for v in pos[cand]),
                dtype=bool,
                count=cand.size,
            )
            cand = cand[allowed]
            if cand.size == 0:
                continue
        winners = cand[select_settlers(rep_off[cand] + pos[cand], prio_flat[cand])]
        w_rep, w_pid, w_vert = rep_ids[winners], pid[winners], pos[winners]
        occ[rep_off[winners] + w_vert] = True
        w_cell = w_rep * m + w_pid
        steps2d_flat[w_cell] = t
        settled2d_flat[w_cell] = w_vert
        round2d_flat[w_cell] = t
        w_counts = np.bincount(w_rep, minlength=R)
        free -= w_counts
        k -= w_counts  # aliases `counts` in the non-lazy case
        keep = np.ones(rep_ids.size, dtype=bool)
        keep[winners] = False
        if m > n and np.any(free[w_rep] == 0):
            # repetition complete: surplus particles (m > n) walked until
            # the last vertex filled — they stop now with t steps each
            stopped = keep & (free[rep_ids] == 0)
            if np.any(stopped):
                steps2d_flat[rep_ids[stopped] * m + pid[stopped]] = t
                keep[stopped] = False
                k -= np.bincount(rep_ids[stopped], minlength=R)
        compact(keep, np.unique(w_rep))

    # ---- per-repetition result assembly
    results = []
    for r in range(R):
        settled = np.flatnonzero(settled2d[r] >= 0)
        prio_vals = settled if prio2d is None else prio2d[r, settled]
        order = np.lexsort((prio_vals, round2d[r, settled]))
        steps_r = steps2d[r].copy()
        dispersion = int(steps_r[settled].max()) if settled.size else 0
        results.append(
            DispersionResult(
                process=process,
                graph_name=g.name,
                n=n,
                origin=int(starts2d[r, 0]),
                dispersion_time=dispersion,
                total_steps=int(steps_r.sum()),
                steps=steps_r,
                settled_at=settled2d[r].copy(),
                settle_order=settled[order],
                trajectories=None,
                num_particles=None if m == n else m,
            )
        )
    return results


# ----------------------------------------------------------------------
# Sequential-IDLA
# ----------------------------------------------------------------------
def batched_sequential_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    lazy: bool = False,
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    max_total_steps: float | None = None,
) -> list[DispersionResult]:
    """Run ``R`` independent Sequential-IDLA realisations in lock-step.

    Each repetition has exactly one walking particle at a time, so the
    flat state is one position per live repetition and every tick
    advances all of them with a single :func:`csr_step`.  Repetition
    streams, settlement and the instant-settle release chain follow the
    serial driver exactly — entry ``r`` of the result is bit-identical to
    ``sequential_idla(g, origin, seed=seeds[r], ...)``.

    Note on throughput: with one particle per repetition the batch width
    equals the number of *live* repetitions, so the crossover against the
    serial driver's tuned scalar loop sits near ``reps ≈ 64`` (the
    runner's auto dispatch accounts for this); the parallel driver, whose
    batch width is repetitions × active particles, wins much earlier.
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"sequential IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    use_default_rule = rule is None or rule is standard_rule
    budget = float("inf") if max_total_steps is None else float(max_total_steps)
    process = "sequential-lazy" if lazy else "sequential"

    starts2d = np.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)

    occ = np.zeros(R * n, dtype=bool)
    steps2d = np.zeros((R, m), dtype=np.int64)
    settled2d = np.full((R, m), -1, dtype=np.int64)
    current = np.zeros(R, dtype=np.int64)  # walking particle per repetition

    # release chain from particle 0: instantly settle vacant starts
    live_list, pos_list = [], []
    for r in range(R):
        walker = instant_settle_chain(
            occ[r * n : (r + 1) * n], starts2d[r], 0, steps2d[r], settled2d[r]
        )
        if walker < m:
            current[r] = walker
            live_list.append(r)
            pos_list.append(starts2d[r, walker])
    live = np.asarray(live_list, dtype=np.int64)
    pos = np.asarray(pos_list, dtype=np.int64)

    buf = np.empty((R, _BLOCK), dtype=np.float64)
    for r in live_list:
        gens[r].random(out=buf[r])
    buf_flat = buf.reshape(-1)
    # every live repetition consumes exactly one uniform per tick, so a
    # single shared cursor serves all buffers
    cursor = 0
    base = live * _BLOCK
    vert_off = live * n
    pstep = np.zeros(live.size, dtype=np.int64)  # current particle's step count
    indptr_g, indices_g, degrees_g = g.indptr, g.indices, g.degrees
    ticks = 0

    while live.size:
        if cursor == _BLOCK:
            for r in live:
                gens[r].random(out=buf[r])
            cursor = 0
        u = buf_flat[base + cursor]
        cursor += 1
        ticks += 1
        pstep += 1
        if ticks > budget:
            raise RuntimeError(
                f"sequential IDLA exceeded max_total_steps={max_total_steps}"
            )
        if lazy:
            move = u >= 0.5
            new = csr_step(indptr_g, indices_g, degrees_g, pos, 2.0 * (u - 0.5))
            pos = np.where(move, new, pos)
            settling = move & ~occ[vert_off + pos]
        else:
            pos = csr_step(indptr_g, indices_g, degrees_g, pos, u)
            settling = ~occ[vert_off + pos]
        if not settling.any():
            continue
        idx = np.flatnonzero(settling)
        if not use_default_rule:
            idx = idx[
                [bool(rule(int(pstep[i]), int(pos[i]), True)) for i in idx]
            ]
            if idx.size == 0:
                continue
        finished = []
        for i in idx:
            r, v = int(live[i]), int(pos[i])
            occ_r = occ[r * n : (r + 1) * n]
            occ_r[v] = True
            steps2d[r, current[r]] = pstep[i]
            settled2d[r, current[r]] = v
            walker = instant_settle_chain(
                occ_r, starts2d[r], current[r] + 1, steps2d[r], settled2d[r]
            )
            if walker == m:
                finished.append(i)
            else:
                current[r] = walker
                pos[i] = starts2d[r, walker]
                pstep[i] = 0
        if finished:
            keep = np.ones(live.size, dtype=bool)
            keep[finished] = False
            live, pos, pstep = live[keep], pos[keep], pstep[keep]
            base = live * _BLOCK
            vert_off = live * n

    results = []
    for r in range(R):
        steps_r = steps2d[r].copy()
        results.append(
            DispersionResult(
                process=process,
                graph_name=g.name,
                n=n,
                origin=int(starts2d[r, 0]),
                dispersion_time=int(steps_r.max()),
                total_steps=int(steps_r.sum()),
                steps=steps_r,
                settled_at=settled2d[r].copy(),
                settle_order=np.arange(m, dtype=np.int64),
                trajectories=None,
                num_particles=None if m == n else m,
            )
        )
    return results
