"""Batched cross-repetition dispersion drivers.

Monte-Carlo estimation of ``E[τ]`` repeats one stochastic process ``R``
times.  The serial runner replays the full per-round NumPy dispatch cost
``R`` times — on graphs with long settlement tails (the cycle spends
``Θ(n² log n)`` rounds on a handful of stragglers) that overhead dwarfs
the useful element work.  The drivers here advance **all repetitions in
lock-step** instead: one flat state vector concatenates every
repetition's unsettled particles, one :func:`repro.walks.engine
.neighbor_step` call advances them together through the graph's slot
kernel, and one lexsort resolves settlement per
``(repetition, vertex)`` cell.  Per-repetition completion masks drop
finished repetitions from the flat state, so round ``t`` costs
``O(live particles at t)`` plus a constant number of NumPy calls — the
same vectorise-the-outer-loop move the serial engine applies to
particles, lifted one level up to repetitions.

Streaming buffers and the scalar tail finisher
----------------------------------------------
Uniforms come from :class:`repro.utils.rng.UniformStreams`: per-repetition
refill chunks over one shared buffer whose total size is *bounded* (the
chunk shrinks as the repetition count grows), so batching is open to any
graph size and repetition count — the old ``reps × block`` preallocation
and the ``_BATCHED_MAX_BUFFER_DOUBLES`` auto-dispatch decline it forced
are gone.  Chunk-invariance of NumPy double streams makes the chunk size
invisible in the results.

The same property permits a mid-stream handoff: once only a few
**repetitions survive** (for the parallel driver, each additionally down
to its serial driver's scalar narrow phase — ``scalar_threshold`` live
particles), the lock-step round (a fixed number of NumPy calls, ~µs
each) costs more than scalar work on the stragglers, so each surviving
repetition is handed to a plain-Python micro-loop (the serial drivers'
own narrow-phase shape) that continues its uniform stream via
:meth:`UniformStreams.tail` — the *scalar tail finisher*, engaged
throughout the deep ``Θ(n² log n)`` settlement tails the paper proves
for the cycle (counting live *particles*, the old criterion, kept the
round machinery running until the stragglers' combined width shrank
too).

Bit-identical replay
--------------------
Each repetition consumes uniforms from its **own child generator** in
exactly the order the serial driver would.  NumPy's ``Generator.random``
produces an identical double stream regardless of how draws are chunked
(``random(a)`` then ``random(b)`` equals ``random(a + b)`` split), so the
per-repetition streaming chunks here replay the serial drivers'
``random(k)``-per-round / block-buffered-scalar draw patterns double for
double, before *and* after the finisher handoff.  Consequently::

    batched_parallel_idla(g, seeds=seeds) ==
        [parallel_idla(g, seed=s) for s in seeds]      # bit for bit

including the lazy variants, random tie-breaking, custom origins and the
``m ≠ n`` particle-count variants (enforced by
``tests/test_core_batched.py`` and ``tests/test_streaming_buffers.py``).
Two serial quirks are reproduced deliberately:

* the serial parallel driver's scalar-tail fallback changes the *lazy*
  draw pattern below ``scalar_threshold`` active particles (two uniforms
  per particle per round above it, one below); the batched driver — and
  the finisher — track a per-repetition wide/narrow mode so the streams
  stay aligned;
* settling rules are evaluated only on vacant candidates — identical
  outcomes for the library's (pure) rules, far fewer Python calls.

The sequential driver additionally leaves every repetition's generator at
the **serial stream position** (``UniformStreams.align_to_serial``): the
Poissonised sequential driver keeps consuming the generator after the
discrete walks, so the fetch grid matters there, not just the values.

``record=True`` routes the flat per-round state into the chunked
:class:`repro.core.trajectory.TrajectoryStore` — one slice append per
round, finalised into the serial drivers' exact ``list[list[int]]``
trajectories, with straggler repetitions handed to the finisher via
:meth:`TrajectoryStore.handoff` so the scalar micro-loops keep appending
to the recorded prefix.  The runner validates driver kwargs up front
(unknown keys raise ``TypeError`` there) and routes impure settling
rules to the serial reference path, which stays the oracle the batched
subsystem is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.backends import backend_of
from repro.core.budget import cohort_slices, plan_state
from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.sequential import _BLOCK as _SERIAL_SEQ_BLOCK
from repro.core.settlement import (
    chunked_vacancies,
    instant_settle_chain,
    select_settlers,
    settle_vacant_starts,
)
from repro.core.stopping_rules import StoppingRule, standard_rule
from repro.core.trajectory import TrajectoryStore
from repro.graphs.csr import Graph, neighbor_kernel
from repro.kernels import csr_arrays, get_kernels
from repro.utils.validation import check_integer
from repro.utils.rng import (
    UniformStream,
    UniformStreams,
    as_generator,
    resolve_stream_block,
    spawn_generators,
)
from repro.walks.engine import neighbor_step

__all__ = [
    "batched_parallel_idla",
    "batched_sequential_idla",
    "buffer_doubles",
    "stream_block",
]

#: Test override for the streaming refill chunk (doubles per repetition);
#: ``None`` auto-sizes through :func:`repro.utils.rng.resolve_stream_block`.
#: For the sequential driver an override must be a power of two dividing
#: the serial fetch block (the generator-position parity the Poissonised
#: driver relies on is only provable on that grid).
_BLOCK: int | None = None

#: Scalar-tail-finisher default: once this few repetitions survive (and,
#: for the parallel driver, each is already in the serial driver's scalar
#: narrow phase), every straggler repetition is handed to the serial
#: scalar micro-loop.  Counting *repetitions* rather than particles is
#: what engages the finisher throughout the deep settlement tail — a
#: handful of stragglers used to keep the whole lock-step round machinery
#: running until their combined particle count shrank too.
_TAIL_THRESHOLD = 16


def _parallel_streams(
    gens, m: int, budget_doubles=None, backend=None
) -> UniformStreams:
    """Streams for the parallel driver: one round consumes <= 2·m + 2."""
    return UniformStreams(
        gens,
        per_rep_min=2 * m + 2,
        block=_BLOCK,
        budget_doubles=budget_doubles,
        backend=backend,
    )


def _sequential_streams(gens, budget_doubles=None, backend=None) -> UniformStreams:
    """Streams for the sequential driver, aligned to the serial fetch grid."""
    return UniformStreams(
        gens,
        per_rep_min=1,
        align=_SERIAL_SEQ_BLOCK,
        block=_BLOCK,
        budget_doubles=budget_doubles,
        backend=backend,
    )


def stream_block(
    process: str,
    reps: int,
    num_particles: int,
    *,
    budget_doubles: int | None = None,
) -> int:
    """Per-repetition streaming chunk (doubles) a batched run allocates.

    The synchronous drivers' own sizing export — resolved through the same
    :func:`repro.utils.rng.resolve_stream_block` the drivers' allocations
    use, so reported sizes always match reality (pinned by
    ``tests/test_streaming_buffers.py``).  ``budget_doubles`` is the
    stream shrink a byte :class:`~repro.core.budget.StateBudget` resolves
    to (``BudgetPlan.stream_budget_doubles``); pass it to report the
    budgeted allocation.
    """
    if process == "parallel":
        return resolve_stream_block(
            reps,
            per_rep_min=2 * num_particles + 2,
            block=_BLOCK,
            budget_doubles=budget_doubles,
        )
    if process == "sequential":
        return resolve_stream_block(
            reps,
            per_rep_min=1,
            align=_SERIAL_SEQ_BLOCK,
            block=_BLOCK,
            budget_doubles=budget_doubles,
        )
    raise ValueError(f"no synchronous batched driver for process {process!r}")


def buffer_doubles(process: str, reps: int, num_particles: int) -> int:
    """Uniform-buffer doubles a batched run allocates (reporting only).

    Consults the sizing export of the module that actually owns the
    driver: the synchronous processes resolve here, the tick-scheduled
    ones — **including** ``c-sequential``, whose driver lives in
    :mod:`repro.core.batched_continuous` — through that module's
    ``stream_block``.  The old version sized every non-continuous process
    with this module's block constant, which reported a size unrelated to
    what the owning driver allocated.  Since the streaming scheme bounds
    the total by construction, this is no longer a dispatch input, just
    an introspection helper.
    """
    if process in ("ctu", "uniform", "c-sequential"):
        from repro.core.batched_continuous import (
            stream_block as continuous_stream_block,
        )

        return reps * continuous_stream_block(process, reps, num_particles)
    return reps * stream_block(process, reps, num_particles)


def _resolve_generators(seeds, seed, reps) -> list[np.random.Generator]:
    """Normalise the (seeds | seed+reps) repetition-stream specification."""
    if seeds is not None:
        gens = [as_generator(s) for s in seeds]
        if reps is not None and reps != len(gens):
            raise ValueError(f"reps={reps} does not match len(seeds)={len(gens)}")
        return gens
    if reps is None:
        raise ValueError("either `seeds` or `reps` must be given")
    reps = check_integer("reps", reps)
    if reps < 0:
        raise ValueError(f"reps must be >= 0, got {reps}")
    return spawn_generators(seed, reps)


def _resolve_tail_threshold(tail_threshold) -> int:
    if tail_threshold is None:
        return _TAIL_THRESHOLD
    threshold = check_integer("tail_threshold", tail_threshold)
    if threshold < 0:
        raise ValueError(f"tail_threshold must be >= 0, got {tail_threshold}")
    return threshold


# ----------------------------------------------------------------------
# Parallel-IDLA
# ----------------------------------------------------------------------
def _finish_parallel_rep(
    adj,
    occ_row,
    pids,
    positions,
    prio_of,
    t,
    free_r,
    tail: UniformStream,
    *,
    lazy,
    scalar_threshold,
    use_default_rule,
    rule,
    budget,
    max_rounds,
    steps_row,
    settled_row,
    round_row,
    traj_rows=None,
    kern=None,
    csr=None,
):
    """Run one straggler repetition to completion with the scalar micro-loop.

    Continues the repetition's uniform stream through ``tail`` in exactly
    the serial draw pattern: the lazy wide phase (``k > scalar_threshold``)
    consumes ``k`` hold gates then ``k`` step uniforms per round, the
    narrow phase one uniform per particle per round.  Settlement is the
    serial narrow-phase contest (per vacant vertex, best priority wins).
    Mutates the repetition's occupancy / steps / settled / round rows, and
    — when recording — appends to ``traj_rows``, the repetition's
    :meth:`TrajectoryStore.handoff` lists (one vertex per particle per
    round, holds included, the serial record shape).

    ``kern``/``csr`` (a compiled :class:`repro.kernels.KernelSet` and the
    graph's host CSR arrays) delegate the dominant single-straggler loop
    to the compiled twin; the caller passes them only when the run's
    gates hold (default rule, no recording, exact-bitstream backend).
    Multi-particle rounds write occupancy through a ``uint8`` view of the
    boolean row, so the compiled loop and the Python contest see the same
    cells.
    """
    occl = occ_row.view(np.uint8) if kern is not None else occ_row.tolist()
    uniform = tail.uniform
    rec = traj_rows is not None
    k = len(pids)
    while k and free_r > 0:
        if k == 1 and not (lazy and k > scalar_threshold):
            # the common straggler shape: one particle, no competition —
            # a dedicated micro-loop without the per-round contest
            p = pids[0]
            v = positions[0]
            row = traj_rows[p] if rec else None
            guard = k > scalar_threshold  # serial wide phase uses the vector step
            if kern is not None:
                v, t = kern.finish_parallel_single(
                    csr[0], csr[1], occl, tail,
                    v=v, t=t, lazy=lazy, guard=guard, budget=budget,
                    limit_msg=f"parallel IDLA exceeded max_rounds={max_rounds}",
                )
                steps_row[p] = t
                settled_row[p] = v
                round_row[p] = t
                return
            while True:
                t += 1
                if t > budget:
                    raise RuntimeError(
                        f"parallel IDLA exceeded max_rounds={max_rounds}"
                    )
                u = uniform()
                if lazy:
                    if u < 0.5:
                        if rec:
                            row.append(v)
                        continue
                    u = 2.0 * (u - 0.5)
                nbrs = adj[v]
                if guard:
                    d = len(nbrs)
                    off = int(u * d)
                    v = nbrs[d - 1 if off >= d else off]
                else:
                    v = nbrs[int(u * len(nbrs))]
                if rec:
                    row.append(v)
                if occl[v]:
                    continue
                if not use_default_rule and not rule(t, v, True):
                    continue
                occl[v] = True
                steps_row[p] = t
                settled_row[p] = v
                round_row[p] = t
                return
        t += 1
        if t > budget:
            raise RuntimeError(f"parallel IDLA exceeded max_rounds={max_rounds}")
        if lazy and k > scalar_threshold:
            # wide draw pattern: k hold gates, then k step uniforms (the
            # serial eng.step_lazy order); steps use the vector-step guard
            gates = tail.take(k)
            steps_u = tail.take(k)
            for j in range(k):
                if gates[j] >= 0.5:
                    nbrs = adj[positions[j]]
                    d = len(nbrs)
                    off = int(steps_u[j] * d)
                    if off >= d:
                        off = d - 1
                    positions[j] = nbrs[off]
                if rec:
                    traj_rows[pids[j]].append(positions[j])
        elif lazy:
            for j in range(k):
                u = uniform()
                if u < 0.5:
                    if rec:
                        traj_rows[pids[j]].append(positions[j])
                    continue
                u = 2.0 * (u - 0.5)
                nbrs = adj[positions[j]]
                positions[j] = nbrs[int(u * len(nbrs))]
                if rec:
                    traj_rows[pids[j]].append(positions[j])
        elif k > scalar_threshold:
            for j in range(k):
                u = uniform()
                nbrs = adj[positions[j]]
                d = len(nbrs)
                off = int(u * d)
                if off >= d:
                    off = d - 1
                positions[j] = nbrs[off]
                if rec:
                    traj_rows[pids[j]].append(positions[j])
        else:
            for j in range(k):
                u = uniform()
                nbrs = adj[positions[j]]
                positions[j] = nbrs[int(u * len(nbrs))]
                if rec:
                    traj_rows[pids[j]].append(positions[j])
        best: dict[int, int] = {}
        for j in range(k):
            v = positions[j]
            if occl[v]:
                continue
            if not use_default_rule and not rule(t, v, True):
                continue
            b = best.get(v)
            if b is None or prio_of(pids[j]) < prio_of(pids[b]):
                best[v] = j
        if not best:
            continue
        for j in best.values():
            p, v = pids[j], positions[j]
            occl[v] = True
            free_r -= 1
            steps_row[p] = t
            settled_row[p] = v
            round_row[p] = t
        drop = set(best.values())
        pids = [p for j, p in enumerate(pids) if j not in drop]
        positions = [v for j, v in enumerate(positions) if j not in drop]
        k = len(pids)
        if free_r == 0 and k:
            # repetition complete with surplus particles (m > n): they
            # walked until the last vertex filled — t steps each
            for p in pids:
                steps_row[p] = t
            break


def batched_parallel_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    lazy: bool = False,
    record: bool | str = False,
    tie_break: str = "index",
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    scalar_threshold: int = 16,
    max_rounds: float | None = None,
    tail_threshold: int | None = None,
    state_budget=None,
    backend=None,
    kernels=None,
) -> list[DispersionResult]:
    """Run ``R`` independent Parallel-IDLA realisations in lock-step.

    Parameters
    ----------
    reps, seeds, seed:
        Either pass ``seeds`` — one seed/generator per repetition (the
        runner passes the children of one ``SeedSequence``) — or ``reps``
        plus an optional parent ``seed`` from which children are spawned
        exactly like :func:`repro.utils.rng.spawn_generators`.
    lazy, record, tie_break, rule, num_particles, scalar_threshold, max_rounds:
        As in :func:`repro.core.parallel.parallel_idla`; ``rule`` must be
        a pure predicate (it is evaluated only on vacant candidates).
        ``record=True`` keeps full trajectories via the chunked
        :class:`~repro.core.trajectory.TrajectoryStore` — one vectorised
        append per round; memory is ``O(total steps)`` as in the serial
        driver, and entry ``r``'s trajectories are list-identical to it.
    tail_threshold:
        Surviving-repetition count at which the scalar tail finisher
        takes over the stragglers (once each survivor is also down to
        ``scalar_threshold`` live particles — i.e. inside the serial
        driver's own scalar narrow phase); ``0`` disables the handoff,
        ``None`` uses the module default.  A performance knob only —
        results are bit-identical either way.
    state_budget:
        Optional :class:`repro.core.budget.StateBudget` (or spec string)
        capping resident simulation state.  Resolved by
        :func:`repro.core.budget.plan_state` into repetition cohorts run
        back to back, mid-round particle chunking of the step/probe
        transients, and a streaming-buffer shrink — all invisible in the
        results (each repetition still consumes its own stream in serial
        order).  ``record=True`` trajectory storage grows with total
        steps and is deliberately outside the cap.
    backend:
        :class:`repro.backends.ArrayBackend` (or registered name) the
        round bodies run on.  Defaults to the graph's backend, then the
        ``REPRO_BACKEND`` environment selection.  Exact-bitstream
        backends (``numpy``, ``numpy_strict``) leave every sample
        bit-identical; non-bitstream backends are gated on the
        statistical contract instead (``repro.backends.contract``).
    kernels:
        :class:`repro.kernels.KernelSet` (or provider name) for the
        compiled inner-loop layer.  Defaults to the ``REPRO_KERNELS``
        environment selection, then auto-detection.  Compiled kernels
        engage only on exact-bitstream backends with a materialised host
        CSR, and are a performance knob only — every sample stays
        bit-identical to the serial oracle (the differential harness pins
        this per provider).

    Returns
    -------
    list[DispersionResult]
        Entry ``r`` is bit-identical to
        ``parallel_idla(g, origin, seed=seeds[r], ...)``.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> batch = batched_parallel_idla(cycle_graph(16), reps=3, seed=7)
    >>> [r.is_complete_dispersion() for r in batch]
    [True, True, True]
    """
    n = g.n
    m = n if num_particles is None else check_integer("num_particles", num_particles)
    if m < 1:
        raise ValueError(f"num_particles must be >= 1, got {m}")
    if tie_break not in ("index", "random"):
        raise ValueError(f"tie_break must be 'index' or 'random', got {tie_break!r}")
    scalar_threshold = check_integer("scalar_threshold", scalar_threshold)
    tail_total = _resolve_tail_threshold(tail_threshold)
    bk = backend_of(g, backend)
    xp = bk.xp
    kern = get_kernels(kernels)
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    plan = plan_state(state_budget, "parallel", n, m)
    if plan.cohort_reps < R:
        # budgeted cohorts: run `cohort_reps` repetitions to completion at
        # a time.  Repetition r always consumes generator r's stream, so
        # the grouping is invisible in the results; the recursive call
        # re-resolves the same plan and proceeds single-cohort.
        out: list[DispersionResult] = []
        for a, b in cohort_slices(R, plan.cohort_reps):
            out.extend(
                batched_parallel_idla(
                    g,
                    origin,
                    seeds=gens[a:b],
                    lazy=lazy,
                    record=record,
                    tie_break=tie_break,
                    rule=rule,
                    num_particles=num_particles,
                    scalar_threshold=scalar_threshold,
                    max_rounds=max_rounds,
                    tail_threshold=tail_threshold,
                    state_budget=state_budget,
                    backend=bk,
                    kernels=kern,
                )
            )
        return out
    step_chunk = plan.step_chunk
    use_default_rule = rule is None or rule is standard_rule
    budget = float("inf") if max_rounds is None else float(max_rounds)
    process = "parallel-lazy" if lazy else "parallel"

    # ---- per-repetition initial draws, in the serial driver's order.
    # With the default "index" tie-break the priority of particle p is p
    # itself, so `pid` doubles as the priority vector and prio2d stays None.
    arange_m = xp.arange(m, dtype=np.int64)
    starts2d = xp.empty((R, m), dtype=np.int64)
    prio2d = None if tie_break == "index" else xp.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)
        if prio2d is not None:
            # σ(1) = 1 as in the serial driver: particle 0 keeps top priority
            prio2d[r, 0] = 0
            prio2d[r, 1:] = 1 + gen.permutation(m - 1)

    store = TrajectoryStore(starts2d, n, backend=bk) if record else None
    occ = xp.zeros(R * n, dtype=bool)
    free = xp.full(R, n, dtype=np.int64)
    steps2d = xp.zeros((R, m), dtype=np.int64)
    settled2d = xp.full((R, m), -1, dtype=np.int64)
    round2d = xp.full((R, m), -1, dtype=np.int64)
    steps2d_flat = steps2d.reshape(-1)
    settled2d_flat = settled2d.reshape(-1)
    round2d_flat = round2d.reshape(-1)

    # ---- round 0: per-repetition settlement pass over the starts
    for r in range(R):
        occ_r = occ[r * n : (r + 1) * n]
        prio_r = arange_m if prio2d is None else prio2d[r]
        winners = settle_vacant_starts(occ_r, starts2d[r], prio_r, backend=bk)
        if winners.size:
            occ_r[starts2d[r, winners]] = True
            free[r] -= winners.size
            settled2d[r, winners] = starts2d[r, winners]
            round2d[r, winners] = 0

    # ---- flat lock-step state: all repetitions' unsettled particles,
    # grouped by repetition, ascending particle index within each group
    rep_ids, pid = xp.nonzero(settled2d < 0)
    if xp.any(free[rep_ids] == 0):
        # a repetition already complete at round 0 (m > n with covering
        # starts): its surplus particles performed 0 steps — drop them
        alive = free[rep_ids] > 0
        rep_ids, pid = rep_ids[alive], pid[alive]
    pos = starts2d[rep_ids, pid].copy()

    streams = _parallel_streams(gens, m, plan.stream_budget_doubles, backend=bk)
    block = streams.block
    streams.fill(range(R))
    buf_flat = streams.flat
    bptr = xp.zeros(R, dtype=np.int64)

    # per-round flat metadata, recomputed whenever particles leave
    k = counts = counts_exp = rep_off = prio_flat = bidx = None
    k_exp = wide_exp = None
    rounds_buffered = 0

    def buffered_rounds() -> int:
        """Rounds the repetition buffers can serve before the next refill."""
        live = counts > 0
        if not xp.any(live):
            return 1
        return int(xp.min((block - bptr[live]) // counts[live]))

    def rebuild():
        nonlocal k, counts, counts_exp, rep_off, prio_flat, bidx
        nonlocal k_exp, wide_exp, rounds_buffered
        k = bk.bincount(rep_ids, minlength=R)
        if lazy:
            # the serial driver's wide phase (active > threshold) consumes
            # 2 uniforms per particle per round, the scalar tail only 1
            wide = k > scalar_threshold
            counts = xp.where(wide, 2 * k, k)
            k_exp = k[rep_ids]
            wide_exp = wide[rep_ids]
        else:
            counts = k
        counts_exp = counts[rep_ids]
        rep_off = rep_ids * n
        prio_flat = pid if prio2d is None else prio2d[rep_ids, pid]
        group_start = (bk.cumsum(k) - k)[rep_ids]
        within = xp.arange(rep_ids.size, dtype=np.int64) - group_start
        bidx = rep_ids * block + bptr[rep_ids] + within
        rounds_buffered = buffered_rounds()

    def compact(keep, affected):
        """Drop masked-out particles, fixing only the affected repetitions.

        Incremental replacement for :func:`rebuild` on settlement rounds:
        per-particle
        metadata is preserved by the mask for every repetition that lost no
        particles (a particle's buffer slot ``bidx`` and ``counts_exp``
        depend only on its repetition's state and its rank *within* that
        repetition), so only the few repetitions in ``affected`` need their
        slices rewritten.
        """
        nonlocal rep_ids, pid, pos, counts_exp, rep_off, prio_flat, bidx
        nonlocal k_exp, wide_exp, rounds_buffered
        rep_ids, pid, pos = rep_ids[keep], pid[keep], pos[keep]
        counts_exp, rep_off, bidx = counts_exp[keep], rep_off[keep], bidx[keep]
        prio_flat = pid if prio2d is None else prio_flat[keep]
        if lazy:
            k_exp, wide_exp = k_exp[keep], wide_exp[keep]
        group_start = bk.cumsum(k) - k
        for r in affected:
            kr = int(k[r])
            if lazy:
                wide_r = kr > scalar_threshold
                counts[r] = 2 * kr if wide_r else kr
            sl = slice(int(group_start[r]), int(group_start[r]) + kr)
            counts_exp[sl] = counts[r]
            bidx[sl] = r * block + bptr[r] + xp.arange(kr, dtype=np.int64)
            if lazy:
                k_exp[sl] = kr
                wide_exp[sl] = wide_r
        rounds_buffered = buffered_rounds()

    def refill():
        nonlocal rounds_buffered
        for r in bk.flatnonzero(bptr + counts > block):
            bidx[rep_ids == r] -= bptr[r]
            streams.refill_tail(int(r), int(bptr[r]))
            bptr[r] = 0
        rounds_buffered = buffered_rounds()

    def tail_ready() -> bool:
        """Handoff criterion, recomputed only when ``k`` changes.

        Hand off when few *repetitions* survive — the lock-step round
        cost is dominated by per-repetition metadata, not particles —
        and every survivor is already inside the serial driver's scalar
        narrow phase (``<= scalar_threshold`` live particles), so the
        micro-loop is the regime the serial driver itself would use.
        Counting live particles instead (the old criterion) kept the
        round machinery running through the whole deep settlement tail.
        """
        if tail_total <= 0 or rep_ids.size == 0:
            return False
        return (
            int(xp.count_nonzero(k)) <= tail_total
            and int(k.max()) <= scalar_threshold
        )

    rebuild()
    kernel = neighbor_kernel(g)
    degrees_g = g.degrees
    # compiled inner-loop layer: engages only under the bit-identity
    # contract (exact-bitstream backend) and, for the step/finisher, a
    # materialised host CSR.  The settlement kernel needs no CSR, so it
    # serves implicit families too.
    compiled = kern.compiled and bk.exact_bitstream
    fused = kern.stepper(g) if compiled else None
    csr = csr_arrays(g) if compiled else None
    settle_scratch = kern.make_settle_scratch(n) if compiled else None
    # narrow rounds (the settlement tail) keep the numpy expressions: the
    # compiled call overhead only pays for itself from min_width lanes up
    minw = kern.min_width
    # regular graphs (most of Table 1): constant degree turns the degree
    # gathers into scalar arithmetic — the round body drops to the uniform
    # lookup, the slot kernel and the occupancy probe.  The O(n) helper
    # arrays exist only on the irregular path, so implicit regular
    # families keep their O(1)-in-m footprint.
    regular = n > 0 and g.is_regular()
    if regular:
        c_int = int(degrees_g[0])
        c_float = float(c_int)
    else:
        degm1 = degrees_g - 1
        degf = degrees_g.astype(np.float64)
    t = 0
    handoff = tail_ready()

    while rep_ids.size:
        if handoff:
            # ---- scalar tail finisher: the lock-step round costs more
            # than scalar work on the few stragglers left; hand each
            # surviving repetition its stream mid-flight and finish it
            # with the serial micro-loop.
            fin_kern = (
                kern
                if compiled
                and csr is not None
                and use_default_rule
                and store is None
                else None
            )
            # the compiled single-straggler loop walks the CSR directly;
            # adjacency lists are only needed for the Python rounds
            # (multi-particle stragglers, or the lazy wide shape at k=1)
            adj = (
                None
                if fin_kern is not None
                and int(k.max()) == 1
                and not (lazy and scalar_threshold < 1)
                else g.adjacency_lists()
            )
            for r in xp.unique(rep_ids).tolist():
                mask = rep_ids == r
                prio_row = prio2d[r] if prio2d is not None else None
                _finish_parallel_rep(
                    adj,
                    occ[r * n : (r + 1) * n],
                    pid[mask].tolist(),
                    pos[mask].tolist(),
                    (lambda p: p)
                    if prio_row is None
                    else (lambda p, _row=prio_row: _row[p]),
                    t,
                    int(free[r]),
                    streams.tail(r, int(bptr[r])),
                    lazy=lazy,
                    scalar_threshold=scalar_threshold,
                    use_default_rule=use_default_rule,
                    rule=rule,
                    budget=budget,
                    max_rounds=max_rounds,
                    steps_row=steps2d[r],
                    settled_row=settled2d[r],
                    round_row=round2d[r],
                    traj_rows=store.handoff(r) if store is not None else None,
                    kern=fin_kern,
                    csr=csr,
                )
            break
        t += 1
        if t > budget:
            raise RuntimeError(f"parallel IDLA exceeded max_rounds={max_rounds}")
        if rounds_buffered <= 0:
            refill()
        rounds_buffered -= 1
        if step_chunk is not None and step_chunk < rep_ids.size:
            # budgeted round body: identical elementwise work over
            # `step_chunk`-sized slices of the flat state, so the per-round
            # scratch (uniform gathers, offsets, `where` temps) is bounded
            # by the chunk instead of the walker count.  Elementwise ufuncs
            # are slice-invariant, so every double lands exactly where the
            # one-shot body would put it.
            for a in range(0, rep_ids.size, step_chunk):
                sl = slice(a, min(a + step_chunk, rep_ids.size))
                wide_enough = fused is not None and sl.stop - sl.start >= minw
                if lazy:
                    we = wide_exp[sl]
                    u = buf_flat[bidx[sl]]
                    u2 = buf_flat[bidx[sl] + xp.where(we, k_exp[sl], 0)]
                    move = u >= 0.5
                    ustep = xp.where(we, u2, 2.0 * (u - 0.5))
                    if wide_enough:
                        new = fused(pos[sl], ustep)
                    else:
                        new = neighbor_step(
                            kernel, degrees_g, pos[sl], ustep, xp=xp
                        )
                    pos[sl] = xp.where(move, new, pos[sl])
                elif wide_enough:
                    pos[sl] = fused(pos[sl], buf_flat[bidx[sl]])
                elif regular:
                    u = buf_flat[bidx[sl]]
                    offsets = (u * c_float).astype(np.int64)
                    xp.minimum(offsets, c_int - 1, out=offsets)
                    pos[sl] = kernel(pos[sl], offsets)
                else:
                    u = buf_flat[bidx[sl]]
                    deg = degf[pos[sl]]
                    offsets = (u * deg).astype(np.int64)
                    xp.minimum(offsets, degm1[pos[sl]], out=offsets)
                    pos[sl] = kernel(pos[sl], offsets)
        elif lazy:
            u = buf_flat[bidx]
            u2 = buf_flat[bidx + xp.where(wide_exp, k_exp, 0)]
            move = u >= 0.5
            # wide phase: independent step uniform; scalar tail: upper half
            ustep = xp.where(wide_exp, u2, 2.0 * (u - 0.5))
            if fused is not None and pos.size >= minw:
                new = fused(pos, ustep)
            else:
                new = neighbor_step(kernel, degrees_g, pos, ustep, xp=xp)
            pos = xp.where(move, new, pos)
        elif fused is not None and pos.size >= minw:
            # one C pass fuses the degree gather, offset truncation and
            # slot gather — no walker-sized transients
            pos = fused(pos, buf_flat[bidx])
        elif regular:
            # constant degree: offsets come from scalar arithmetic and the
            # slot kernel resolves them (one CSR hop, or pure arithmetic
            # on implicit families)
            u = buf_flat[bidx]
            offsets = (u * c_float).astype(np.int64)
            xp.minimum(offsets, c_int - 1, out=offsets)
            pos = kernel(pos, offsets)
        else:
            # neighbor_step inlined with precomputed float degrees /
            # degrees-1 arrays: the fast path is these vector ops plus the
            # occupancy probe
            u = buf_flat[bidx]
            deg = degf[pos]
            offsets = (u * deg).astype(np.int64)
            xp.minimum(offsets, degm1[pos], out=offsets)
            pos = kernel(pos, offsets)
        if store is not None:
            # one vertex per active particle per round, holds included —
            # the serial record shape, appended as one chunked slice
            store.append(rep_ids, pid, pos)
        bptr += counts
        bidx += counts_exp
        if (
            settle_scratch is not None
            and rep_ids.size >= minw
            and use_default_rule
            and (step_chunk is None or step_chunk >= rep_ids.size)
        ):
            # fused probe + per-(repetition, vertex) contest in one pass;
            # winner set and order identical to the lexsort path below
            # (budgeted chunked probes keep the numpy path: the compiled
            # probe's single pass would defeat the transient cap)
            winners = kern.settle_round(
                occ, rep_ids, pos, prio_flat, n, settle_scratch
            )
            if winners.size == 0:
                continue
        else:
            cand = chunked_vacancies(
                occ, rep_off, pos, step_chunk, backend=bk, kernels=kern
            )
            if cand.size == 0:
                continue
            if not use_default_rule:
                allowed = np.fromiter(
                    (bool(rule(t, int(v), True)) for v in pos[cand]),
                    dtype=bool,
                    count=cand.size,
                )
                cand = cand[allowed]
                if cand.size == 0:
                    continue
            winners = cand[
                select_settlers(rep_off[cand] + pos[cand], prio_flat[cand], xp=xp)
            ]
        w_rep, w_pid, w_vert = rep_ids[winners], pid[winners], pos[winners]
        occ[rep_off[winners] + w_vert] = True
        w_cell = w_rep * m + w_pid
        steps2d_flat[w_cell] = t
        settled2d_flat[w_cell] = w_vert
        round2d_flat[w_cell] = t
        w_counts = bk.bincount(w_rep, minlength=R)
        free -= w_counts
        k -= w_counts  # aliases `counts` in the non-lazy case
        keep = xp.ones(rep_ids.size, dtype=bool)
        keep[winners] = False
        if m > n and xp.any(free[w_rep] == 0):
            # repetition complete: surplus particles (m > n) walked until
            # the last vertex filled — they stop now with t steps each
            stopped = keep & (free[rep_ids] == 0)
            if xp.any(stopped):
                steps2d_flat[rep_ids[stopped] * m + pid[stopped]] = t
                keep[stopped] = False
                k -= bk.bincount(rep_ids[stopped], minlength=R)
        compact(keep, xp.unique(w_rep))
        handoff = tail_ready()

    # ---- per-repetition result assembly
    if store is None:
        traj_all = None
    elif record == "arrays":
        traj_all = store.finalize_arrays()
    else:
        traj_all = store.finalize()
    results = []
    for r in range(R):
        settled = bk.flatnonzero(settled2d[r] >= 0)
        prio_vals = settled if prio2d is None else prio2d[r, settled]
        order = xp.lexsort((prio_vals, round2d[r, settled]))
        steps_r = steps2d[r].copy()
        dispersion = int(steps_r[settled].max()) if settled.size else 0
        results.append(
            DispersionResult(
                process=process,
                graph_name=g.name,
                n=n,
                origin=int(starts2d[r, 0]),
                dispersion_time=dispersion,
                total_steps=int(steps_r.sum()),
                steps=steps_r,
                settled_at=settled2d[r].copy(),
                settle_order=settled[order],
                trajectories=None if traj_all is None else traj_all[r],
                num_particles=None if m == n else m,
            )
        )
    return results


# ----------------------------------------------------------------------
# Sequential-IDLA
# ----------------------------------------------------------------------
def _finish_sequential_rep(
    adj,
    occ_row,
    starts_r,
    walker,
    pos,
    pstep,
    tail: UniformStream,
    *,
    lazy,
    use_default_rule,
    rule,
    total,
    budget,
    max_total_steps,
    steps_row,
    settled_row,
    traj_rows=None,
):
    """Run one straggler repetition to completion with the scalar micro-loop.

    The serial sequential driver's inner loop, continued mid-walk:
    ``walker`` is the repetition's current particle, ``pstep`` steps into
    its walk at position ``pos``, with ``total`` stream doubles consumed
    so far.  When recording, ``traj_rows`` are the repetition's
    :meth:`TrajectoryStore.handoff` lists and every step (holds included)
    appends to the walking particle's row.  Returns the repetition's
    final consumed-double count (for the generator fast-forward onto the
    serial fetch grid).
    """
    occl = occ_row.tolist()
    uniform = tail.uniform
    rec = traj_rows is not None
    row = traj_rows[walker] if rec else None
    m = len(starts_r)
    t = pstep
    particle = walker
    while True:
        u = uniform()
        total += 1
        t += 1
        if total > budget:
            raise RuntimeError(
                f"sequential IDLA exceeded max_total_steps={max_total_steps}"
            )
        if lazy:
            if u < 0.5:
                if rec:
                    row.append(pos)
                continue  # hold step: t already counted it
            u = 2.0 * (u - 0.5)
        nbrs = adj[pos]
        pos = nbrs[int(u * len(nbrs))]
        if rec:
            row.append(pos)
        if occl[pos]:
            continue
        if not use_default_rule and not rule(t, pos, True):
            continue
        occl[pos] = True
        steps_row[particle] = t
        settled_row[particle] = pos
        particle = instant_settle_chain(
            occl, starts_r, particle + 1, steps_row, settled_row
        )
        if particle == m:
            return total
        pos = int(starts_r[particle])
        row = traj_rows[particle] if rec else None
        t = 0


def batched_sequential_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    lazy: bool = False,
    record: bool | str = False,
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    max_total_steps: float | None = None,
    tail_threshold: int | None = None,
    state_budget=None,
    backend=None,
    kernels=None,
) -> list[DispersionResult]:
    """Run ``R`` independent Sequential-IDLA realisations in lock-step.

    Each repetition has exactly one walking particle at a time, so the
    flat state is one position per live repetition and every tick
    advances all of them with a single :func:`neighbor_step`.  Repetition
    streams, settlement and the instant-settle release chain follow the
    serial driver exactly — entry ``r`` of the result is bit-identical to
    ``sequential_idla(g, origin, seed=seeds[r], ...)``, and every
    repetition's generator finishes at the serial stream position (the
    Poissonised driver keeps drawing from it).

    ``tail_threshold`` (``0`` disables, ``None`` = module default) is the
    live-repetition count at which the scalar tail finisher hands each
    straggler to the serial micro-loop — a performance knob only, results
    are bit-identical either way.  ``record=True`` keeps full
    trajectories through the chunked
    :class:`~repro.core.trajectory.TrajectoryStore` (one vectorised
    append per tick; the finisher continues each straggler's recorded
    prefix), list-identical to the serial driver's.

    Note on throughput: with one particle per repetition the batch width
    equals the number of *live* repetitions, so the crossover against the
    serial driver's tuned scalar loop sits near ``reps ≈ 64`` (the
    runner's auto dispatch accounts for this); the parallel driver, whose
    batch width is repetitions × active particles, wins much earlier.
    """
    n = g.n
    m = n if num_particles is None else check_integer("num_particles", num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"sequential IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    tail_total = _resolve_tail_threshold(tail_threshold)
    bk = backend_of(g, backend)
    xp = bk.xp
    kern = get_kernels(kernels)
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    plan = plan_state(state_budget, "sequential", n, m)
    if plan.cohort_reps < R:
        # budgeted cohorts (see batched_parallel_idla): repetition r keeps
        # its own stream, so grouping is invisible in the results
        out: list[DispersionResult] = []
        for a, b in cohort_slices(R, plan.cohort_reps):
            out.extend(
                batched_sequential_idla(
                    g,
                    origin,
                    seeds=gens[a:b],
                    lazy=lazy,
                    record=record,
                    rule=rule,
                    num_particles=num_particles,
                    max_total_steps=max_total_steps,
                    tail_threshold=tail_threshold,
                    state_budget=state_budget,
                    backend=bk,
                    kernels=kern,
                )
            )
        return out
    use_default_rule = rule is None or rule is standard_rule
    budget = float("inf") if max_total_steps is None else float(max_total_steps)
    process = "sequential-lazy" if lazy else "sequential"

    starts2d = xp.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)

    store = TrajectoryStore(starts2d, n, backend=bk) if record else None
    occ = xp.zeros(R * n, dtype=bool)
    steps2d = xp.zeros((R, m), dtype=np.int64)
    settled2d = xp.full((R, m), -1, dtype=np.int64)
    current = xp.zeros(R, dtype=np.int64)  # walking particle per repetition

    # release chain from particle 0: instantly settle vacant starts
    live_list, pos_list = [], []
    for r in range(R):
        walker = instant_settle_chain(
            occ[r * n : (r + 1) * n], starts2d[r], 0, steps2d[r], settled2d[r]
        )
        if walker < m:
            current[r] = walker
            live_list.append(r)
            pos_list.append(starts2d[r, walker])
    live = bk.asarray(live_list, dtype=np.int64)
    pos = bk.asarray(pos_list, dtype=np.int64)

    streams = _sequential_streams(gens, plan.stream_budget_doubles, backend=bk)
    block = streams.block
    streams.fill(live_list)
    buf_flat = streams.flat
    # every live repetition consumes exactly one uniform per tick, so a
    # single shared cursor serves all buffers
    cursor = 0
    base = live * block
    vert_off = live * n
    pstep = xp.zeros(live.size, dtype=np.int64)  # current particle's step count
    adj = None  # built lazily when the finisher engages
    kernel = neighbor_kernel(g)
    degrees_g = g.degrees
    compiled = kern.compiled and bk.exact_bitstream
    fused = kern.stepper(g) if compiled else None
    csr = csr_arrays(g) if compiled else None
    minw = kern.min_width  # narrow ticks keep the numpy expressions
    fin_kern = (
        kern
        if compiled and csr is not None and use_default_rule and store is None
        else None
    )
    ticks = 0

    while live.size:
        if 0 < live.size <= tail_total:
            # ---- scalar tail finisher: with this few live repetitions
            # the lock-step tick costs more than the serial micro-loop;
            # finish each straggler on its own stream, then land its
            # generator on the serial fetch grid.
            if adj is None and fin_kern is None:
                adj = g.adjacency_lists()
            for i in range(live.size):
                r = int(live[i])
                tail = streams.tail(r, cursor)
                if fin_kern is not None:
                    # compiled micro-loop (walk + settle + release chain
                    # in one pass); same fetch cadence via take_block, so
                    # the consumed count lands on the serial grid as the
                    # Python loop's would
                    consumed = fin_kern.finish_sequential(
                        csr[0], csr[1],
                        occ[r * n : (r + 1) * n],
                        starts2d[r],
                        tail,
                        walker=int(current[r]),
                        pos=int(pos[i]),
                        pstep=int(pstep[i]),
                        total=ticks,
                        lazy=lazy,
                        budget=budget,
                        limit_msg=(
                            "sequential IDLA exceeded "
                            f"max_total_steps={max_total_steps}"
                        ),
                        steps_row=steps2d[r],
                        settled_row=settled2d[r],
                    )
                else:
                    consumed = _finish_sequential_rep(
                        adj,
                        occ[r * n : (r + 1) * n],
                        starts2d[r],
                        int(current[r]),
                        int(pos[i]),
                        int(pstep[i]),
                        tail,
                        lazy=lazy,
                        use_default_rule=use_default_rule,
                        rule=rule,
                        total=ticks,
                        budget=budget,
                        max_total_steps=max_total_steps,
                        steps_row=steps2d[r],
                        settled_row=settled2d[r],
                        traj_rows=store.handoff(r)
                        if store is not None
                        else None,
                    )
                streams.align_to_serial(r, consumed, tail)
            break
        if cursor == block:
            streams.fill(live.tolist())
            cursor = 0
        u = buf_flat[base + cursor]
        cursor += 1
        ticks += 1
        pstep += 1
        if ticks > budget:
            raise RuntimeError(
                f"sequential IDLA exceeded max_total_steps={max_total_steps}"
            )
        if lazy:
            move = u >= 0.5
            ustep = 2.0 * (u - 0.5)
            if fused is not None and pos.size >= minw:
                new = fused(pos, ustep)
            else:
                new = neighbor_step(kernel, degrees_g, pos, ustep, xp=xp)
            pos = xp.where(move, new, pos)
            settling = move & ~occ[vert_off + pos]
        else:
            if fused is not None and pos.size >= minw:
                pos = fused(pos, u)
            else:
                pos = neighbor_step(kernel, degrees_g, pos, u, xp=xp)
            settling = ~occ[vert_off + pos]
        if store is not None:
            # each live repetition's walker appends its post-tick position
            # (holds included) — the serial record shape
            store.append(live, current[live], pos)
        if not settling.any():
            continue
        idx = bk.flatnonzero(settling)
        if not use_default_rule:
            idx = idx[
                [bool(rule(int(pstep[i]), int(pos[i]), True)) for i in idx]
            ]
            if idx.size == 0:
                continue
        finished = []
        for i in idx:
            r, v = int(live[i]), int(pos[i])
            occ_r = occ[r * n : (r + 1) * n]
            occ_r[v] = True
            steps2d[r, current[r]] = pstep[i]
            settled2d[r, current[r]] = v
            walker = instant_settle_chain(
                occ_r, starts2d[r], current[r] + 1, steps2d[r], settled2d[r]
            )
            if walker == m:
                # every live repetition has consumed `ticks` doubles
                streams.align_to_serial(r, ticks)
                finished.append(i)
            else:
                current[r] = walker
                pos[i] = starts2d[r, walker]
                pstep[i] = 0
        if finished:
            keep = xp.ones(live.size, dtype=bool)
            keep[finished] = False
            live, pos, pstep = live[keep], pos[keep], pstep[keep]
            base = live * block
            vert_off = live * n

    if store is None:
        traj_all = None
    elif record == "arrays":
        traj_all = store.finalize_arrays()
    else:
        traj_all = store.finalize()
    results = []
    for r in range(R):
        steps_r = steps2d[r].copy()
        results.append(
            DispersionResult(
                process=process,
                graph_name=g.name,
                n=n,
                origin=int(starts2d[r, 0]),
                dispersion_time=int(steps_r.max()),
                total_steps=int(steps_r.sum()),
                steps=steps_r,
                settled_at=settled2d[r].copy(),
                settle_order=xp.arange(m, dtype=np.int64),
                trajectories=None if traj_all is None else traj_all[r],
                num_particles=None if m == n else m,
            )
        )
    return results
