"""The paper's coupling algorithms: StP, PtS and PtU_R (Algorithms 1-3).

All three walk a pointer through the block in a fixed reading order and
apply a Cut & Paste at every first occurrence of a vertex label:

* :func:`sequential_to_parallel` (StP, Algorithm 1) reads in **parallel
  order** (column-major) and maps ``Seq^m_v -> Par^m_v``;
* :func:`parallel_to_sequential` (PtS, Algorithm 2) reads in **sequential
  order** (row-major) and maps ``Par^m_v -> Seq^m_v``;
* :func:`parallel_to_uniform` (PtU_R, Algorithm 3) reads rows according to
  a schedule ``R`` (the uniform process's particle choices) and maps
  ``Par^m_v -> Unif^m_{R,v}``.

Each is a bijection on blocks of fixed total length (Lemma 4.4 /
Theorem 4.7) and none increases the number of distinct row-content
multisets — the key quantitative facts (Lemma 4.6: StP cannot shrink the
longest row) are re-verified in the test-suite and exercised by
``benchmarks/bench_cut_paste.py``.

Reading-order variants
----------------------
Theorem 4.2's proof runs PtS on a row-permuted block ``σ(L)``; both StP
and PtS accept an optional ``order`` argument (a permutation of the row
indices, with row 0 — the origin particle — conventionally first) to
support that construction.
"""

from __future__ import annotations

from typing import Sequence


from repro.core.blocks import Block

__all__ = [
    "sequential_to_parallel",
    "parallel_to_sequential",
    "parallel_to_uniform",
    "UniformReadResult",
]


def _resolve_order(block: Block, order) -> list[int]:
    if order is None:
        return list(range(block.n))
    order = [int(i) for i in order]
    if sorted(order) != list(range(block.n)):
        raise ValueError("order must be a permutation of all row indices")
    return order


def sequential_to_parallel(block: Block, order=None, *, copy: bool = True) -> Block:
    """StP (Algorithm 1): transform a sequential block into a parallel block.

    Reads cells column-by-column (rows within a column in ``order``),
    applying ``CP`` at each first occurrence.  The input must satisfy the
    sequential property (3); the output satisfies the parallel property
    (4) with the same total length (Lemma 4.4).

    Parameters
    ----------
    order:
        Optional permutation fixing the row-priority inside each column —
        the paper's σ-modified StP (§4.1, proof of Theorem 4.2).
    copy:
        Work on a copy (default) or mutate ``block`` in place.
    """
    L = block.copy() if copy else block
    rows = L.rows
    n = L.n
    perm = _resolve_order(L, order)
    seen: set[int] = set()
    t = 0
    while len(seen) < n:
        progressed = False
        for i in perm:
            row = rows[i]
            if t >= len(row):
                continue
            progressed = True
            v = row[t]
            if v not in seen:
                seen.add(v)
                L.cut_paste(i, t)
        if not progressed and len(seen) < n:
            raise ValueError(
                "ran out of cells before all vertices were read — "
                "input is not a valid IDLA block"
            )
        t += 1
    return L


def parallel_to_sequential(block: Block, order=None, *, copy: bool = True) -> Block:
    """PtS (Algorithm 2): transform a parallel block into a sequential block.

    Reads cells row-by-row (rows in ``order``); within a row, scans left to
    right skipping seen labels and applies ``CP`` at the first unseen one,
    which ends the row (its tail is pasted elsewhere).  Every row yields
    exactly one new vertex.
    """
    L = block.copy() if copy else block
    rows = L.rows
    perm = _resolve_order(L, order)
    seen: set[int] = set()
    for i in perm:
        row = rows[i]
        t = 0
        while t < len(row):
            v = row[t]
            if v not in seen:
                seen.add(v)
                L.cut_paste(i, t)
                break
            t += 1
        else:
            raise ValueError(
                f"row {i} contains no unseen vertex — input is not a valid "
                "parallel block"
            )
    return L


class UniformReadResult:
    """Output of :func:`parallel_to_uniform`.

    Attributes
    ----------
    block:
        The transformed (R-uniform) block.
    read_ticks:
        ``read_ticks[i][j]`` is the tick at which cell ``(i, j)`` of the
        *output* block was read; tick 0 reads every ``(i, 0)``.  The
        uniform process's dispersion-by-ticks is ``max_i read_ticks[i][-1]``.
    """

    __slots__ = ("block", "read_ticks")

    def __init__(self, block: Block, read_ticks: list[list[int]]):
        self.block = block
        self.read_ticks = read_ticks

    @property
    def settle_ticks(self) -> list[int]:
        """Tick at which each particle settled."""
        return [ticks[-1] for ticks in self.read_ticks]

    @property
    def dispersion_ticks(self) -> int:
        """Tick of the last settlement (Uniform-IDLA dispersion time)."""
        return max(self.settle_ticks)


def parallel_to_uniform(
    block: Block, schedule: Sequence[int], *, copy: bool = True
) -> UniformReadResult:
    """PtU_R (Algorithm 3): transform a parallel block into an R-uniform block.

    Implements the *head-reading* model that also underlies the paper's
    continuous-time variant PtU_C (§4.3): each row carries a read head; at
    tick ``t`` (``t >= 1``) the head of row ``schedule[t-1]`` advances one
    unread cell (no-op if the row is exhausted); tick 0 reads all cells
    ``(i, 0)`` in row order, matching the paper's ``T(i, 0) = 0``.  A Cut &
    Paste fires at each first occurrence; cut tails land in the unread
    region of their recipient row and are later read on that row's
    schedule.

    ``schedule`` must be long enough for the reading to finish (i.e. until
    every row's head reaches its endpoint); a ``ValueError`` is raised
    otherwise.  Use :func:`repro.core.uniform.sample_schedule` to draw the
    i.i.d. uniform schedule of the paper's Uniform-IDLA.
    """
    L = block.copy() if copy else block
    rows = L.rows
    n = L.n
    seen: set[int] = set()
    heads = [0] * n
    read_ticks: list[list[int]] = [[] for _ in range(n)]

    # tick 0: every particle is placed at the origin; cells (i, 0) read in
    # row order.  Only row 0's origin cell is a first occurrence.
    for i in range(n):
        v = rows[i][0]
        heads[i] = 1
        read_ticks[i].append(0)
        if v not in seen:
            seen.add(v)
            L.cut_paste(i, 0)

    done = sum(1 for i in range(n) if heads[i] == len(rows[i]))
    tick = 0
    for r in schedule:
        if done == n:
            break
        tick += 1
        i = int(r)
        if not 0 <= i < n:
            raise ValueError(f"schedule entry {r} out of range")
        row = rows[i]
        h = heads[i]
        if h >= len(row):
            continue  # settled particle: wasted tick
        v = row[h]
        heads[i] = h + 1
        read_ticks[i].append(tick)
        if v not in seen:
            seen.add(v)
            L.cut_paste(i, h)
        if heads[i] == len(rows[i]):
            done += 1
    if done != n:
        raise ValueError(
            f"schedule exhausted after {tick} ticks with {n - done} rows unread"
        )
    return UniformReadResult(L, read_ticks)
