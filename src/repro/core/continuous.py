"""Continuous-time IDLA variants (§4.3).

* :func:`ctu_idla` — the continuous-time Uniform-IDLA (CTU-IDLA): every
  unsettled particle carries a rate-1 exponential clock and takes one step
  per ring.  Simulated with the Gillespie reduction: with ``k`` unsettled
  particles the next ring is ``Exp(k)`` and the ringer is uniform.
  Theorem 4.8: ``τ_ctu = (1 + o(1)) τ_par``.
* :func:`continuous_sequential_idla` — Poissonised Sequential-IDLA: jump
  times are a rate-1 Poisson process, sampled by running the discrete
  process and attaching ``Gamma(ρ_i, 1)`` durations per particle (the
  paper's own sampling recipe).  ``τ_c-seq = (1 + o(1)) τ_seq``.

Draw contract
-------------
``ctu_idla`` consumes nothing but uniform doubles, three per ring, from a
block-buffered :class:`repro.utils.rng.UniformStream`:

1. the exponential waiting time, by inversion — ``-log1p(-u) / (k·rate)``;
2. the ringer — slot ``min(int(u·k), k-1)`` of the unsettled pool;
3. the walk step — neighbour ``min(int(u·deg), deg-1)``.

Uniform-double streams are chunk-invariant, so
:func:`repro.core.batched_continuous.batched_ctu_idla` replays these draws
bit for bit while advancing many repetitions in lock-step; this serial
driver is the reference oracle it is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.sequential import sequential_idla
from repro.core.settlement import UnsettledPool, settle_vacant_starts_inorder
from repro.graphs.csr import Graph
from repro.utils.rng import UniformStream, as_generator
from repro.walks.continuous import poissonise_steps

__all__ = ["ctu_idla", "continuous_sequential_idla"]


def ctu_idla(
    g: Graph,
    origin=0,
    *,
    rate: float = 1.0,
    seed=None,
    record: bool | str = False,
    num_particles: int | None = None,
) -> DispersionResult:
    """Run one continuous-time Uniform-IDLA realisation.

    ``dispersion_time`` is the continuous time of the last settlement;
    per-particle jump counts live in ``steps`` (their max is the
    longest-walk length, comparable to the Parallel-IDLA via the §4.3
    coupling).  ``rate`` scales every clock (``rate=0.5`` gives the
    mean-2-clock process used in the proof of Theorem 4.3).

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> res = ctu_idla(complete_graph(16), seed=2)
    >>> res.is_complete_dispersion() and res.dispersion_time > 0
    True
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"CTU IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = as_generator(seed)
    starts = resolve_origins(g, origin, m, rng)
    adj = g.adjacency_lists()

    occupied = [False] * n
    steps = [0] * m
    settled_at = np.full(m, -1, dtype=np.int64)
    settle_order: list[int] = []
    settle_clock = np.zeros(m, dtype=np.float64)
    pos = [int(v) for v in starts]
    trajectories: list[list[int]] | None = None
    if record:
        trajectories = [[int(v)] for v in starts]
    # time-0 settlement: vacant starts settle instantly
    pool = UnsettledPool(
        settle_vacant_starts_inorder(occupied, starts, settled_at, settle_order)
    )
    stream = UniformStream(rng)

    clock = 0.0
    k = len(pool)
    denom = k * rate
    while k:
        clock += -stream.log1mu() / denom
        i = int(stream.uniform() * k)
        if i == k:  # floating guard, mirrors the batched np.minimum
            i = k - 1
        p = pool.pick(i)
        nbrs = adj[pos[p]]
        d = len(nbrs)
        j = int(stream.uniform() * d)
        if j == d:
            j = d - 1
        v = nbrs[j]
        pos[p] = v
        steps[p] += 1
        if record:
            trajectories[p].append(v)
        if not occupied[v]:
            occupied[v] = True
            settled_at[p] = v
            settle_order.append(p)
            settle_clock[p] = clock
            pool.remove_at(i)
            k -= 1
            denom = k * rate

    if record == "arrays" and trajectories is not None:
        from repro.core.trajectory import TrajectoryArrays

        trajectories = TrajectoryArrays.from_lists(trajectories)
    steps_arr = np.asarray(steps, dtype=np.int64)
    result = DispersionResult(
        process="ctu",
        graph_name=g.name,
        n=n,
        origin=int(starts[0]),
        dispersion_time=float(clock),
        total_steps=int(steps_arr.sum()),
        steps=steps_arr,
        settled_at=settled_at,
        settle_order=np.asarray(settle_order, dtype=np.int64),
        ticks=float(clock),
        trajectories=trajectories,
        num_particles=None if m == n else m,
    )
    object.__setattr__(result, "settle_clock", settle_clock)
    return result


def continuous_sequential_idla(
    g: Graph,
    origin: int = 0,
    *,
    rate: float = 1.0,
    seed=None,
    record: bool | str = False,
) -> DispersionResult:
    """Run one continuous-time Sequential-IDLA realisation.

    Samples the discrete process, then attaches ``Gamma(ρ_i, 1/rate)``
    holding-time sums — the paper's §4.3 recipe ("sample a discrete time
    IDLA and then consider independent exponential times of mean 1 between
    the jumps").  ``dispersion_time`` is ``max_i`` duration, the time the
    slowest particle took to settle.
    """
    rng = as_generator(seed)
    discrete = sequential_idla(g, origin, seed=rng, record=record)
    durations = poissonise_steps(discrete.steps, rng, rate=rate)
    result = DispersionResult(
        process="c-sequential",
        graph_name=g.name,
        n=g.n,
        origin=discrete.origin,
        dispersion_time=float(durations.max()),
        total_steps=discrete.total_steps,
        steps=discrete.steps,
        settled_at=discrete.settled_at,
        settle_order=discrete.settle_order,
        ticks=float(durations.max()),
        trajectories=discrete.trajectories,
    )
    object.__setattr__(result, "durations", durations)
    return result
