"""Core dispersion processes — the paper's primary contribution.

Drivers::

    sequential_idla(g, origin)      # §1, one particle at a time
    parallel_idla(g, origin)        # §1, synchronous rounds
    uniform_idla(g, origin)         # §4.2, random unsettled particle per tick
    ctu_idla(g, origin)             # §4.3, rate-1 exponential clocks
    continuous_sequential_idla(...) # §4.3, Poissonised sequential

batched Monte-Carlo variants (all repetitions advanced in lock-step,
bit-identical to looping the serial drivers over the same seeds)::

    batched_parallel_idla(g, origin, reps=R)
    batched_sequential_idla(g, origin, reps=R)
    batched_uniform_idla(g, origin, reps=R)
    batched_ctu_idla(g, origin, reps=R)
    batched_continuous_sequential_idla(g, origin, reps=R)

plus the block/Cut & Paste machinery of §4 (``Block``,
``sequential_to_parallel``, ``parallel_to_sequential``,
``parallel_to_uniform``) and the alternative settling rules of
Proposition A.1.
"""

from repro.core.aggregate import (
    ShapeStats,
    aggregate_after,
    euclidean_shape_stats,
    grid_coordinates,
)
from repro.core.algorithms import (
    UniformReadResult,
    parallel_to_sequential,
    parallel_to_uniform,
    sequential_to_parallel,
)
from repro.core.anytime import (
    AdaptiveInfo,
    Precision,
    TauAccumulator,
    anytime_halfwidth,
)
from repro.core.batched import batched_parallel_idla, batched_sequential_idla
from repro.core.batched_continuous import (
    batched_continuous_sequential_idla,
    batched_ctu_idla,
    batched_uniform_idla,
)
from repro.core.budget import (
    BudgetPlan,
    StateBudget,
    parse_state_budget,
    plan_state,
)
from repro.core.origins import resolve_origins
from repro.core.blocks import (
    Block,
    is_valid_parallel_block,
    is_valid_sequential_block,
    is_valid_uniform_block,
)
from repro.core.continuous import continuous_sequential_idla, ctu_idla
from repro.core.parallel import parallel_idla
from repro.core.results import DispersionResult
from repro.core.sequential import sequential_idla
from repro.core.stopping_rules import DelayedRule, HairRule, StoppingRule, standard_rule
from repro.core.trajectory import TrajectoryArrays
from repro.core.uniform import sample_schedule, uniform_idla

__all__ = [
    "DispersionResult",
    "sequential_idla",
    "parallel_idla",
    "uniform_idla",
    "ctu_idla",
    "continuous_sequential_idla",
    "batched_parallel_idla",
    "batched_sequential_idla",
    "batched_ctu_idla",
    "batched_uniform_idla",
    "batched_continuous_sequential_idla",
    "StateBudget",
    "BudgetPlan",
    "parse_state_budget",
    "plan_state",
    "TrajectoryArrays",
    "Block",
    "is_valid_sequential_block",
    "is_valid_parallel_block",
    "is_valid_uniform_block",
    "sequential_to_parallel",
    "parallel_to_sequential",
    "parallel_to_uniform",
    "UniformReadResult",
    "StoppingRule",
    "standard_rule",
    "HairRule",
    "DelayedRule",
    "Precision",
    "TauAccumulator",
    "AdaptiveInfo",
    "anytime_halfwidth",
    "sample_schedule",
    "aggregate_after",
    "euclidean_shape_stats",
    "grid_coordinates",
    "ShapeStats",
    "resolve_origins",
]
