"""Parallel-IDLA driver.

All particles start simultaneously (classically: ``n`` particles at one
origin, one of which settles there instantly); every remaining particle
performs one random-walk step per round, and whenever one or more
particles stand on a vacant vertex, the highest-priority one settles
there (§1).  The dispersion time is the round in which the process
completes.

§6.2 variants supported: ``num_particles = m`` — for ``m < n`` the process
ends when all particles settle; for ``m > n`` it ends when every vertex is
occupied (surplus particles report ``settled_at = -1``) — and per-particle
origins (``origin="uniform"`` or an explicit array), with a settlement
pass at round 0 covering vacant starts.

Implementation
--------------
The round body is vectorised over the unsettled particles (one
:class:`~repro.walks.engine.WalkEngine` step + a lexsort-based settlement
resolution).  Long tails — e.g. the cycle spends ``Θ(n² log n)`` rounds
with a handful of stragglers — would be dominated by NumPy call overhead,
so below ``scalar_threshold`` active particles the driver switches to a
plain-Python micro-loop with block-buffered uniforms (the same hybrid
strategy the HPC guide recommends after profiling: vectorise the wide
phase, specialise the narrow phase).
"""

from __future__ import annotations

import numpy as np

from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.settlement import select_settlers, settle_vacant_starts
from repro.core.stopping_rules import StoppingRule, standard_rule
from repro.graphs.csr import Graph
from repro.utils.rng import as_generator
from repro.walks.engine import WalkEngine

__all__ = ["parallel_idla"]

_BLOCK = 16384


def parallel_idla(
    g: Graph,
    origin=0,
    *,
    lazy: bool = False,
    seed=None,
    record: bool | str = False,
    tie_break: str = "index",
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    scalar_threshold: int = 16,
    max_rounds: float | None = None,
) -> DispersionResult:
    """Run one Parallel-IDLA realisation.

    Parameters
    ----------
    origin:
        Vertex id (classic), ``"uniform"``, or an array of per-particle
        starts.
    tie_break:
        ``"index"`` — the paper's default (smallest particle index wins a
        vacant vertex); ``"random"`` — a priority permutation σ drawn once
        at the start, the variant used in Theorem 4.2's proof.  By
        exchangeability of the i.i.d. walks the dispersion-time law is
        identical (ablation-benched).
    rule:
        Settling rule for walking particles (default: first vacant
        vertex); vacant starts settle at round 0 regardless.
    num_particles:
        ``m`` (default ``n``); see module docstring for the ``m ≠ n``
        semantics.
    scalar_threshold:
        Active-particle count below which the scalar micro-loop takes over.
    record:
        Keep trajectories; the block of a classic ``"index"``-run satisfies
        the parallel property (4) (validated in tests).

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> res = parallel_idla(cycle_graph(16), seed=3)
    >>> res.is_complete_dispersion()
    True
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if m < 1:
        raise ValueError(f"num_particles must be >= 1, got {m}")
    if tie_break not in ("index", "random"):
        raise ValueError(f"tie_break must be 'index' or 'random', got {tie_break!r}")
    rng = as_generator(seed)
    starts = resolve_origins(g, origin, m, rng)
    use_default_rule = rule is None or rule is standard_rule
    budget = float("inf") if max_rounds is None else float(max_rounds)

    if tie_break == "index":
        priority = np.arange(m, dtype=np.int64)
    else:
        # the paper's σ fixes σ(1) = 1: particle 0 keeps top priority so
        # the origin is settled by the same particle in both variants
        priority = np.empty(m, dtype=np.int64)
        priority[0] = 0
        priority[1:] = 1 + rng.permutation(m - 1)

    eng = WalkEngine(g, rng)
    adj = g.adjacency_lists()  # scalar phase
    occupied = np.zeros(n, dtype=bool)
    free_count = n
    steps = np.zeros(m, dtype=np.int64)
    settled_at = np.full(m, -1, dtype=np.int64)
    settle_order: list[int] = []
    trajectories: list[list[int]] | None = None
    if record:
        trajectories = [[int(v)] for v in starts]

    # ------------------------------------------------------------- round 0
    # Settlement pass over the starting positions: per vacant vertex, the
    # best-priority particle standing on it settles (classically this is
    # particle 0 at the origin).
    pos_all = starts.copy()
    winners = settle_vacant_starts(occupied, pos_all, priority)
    if winners.size:
        occupied[pos_all[winners]] = True
        free_count -= winners.size
        settled_at[winners] = pos_all[winners]
        for p in winners[np.argsort(priority[winners])]:
            settle_order.append(int(p))
    unsettled_mask = settled_at < 0
    active = np.flatnonzero(unsettled_mask).astype(np.int64)
    pos = pos_all[active].copy()
    t = 0

    # ------------------------------------------------------------ wide phase
    while active.size > scalar_threshold and free_count > 0:
        t += 1
        if t > budget:
            raise RuntimeError(f"parallel IDLA exceeded max_rounds={max_rounds}")
        if lazy:
            pos = eng.step_lazy(pos)
        else:
            pos = eng.step(pos, out=pos)
        if record:
            for p, v in zip(active, pos):
                trajectories[p].append(int(v))
        vac = ~occupied[pos]
        if not use_default_rule:
            allowed = np.array(
                [bool(rule(t, int(v), True)) for v in pos], dtype=bool
            )
            vac &= allowed
        cand = np.flatnonzero(vac)
        if cand.size:
            winners = cand[select_settlers(pos[cand], priority[active[cand]])]
            # winners are indices into the active arrays
            w_particles = active[winners]
            w_verts = pos[winners]
            occupied[w_verts] = True
            free_count -= winners.size
            steps[w_particles] = t
            settled_at[w_particles] = w_verts
            for p in w_particles[np.argsort(priority[w_particles])]:
                settle_order.append(int(p))
            keep = np.ones(active.size, dtype=bool)
            keep[winners] = False
            active = active[keep]
            pos = pos[keep]

    # ---------------------------------------------------------- narrow phase
    act = [int(p) for p in active]
    cur = [int(v) for v in pos]
    occ = occupied.tolist()
    buf = rng.random(_BLOCK)
    bi = 0
    while act and free_count > 0:
        t += 1
        if t > budget:
            raise RuntimeError(f"parallel IDLA exceeded max_rounds={max_rounds}")
        # step every active particle
        for j in range(len(act)):
            if bi == _BLOCK:
                buf = rng.random(_BLOCK)
                bi = 0
            u = buf[bi]
            bi += 1
            if lazy:
                if u < 0.5:
                    if record:
                        trajectories[act[j]].append(cur[j])
                    continue
                u = 2.0 * (u - 0.5)
            nbrs = adj[cur[j]]
            cur[j] = nbrs[int(u * len(nbrs))]
            if record:
                trajectories[act[j]].append(cur[j])
        # settle: group candidates by vertex, min priority wins
        best: dict[int, int] = {}
        for j in range(len(act)):
            v = cur[j]
            if occ[v]:
                continue
            if not use_default_rule and not rule(t, v, True):
                continue
            b = best.get(v)
            if b is None or priority[act[j]] < priority[act[b]]:
                best[v] = j
        if best:
            winners = sorted(best.values(), key=lambda j: priority[act[j]])
            for j in winners:
                p, v = act[j], cur[j]
                occ[v] = True
                free_count -= 1
                steps[p] = t
                settled_at[p] = v
                settle_order.append(p)
            drop = set(best.values())
            act = [p for j, p in enumerate(act) if j not in drop]
            cur = [v for j, v in enumerate(cur) if j not in drop]

    # Surplus particles (m > n) never settle: they walked until the last
    # vertex filled, so they performed t steps each.
    if act:
        for p in act:
            steps[p] = t

    if record == "arrays" and trajectories is not None:
        from repro.core.trajectory import TrajectoryArrays

        trajectories = TrajectoryArrays.from_lists(trajectories)
    settled_steps = steps[settled_at >= 0]
    dispersion = int(settled_steps.max()) if settled_steps.size else 0
    return DispersionResult(
        process="parallel-lazy" if lazy else "parallel",
        graph_name=g.name,
        n=n,
        origin=int(starts[0]),
        dispersion_time=dispersion,
        total_steps=int(steps.sum()),
        steps=steps,
        settled_at=settled_at,
        settle_order=np.asarray(settle_order, dtype=np.int64),
        trajectories=trajectories,
        num_particles=None if m == n else m,
    )
