"""Origin-specification helper shared by the process drivers.

The classic processes start every particle at one fixed origin; §6.2 of
the paper suggests studying uniformly random origins (cf. the
uniform-starting-points IDLA of Duminil-Copin et al. cited in §1.3).
Drivers accept:

* an ``int`` — all particles start there (classic);
* ``"uniform"`` — i.i.d. uniform random start per particle;
* a sequence of ``m`` vertex ids — explicit per-particle starts.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.utils.validation import check_index

__all__ = ["resolve_origins"]


def resolve_origins(g: Graph, origin, num_particles: int, rng) -> np.ndarray:
    """Normalise an origin spec into an ``(m,)`` array of start vertices."""
    n = g.n
    if isinstance(origin, str):
        if origin != "uniform":
            raise ValueError(f"origin string must be 'uniform', got {origin!r}")
        return rng.integers(0, n, size=num_particles, dtype=np.int64)
    if np.isscalar(origin) or isinstance(origin, (int, np.integer)):
        v = check_index("origin", origin, n)
        return np.full(num_particles, v, dtype=np.int64)
    arr = np.asarray(list(origin), dtype=np.int64)
    if arr.shape != (num_particles,):
        raise ValueError(
            f"origins array must have length {num_particles}, got {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ValueError("origins contain out-of-range vertices")
    return arr
