"""Result container shared by every dispersion-process driver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block
from repro.core.trajectory import TrajectoryArrays

__all__ = ["DispersionResult"]


@dataclass(frozen=True)
class DispersionResult:
    """Outcome of one dispersion-process realisation.

    Attributes
    ----------
    process:
        ``"sequential"``, ``"parallel"``, ``"uniform"``, ``"ctu"`` …
    graph_name, n, origin:
        Identification of the instance.
    dispersion_time:
        The paper's ``τ``: maximum number of steps performed by any
        particle (an ``int`` for discrete processes; a ``float`` wall-clock
        for continuous-time ones).
    total_steps:
        ``Σ_i steps_i`` — equidistributed across scheduling protocols
        (Theorem 4.1), making it the key coupling diagnostic.
    steps:
        Per-particle jump counts, shape ``(n,)``; ``steps[0] == 0`` (the
        origin particle settles instantly).
    settled_at:
        ``settled_at[i]`` is the vertex where particle ``i`` settled — a
        permutation of ``V``.
    settle_order:
        Particle indices in order of settlement (ties resolved by the
        process's own rule).
    ticks:
        Scheduling-clock duration where it differs from ``dispersion_time``
        (Uniform-IDLA ticks, CTU continuous time); ``None`` otherwise.
    trajectories:
        Full per-particle vertex sequences when the driver was called with
        ``record=True`` (``list[list[int]]``) or ``record="arrays"``
        (:class:`~repro.core.trajectory.TrajectoryArrays`); ``None``
        otherwise.  The two shapes compare equal by content.
    num_particles:
        Number of particles ``m`` (§6.2 variant); ``None`` means the
        classic ``m = n``.  With ``m > n`` (Parallel-IDLA only) the
        particles that never settle carry ``settled_at = -1``.
    """

    process: str
    graph_name: str
    n: int
    origin: int
    dispersion_time: float
    total_steps: int
    steps: np.ndarray
    settled_at: np.ndarray
    settle_order: np.ndarray
    ticks: float | None = None
    trajectories: list[list[int]] | TrajectoryArrays | None = field(
        default=None, repr=False
    )
    num_particles: int | None = None

    @property
    def m(self) -> int:
        """Particle count (defaults to ``n``)."""
        return self.n if self.num_particles is None else self.num_particles

    def __post_init__(self):
        if self.steps.shape != (self.m,):
            raise ValueError(f"steps must have shape ({self.m},)")
        if self.settled_at.shape != (self.m,):
            raise ValueError(f"settled_at must have shape ({self.m},)")

    def block(self) -> Block:
        """Block representation (requires ``record=True`` at simulation time)."""
        if self.trajectories is None:
            raise ValueError(
                "trajectories were not recorded; rerun the driver with record=True"
            )
        return Block(self.trajectories)

    def trajectory_arrays(self) -> TrajectoryArrays:
        """Trajectories as a zero-copy ragged array container.

        The array-native view for large-``n`` analyses: ``row(p)`` is an
        ndarray view of particle ``p``'s vertex sequence, no Python ints.
        Free when the driver ran with ``record="arrays"``; under plain
        ``record=True`` the list-of-lists shape is converted (one bulk
        copy).  Raises when trajectories were not recorded at all.
        """
        if self.trajectories is None:
            raise ValueError(
                "trajectories were not recorded; rerun the driver with "
                "record=True or record='arrays'"
            )
        if isinstance(self.trajectories, TrajectoryArrays):
            return self.trajectories
        return TrajectoryArrays.from_lists(self.trajectories)

    def is_complete_dispersion(self) -> bool:
        """Settlement is as complete as ``m`` vs ``n`` allows.

        ``m = n``: every vertex settled exactly once.  ``m < n``: all ``m``
        particles settled, at distinct vertices.  ``m > n``: every vertex
        occupied; exactly ``n`` particles settled.
        """
        settled = self.settled_at[self.settled_at >= 0]
        expected = min(self.m, self.n)
        return settled.size == expected and np.unique(settled).size == expected

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.process} IDLA on {self.graph_name} (n={self.n}, origin="
            f"{self.origin}): dispersion={self.dispersion_time:g}, "
            f"total_steps={self.total_steps}"
        )
