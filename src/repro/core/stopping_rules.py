"""Settling rules — when a particle standing on a vacant vertex settles.

The standard IDLA rule ρ ("settle at the first vacant vertex") is the
default everywhere.  Proposition A.1 shows IDLA violates a least-action
principle: on the clique-with-a-hair, the modified rule

    ``ρ̃ = inf{ t : (t ≥ 3 n log n  or  X(t) = v*) and site vacant }``

— i.e. refuse to settle anywhere but the hair tip ``v*`` until time
``3 n log n`` — *reduces* the dispersion time from ``Ω(n²)`` to
``O(n log n)`` despite individual walks taking more steps.

(The paper's display writes ``X(t) = v``; with ``v`` the hair base the
rule could never settle the tip early, contradicting the proof's "the hair
is covered by time 3 n log n", so we implement the tip reading ``v*`` and
note the typo here.)

A rule is a callable ``rule(t, vertex, vacant) -> bool`` receiving the
particle's step count ``t`` since its own start, its current vertex, and
whether that vertex is vacant.  Rules must never return True on an
occupied vertex; drivers re-check vacancy defensively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StoppingRule", "standard_rule", "HairRule", "DelayedRule"]


class StoppingRule:
    """Base class: the standard greedy rule ρ."""

    def __call__(self, t: int, vertex: int, vacant: bool) -> bool:
        return vacant

    def describe(self) -> str:
        return "standard (settle at first vacant vertex)"


#: Module-level singleton of the standard rule.
standard_rule = StoppingRule()


@dataclass
class HairRule(StoppingRule):
    """Proposition A.1's rule ρ̃ for hairy cliques.

    Parameters
    ----------
    special_vertex:
        The hair tip ``v*`` — the only vertex where early settling is
        allowed.
    threshold:
        Step count after which the rule reverts to greedy settling; the
        paper uses ``3 n log n``.
    """

    special_vertex: int
    threshold: float

    def __call__(self, t: int, vertex: int, vacant: bool) -> bool:
        return vacant and (t >= self.threshold or vertex == self.special_vertex)

    def describe(self) -> str:
        return (
            f"hair rule (settle only at v*={self.special_vertex} until "
            f"t >= {self.threshold:g})"
        )

    @classmethod
    def for_clique_with_hair(cls, n: int) -> "HairRule":
        """Construct ρ̃ with the paper's parameters for
        :func:`repro.graphs.clique_with_hair` (hair tip is vertex ``n-1``)."""
        return cls(special_vertex=n - 1, threshold=3.0 * n * np.log(n))


@dataclass
class DelayedRule(StoppingRule):
    """Refuse settling anywhere for the first ``delay`` steps.

    A generic perturbation used in the least-action ablation bench: walks
    perform extra steps, and Proposition A.1's point is that this can
    *decrease* the dispersion time on some graphs.
    """

    delay: int

    def __call__(self, t: int, vertex: int, vacant: bool) -> bool:
        return vacant and t >= self.delay

    def describe(self) -> str:
        return f"delayed (no settling before step {self.delay})"
