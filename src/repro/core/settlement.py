"""Settlement resolution shared by the dispersion drivers.

Every IDLA variant resolves the same two situations:

* **competition** — several unsettled particles stand on vacant vertices
  in the same round and, per vertex, the best-priority one settles
  (:func:`select_settlers`, the lexsort kernel of the Parallel-IDLA round
  body and its batched cross-repetition generalisation);
* **vacant starts** — a particle whose *starting* vertex is vacant
  settles instantly at time 0, regardless of the settling rule
  (:func:`settle_vacant_starts` for the synchronous round-0 pass,
  :func:`instant_settle_chain` for the one-at-a-time sequential release).

Keeping these here guarantees the serial drivers in
:mod:`repro.core.parallel` / :mod:`repro.core.sequential` and the batched
drivers in :mod:`repro.core.batched` settle identically — a precondition
for the bit-identical replay the batched subsystem promises.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "select_settlers",
    "settle_vacant_starts",
    "chunked_vacancies",
    "instant_settle_chain",
    "settle_vacant_starts_inorder",
    "UnsettledPool",
]


def select_settlers(keys: np.ndarray, priority: np.ndarray, xp=np) -> np.ndarray:
    """Pick, per key, the candidate with the smallest priority.

    Parameters
    ----------
    keys:
        Integer cell id per candidate — a vertex id in the serial drivers,
        ``repetition * n + vertex`` in the batched ones (namespacing keeps
        repetitions from competing with each other).
    priority:
        Priority per candidate; the smallest value wins its cell.

    Returns
    -------
    Indices into the candidate arrays of the winners, one per distinct
    key, ordered by key.

    Examples
    --------
    >>> select_settlers(np.array([4, 2, 4]), np.array([1, 0, 0])).tolist()
    [1, 2]
    """
    order = xp.lexsort((priority, keys))
    sorted_keys = keys[order]
    first = xp.ones(order.size, dtype=bool)
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return order[first]


def settle_vacant_starts(
    occupied: np.ndarray, starts: np.ndarray, priority: np.ndarray, backend=None
) -> np.ndarray:
    """Round-0 pass: per vacant start vertex, the best-priority particle wins.

    ``occupied`` is *not* modified — the caller applies the settlement so
    it can also update its own bookkeeping (free counts, settle order).

    Returns the winning particle indices (empty when every start is
    already occupied).
    """
    from repro.backends import get_backend

    bk = get_backend(backend)
    candidates = bk.flatnonzero(~occupied[starts])
    if candidates.size == 0:
        return candidates
    winners = select_settlers(
        starts[candidates], priority[candidates], xp=bk.xp
    )
    return candidates[winners]


def chunked_vacancies(
    occupied: np.ndarray,
    rep_off: np.ndarray,
    pos: np.ndarray,
    chunk: int | None = None,
    backend=None,
    kernels=None,
) -> np.ndarray:
    """Indices of particles standing on vacant cells, probing in chunks.

    The unchunked probe of the batched parallel round allocates two
    walker-sized transients (``occupied[rep_off + pos]`` and its negation)
    before reducing to the usually-small candidate set.  Under a
    :class:`repro.core.budget.StateBudget` the round body is sliced into
    ``chunk``-sized pieces, so the probe must be too — per chunk the
    gather, the negation and the flatnonzero are chunk-sized, and the
    candidate indices (offset back into walker coordinates) concatenate
    in ascending order, exactly what the global ``flatnonzero`` returns.

    ``chunk=None`` (or a chunk covering all walkers) takes the one-shot
    path unchanged; a compiled :class:`repro.kernels.KernelSet` replaces
    that path with a single-pass probe (no walker-sized transients) whose
    candidate order is identical by construction.
    """
    from repro.backends import get_backend

    bk = get_backend(backend)
    if chunk is None or chunk >= pos.size:
        if (
            kernels is not None
            and kernels.compiled
            and pos.size >= kernels.min_width
            and bk.exact_bitstream
        ):
            return kernels.vacant_candidates(occupied, rep_off, pos)
        return bk.flatnonzero(occupied[rep_off + pos] == 0)
    parts = []
    for a in range(0, pos.size, chunk):
        sl = slice(a, min(a + chunk, pos.size))
        hit = bk.flatnonzero(occupied[rep_off[sl] + pos[sl]] == 0)
        if hit.size:
            hit += a
            parts.append(hit)
    if not parts:
        return bk.xp.empty(0, dtype=np.intp)
    return bk.xp.concatenate(parts)


def settle_vacant_starts_inorder(occupied, starts, settled_at, settle_order) -> list:
    """Round-0 pass of the tick-scheduled processes, in particle order.

    The Uniform-IDLA and CTU-IDLA drivers settle every particle standing
    on a vacant start at time 0, scanning particles in index order (so per
    duplicated start vertex the lowest particle index wins — the same
    winners :func:`settle_vacant_starts` picks, but with the settle order
    the tick-scheduled drivers report).  ``occupied`` (list or bool array)
    and ``settled_at`` are updated in place; winners are appended to
    ``settle_order``.

    Returns the list of particles still unsettled, ascending — the initial
    contents of the scheduler's :class:`UnsettledPool`.  Shared by the
    serial drivers and their batched lock-step replicas (which call it
    once per repetition), so both resolve time 0 identically.
    """
    unsettled = []
    for p, v in enumerate(starts):
        v = int(v)
        if occupied[v]:
            unsettled.append(p)
        else:
            occupied[v] = True
            settled_at[p] = v
            settle_order.append(p)
    return unsettled


class UnsettledPool:
    """Swap-remove pool of unsettled particle ids with O(1) pick/remove.

    The uniform/CTU schedulers pick slot ``i`` uniformly from the pool
    each tick; when the picked particle settles, the *last* pool entry is
    swapped into its slot.  The batched drivers replicate exactly this
    swap-remove on their per-repetition pool rows, which keeps every
    subsequent scheduler index referring to the same particle in both
    execution modes — a bit-identity requirement, not a convenience.
    """

    __slots__ = ("ids",)

    def __init__(self, ids: list):
        self.ids = ids

    def __len__(self) -> int:
        return len(self.ids)

    def pick(self, slot: int) -> int:
        """Particle id occupying ``slot``."""
        return self.ids[slot]

    def remove_at(self, slot: int) -> None:
        """Swap-remove: move the last entry into ``slot`` and shrink."""
        last = self.ids.pop()
        if slot < len(self.ids):
            self.ids[slot] = last


def instant_settle_chain(occupied, starts, first: int, steps, settled_at) -> int:
    """Settle particles ``first, first+1, …`` standing on vacant starts.

    The Sequential-IDLA release rule: a particle whose start vertex is
    vacant settles instantly (0 steps) and the next particle is released;
    the chain stops at the first particle that actually has to walk.
    ``occupied`` (list or bool array), ``steps`` and ``settled_at`` are
    updated in place.

    Returns the index of the first walking particle, or ``len(starts)``
    when the chain exhausted all remaining particles.
    """
    m = len(starts)
    p = first
    while p < m:
        v = int(starts[p])
        if occupied[v]:
            return p
        occupied[v] = True
        steps[p] = 0
        settled_at[p] = v
        p += 1
    return m
