"""Block representation of IDLA histories and the Cut & Paste transform.

Section 4 of the paper encodes a realisation of an IDLA process as an
irregular 2-D array ``L`` with one row per particle: ``L(i, t)`` is the
vertex occupied by particle ``i`` after its ``t``-th jump, ``t = 0..ρ_i``,
and ``L(i, ρ_i)`` is where it settled.  We index rows ``0..n-1`` (row 0 is
the particle that settles the origin instantly, the paper's row 1).

Three defining properties (paper's (2), (3), (4)):

* **(2)** endpoints are pairwise distinct — hence they cover ``V``;
* **(3)** *sequential validity*: reading cells row-by-row (order ``<_S``),
  the first occurrence of each vertex ends its row;
* **(4)** *parallel validity*: reading column-by-column (order ``<_P``),
  the first occurrence of each vertex ends its row.

The **Cut & Paste** transform ``CP_(i,t)`` cuts cells ``(i, t+1..ρ_i)`` and
pastes them after the unique ``(k, ρ_k)`` with ``L(k, ρ_k) = L(i, t)``.
It preserves property (2), the total length ``m(L)`` and the multiset of
traversed arcs — the invariants driving every coupling in the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs.csr import Graph

__all__ = [
    "Block",
    "is_valid_sequential_block",
    "is_valid_parallel_block",
    "is_valid_uniform_block",
]


class Block:
    """Mutable ragged array of particle trajectories.

    Parameters
    ----------
    rows:
        ``rows[i]`` is the trajectory of particle ``i`` (sequence of
        vertices, first entry is the origin).  Rows are copied; both the
        serial drivers' ``list[list[int]]`` shape and the array shapes
        (:class:`repro.core.trajectory.TrajectoryArrays`, or any iterable
        of integer arrays from any registered backend) are accepted —
        array rows are converted to plain-int lists, so Cut & Paste
        always mutates Python lists.

    Notes
    -----
    The class maintains an endpoint index (vertex -> row) so Cut & Paste is
    ``O(tail length)`` per call.  Invariants checked on construction:
    non-empty rows and distinct endpoints (property (2)).
    """

    __slots__ = ("rows", "_endpoint_row")

    def __init__(self, rows: Iterable[Sequence[int]]):
        self.rows: list[list[int]] = [
            # duck-typed: ndarray and every backend's array expose tolist()
            r.tolist() if hasattr(r, "tolist") else list(r)
            for r in rows
        ]
        if not self.rows:
            raise ValueError("block must have at least one row")
        if any(len(r) == 0 for r in self.rows):
            raise ValueError("all rows must be non-empty")
        self._endpoint_row: dict[int, int] = {}
        for i, r in enumerate(self.rows):
            e = r[-1]
            if e in self._endpoint_row:
                raise ValueError(
                    f"endpoints must be distinct (property (2)); vertex {e} "
                    f"ends rows {self._endpoint_row[e]} and {i}"
                )
            self._endpoint_row[e] = i

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows (= particles)."""
        return len(self.rows)

    def row_length(self, i: int) -> int:
        """``ρ_i`` — number of jumps of particle ``i``."""
        return len(self.rows[i]) - 1

    def row_lengths(self) -> list[int]:
        """All ``ρ_i``."""
        return [len(r) - 1 for r in self.rows]

    @property
    def total_length(self) -> int:
        """``m(L) = Σ ρ_i`` — total number of jumps recorded."""
        return sum(len(r) for r in self.rows) - len(self.rows)

    @property
    def max_row_length(self) -> int:
        """``max_i ρ_i`` — the dispersion time this block encodes."""
        return max(len(r) for r in self.rows) - 1

    def endpoints(self) -> list[int]:
        """Settling vertex of each particle."""
        return [r[-1] for r in self.rows]

    def endpoint_row(self, vertex: int) -> int:
        """Row index whose endpoint is ``vertex`` (KeyError if none)."""
        return self._endpoint_row[vertex]

    def copy(self) -> "Block":
        """Deep copy."""
        return Block(self.rows)

    def visit_multiset(self) -> dict[int, int]:
        """Vertex -> number of cells containing it (coupling invariant)."""
        counts: dict[int, int] = {}
        for r in self.rows:
            for v in r:
                counts[v] = counts.get(v, 0) + 1
        return counts

    def arc_multiset(self) -> dict[tuple[int, int], int]:
        """Directed arc -> traversal count.  Cut & Paste preserves this."""
        counts: dict[tuple[int, int], int] = {}
        for r in self.rows:
            for a, b in zip(r[:-1], r[1:]):
                counts[(a, b)] = counts.get((a, b), 0) + 1
        return counts

    # ------------------------------------------------------------------
    def cut_paste(self, i: int, t: int) -> None:
        """Apply ``CP_(i,t)`` in place.

        Cuts cells ``(i, t+1..ρ_i)`` and pastes them after the unique row
        ``k`` whose endpoint equals ``rows[i][t]``.  When ``t = ρ_i`` (the
        cell is already an endpoint) the transform is the identity.
        """
        row = self.rows[i]
        if not 0 <= t < len(row):
            raise IndexError(f"cell ({i}, {t}) not in block")
        if t == len(row) - 1:
            return  # identity: cutting an empty tail
        vtx = row[t]
        k = self._endpoint_row[vtx]
        if k == i:
            # vtx is row i's own endpoint: cutting the tail and pasting it
            # back after (i, ρ_i) reattaches it where it was — identity.
            return
        tail = row[t + 1 :]
        del row[t + 1 :]
        self.rows[k].extend(tail)
        # Row k's endpoint becomes the cut tail's last vertex; row i's
        # endpoint becomes vtx.
        self._endpoint_row[tail[-1]] = k
        self._endpoint_row[vtx] = i

    # ------------------------------------------------------------------
    def check_paths(self, g: Graph, origin: int) -> None:
        """Raise unless every row is a walk in ``g`` starting at ``origin``."""
        for i, r in enumerate(self.rows):
            if r[0] != origin:
                raise ValueError(f"row {i} starts at {r[0]}, expected origin {origin}")
            for a, b in zip(r[:-1], r[1:]):
                if a == b:
                    # lazy (hold) steps are recorded as repeats; legal when
                    # the walk is lazy — callers validating simple-walk
                    # blocks use strict=True paths via g.has_edge.
                    continue
                if not g.has_edge(a, b):
                    raise ValueError(f"row {i} uses non-edge ({a}, {b})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(n={self.n}, total_length={self.total_length})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self):  # mutable container
        raise TypeError("Block is mutable and unhashable")


# ----------------------------------------------------------------------
# validity predicates (paper properties (3) and (4))
# ----------------------------------------------------------------------

def _endpoints_cover(block: Block) -> bool:
    eps = block.endpoints()
    return len(set(eps)) == len(eps)


def is_valid_sequential_block(
    block: Block, g: Graph | None = None, origin: int | None = None
) -> bool:
    """Property (3): in row-major reading order, each vertex's first
    occurrence is the final cell of its row.

    Optionally also checks rows are walks in ``g`` from ``origin``.
    """
    if g is not None and origin is not None:
        try:
            block.check_paths(g, origin)
        except ValueError:
            return False
    if not _endpoints_cover(block):
        return False
    seen: set[int] = set()
    for r in block.rows:
        for t, v in enumerate(r):
            if v not in seen:
                seen.add(v)
                if t != len(r) - 1:
                    return False
    return True


def is_valid_parallel_block(
    block: Block, g: Graph | None = None, origin: int | None = None
) -> bool:
    """Property (4): in column-major reading order, each vertex's first
    occurrence is the final cell of its row.
    """
    if g is not None and origin is not None:
        try:
            block.check_paths(g, origin)
        except ValueError:
            return False
    if not _endpoints_cover(block):
        return False
    seen: set[int] = set()
    max_len = max(len(r) for r in block.rows)
    for t in range(max_len):
        for r in block.rows:
            if t >= len(r):
                continue
            v = r[t]
            if v not in seen:
                seen.add(v)
                if t != len(r) - 1:
                    return False
    return True


def is_valid_uniform_block(block: Block, schedule: Sequence[int]) -> bool:
    """Validity for an R-uniform block under the head-reading model.

    ``schedule[t]`` is the row whose read-head advances at tick ``t + 1``
    (tick 0 reads every row's cell 0 in row order).  The block is valid if,
    reading cells in that order, the first occurrence of each vertex is the
    final cell of its row, every cell is eventually read, and endpoints are
    distinct.
    """
    if not _endpoints_cover(block):
        return False
    seen: set[int] = set()
    heads = [0] * block.n
    # tick 0: all cells (i, 0)
    for i, r in enumerate(block.rows):
        v = r[0]
        heads[i] = 1
        if v not in seen:
            seen.add(v)
            if len(r) != 1:
                return False
    for i in schedule:
        if not 0 <= i < block.n:
            return False
        r = block.rows[i]
        if heads[i] >= len(r):
            continue  # settled particle: no-op tick
        v = r[heads[i]]
        heads[i] += 1
        if v not in seen:
            seen.add(v)
            if heads[i] != len(r):
                return False
    return all(h == len(r) for h, r in zip(heads, block.rows))
