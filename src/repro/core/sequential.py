"""Sequential-IDLA driver.

Particles are released one at a time; each performs a (simple or lazy)
random walk until its settling rule fires — by default, at the first
vacant vertex, with the start vertex itself checked at time 0 — and only
then does the next particle start (§1 of the paper).  The classic setup
(all particles from one origin) makes particle 0 settle instantly at the
origin.

§6.2 variants supported here: ``num_particles = m ≤ n`` (stop after ``m``
settlements) and per-particle origins (``origin="uniform"`` or an array).

Performance note: a single trajectory cannot be vectorised, so the inner
loop uses plain-Python list adjacency with block-buffered uniforms (see
:mod:`repro.walks.single`); the default-rule path is additionally inlined
here because the per-step predicate is just a list lookup.  At ~10⁷ steps
per second this covers every sweep in the benchmark suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.settlement import instant_settle_chain
from repro.core.stopping_rules import StoppingRule, standard_rule
from repro.graphs.csr import Graph
from repro.utils.rng import as_generator

__all__ = ["sequential_idla"]

_BLOCK = 16384


def sequential_idla(
    g: Graph,
    origin=0,
    *,
    lazy: bool = False,
    seed=None,
    record: bool | str = False,
    rule: StoppingRule | None = None,
    num_particles: int | None = None,
    max_total_steps: float | None = None,
) -> DispersionResult:
    """Run one Sequential-IDLA realisation.

    Parameters
    ----------
    g:
        Connected graph.
    origin:
        Start specification: a vertex id (classic — the paper's ``v``),
        ``"uniform"`` for i.i.d. random starts, or an array of per-particle
        starts (§6.2 variant).
    lazy:
        Use the lazy walk (hold probability 1/2).  Dispersion time then
        counts hold steps too, matching ``τ_L-seq`` of §4.4.
    seed:
        RNG seed / generator.
    record:
        Keep full trajectories (enables ``result.block()``); memory is
        ``O(total steps)``.
    rule:
        Settling rule; defaults to the standard "first vacant vertex".
        Rules govern *walking* particles (step >= 1); a vacant start
        settles its particle instantly, exactly as the paper's first
        particle occupies the origin.
    num_particles:
        ``m ≤ n``; default ``n``.  Sequential-IDLA with ``m > n`` would
        leave particles walking forever and is rejected.
    max_total_steps:
        Safety valve — raise ``RuntimeError`` if the whole process exceeds
        this many steps (useful with exotic rules).

    Returns
    -------
    DispersionResult
        With ``process="sequential"`` (or ``"sequential-lazy"``).

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> res = sequential_idla(complete_graph(16), seed=0)
    >>> res.is_complete_dispersion()
    True
    >>> few = sequential_idla(complete_graph(16), seed=0, num_particles=4)
    >>> int(few.steps.shape[0])
    4
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"sequential IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    rng = as_generator(seed)
    starts = resolve_origins(g, origin, m, rng)
    use_default_rule = rule is None or rule is standard_rule
    adj = g.adjacency_lists()
    occupied = [False] * n

    steps = np.zeros(m, dtype=np.int64)
    settled_at = np.full(m, -1, dtype=np.int64)
    trajectories: list[list[int]] | None = [] if record else None

    # block-buffered uniforms, inlined for speed
    buf = rng.random(_BLOCK)
    bi = 0
    budget = float("inf") if max_total_steps is None else float(max_total_steps)
    total = 0

    particle = 0
    while particle < m:
        # A vacant start settles its particle instantly (time-0 visit) —
        # this is how the paper's first particle occupies the origin, and
        # it applies regardless of `rule`, which only governs walking
        # particles.  The chain releases successors until one has to walk.
        walker = instant_settle_chain(occupied, starts, particle, steps, settled_at)
        if record:
            for settled in range(particle, walker):
                trajectories.append([int(starts[settled])])
        if walker == m:
            break
        particle = walker
        pos = int(starts[particle])
        t = 0
        traj = [pos] if record else None
        while True:
            if bi == _BLOCK:
                buf = rng.random(_BLOCK)
                bi = 0
            u = buf[bi]
            bi += 1
            if lazy:
                if u < 0.5:
                    t += 1  # hold step
                    total += 1
                    if record:
                        traj.append(pos)
                    if total > budget:
                        raise RuntimeError(
                            f"sequential IDLA exceeded max_total_steps="
                            f"{max_total_steps}"
                        )
                    continue
                u = 2.0 * (u - 0.5)  # reuse the upper half as a fresh uniform
            nbrs = adj[pos]
            pos = nbrs[int(u * len(nbrs))]
            t += 1
            total += 1
            if record:
                traj.append(pos)
            if total > budget:
                raise RuntimeError(
                    f"sequential IDLA exceeded max_total_steps={max_total_steps}"
                )
            if use_default_rule:
                if not occupied[pos]:
                    break
            elif rule(t, pos, not occupied[pos]) and not occupied[pos]:
                break
        occupied[pos] = True
        steps[particle] = t
        settled_at[particle] = pos
        if record:
            trajectories.append(traj)
        particle += 1

    if record == "arrays" and trajectories is not None:
        from repro.core.trajectory import TrajectoryArrays

        trajectories = TrajectoryArrays.from_lists(trajectories)
    return DispersionResult(
        process="sequential-lazy" if lazy else "sequential",
        graph_name=g.name,
        n=n,
        origin=int(starts[0]),
        dispersion_time=int(steps.max()),
        total_steps=int(steps.sum()),
        steps=steps,
        settled_at=settled_at,
        settle_order=np.arange(m, dtype=np.int64),
        trajectories=trajectories,
        num_particles=None if m == n else m,
    )
