"""Uniform-IDLA driver (§4.2).

At each tick an unsettled particle is chosen and takes one step, settling
if the vertex it reaches is vacant.  The paper's schedule ``R`` draws
``R_t`` uniformly from *all* particles ``{1, …, n-1}`` (particle 0 sits at
the origin); ticks that pick an already-settled particle are wasted.  Two
equivalent simulation modes are provided:

* ``faithful_r=True`` — draw the literal i.i.d. schedule (needed by the
  PtU_R bijection tests; returns the realised ``R``);
* ``faithful_r=False`` (default) — pick uniformly among *unsettled*
  particles and recover the wasted-tick count distributionally via
  geometric skips, which is exact because conditioned on hitting an
  unsettled particle the choice is uniform among them.

Both modes report per-particle jump counts (Theorem 4.7's quantity —
stochastically dominated by the Parallel-IDLA longest walk) and the tick
clock in ``result.ticks``.
"""

from __future__ import annotations

import numpy as np

from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.graphs.csr import Graph
from repro.utils.rng import as_generator
from repro.walks.single import SingleWalkKernel

__all__ = ["uniform_idla", "sample_schedule"]


def sample_schedule(n: int, length: int, seed=None) -> np.ndarray:
    """i.i.d. uniform schedule over particles ``1..n-1`` (paper's ``R``)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = as_generator(seed)
    return rng.integers(1, n, size=length, dtype=np.int64)


def uniform_idla(
    g: Graph,
    origin=0,
    *,
    seed=None,
    record: bool = False,
    faithful_r: bool = False,
    num_particles: int | None = None,
    max_ticks: float | None = None,
) -> DispersionResult:
    """Run one Uniform-IDLA realisation.

    Returns a :class:`DispersionResult` whose ``dispersion_time`` is the
    *longest-walk jump count* (the quantity of Theorem 4.7) and whose
    ``ticks`` attribute is the scheduling-clock duration (including wasted
    ticks on settled particles).  When ``faithful_r=True`` the realised
    schedule is stored as ``result.schedule`` — an extra attribute used by
    the bijection tests.

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> res = uniform_idla(complete_graph(12), seed=5)
    >>> res.is_complete_dispersion() and res.ticks >= res.total_steps
    True
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"uniform IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    rng = as_generator(seed)
    starts = resolve_origins(g, origin, m, rng)
    kern = SingleWalkKernel(g, rng)

    occupied = [False] * n
    steps = np.zeros(m, dtype=np.int64)
    settled_at = np.full(m, -1, dtype=np.int64)
    settle_order = []
    pos = [int(v) for v in starts]
    trajectories: list[list[int]] | None = None
    if record:
        trajectories = [[int(v)] for v in starts]
    # round-0 settlement pass: vacant starts settle instantly, lowest
    # particle index first (classically: particle 0 takes the origin)
    for p0 in range(m):
        v0 = pos[p0]
        if not occupied[v0]:
            occupied[v0] = True
            settled_at[p0] = v0
            settle_order.append(p0)
    unsettled = [p0 for p0 in range(m) if settled_at[p0] < 0]
    where = {p: i for i, p in enumerate(unsettled)}  # particle -> slot
    schedule: list[int] | None = [] if faithful_r else None

    ticks = 0
    budget = float("inf") if max_ticks is None else float(max_ticks)
    while unsettled:
        ticks += 1
        if ticks > budget:
            raise RuntimeError(f"uniform IDLA exceeded max_ticks={max_ticks}")
        if faithful_r:
            p = int(rng.integers(1, m)) if m > 1 else 0
            schedule.append(p)
            if settled_at[p] >= 0:
                continue  # wasted tick
        else:
            k = len(unsettled)
            # ticks until an unsettled particle is drawn ~ Geometric(k/(m-1));
            # the current tick already counts as one attempt.
            pool = max(m - 1, 1)
            if k < pool:
                extra = int(rng.geometric(k / pool)) - 1
                ticks += extra
                if ticks > budget:
                    raise RuntimeError(
                        f"uniform IDLA exceeded max_ticks={max_ticks}"
                    )
            p = unsettled[int(rng.integers(k))]
        v = kern.step(pos[p])
        pos[p] = v
        steps[p] += 1
        if record:
            trajectories[p].append(v)
        if not occupied[v]:
            occupied[v] = True
            settled_at[p] = v
            settle_order.append(p)
            slot = where.pop(p)
            last = unsettled.pop()
            if last != p:
                unsettled[slot] = last
                where[last] = slot

    result = DispersionResult(
        process="uniform",
        graph_name=g.name,
        n=n,
        origin=int(starts[0]),
        dispersion_time=int(steps.max()),
        total_steps=int(steps.sum()),
        steps=steps,
        settled_at=settled_at,
        settle_order=np.asarray(settle_order, dtype=np.int64),
        ticks=float(ticks),
        trajectories=trajectories,
        num_particles=None if m == n else m,
    )
    if faithful_r:
        # DispersionResult is frozen; attach via object.__setattr__ like
        # dataclasses do internally.  Documented extra attribute.
        object.__setattr__(result, "schedule", np.asarray(schedule, dtype=np.int64))
    return result
