"""Uniform-IDLA driver (§4.2).

At each tick an unsettled particle is chosen and takes one step, settling
if the vertex it reaches is vacant.  The paper's schedule ``R`` draws
``R_t`` uniformly from *all* particles ``{1, …, n-1}`` (particle 0 sits at
the origin); ticks that pick an already-settled particle are wasted.  Two
equivalent simulation modes are provided:

* ``faithful_r=True`` — draw the literal i.i.d. schedule (needed by the
  PtU_R bijection tests; returns the realised ``R``);
* ``faithful_r=False`` (default) — pick uniformly among *unsettled*
  particles and recover the wasted-tick count distributionally via
  geometric skips, which is exact because conditioned on hitting an
  unsettled particle the choice is uniform among them.

Both modes report per-particle jump counts (Theorem 4.7's quantity —
stochastically dominated by the Parallel-IDLA longest walk) and the tick
clock in ``result.ticks``.

Draw contract
-------------
Every draw is a uniform double from one block-buffered
:class:`repro.utils.rng.UniformStream`, consumed per tick in this order:

1. *(only when ``k < m-1``)* the geometric skip count, by inversion —
   ``int(log1p(-u) / log1p(-k/(m-1)))`` wasted ticks;
2. the scheduler pick — pool slot ``min(int(u·k), k-1)`` (or particle
   ``1 + min(int(u·(m-1)), m-2)`` in ``faithful_r`` mode, one draw per
   tick even when wasted);
3. the walk step — neighbour ``min(int(u·deg), deg-1)``.

Uniform-double streams are chunk-invariant, so
:func:`repro.core.batched_continuous.batched_uniform_idla` replays the
default mode bit for bit in lock-step across repetitions; this serial
driver is the reference oracle it is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.backends import backend_of
from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.settlement import UnsettledPool, settle_vacant_starts_inorder
from repro.graphs.csr import Graph
from repro.utils.rng import UniformStream, as_generator

__all__ = ["uniform_idla", "sample_schedule"]

#: Fetch-block size of the driver's :class:`UniformStream`.  Every draw
#: is a plain uniform double, so the block size must never influence a
#: result or a recorded ``faithful_r`` schedule (chunk-invariance of the
#: NumPy double stream); it is a module constant — rather than a literal
#: at the call site — so the regression tests can vary it and pin that.
_BLOCK = 16384


def sample_schedule(n: int, length: int, seed=None) -> np.ndarray:
    """i.i.d. uniform schedule over particles ``1..n-1`` (paper's ``R``)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = as_generator(seed)
    return rng.integers(1, n, size=length, dtype=np.int64)


def uniform_idla(
    g: Graph,
    origin=0,
    *,
    seed=None,
    record: bool | str = False,
    faithful_r: bool = False,
    num_particles: int | None = None,
    max_ticks: float | None = None,
) -> DispersionResult:
    """Run one Uniform-IDLA realisation.

    Returns a :class:`DispersionResult` whose ``dispersion_time`` is the
    *longest-walk jump count* (the quantity of Theorem 4.7) and whose
    ``ticks`` attribute is the scheduling-clock duration (including wasted
    ticks on settled particles).  When ``faithful_r=True`` the realised
    schedule is stored as ``result.schedule`` — an extra attribute used by
    the bijection tests.

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> res = uniform_idla(complete_graph(12), seed=5)
    >>> res.is_complete_dispersion() and res.ticks >= res.total_steps
    True
    """
    n = g.n
    m = n if num_particles is None else int(num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"uniform IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    rng = as_generator(seed)
    starts = resolve_origins(g, origin, m, rng)
    adj = g.adjacency_lists()
    # scalar oracle: the walk loop is host Python by design, but result
    # arrays still come from the resolved backend so a strict/env-selected
    # backend observes the serial path too
    bk = backend_of(g)

    occupied = [False] * n
    steps = [0] * m
    settled_at = bk.full(m, -1, dtype=np.int64)
    settle_order: list[int] = []
    pos = [int(v) for v in starts]
    trajectories: list[list[int]] | None = None
    if record:
        trajectories = [[int(v)] for v in starts]
    # round-0 settlement pass: vacant starts settle instantly, lowest
    # particle index first (classically: particle 0 takes the origin)
    pool = UnsettledPool(
        settle_vacant_starts_inorder(occupied, starts, settled_at, settle_order)
    )
    stream = UniformStream(rng, block=_BLOCK)
    schedule: list[int] | None = [] if faithful_r else None

    ticks = 0
    budget = float("inf") if max_ticks is None else float(max_ticks)
    k = len(pool)
    pool_size = max(m - 1, 1)
    logq = 0.0
    logq_k = -1  # k value `logq` was computed for
    while k:
        ticks += 1
        if ticks > budget:
            raise RuntimeError(f"uniform IDLA exceeded max_ticks={max_ticks}")
        if faithful_r:
            if m > 1:
                s = int(stream.uniform() * (m - 1))
                if s == m - 1:
                    s = m - 2
                p = 1 + s
            else:
                p = 0
            schedule.append(p)
            if settled_at[p] >= 0:
                continue  # wasted tick
            i = -1  # p was not picked through the pool
        else:
            if k < pool_size:
                # ticks until an unsettled particle is drawn are
                # Geometric(k / pool_size); the current tick already
                # counts as one attempt.  Sampled by inversion so the
                # batched replica reproduces the skip exactly.
                if k != logq_k:
                    logq = float(np.log1p(-(k / pool_size)))
                    logq_k = k
                extra = int(stream.log1mu() / logq)
                if extra:
                    ticks += extra
                    if ticks > budget:
                        raise RuntimeError(
                            f"uniform IDLA exceeded max_ticks={max_ticks}"
                        )
            i = int(stream.uniform() * k)
            if i == k:  # floating guard, mirrors the batched np.minimum
                i = k - 1
            p = pool.pick(i)
        nbrs = adj[pos[p]]
        d = len(nbrs)
        j = int(stream.uniform() * d)
        if j == d:
            j = d - 1
        v = nbrs[j]
        pos[p] = v
        steps[p] += 1
        if record:
            trajectories[p].append(v)
        if not occupied[v]:
            occupied[v] = True
            settled_at[p] = v
            settle_order.append(p)
            if i >= 0:
                pool.remove_at(i)
            k -= 1

    if record == "arrays" and trajectories is not None:
        from repro.core.trajectory import TrajectoryArrays

        trajectories = TrajectoryArrays.from_lists(trajectories)
    steps_arr = bk.asarray(steps, dtype=np.int64)
    result = DispersionResult(
        process="uniform",
        graph_name=g.name,
        n=n,
        origin=int(starts[0]),
        dispersion_time=int(steps_arr.max()),
        total_steps=int(steps_arr.sum()),
        steps=steps_arr,
        settled_at=settled_at,
        settle_order=bk.asarray(settle_order, dtype=np.int64),
        ticks=float(ticks),
        trajectories=trajectories,
        num_particles=None if m == n else m,
    )
    if faithful_r:
        # DispersionResult is frozen; attach via object.__setattr__ like
        # dataclasses do internally.  Documented extra attribute.
        object.__setattr__(
            result, "schedule", bk.asarray(schedule, dtype=np.int64)
        )
    return result
