"""Batched cross-repetition drivers for the continuous-time/uniform family.

:mod:`repro.core.batched` vectorises the outer Monte-Carlo loop of the
*synchronous* processes, whose batch width is repetitions × active
particles.  The tick-scheduled processes here — Uniform-IDLA, CTU-IDLA
and Poissonised Sequential-IDLA — advance exactly **one particle per
repetition per tick**, so the lock-step state is one lane per live
repetition: one scheduler pick, one walk step and one occupancy probe
serve the whole batch, amortising the per-tick interpreter/dispatch cost
the serial drivers pay once per ring.

Bit-identical replay
--------------------
The serial drivers (:mod:`repro.core.uniform`,
:mod:`repro.core.continuous`) consume *nothing but uniform doubles* from
a block-buffered :class:`repro.utils.rng.UniformStream` — exponential
clocks, geometric skips and scheduler picks are inverse-CDF transforms of
that one stream (see the "draw contract" in their module docstrings).
NumPy double streams are chunk-invariant (``random(a)`` then ``random(b)``
equals ``random(a + b)`` split), so the per-repetition buffers here can
be refilled on any schedule whatsoever: only the consumption *order*
matters, and every tick consumes each live repetition's doubles in the
serial order.  That is what lets the buffers come from the bounded
:class:`repro.utils.rng.UniformStreams` scheme (the refill chunk shrinks
as the repetition count grows, so the allocation never outgrows a fixed
budget — no more ``_BATCHED_MAX_BUFFER_DOUBLES`` dispatch decline).
The transforms use the same NumPy ufuncs (``np.log1p`` is
elementwise-deterministic across array shapes and strides but *not*
bit-identical to ``math.log1p`` — hence the shared log lane in
``UniformStream``), the same truncations and the same division operand
order, making every result field bit-identical::

    batched_ctu_idla(g, seeds=seeds) ==
        [ctu_idla(g, seed=s) for s in seeds]           # bit for bit

and likewise for ``batched_uniform_idla`` (default scheduler mode) and
``batched_continuous_sequential_idla`` — enforced by
``tests/test_core_batched_continuous.py``.  Time-0 settlement and the
scheduler's swap-remove pool go through the shared helpers in
:mod:`repro.core.settlement` so both execution modes resolve them
identically by construction.

``record=True`` routes each tick's ``(repetition, particle, vertex)``
into the chunked :class:`repro.core.trajectory.TrajectoryStore` (one
slice append per tick), and Uniform-IDLA's ``faithful_r=True`` runs a
dedicated lock-step branch that draws the literal i.i.d. schedule — one
scheduler pick per live repetition per tick, wasted ticks consuming
exactly one double — recording it through
:class:`repro.core.trajectory.ScheduleStore` into the same per-repetition
``result.schedule`` arrays the serial driver attaches.  Both finalise
bit-identical to the serial oracles, which remain the reference the
batched subsystem is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.backends import backend_of
from repro.core.batched import _resolve_generators
from repro.core.budget import cohort_slices, plan_state
from repro.core.origins import resolve_origins
from repro.core.results import DispersionResult
from repro.core.sequential import _BLOCK as _SEQ_BLOCK
from repro.core.settlement import settle_vacant_starts_inorder
from repro.core.trajectory import ScheduleStore, TrajectoryStore
from repro.graphs.csr import Graph, neighbor_kernel
from repro.kernels import get_kernels
from repro.utils.rng import UniformStreams, resolve_stream_block
from repro.utils.validation import check_integer
from repro.walks.continuous import poissonise_steps

__all__ = [
    "batched_ctu_idla",
    "batched_uniform_idla",
    "batched_continuous_sequential_idla",
    "stream_block",
]

#: Test override for the streaming refill chunk (doubles per repetition);
#: ``None`` auto-sizes through :func:`repro.utils.rng.resolve_stream_block`.
#: Any value >= 3 (one tick's worst-case consumption) yields the same
#: results — chunk-invariance of the double stream is exactly what the
#: equivalence tests vary this for.
_BLOCK: int | None = None


def _lane_streams(gens, budget_doubles=None, backend=None) -> UniformStreams:
    """Streams for the tick-scheduled drivers: <= 3 doubles per tick."""
    return UniformStreams(
        gens,
        per_rep_min=3,
        block=_BLOCK,
        budget_doubles=budget_doubles,
        backend=backend,
    )


def stream_block(process: str, reps: int, num_particles: int | None = None) -> int:
    """Per-repetition streaming chunk (doubles) a batched run allocates.

    The tick-scheduled drivers' own sizing export, consulted by
    :func:`repro.core.batched.buffer_doubles`.  ``c-sequential`` is owned
    by this module but rides ``batched_sequential_idla`` for its discrete
    walks, so its allocation *is* the sequential driver's — delegating
    here is the fix for the old ``buffer_doubles``, which sized every
    non-continuous process with :mod:`repro.core.batched`'s block constant
    regardless of which module's driver (and block) actually ran.
    """
    if process == "c-sequential":
        from repro.core.batched import stream_block as sync_stream_block

        return sync_stream_block("sequential", reps, num_particles)
    if process in ("ctu", "uniform"):
        return resolve_stream_block(reps, per_rep_min=3, block=_BLOCK)
    raise ValueError(f"no tick-scheduled batched driver for process {process!r}")


def _init_lanes(R, n, m, starts2d, occ, settledflat, unsflat, orders):
    """Time-0 settlement for every repetition, via the shared in-order helper.

    Fills each repetition's pool row in ``unsflat`` and returns the live
    lanes (repetitions with unsettled particles) and their pool sizes.
    """
    lanes_list, k_list = [], []
    for r in range(R):
        uns = settle_vacant_starts_inorder(
            occ[r * n : (r + 1) * n],
            starts2d[r],
            settledflat[r * m : (r + 1) * m],
            orders[r],
        )
        if uns:
            unsflat[r * m : r * m + len(uns)] = uns
            lanes_list.append(r)
            k_list.append(len(uns))
    return lanes_list, k_list


def _make_stepper(g: Graph, xp=np, kernels=None):
    """One-walk-step kernel ``(positions, u) -> new positions``.

    The inlined :func:`repro.walks.engine.neighbor_step` with precomputed
    degree arrays, resolving slots through the graph's ``neighbor_slots``
    kernel (CSR gather or implicit arithmetic); regular graphs (most of
    Table 1) reduce the degree gathers to scalar arithmetic and allocate
    no O(n) helpers.  Callers that resolved a compiled kernel provider on
    an ``exact_bitstream`` backend pass it via ``kernels``; the fused
    offset+gather (bit-identical by construction) then replaces both
    closures whenever the graph exposes CSR arrays and the call is at
    least ``kernels.min_width`` lanes wide — the tick-scheduled drivers
    step one lane-sized batch at a time, so narrow runs (few repetitions)
    stay on the numpy path where they are faster.
    """
    kernel = neighbor_kernel(g)
    degrees = g.degrees
    if g.n > 0 and g.is_regular():
        c_int = int(degrees[0])
        c_float = float(c_int)

        def step(pos, u):
            off = (u * c_float).astype(np.int64)
            xp.minimum(off, c_int - 1, out=off)
            return kernel(pos, off)

    else:
        degf = degrees.astype(np.float64)
        degm1 = degrees - 1

        def step(pos, u):
            off = (u * degf[pos]).astype(np.int64)
            xp.minimum(off, degm1[pos], out=off)
            return kernel(pos, off)

    if kernels is not None:
        fused = kernels.stepper(g)
        if fused is not None:
            minw = kernels.min_width
            numpy_step = step

            def step(pos, u):
                if pos.shape[0] >= minw:
                    return fused(pos, u)
                return numpy_step(pos, u)

    return step


# ----------------------------------------------------------------------
# CTU-IDLA
# ----------------------------------------------------------------------
def batched_ctu_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    rate: float = 1.0,
    record: bool | str = False,
    num_particles: int | None = None,
    state_budget=None,
    backend=None,
    kernels=None,
) -> list[DispersionResult]:
    """Run ``R`` independent CTU-IDLA realisations in lock-step.

    Parameters
    ----------
    reps, seeds, seed:
        Either pass ``seeds`` — one seed/generator per repetition (the
        runner passes the children of one ``SeedSequence``) — or ``reps``
        plus an optional parent ``seed``, spawned exactly like
        :func:`repro.utils.rng.spawn_generators`.
    rate, record, num_particles:
        As in :func:`repro.core.continuous.ctu_idla`; ``record=True``
        keeps full trajectories via the chunked
        :class:`~repro.core.trajectory.TrajectoryStore`, list-identical
        to the serial driver's.
    backend:
        Array-backend name/instance (see :mod:`repro.backends`);
        resolution order is this kwarg, then the graph's bound backend,
        then ``REPRO_BACKEND``, then numpy.
    kernels:
        Kernel-provider name/:class:`~repro.kernels.KernelSet` (see
        :mod:`repro.kernels`); resolution order is this kwarg, then
        ``REPRO_KERNELS``, then auto-detect.  Compiled providers engage
        only on ``exact_bitstream`` backends and stay bit-identical.

    Returns
    -------
    list[DispersionResult]
        Entry ``r`` is bit-identical to
        ``ctu_idla(g, origin, seed=seeds[r], ...)``, including the
        ``settle_clock`` extra attribute.

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> batch = batched_ctu_idla(complete_graph(16), reps=3, seed=7)
    >>> [r.is_complete_dispersion() for r in batch]
    [True, True, True]
    """
    n = g.n
    m = n if num_particles is None else check_integer("num_particles", num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"CTU IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    bk = backend_of(g, backend)
    xp = bk.xp
    kern = get_kernels(kernels)
    plan = plan_state(state_budget, "ctu", n, m)
    if plan.cohort_reps < R:
        # budgeted cohorts (see batched_parallel_idla): repetition r keeps
        # its own stream, so grouping is invisible in the results
        out: list[DispersionResult] = []
        for a, b in cohort_slices(R, plan.cohort_reps):
            out.extend(
                batched_ctu_idla(
                    g,
                    origin,
                    seeds=gens[a:b],
                    rate=rate,
                    record=record,
                    num_particles=num_particles,
                    state_budget=state_budget,
                    backend=bk,
                    kernels=kern,
                )
            )
        return out

    starts2d = xp.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)

    store = TrajectoryStore(starts2d, n, backend=bk) if record else None
    occ = xp.zeros(R * n, dtype=bool)
    posflat = starts2d.reshape(-1).copy()
    stepsflat = xp.zeros(R * m, dtype=np.int64)
    settledflat = xp.full(R * m, -1, dtype=np.int64)
    settle_clock = xp.zeros(R * m, dtype=np.float64)
    orders: list[list[int]] = [[] for _ in range(R)]
    final_clock = xp.zeros(R, dtype=np.float64)
    unsflat = xp.empty(R * m, dtype=np.int64)

    lanes_list, k_list = _init_lanes(
        R, n, m, starts2d, occ, settledflat, unsflat, orders
    )

    # ---- per-lane compact state (one lane per live repetition)
    lanes = bk.asarray(lanes_list, dtype=np.int64)
    kL = bk.asarray(k_list, dtype=np.int64)
    kfL = kL.astype(np.float64)
    km1L = kL - 1
    denomL = kfL * rate
    clockL = xp.zeros(lanes.size, dtype=np.float64)
    laneM = lanes * m
    laneN = lanes * n

    streams = _lane_streams(gens, plan.stream_budget_doubles, backend=bk)
    block = streams.block
    buf = streams.buf
    cursor = block  # forces the initial fill
    step = _make_stepper(
        g, xp=xp, kernels=kern if (kern.compiled and bk.exact_bitstream) else None
    )

    # Every live lane consumes exactly 3 doubles per tick and all lanes
    # join at tick 0, so one shared cursor serves every buffer row; the
    # remainder copy keeps already-drawn doubles when a tick straddles a
    # refill (the serial stream has no block boundaries to respect).
    while lanes.size:
        if cursor + 3 > block:
            for r in lanes.tolist():
                streams.refill_tail(r, cursor)
            cursor = 0
        u3 = buf[lanes, cursor : cursor + 3]
        cursor += 3
        # exponential clock by inversion: clock += -log1p(-u) / (k·rate)
        dt = xp.log1p(-u3[:, 0])
        xp.negative(dt, out=dt)
        dt /= denomL
        clockL += dt
        # ringer: uniform slot of the unsettled pool
        i = (u3[:, 1] * kfL).astype(np.int64)
        xp.minimum(i, km1L, out=i)
        p = unsflat[laneM + i]
        cell = laneM + p
        vnew = step(posflat[cell], u3[:, 2])
        posflat[cell] = vnew
        stepsflat[cell] += 1
        if store is not None:
            store.append(lanes, p, vnew)
        occv = occ[laneN + vnew]
        if occv.all():
            continue
        finished = False
        for li in bk.flatnonzero(~occv).tolist():
            r = int(lanes[li])
            pp = int(p[li])
            occ[r * n + int(vnew[li])] = True
            cellr = r * m + pp
            settledflat[cellr] = vnew[li]
            settle_clock[cellr] = clockL[li]
            orders[r].append(pp)
            kk = int(kL[li]) - 1
            # swap-remove, as UnsettledPool does in the serial driver
            unsflat[r * m + int(i[li])] = unsflat[r * m + kk]
            kL[li] = kk
            if kk:
                kfL[li] = kk
                km1L[li] = kk - 1
                denomL[li] = float(kk) * rate
            else:
                final_clock[r] = clockL[li]
                finished = True
        if finished:
            keep = kL > 0
            lanes, kL, kfL = lanes[keep], kL[keep], kfL[keep]
            km1L, denomL, clockL = km1L[keep], denomL[keep], clockL[keep]
            laneM, laneN = laneM[keep], laneN[keep]

    # ---- per-repetition result assembly
    if store is None:
        traj_all = None
    elif record == "arrays":
        traj_all = store.finalize_arrays()
    else:
        traj_all = store.finalize()
    results = []
    for r in range(R):
        row = slice(r * m, (r + 1) * m)
        steps_r = stepsflat[row].copy()
        result = DispersionResult(
            process="ctu",
            graph_name=g.name,
            n=n,
            origin=int(starts2d[r, 0]),
            dispersion_time=float(final_clock[r]),
            total_steps=int(steps_r.sum()),
            steps=steps_r,
            settled_at=settledflat[row].copy(),
            settle_order=bk.asarray(orders[r], dtype=np.int64),
            ticks=float(final_clock[r]),
            trajectories=None if traj_all is None else traj_all[r],
            num_particles=None if m == n else m,
        )
        object.__setattr__(result, "settle_clock", settle_clock[row].copy())
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Uniform-IDLA
# ----------------------------------------------------------------------
def _finish_faithful_lane(
    r: int,
    row: np.ndarray,
    bptr: int,
    ticks: int,
    k: int,
    streams: UniformStreams,
    m: int,
    n: int,
    pickf: float,
    pick_cap: int,
    step,
    posflat,
    stepsflat,
    settledflat,
    occ,
    order: list,
    schedule_store: ScheduleStore,
    store,
) -> int:
    """Finish the last live ``faithful_r`` repetition by bulk-scanning picks.

    Late in a ``faithful_r`` run almost every tick is wasted — the literal
    i.i.d. schedule keeps naming already-settled particles, and the
    lock-step loop pays a full round of NumPy dispatch per single wasted
    double.  With one lane left the schedule no longer interleaves with
    other lanes, so the remaining buffered doubles can be scanned in
    bulk: vectorise the picks over the whole unconsumed buffer, find the
    first one naming an unsettled particle, append the wasted run to the
    :class:`~repro.core.trajectory.ScheduleStore` in one slice and jump
    the clock by the run length.  The very same doubles are consumed in
    the very same order as the per-tick loop (the extra picks computed
    past the first active one are discarded, not consumed), so results
    remain bit-identical to the serial oracle — this is an O(1)-NumPy-
    calls-per-run replacement for O(run) wasted ticks, not a change of
    schedule distribution.

    Returns the repetition's final tick count.
    """
    block = row.size
    settled_row = settledflat[r * m : (r + 1) * m]
    occ_row = occ[r * n : (r + 1) * n]
    rarr = np.array([r], dtype=np.int64)
    while True:
        if bptr >= block:
            streams.refill_tail(r, bptr)
            bptr = 0
        avail = row[bptr:]
        picks = (avail * pickf).astype(np.int64)
        np.minimum(picks, pick_cap, out=picks)
        picks += 1
        wasted = settled_row[picks] >= 0
        if wasted.all():
            # the whole buffer is wasted ticks: one slice append, one jump
            schedule_store.append_run(r, picks)
            ticks += picks.size
            bptr = block
            continue
        j = int(np.argmin(wasted))  # first pick naming an unsettled particle
        schedule_store.append_run(r, picks[: j + 1])
        ticks += j + 1
        bptr += j + 1
        if bptr >= block:
            streams.refill_tail(r, bptr)
            bptr = 0
        p = int(picks[j])
        cell = r * m + p
        # 1-element slice through the same vectorised stepper the lock-step
        # loop uses: identical ufunc path, identical bits
        vnew = step(posflat[cell : cell + 1], row[bptr : bptr + 1])
        posflat[cell] = vnew[0]
        stepsflat[cell] += 1
        bptr += 1
        if store is not None:
            store.append(rarr, np.array([p], dtype=np.int64), vnew)
        v = int(vnew[0])
        if not occ_row[v]:
            occ_row[v] = True
            settled_row[p] = v
            order.append(p)
            k -= 1
            if not k:
                return ticks


def batched_uniform_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    record: bool | str = False,
    faithful_r: bool = False,
    num_particles: int | None = None,
    max_ticks: float | None = None,
    state_budget=None,
    backend=None,
    kernels=None,
) -> list[DispersionResult]:
    """Run ``R`` independent Uniform-IDLA realisations in lock-step.

    Both scheduler modes of :func:`repro.core.uniform.uniform_idla` run
    in lock-step: the default (geometric-skip) mode, and the
    ``faithful_r=True`` mode that draws the literal i.i.d. schedule —
    one scheduler pick per live repetition per tick (wasted ticks consume
    exactly that one double), recorded per repetition and attached as
    ``result.schedule``.  Entry ``r`` of the result is bit-identical to
    ``uniform_idla(g, origin, seed=seeds[r], ...)``, including the
    wasted-tick clock in ``result.ticks`` (and trajectories under
    ``record=True``).

    Unlike the CTU driver, per-tick consumption varies per lane (the
    geometric skip and the wasted-tick short-circuit make it 1–3
    doubles), so each lane keeps its own buffer pointer; a conservative
    shared countdown batches the refill checks.
    """
    n = g.n
    m = n if num_particles is None else check_integer("num_particles", num_particles)
    if not 1 <= m <= n:
        raise ValueError(
            f"uniform IDLA needs 1 <= num_particles <= n, got {m} (n={n})"
        )
    gens = _resolve_generators(seeds, seed, reps)
    R = len(gens)
    if R == 0:
        return []
    bk = backend_of(g, backend)
    xp = bk.xp
    kern = get_kernels(kernels)
    plan = plan_state(state_budget, "uniform", n, m)
    if plan.cohort_reps < R:
        # budgeted cohorts (see batched_parallel_idla): repetition r keeps
        # its own stream, so grouping is invisible in the results
        out: list[DispersionResult] = []
        for a, b in cohort_slices(R, plan.cohort_reps):
            out.extend(
                batched_uniform_idla(
                    g,
                    origin,
                    seeds=gens[a:b],
                    record=record,
                    faithful_r=faithful_r,
                    num_particles=num_particles,
                    max_ticks=max_ticks,
                    state_budget=state_budget,
                    backend=bk,
                    kernels=kern,
                )
            )
        return out
    budget = float("inf") if max_ticks is None else float(max_ticks)
    check_budget = max_ticks is not None

    starts2d = xp.empty((R, m), dtype=np.int64)
    for r, gen in enumerate(gens):
        starts2d[r] = resolve_origins(g, origin, m, gen)

    store = TrajectoryStore(starts2d, n, backend=bk) if record else None
    occ = xp.zeros(R * n, dtype=bool)
    posflat = starts2d.reshape(-1).copy()
    stepsflat = xp.zeros(R * m, dtype=np.int64)
    settledflat = xp.full(R * m, -1, dtype=np.int64)
    orders: list[list[int]] = [[] for _ in range(R)]
    final_ticks = xp.zeros(R, dtype=np.int64)
    unsflat = xp.empty(R * m, dtype=np.int64)

    lanes_list, k_list = _init_lanes(
        R, n, m, starts2d, occ, settledflat, unsflat, orders
    )

    pool_size = max(m - 1, 1)

    def logq_for(k: int) -> float:
        # same scalar np.log1p computation as the serial driver's cache;
        # -inf parks lanes with k == pool_size (ratio 0, masked anyway)
        if k < pool_size:
            return float(np.log1p(-(k / pool_size)))
        return float("-inf")

    lanes = bk.asarray(lanes_list, dtype=np.int64)
    kL = bk.asarray(k_list, dtype=np.int64)
    kfL = kL.astype(np.float64)
    km1L = kL - 1
    logqL = bk.asarray([logq_for(int(k)) for k in kL], dtype=np.float64)
    ticksL = xp.zeros(lanes.size, dtype=np.int64)
    laneM = lanes * m
    laneN = lanes * n

    streams = _lane_streams(gens, plan.stream_budget_doubles, backend=bk)
    block = streams.block
    laneB = lanes * block
    streams.fill(lanes_list)
    bufflat = streams.flat
    bptrL = xp.zeros(lanes.size, dtype=np.int64)
    refill_countdown = block // 3
    step = _make_stepper(
        g, xp=xp, kernels=kern if (kern.compiled and bk.exact_bitstream) else None
    )

    schedules: list[np.ndarray] | None = None
    if faithful_r:
        # ---- literal-schedule mode: one i.i.d. pick over particles
        # ``1..m-1`` per live repetition per tick (the paper's R), drawn
        # whether or not the tick is wasted; only non-wasted ticks draw
        # the walk-step double.  The unsettled pool is never consulted —
        # exactly the serial driver's ``faithful_r`` branch.
        schedule_store = ScheduleStore(R, backend=bk)
        pickf = float(m - 1)
        pick_cap = m - 2
        refill_countdown = block // 2
        while lanes.size:
            if lanes.size == 1 and not check_budget:
                # single lane left (or a budget forced 1-rep cohorts):
                # switch to the bulk wasted-tick scanner — late-run
                # faithful_r time is dominated by wasted schedule picks,
                # which it consumes a whole buffer at a time
                r = int(lanes[0])
                final_ticks[r] = _finish_faithful_lane(
                    r,
                    bufflat[r * block : (r + 1) * block],
                    int(bptrL[0]),
                    int(ticksL[0]),
                    int(kL[0]),
                    streams,
                    m,
                    n,
                    pickf,
                    pick_cap,
                    step,
                    posflat,
                    stepsflat,
                    settledflat,
                    occ,
                    orders[r],
                    schedule_store,
                    store,
                )
                lanes = lanes[:0]  # run complete; skip the default-mode loop
                break
            if refill_countdown <= 0:
                for li in bk.flatnonzero(bptrL + 2 > block).tolist():
                    streams.refill_tail(int(lanes[li]), int(bptrL[li]))
                    bptrL[li] = 0
                # conservative: assumes every lane consumes 2 per tick
                refill_countdown = int(((block - bptrL) // 2).min())
            refill_countdown -= 1
            base = laneB + bptrL
            s = (bufflat[base] * pickf).astype(np.int64)
            xp.minimum(s, pick_cap, out=s)
            p = s + 1
            schedule_store.append(lanes, p)
            ticksL += 1
            if check_budget and (ticksL > budget).any():
                raise RuntimeError(f"uniform IDLA exceeded max_ticks={max_ticks}")
            bptrL += 1
            act = bk.flatnonzero(settledflat[laneM + p] < 0)
            if act.size == 0:
                continue  # every live lane wasted this tick
            cell = laneM[act] + p[act]
            vnew = step(posflat[cell], bufflat[base[act] + 1])
            posflat[cell] = vnew
            stepsflat[cell] += 1
            bptrL[act] += 1
            if store is not None:
                store.append(lanes[act], p[act], vnew)
            occv = occ[laneN[act] + vnew]
            if occv.all():
                continue
            finished = False
            for j in bk.flatnonzero(~occv).tolist():
                li = int(act[j])
                r = int(lanes[li])
                pp = int(p[li])
                occ[r * n + int(vnew[j])] = True
                settledflat[r * m + pp] = vnew[j]
                orders[r].append(pp)
                kk = int(kL[li]) - 1
                kL[li] = kk
                if not kk:
                    final_ticks[r] = ticksL[li]
                    finished = True
            if finished:
                keep = kL > 0
                lanes, kL, ticksL = lanes[keep], kL[keep], ticksL[keep]
                bptrL = bptrL[keep]
                laneM, laneN, laneB = laneM[keep], laneN[keep], laneB[keep]
        schedules = schedule_store.finalize()

    while lanes.size:
        if refill_countdown <= 0:
            for li in bk.flatnonzero(bptrL + 3 > block).tolist():
                streams.refill_tail(int(lanes[li]), int(bptrL[li]))
                bptrL[li] = 0
            # conservative: assumes every lane consumes 3 per tick, and
            # stays a valid lower bound across lane compactions
            refill_countdown = int(((block - bptrL) // 3).min())
        refill_countdown -= 1
        base = laneB + bptrL
        # geometric skip draw, consumed only by lanes with k < pool_size
        skip = (kL < pool_size).astype(np.int64)
        lv = xp.log1p(-bufflat[base])
        extra = (lv / logqL).astype(np.int64)
        extra *= skip
        ticksL += 1
        if check_budget and (ticksL > budget).any():
            raise RuntimeError(f"uniform IDLA exceeded max_ticks={max_ticks}")
        ticksL += extra
        if check_budget and (ticksL > budget).any():
            raise RuntimeError(f"uniform IDLA exceeded max_ticks={max_ticks}")
        # scheduler pick + walk step
        sidx = base + skip
        i = (bufflat[sidx] * kfL).astype(np.int64)
        xp.minimum(i, km1L, out=i)
        p = unsflat[laneM + i]
        cell = laneM + p
        vnew = step(posflat[cell], bufflat[sidx + 1])
        posflat[cell] = vnew
        stepsflat[cell] += 1
        if store is not None:
            store.append(lanes, p, vnew)
        bptrL += skip
        bptrL += 2
        occv = occ[laneN + vnew]
        if occv.all():
            continue
        finished = False
        for li in bk.flatnonzero(~occv).tolist():
            r = int(lanes[li])
            pp = int(p[li])
            occ[r * n + int(vnew[li])] = True
            settledflat[r * m + pp] = vnew[li]
            orders[r].append(pp)
            kk = int(kL[li]) - 1
            unsflat[r * m + int(i[li])] = unsflat[r * m + kk]
            kL[li] = kk
            if kk:
                kfL[li] = kk
                km1L[li] = kk - 1
                logqL[li] = logq_for(kk)
            else:
                final_ticks[r] = ticksL[li]
                finished = True
        if finished:
            keep = kL > 0
            lanes, kL, kfL, km1L = lanes[keep], kL[keep], kfL[keep], km1L[keep]
            logqL, ticksL, bptrL = logqL[keep], ticksL[keep], bptrL[keep]
            laneM, laneN, laneB = laneM[keep], laneN[keep], laneB[keep]

    if store is None:
        traj_all = None
    elif record == "arrays":
        traj_all = store.finalize_arrays()
    else:
        traj_all = store.finalize()
    results = []
    for r in range(R):
        row = slice(r * m, (r + 1) * m)
        steps_r = stepsflat[row].copy()
        result = DispersionResult(
            process="uniform",
            graph_name=g.name,
            n=n,
            origin=int(starts2d[r, 0]),
            dispersion_time=int(steps_r.max()),
            total_steps=int(steps_r.sum()),
            steps=steps_r,
            settled_at=settledflat[row].copy(),
            settle_order=bk.asarray(orders[r], dtype=np.int64),
            ticks=float(final_ticks[r]),
            trajectories=None if traj_all is None else traj_all[r],
            num_particles=None if m == n else m,
        )
        if schedules is not None:
            # frozen dataclass: attach like the serial driver does
            object.__setattr__(result, "schedule", schedules[r])
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Poissonised Sequential-IDLA
# ----------------------------------------------------------------------
def batched_continuous_sequential_idla(
    g: Graph,
    origin=0,
    *,
    reps: int | None = None,
    seeds=None,
    seed=None,
    rate: float = 1.0,
    record: bool | str = False,
    state_budget=None,
    backend=None,
    kernels=None,
) -> list[DispersionResult]:
    """Run ``R`` independent Poissonised Sequential-IDLA realisations.

    Rides :func:`repro.core.batched.batched_sequential_idla` for the
    discrete walks (bit-identical to the serial loop, and it leaves every
    repetition's generator at the serial stream position), then attaches
    the ``Gamma(ρ_i, 1/rate)`` duration sums with the very same per-
    repetition call the serial driver makes.  Entry ``r`` is bit-identical
    to ``continuous_sequential_idla(g, origin, seed=seeds[r], rate=rate)``,
    including the ``durations`` extra attribute.
    """
    # local import: batched_sequential_idla lives beside _resolve_generators
    from repro.core.batched import batched_sequential_idla

    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    gens = _resolve_generators(seeds, seed, reps)
    if not gens:
        return []
    walks = batched_sequential_idla(
        g, origin, seeds=gens, record=record, state_budget=state_budget,
        backend=backend, kernels=kernels,
    )
    results = []
    for r, res in enumerate(walks):
        if res.total_steps == 0:
            # The serial driver draws its first uniform block before the
            # release loop; a repetition whose particles all settle
            # instantly consumes none of it, but the draw still advances
            # the stream the Gamma call below reads from.
            gens[r].random(_SEQ_BLOCK)
        durations = poissonise_steps(res.steps, gens[r], rate=rate)
        out = DispersionResult(
            process="c-sequential",
            graph_name=g.name,
            n=g.n,
            origin=res.origin,
            dispersion_time=float(durations.max()),
            total_steps=res.total_steps,
            steps=res.steps,
            settled_at=res.settled_at,
            settle_order=res.settle_order,
            ticks=float(durations.max()),
            trajectories=res.trajectories,
        )
        object.__setattr__(out, "durations", durations)
        results.append(out)
    return results
