"""Streaming τ statistics and anytime confidence sequences.

Fixed-``reps`` Monte Carlo wastes repetitions on cheap graphs and
under-samples expensive ones: the CLT interval of
:mod:`repro.experiments.stats` is only valid at the *pre-committed*
sample size, so a runner cannot peek at it after every round and stop
when it looks tight — that optional stopping inflates the error rate far
above ``1 - level``.  This module provides the two pieces the adaptive
runner needs to stop *legitimately*:

* :class:`TauAccumulator` — ingests τ samples incrementally
  (count / mean / M2 by Welford–Chan merging, plus a bounded
  deterministic reservoir for quantiles and bootstrap), so rounds of
  repetitions stream in without ever re-reducing the full history;
* :func:`anytime_halfwidth` — a *confidence sequence*: a half-width
  that is simultaneously valid at every sample size, so "check after
  each round, stop when narrow enough" preserves the coverage level.

:class:`Precision` is the typed stopping target the request surface of
:func:`repro.experiments.runner.estimate_dispersion` accepts, and
:class:`AdaptiveInfo` the provenance record the resulting estimate
carries (rounds consumed, achieved width, what stopped the run).

The confidence sequence is the Robbins normal-mixture boundary in its
asymptotic (estimated-variance) form — see Howard, Ramdas, McAuliffe &
Sekhon, "Time-uniform, nonparametric, nonasymptotic confidence
sequences", and Waudby-Smith et al.'s asymptotic confidence sequences:

    hw(t) = σ̂_t · sqrt( (t·ρ² + 1) / (t²·ρ²) · 2·log( sqrt(t·ρ² + 1) / α ) )

Any *fixed* ρ > 0 gives a valid sequence; ρ only tunes where on the
``t`` axis the boundary is tightest.  We pick ρ² so the boundary is
near-optimal around a nominal sample size ``t_opt`` (the standard
``ρ² = (-2·log α + log(-2·log α + 1)) / t_opt`` choice); stopping
decisions therefore stay valid no matter how many rounds peek at the
width, which is the whole point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Precision",
    "TauAccumulator",
    "AdaptiveInfo",
    "anytime_halfwidth",
]

#: Nominal sample size the default boundary is tuned to be tightest
#: near.  Purely a tightness knob — validity holds for every t at any
#: fixed value — chosen in the middle of the rep counts the Table-1
#: experiments actually use.
_DEFAULT_T_OPT = 256

#: Default capacity of the accumulator's quantile/bootstrap reservoir.
_DEFAULT_RESERVOIR = 4096


def _rho2(alpha: float, t_opt: int) -> float:
    """Mixture variance ρ² making the boundary tightest near ``t_opt``."""
    a = -2.0 * math.log(alpha)
    return (a + math.log1p(a)) / t_opt


def anytime_halfwidth(
    count: int,
    variance: float,
    *,
    level: float = 0.95,
    t_opt: int = _DEFAULT_T_OPT,
) -> float:
    """Half-width of the anytime confidence sequence after ``count`` samples.

    Unlike ``1.96·SEM``, the returned width is simultaneously valid at
    *every* ``count`` (asymptotically, with estimated ``variance``), so a
    loop may evaluate it after each round and stop the moment it is
    small enough without inflating the miscoverage beyond ``1 - level``.
    It is accordingly wider than the fixed-``n`` CLT interval — that gap
    is the statistical price of optional stopping.

    Returns ``inf`` until two samples exist (no variance estimate yet).

    Examples
    --------
    >>> anytime_halfwidth(1, 0.0) == float("inf")
    True
    >>> hw256 = anytime_halfwidth(256, 1.0)
    >>> hw1024 = anytime_halfwidth(1024, 1.0)
    >>> 0 < hw1024 < hw256
    True
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0,1), got {level}")
    if t_opt < 1:
        raise ValueError(f"t_opt must be >= 1, got {t_opt}")
    if count < 2 or not math.isfinite(variance):
        return math.inf
    if variance < 0.0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    alpha = 1.0 - level
    rho2 = _rho2(alpha, t_opt)
    t = float(count)
    trho = t * rho2
    radius = (trho + 1.0) / (t * t * rho2) * 2.0 * math.log(
        math.sqrt(trho + 1.0) / alpha
    )
    return math.sqrt(variance * radius)


@dataclass(frozen=True)
class Precision:
    """Typed stopping target for adaptive replication.

    At least one of ``ci_rel`` / ``ci_abs`` must be set; when both are,
    the *smaller* resulting half-width binds.  The adaptive runner keeps
    adding rounds of repetitions until the anytime half-width around the
    running mean drops to the target, or a budget trips.

    Parameters
    ----------
    ci_rel:
        Target half-width as a fraction of the running mean
        (``0.02`` = ±2% on ``E[τ]``).
    ci_abs:
        Target half-width in absolute τ units.
    level:
        Confidence level of the anytime sequence (default 0.95).
    initial:
        Repetitions in the first round (default 16).
    max_reps:
        Hard repetition budget (default 4096); the run stops there even
        if the target is still out of reach.
    max_seconds:
        Optional wall-clock budget, checked between rounds.
    growth:
        Cap on per-round growth: round ``k+1`` may at most multiply the
        consumed repetition count by this factor (default 2.0).  The
        width-based predictor usually asks for less; the cap bounds the
        overshoot when an early variance estimate is wildly off.
    """

    ci_rel: float | None = None
    ci_abs: float | None = None
    level: float = 0.95
    initial: int = 16
    max_reps: int = 4096
    max_seconds: float | None = None
    growth: float = 2.0

    def __post_init__(self):
        if self.ci_rel is None and self.ci_abs is None:
            raise ValueError("Precision needs at least one of ci_rel= or ci_abs=")
        if self.ci_rel is not None and self.ci_rel <= 0.0:
            raise ValueError(f"ci_rel must be > 0, got {self.ci_rel}")
        if self.ci_abs is not None and self.ci_abs <= 0.0:
            raise ValueError(f"ci_abs must be > 0, got {self.ci_abs}")
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0,1), got {self.level}")
        if self.initial < 1:
            raise ValueError(f"initial must be >= 1, got {self.initial}")
        if self.max_reps < self.initial:
            raise ValueError(
                f"max_reps ({self.max_reps}) must be >= initial ({self.initial})"
            )
        if self.max_seconds is not None and self.max_seconds < 0.0:
            raise ValueError(f"max_seconds must be >= 0, got {self.max_seconds}")
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")

    def target_halfwidth(self, mean: float) -> float:
        """Binding target half-width given the current running mean."""
        candidates = []
        if self.ci_rel is not None:
            candidates.append(self.ci_rel * abs(mean))
        if self.ci_abs is not None:
            candidates.append(self.ci_abs)
        return min(candidates)


class TauAccumulator:
    """Streaming moments + bounded reservoir over arriving τ samples.

    Rounds of samples merge in O(round size): the running mean and M2
    update by Chan's parallel variance formula (a batched Welford), so
    the stopping check never re-reduces the full history.  A bounded
    reservoir (Vitter's algorithm R, driven by an internal fixed-seed
    generator so it is deterministic in the *insertion order* — which is
    repetition order in every dispatch mode) keeps a uniform subsample
    for quantiles and bootstrap at any point of the stream.

    Examples
    --------
    >>> acc = TauAccumulator()
    >>> acc.add([1.0, 2.0, 3.0]); acc.add([4.0])
    >>> acc.count, acc.mean
    (4, 2.5)
    >>> round(acc.variance, 10) == round(np.var([1, 2, 3, 4], ddof=1), 10)
    True
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max", "_cap", "_res", "_rng")

    def __init__(self, *, reservoir: int = _DEFAULT_RESERVOIR):
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._cap = reservoir
        self._res: list[float] = []
        self._rng = np.random.default_rng(0xA17)

    def add(self, samples) -> None:
        """Merge a round of samples (any 1-D array-like, may be empty)."""
        x = np.asarray(samples, dtype=np.float64).reshape(-1)
        if x.size == 0:
            return
        nb = int(x.size)
        mb = float(x.mean())
        m2b = float(((x - mb) ** 2).sum())
        na = self._count
        total = na + nb
        delta = mb - self._mean
        self._mean += delta * nb / total
        self._m2 += m2b + delta * delta * na * nb / total
        self._count = total
        self._min = min(self._min, float(x.min()))
        self._max = max(self._max, float(x.max()))
        res, cap = self._res, self._cap
        for k in range(nb):
            seen = na + k  # global index of this sample in the stream
            if len(res) < cap:
                res.append(float(x[k]))
            else:
                j = int(self._rng.integers(0, seen + 1))
                if j < cap:
                    res[j] = float(x[k])

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 until two samples exist)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    @property
    def reservoir(self) -> np.ndarray:
        """The retained uniform subsample (all samples while under cap)."""
        return np.asarray(self._res, dtype=np.float64)

    def halfwidth(self, level: float = 0.95, *, t_opt: int = _DEFAULT_T_OPT) -> float:
        """Current anytime confidence-sequence half-width around the mean."""
        return anytime_halfwidth(self._count, self.variance, level=level, t_opt=t_opt)

    def quantile(self, q: float) -> float:
        """Empirical quantile over the reservoir subsample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {q}")
        if not self._res:
            raise ValueError("no samples accumulated yet")
        return float(np.quantile(self.reservoir, q))


@dataclass(frozen=True)
class AdaptiveInfo:
    """Provenance of one adaptive (``precision=``-driven) estimate.

    ``rounds`` lists the repetition count of every round in execution
    order (``sum(rounds) == reps``); ``halfwidth`` is the anytime
    confidence-sequence half-width at stop and ``target_halfwidth`` the
    width the :class:`Precision` target resolved to against the final
    mean.  ``stopped_by`` is ``"target"``, ``"max_reps"`` or
    ``"max_seconds"``; ``met`` is ``halfwidth <= target_halfwidth``.
    """

    target: Precision
    reps: int
    rounds: tuple[int, ...]
    mean: float
    halfwidth: float
    target_halfwidth: float
    met: bool
    stopped_by: str
    elapsed_s: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.halfwidth

    def format(self) -> str:
        return (
            f"{self.reps} reps in {len(self.rounds)} round(s) "
            f"-> ±{self.halfwidth:.3g} (target ±{self.target_halfwidth:.3g}, "
            f"{'met' if self.met else 'not met'}, stopped by {self.stopped_by})"
        )
