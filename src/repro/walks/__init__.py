"""Random-walk engines: vectorised batch stepping, fast single walks,
Monte-Carlo hitting/cover estimators and Poissonisation helpers."""

from repro.walks.continuous import exponential_race, poissonise_steps
from repro.walks.empirical import (
    empirical_cover_times,
    empirical_hitting_times,
    empirical_max_hitting_of_path,
    empirical_set_hitting_times,
)
from repro.walks.engine import WalkEngine
from repro.walks.single import SingleWalkKernel, random_walk, walk_until_hit

__all__ = [
    "WalkEngine",
    "SingleWalkKernel",
    "random_walk",
    "walk_until_hit",
    "empirical_hitting_times",
    "empirical_set_hitting_times",
    "empirical_cover_times",
    "empirical_max_hitting_of_path",
    "poissonise_steps",
    "exponential_race",
]
