"""Fast single-walker primitives.

A single trajectory is inherently sequential, so NumPy gathers cannot help;
instead we drop to plain Python lists + a pre-drawn block of uniforms,
which profiling shows is ~3× faster than per-step ``Generator`` scalar
calls (each block refill amortises RNG overhead over ``_BLOCK`` steps).
The Sequential-IDLA driver builds on :class:`SingleWalkKernel`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.kernels import csr_arrays, get_kernels
from repro.utils.rng import as_generator

__all__ = ["SingleWalkKernel", "random_walk", "walk_until_hit"]

_BLOCK = 8192


class SingleWalkKernel:
    """Single-walker stepping with block-buffered randomness.

    Keeps the adjacency as Python ``list``s of ``list``s so the inner loop
    performs only list indexing and float multiplication — no NumPy scalar
    overhead.  Intended usage::

        kern = SingleWalkKernel(g, seed)
        pos = kern.step(pos)          # one step
    """

    __slots__ = ("adj", "_rng", "_buf", "_i")

    def __init__(self, g: Graph, seed=None):
        self.adj = g.adjacency_lists()
        self._rng = as_generator(seed)
        self._buf = self._rng.random(_BLOCK)
        self._i = 0

    def _uniform(self) -> float:
        i = self._i
        if i == _BLOCK:
            self._buf = self._rng.random(_BLOCK)
            i = 0
        self._i = i + 1
        return self._buf[i]

    def step(self, pos: int) -> int:
        """One simple-random-walk step from ``pos``."""
        nbrs = self.adj[pos]
        return nbrs[int(self._uniform() * len(nbrs))]

    def step_lazy(self, pos: int, hold: float = 0.5) -> int:
        """One lazy step (stay with probability ``hold``)."""
        if self._uniform() < hold:
            return pos
        return self.step(pos)


def random_walk(
    g: Graph, start: int, steps: int, seed=None, *, kernels=None
) -> np.ndarray:
    """Trajectory array of length ``steps + 1`` beginning at ``start``.

    A compiled kernel provider (``kernels`` kwarg > ``REPRO_KERNELS`` >
    auto-detect; see :mod:`repro.kernels`) replaces the Python loop on
    CSR graphs, bit-identical: same block cadence, same
    ``int(u * deg)`` offsets.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    out = np.empty(steps + 1, dtype=np.int64)
    out[0] = int(start)
    ks = get_kernels(kernels)
    if ks.compiled:
        csr = csr_arrays(g)
        if csr is not None:
            return ks.walk_positions(csr[0], csr[1], out, as_generator(seed), _BLOCK)
    kern = SingleWalkKernel(g, seed)
    pos = int(start)
    for t in range(steps):
        pos = kern.step(pos)
        out[t + 1] = pos
    return out


def walk_until_hit(
    g: Graph, start: int, targets, seed=None, *,
    max_steps: int | None = None, kernels=None,
) -> int:
    """Number of steps for a walk from ``start`` to reach the target set.

    Returns the step count (0 if ``start`` is already in the set).  Raises
    ``RuntimeError`` if ``max_steps`` is exceeded (default: no limit —
    finite on connected graphs with probability 1).  ``kernels`` selects
    a compiled inner loop exactly as in :func:`random_walk`.
    """
    target_mask = np.zeros(g.n, dtype=bool)
    t_arr = np.asarray(list(targets), dtype=np.int64)
    if t_arr.size == 0:
        raise ValueError("target set must be non-empty")
    target_mask[t_arr] = True
    if target_mask[start]:
        return 0  # before any kernel/RNG setup: the serial path draws nothing
    ks = get_kernels(kernels)
    if ks.compiled:
        csr = csr_arrays(g)
        if csr is not None:
            return ks.walk_until_hit(
                csr[0], csr[1], target_mask, int(start), as_generator(seed),
                _BLOCK,
                float(max_steps) if max_steps is not None else float("inf"),
                f"walk exceeded max_steps={max_steps} without hitting",
            )
    hit = target_mask.tolist()  # plain list: fastest membership in the loop
    kern = SingleWalkKernel(g, seed)
    pos = int(start)
    steps = 0
    limit = max_steps if max_steps is not None else float("inf")
    while True:
        pos = kern.step(pos)
        steps += 1
        if hit[pos]:
            return steps
        if steps >= limit:
            raise RuntimeError(f"walk exceeded max_steps={max_steps} without hitting")
