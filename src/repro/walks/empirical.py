"""Monte-Carlo estimators for hitting and cover times.

These cross-check the exact solvers in :mod:`repro.markov` and supply the
Table 1 support columns where exact computation is too expensive.  All
estimators are vectorised over repetitions: ``reps`` independent walkers
advance together and drop out as they finish, so the cost is proportional
to the *sum* of completion times, with NumPy-width inner steps.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.utils.rng import as_generator
from repro.walks.engine import WalkEngine

__all__ = [
    "empirical_hitting_times",
    "empirical_set_hitting_times",
    "empirical_cover_times",
    "empirical_max_hitting_of_path",
]


def empirical_hitting_times(
    g: Graph, source: int, target: int, reps: int, seed=None, *, lazy: bool = False
) -> np.ndarray:
    """``reps`` i.i.d. samples of the hitting time ``source -> target``."""
    return empirical_set_hitting_times(g, source, [target], reps, seed, lazy=lazy)


def empirical_set_hitting_times(
    g: Graph, source: int, targets, reps: int, seed=None, *, lazy: bool = False
) -> np.ndarray:
    """``reps`` i.i.d. samples of the hitting time of a set.

    Walkers advance synchronously; finished walkers are compacted out so
    late stragglers don't pay per-step cost for the finished majority.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    mask = np.zeros(g.n, dtype=bool)
    t_arr = np.asarray(list(targets), dtype=np.int64)
    mask[t_arr] = True
    out = np.zeros(reps, dtype=np.int64)
    if mask[source]:
        return out
    eng = WalkEngine(g, seed)
    pos = np.full(reps, source, dtype=np.int64)
    alive = np.arange(reps)
    t = 0
    while alive.size:
        t += 1
        if lazy:
            pos = eng.step_lazy(pos)
        else:
            pos = eng.step(pos, out=pos)
        done = mask[pos]
        if done.any():
            out[alive[done]] = t
            keep = ~done
            pos = pos[keep]
            alive = alive[keep]
    return out


def empirical_cover_times(g: Graph, start: int, reps: int, seed=None) -> np.ndarray:
    """``reps`` i.i.d. samples of the cover time from ``start``.

    Each repetition runs its own walk (cover time needs per-walk visited
    sets); the seen-set update is a vectorised scatter per step across all
    active repetitions.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    eng = WalkEngine(g, seed)
    n = g.n
    pos = np.full(reps, start, dtype=np.int64)
    seen = np.zeros((reps, n), dtype=bool)
    seen[:, start] = True
    remaining = np.full(reps, n - 1, dtype=np.int64)
    out = np.zeros(reps, dtype=np.int64)
    alive = np.arange(reps)
    t = 0
    while alive.size:
        t += 1
        pos = eng.step(pos, out=pos)
        newly = ~seen[alive, pos]
        seen[alive[newly], pos[newly]] = True
        remaining[alive[newly]] -= 1
        done = remaining[alive] == 0
        if done.any():
            out[alive[done]] = t
            keep = ~done
            pos = pos[keep]
            alive = alive[keep]
    return out


def empirical_max_hitting_of_path(n: int, reps: int, seed=None) -> np.ndarray:
    """Theorem 5.4's random variable ``M``: max of ``n`` independent
    endpoint-to-endpoint hitting times on the path ``P_n``.

    Returns ``reps`` samples of ``M``.  Implemented as ``n · reps``
    concurrent walkers from vertex 0 targeting ``n-1``, grouped per
    repetition.
    """
    from repro.graphs.generators.basic import path_graph

    g = path_graph(n)
    rng = as_generator(seed)
    out = np.empty(reps, dtype=np.int64)
    for r in range(reps):
        samples = empirical_set_hitting_times(
            g, 0, [n - 1], n, rng
        )
        out[r] = samples.max()
    return out
