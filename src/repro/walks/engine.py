"""Vectorised multi-walker stepping — the library's innermost hot loop.

One synchronous step for ``k`` walkers costs three NumPy gathers:

    ``deg = degrees[pos]; off = floor(U * deg); new = indices[indptr[pos] + off]``

which is cache-friendly (contiguous CSR arrays) and allocation-free when an
output buffer is supplied.  This is the "vectorise the for loop" pattern
from the HPC guide applied to the Parallel-IDLA inner loop, where all
unsettled particles advance together.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.utils.rng import as_generator

__all__ = ["WalkEngine"]


class WalkEngine:
    """Reusable stepping kernel bound to one graph.

    Parameters
    ----------
    g:
        The graph to walk on.
    seed:
        Anything accepted by :func:`repro.utils.rng.as_generator`.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> eng = WalkEngine(cycle_graph(8), seed=0)
    >>> pos = np.zeros(5, dtype=np.int64)
    >>> new = eng.step(pos)
    >>> bool(np.all((new == 1) | (new == 7)))
    True
    """

    __slots__ = ("graph", "rng", "_indptr", "_indices", "_degrees")

    def __init__(self, g: Graph, seed=None):
        self.graph = g
        self.rng = as_generator(seed)
        self._indptr = g.indptr
        self._indices = g.indices
        self._degrees = g.degrees

    # ------------------------------------------------------------------
    def step(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Advance every walker one simple-random-walk step.

        ``positions`` is not modified; pass ``out=positions`` for in-place
        updates (aliasing is safe: all reads happen before the write).
        """
        u = self.rng.random(positions.shape[0])
        deg = self._degrees[positions]
        offsets = (u * deg).astype(np.int64)
        # floating-point guard: u < 1 ensures offsets < deg, but be explicit
        np.minimum(offsets, deg - 1, out=offsets)
        flat = self._indptr[positions] + offsets
        if out is None:
            return self._indices[flat]
        np.take(self._indices, flat, out=out)
        return out

    def step_lazy(
        self,
        positions: np.ndarray,
        hold: float = 0.5,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance walkers one *lazy* step (stay put w.p. ``hold``)."""
        if not 0.0 <= hold < 1.0:
            raise ValueError(f"hold must be in [0, 1), got {hold}")
        move = self.rng.random(positions.shape[0]) >= hold
        new = self.step(positions)
        result = np.where(move, new, positions)
        if out is None:
            return result
        out[:] = result
        return out

    def step_subset(
        self, positions: np.ndarray, active: np.ndarray
    ) -> None:
        """In-place step only the walkers flagged in boolean mask ``active``."""
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return
        positions[idx] = self.step(positions[idx])

    # ------------------------------------------------------------------
    def trajectories(self, starts: np.ndarray, steps: int) -> np.ndarray:
        """Record ``steps`` synchronous steps: shape ``(steps+1, k)``.

        Row ``t`` is the position of every walker after ``t`` steps.
        Memory is ``O(steps · k)``; use for analysis, not long production runs.
        """
        starts = np.asarray(starts, dtype=np.int64)
        out = np.empty((steps + 1, starts.shape[0]), dtype=np.int64)
        out[0] = starts
        for t in range(steps):
            out[t + 1] = self.step(out[t])
        return out

    def endpoint_distribution(
        self, start: int, steps: int, walkers: int
    ) -> np.ndarray:
        """Empirical law of ``X_steps`` from ``walkers`` i.i.d. walks."""
        pos = np.full(walkers, start, dtype=np.int64)
        for _ in range(steps):
            self.step(pos, out=pos)
        counts = np.bincount(pos, minlength=self.graph.n)
        return counts / walkers
