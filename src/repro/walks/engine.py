"""Vectorised multi-walker stepping — the library's innermost hot loop.

One synchronous step for ``k`` walkers costs a degree gather, an offset
computation and one neighbour-slot resolution:

    ``deg = degrees[pos]; off = floor(U * deg); new = slots(pos, off)``

where ``slots`` is the graph's ``neighbor_slots`` kernel — an
``indices[indptr[pos] + off]`` CSR gather for :class:`repro.graphs.Graph`,
or pure arithmetic for the implicit families in
:mod:`repro.graphs.implicit`.  :func:`neighbor_step` is that one step;
:class:`WalkEngine` binds the kernel once per graph.  This is the
"vectorise the for loop" pattern from the HPC guide applied to the
Parallel-IDLA inner loop, where all unsettled particles advance together.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.graphs.csr import Graph, neighbor_kernel
from repro.utils.rng import as_generator

__all__ = ["WalkEngine", "csr_step", "neighbor_step"]


def neighbor_step(
    kernel,
    degrees: np.ndarray,
    positions: np.ndarray,
    u: np.ndarray,
    out: np.ndarray | None = None,
    xp=np,
) -> np.ndarray:
    """One simple-random-walk step through a graph-provided slot kernel.

    ``kernel`` is ``g.neighbor_slots`` (bind it via
    :func:`repro.graphs.csr.neighbor_kernel` for a clear error on
    kernel-less objects); ``u`` and ``positions`` must share a 1-D shape.
    Shared by :class:`WalkEngine` and the batched cross-repetition drivers
    in :mod:`repro.core.batched`, which assemble ``u`` from per-repetition
    streams.  ``xp`` is the array namespace of the active
    :class:`repro.backends.ArrayBackend` (numpy by default); callers on a
    non-default backend pass ``backend.xp`` so the offset arithmetic stays
    on the backend's arrays.
    """
    deg = degrees[positions]
    offsets = (u * deg).astype(np.int64)
    # floating-point guard: u < 1 ensures offsets < deg, but be explicit
    xp.minimum(offsets, deg - 1, out=offsets)
    return kernel(positions, offsets, out)


def csr_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    positions: np.ndarray,
    u: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Deprecated raw-CSR-array step; use :func:`neighbor_step` instead.

    The raw-array surface predates the neighbour-kernel seam and only
    works for materialised CSR graphs; every in-repo caller now binds a
    kernel (``repro.graphs.csr.neighbor_kernel(g)`` or a closure over
    bare arrays) and calls :func:`neighbor_step`, which serves the
    implicit families too.  This shim forwards there — same offsets,
    same gather, bit-identical output — and will be removed once
    external callers have migrated.
    """
    warnings.warn(
        "csr_step is deprecated; bind a slot kernel (e.g. "
        "repro.graphs.csr.neighbor_kernel(g)) and call neighbor_step instead",
        DeprecationWarning,
        stacklevel=2,
    )

    def kernel(pos, offsets, out=None):
        flat = indptr[pos] + offsets
        if out is None:
            return indices[flat]
        np.take(indices, flat, out=out)
        return out

    return neighbor_step(kernel, degrees, positions, u, out)


class WalkEngine:
    """Reusable stepping kernel bound to one graph.

    Parameters
    ----------
    g:
        The graph to walk on.
    seed:
        Anything accepted by :func:`repro.utils.rng.as_generator`.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> eng = WalkEngine(cycle_graph(8), seed=0)
    >>> pos = np.zeros(5, dtype=np.int64)
    >>> new = eng.step(pos)
    >>> bool(np.all((new == 1) | (new == 7)))
    True
    """

    __slots__ = (
        "graph", "rng", "backend", "kernels", "_kernel", "_degrees",
        "_xp", "_fused",
    )

    def __init__(self, g: Graph, seed=None, backend=None, kernels=None):
        from repro.backends import backend_of
        from repro.kernels import get_kernels

        self.graph = g
        self.rng = as_generator(seed)
        self.backend = backend_of(g, backend)
        self.kernels = get_kernels(kernels)
        self._xp = self.backend.xp
        self._kernel = neighbor_kernel(g)
        self._degrees = g.degrees
        # compiled fused step only on exact-bitstream host backends, and
        # only for materialised-CSR graphs (stepper() returns None else)
        self._fused = (
            self.kernels.stepper(g)
            if self.kernels.compiled and self.backend.exact_bitstream
            else None
        )

    # ------------------------------------------------------------------
    def step(self, positions: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Advance every walker one simple-random-walk step.

        ``positions`` is not modified; pass ``out=positions`` for in-place
        updates (aliasing is safe: all reads happen before the write).
        """
        u = self.rng.random(positions.shape[0])
        if self._fused is not None:
            return self._fused(positions, u, out)
        return neighbor_step(
            self._kernel, self._degrees, positions, u, out, xp=self._xp
        )

    def step_batch(
        self,
        positions: np.ndarray,
        out: np.ndarray | None = None,
        u: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance an ``(R, k)`` array of walker positions one step each.

        Rows are independent walker sets (e.g. one Monte-Carlo repetition
        per row); the whole batch advances in one set of CSR gathers —
        the vectorise-the-outer-loop move the batched drivers build on.

        Parameters
        ----------
        positions:
            Integer array of any shape (typically ``(R, k)``); not
            modified unless ``out=positions``.
        out:
            Optional C-contiguous output buffer of the same shape
            (aliasing with ``positions`` is safe).
        u:
            Optional pre-drawn uniforms in ``[0, 1)`` of the same shape.
            By default they are drawn row-major from the engine's own
            generator; the batched drivers pass per-repetition streams
            here instead.

        Examples
        --------
        >>> from repro.graphs import cycle_graph
        >>> eng = WalkEngine(cycle_graph(8), seed=0)
        >>> pos = np.zeros((4, 5), dtype=np.int64)
        >>> new = eng.step_batch(pos)
        >>> new.shape
        (4, 5)
        >>> bool(np.all((new == 1) | (new == 7)))
        True
        """
        positions = np.asarray(positions)
        if u is None:
            u = self.rng.random(positions.shape)
        else:
            u = np.asarray(u)
            if u.shape != positions.shape:
                raise ValueError(
                    f"u must match positions shape {positions.shape}, got {u.shape}"
                )
        flat_out = None
        if out is not None:
            if out.shape != positions.shape:
                raise ValueError(
                    f"out must match positions shape {positions.shape}, got {out.shape}"
                )
            if not out.flags.c_contiguous:
                raise ValueError("out must be C-contiguous")
            flat_out = out.reshape(-1)
        flat_pos = positions.reshape(-1)
        flat_u = self.backend.ascontiguousarray(u).reshape(-1)
        if self._fused is not None:
            result = self._fused(flat_pos, flat_u, flat_out)
        else:
            result = neighbor_step(
                self._kernel, self._degrees, flat_pos, flat_u, flat_out,
                xp=self._xp,
            )
        return out if out is not None else result.reshape(positions.shape)

    def step_lazy(
        self,
        positions: np.ndarray,
        hold: float = 0.5,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance walkers one *lazy* step (stay put w.p. ``hold``)."""
        if not 0.0 <= hold < 1.0:
            raise ValueError(f"hold must be in [0, 1), got {hold}")
        move = self.rng.random(positions.shape[0]) >= hold
        new = self.step(positions)
        result = np.where(move, new, positions)
        if out is None:
            return result
        out[:] = result
        return out

    def step_subset(
        self, positions: np.ndarray, active: np.ndarray
    ) -> None:
        """In-place step only the walkers flagged in boolean mask ``active``."""
        idx = self.backend.flatnonzero(active)
        if idx.size == 0:
            return
        positions[idx] = self.step(positions[idx])

    # ------------------------------------------------------------------
    def trajectories(self, starts: np.ndarray, steps: int) -> np.ndarray:
        """Record ``steps`` synchronous steps: shape ``(steps+1, k)``.

        Row ``t`` is the position of every walker after ``t`` steps.
        Memory is ``O(steps · k)``; use for analysis, not long production runs.
        """
        starts = np.asarray(starts, dtype=np.int64)
        out = np.empty((steps + 1, starts.shape[0]), dtype=np.int64)
        out[0] = starts
        for t in range(steps):
            out[t + 1] = self.step(out[t])
        return out

    def endpoint_distribution(
        self, start: int, steps: int, walkers: int
    ) -> np.ndarray:
        """Empirical law of ``X_steps`` from ``walkers`` i.i.d. walks."""
        pos = self.backend.full(walkers, start, dtype=np.int64)
        for _ in range(steps):
            self.step(pos, out=pos)
        counts = self.backend.bincount(pos, minlength=self.graph.n)
        return counts / walkers
