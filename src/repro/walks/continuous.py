"""Continuous-time walk helpers (Poissonisation).

The paper's continuous-time processes (§4.3) attach i.i.d. ``Exp(1)``
holding times to discrete jumps.  Two utilities support that reduction:

* :func:`poissonise_steps` — total elapsed time of a ``k``-step walk is
  ``Gamma(k, 1)``; sampling it directly avoids simulating every clock ring.
* :func:`exponential_race` — given ``k`` rate-1 clocks, the time until the
  next ring is ``Exp(k)`` and the ringer is uniform — the Gillespie step
  used by the CTU-IDLA driver.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["poissonise_steps", "exponential_race"]


def poissonise_steps(step_counts, seed=None, *, rate: float = 1.0) -> np.ndarray:
    """Continuous durations for walks with the given discrete step counts.

    For each count ``k``, draws ``Gamma(k, 1/rate)`` — the sum of ``k``
    independent ``Exp(rate)`` holding times.  Zero counts map to duration 0.

    >>> d = poissonise_steps([0, 5], seed=1)
    >>> float(d[0]), bool(d[1] > 0)
    (0.0, True)
    """
    rng = as_generator(seed)
    counts = np.asarray(step_counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("step counts must be >= 0")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    out = np.zeros(counts.shape, dtype=np.float64)
    pos = counts > 0
    out[pos] = rng.gamma(shape=counts[pos].astype(np.float64), scale=1.0 / rate)
    return out


def exponential_race(k: int, rng, *, rate: float = 1.0) -> tuple[float, int]:
    """One Gillespie step for ``k`` rate-``rate`` exponential clocks.

    Returns ``(dt, winner)``: the waiting time ``Exp(k · rate)`` and the
    index ``winner ∈ [0, k)`` of the clock that rang (uniform, independent
    of ``dt`` by the superposition property).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = as_generator(rng)
    dt = rng.exponential(1.0 / (k * rate))
    winner = int(rng.integers(k))
    return dt, winner
