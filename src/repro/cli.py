"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``families``
    List the registered graph families with Table 1 predictions.
``run``
    Run one dispersion process and print the result summary.
``sweep``
    Size-sweep a family and print means + scaling fits.
``bounds``
    Print every theorem bound for one instance next to a measured mean.
``constants``
    Print the paper's closed-form constants.
``table1``
    Reproduce the paper's Table 1 at one size per family.

Examples
--------
::

    python -m repro families
    python -m repro run cycle 64 --process parallel --reps 10
    python -m repro sweep complete 64 128 256 --reps 8
    python -m repro bounds hypercube 64
"""

from __future__ import annotations

import argparse
import sys


__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    # Deferred import (numpy-heavy) — the registry is the single source of
    # truth for --process choices, so adding a driver updates the CLI too.
    from repro.experiments.runner import PROCESS_DRIVERS

    p = argparse.ArgumentParser(
        prog="repro",
        description="Dispersion time of random walks on finite graphs (SPAA 2019 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list graph families and predictions")
    sub.add_parser("constants", help="print the paper's constants")

    t1 = sub.add_parser("table1", help="reproduce Table 1 at one size per family")
    t1.add_argument("--reps", type=int, default=8)
    t1.add_argument("--seed", type=int, default=0)

    def add_precision_flags(sp):
        # adaptive replication: either flag switches the estimate from a
        # fixed --reps count to rounds that stop when the anytime CI is
        # narrow enough (--reps then sizes the first round)
        sp.add_argument(
            "--ci-rel",
            type=float,
            default=None,
            metavar="FRAC",
            help="adaptive: stop when the anytime CI half-width falls below "
            "FRAC x mean (0.02 = within 2%%); --reps sizes the first round",
        )
        sp.add_argument(
            "--ci-abs",
            type=float,
            default=None,
            metavar="W",
            help="adaptive: absolute half-width target in steps",
        )
        sp.add_argument(
            "--level",
            type=float,
            default=0.95,
            help="confidence level of the anytime sequence (default 0.95)",
        )
        sp.add_argument(
            "--max-reps",
            type=int,
            default=4096,
            help="adaptive repetition budget (default 4096)",
        )

    run = sub.add_parser("run", help="run one dispersion estimate")
    run.add_argument("family")
    run.add_argument("n", type=int)
    run.add_argument("--process", default="sequential", choices=sorted(PROCESS_DRIVERS))
    run.add_argument("--reps", type=int, default=8)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--lazy", action="store_true")
    add_precision_flags(run)
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan repetition shards out over N worker processes "
        "(shared-memory graph export; default: run in-process)",
    )
    run.add_argument(
        "--batched",
        default="auto",
        choices=["auto", "true", "false"],
        help="lock-step batched dispatch: auto (default heuristic), "
        "true (force, per shard when --jobs > 1), false (serial oracle)",
    )
    run.add_argument(
        "--state-budget",
        default=None,
        metavar="SPEC",
        help="cap batched resident state: bytes with K/M/G suffix "
        "('256M', '1G') or live particles ('500000p'); repetitions then "
        "run in budget-sized cohorts (per worker when --jobs > 1) "
        "without changing any sample",
    )
    run.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="array backend for the lock-step drivers (registered name, "
        "e.g. numpy_strict); unset, the REPRO_BACKEND environment "
        "variable then the numpy default apply",
    )
    run.add_argument(
        "--kernels",
        default=None,
        metavar="NAME",
        help="compiled inner-loop kernel provider for the lock-step "
        "drivers (numba, cffi, numpy); unset, the REPRO_KERNELS "
        "environment variable then auto-detection apply",
    )

    sw = sub.add_parser("sweep", help="sweep sizes and fit scaling laws")
    sw.add_argument("family")
    sw.add_argument("sizes", type=int, nargs="+")
    sw.add_argument("--reps", type=int, default=8)
    sw.add_argument("--seed", type=int, default=0)
    add_precision_flags(sw)

    bd = sub.add_parser("bounds", help="theorem bounds vs a measured mean")
    bd.add_argument("family")
    bd.add_argument("n", type=int)
    bd.add_argument("--reps", type=int, default=20)
    bd.add_argument("--seed", type=int, default=0)
    return p


def _cmd_families(out) -> int:
    from repro.experiments import render_table
    from repro.theory import FAMILIES, TABLE1

    rows = []
    for name in sorted(FAMILIES):
        t1 = TABLE1.get(name)
        rows.append(
            [
                name,
                t1.seq.label if t1 else "?",
                t1.par.label if t1 else "?",
                t1.hitting.label if t1 else "?",
                t1.mixing.label if t1 else "?",
            ]
        )
    print(render_table(["family", "t_seq", "t_par", "t_hit", "t_mix"], rows), file=out)
    return 0


def _cmd_table1(args, out) -> int:
    from repro.experiments import build_table1_report, render_table1_report

    entries = build_table1_report(reps=args.reps, seed=args.seed)
    print(render_table1_report(entries), file=out)
    print(
        "\n(seq/order, par/order = measured mean / paper growth law; see "
        "benchmarks/ for full sweeps and fits)",
        file=out,
    )
    return 0


def _cmd_constants(out) -> int:
    from repro.bounds import KAPPA_CC, KAPPA_P_SIMULATED, PI2_OVER_6

    print(f"kappa_cc (Lemma 5.1, corrected series) = {KAPPA_CC:.6f}", file=out)
    print(f"pi^2/6   (Theorem 5.2)                 = {PI2_OVER_6:.6f}", file=out)
    print(f"kappa_p  (Table 1 footnote, simulated) = {KAPPA_P_SIMULATED:.2f}", file=out)
    print(
        f"par/seq clique slowdown                = {PI2_OVER_6 / KAPPA_CC:.4f}",
        file=out,
    )
    return 0


def _precision_from_args(args):
    """Build the Precision target from --ci-rel/--ci-abs (None if neither)."""
    if args.ci_rel is None and args.ci_abs is None:
        return None
    from repro.core.anytime import Precision

    return Precision(
        ci_rel=args.ci_rel,
        ci_abs=args.ci_abs,
        level=args.level,
        initial=args.reps,
        max_reps=max(args.max_reps, args.reps),
    )


def _cmd_run(args, out) -> int:
    from repro.experiments import estimate_dispersion
    from repro.experiments.runner import LAZY_PROCESSES
    from repro.theory import get_family

    # Validate flag compatibility before building the graph: a bad flag
    # combination must not first pay for (or crash in) a huge construction.
    if args.lazy and args.process not in LAZY_PROCESSES:
        supported = "/".join(sorted(LAZY_PROCESSES))
        print(f"--lazy is only supported for {supported}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        precision = _precision_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    kwargs = {"lazy": True} if args.lazy else {}
    if args.state_budget is not None:
        from repro.core.budget import parse_state_budget

        try:
            kwargs["state_budget"] = parse_state_budget(args.state_budget)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.backend is not None:
        from repro.backends import get_backend

        try:
            kwargs["backend"] = get_backend(args.backend)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.kernels is not None:
        from repro.kernels import get_kernels

        try:
            # resolve eagerly so an unknown/unavailable provider fails
            # here with a clean message, not deep inside a driver
            kwargs["kernels"] = get_kernels(args.kernels)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    fam = get_family(args.family)
    g = fam.build(args.n, seed=args.seed)
    est = estimate_dispersion(
        g,
        args.process,
        origin=fam.worst_origin(g),
        reps=None if precision is not None else args.reps,
        precision=precision,
        seed=args.seed,
        n_jobs=args.jobs,
        batched={"auto": "auto", "true": True, "false": False}[args.batched],
        **kwargs,
    )
    print(est.format(), file=out)
    print(f"  total steps: {est.total_steps.format()}", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    from repro.experiments import render_table, sweep_dispersion
    from repro.theory import TABLE1

    try:
        precision = _precision_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    res = sweep_dispersion(
        args.family,
        args.sizes,
        reps=args.reps,
        precision=precision,
        seed=args.seed,
    )
    rows = [
        [r["n"], r["process"], round(r["mean"], 1), round(r["sem"], 1)]
        for r in res.rows()
    ]
    print(render_table(["n", "process", "E[τ]", "sem"], rows), file=out)
    if len(res.sizes()) < 2:
        # requested sizes may all snap to one realisable instance (the
        # sweep dedupes those); a scaling fit needs at least two sizes
        print(
            "(single realised size — need two or more distinct sizes "
            "for scaling fits)",
            file=out,
        )
        return 0
    t1 = TABLE1.get(res.family)
    for proc in res.processes:
        fit = res.power_law(proc)
        line = f"{proc}: exponent {fit.exponent:.2f} (R²={fit.r_squared:.3f})"
        if t1 is not None:
            law = t1.seq if proc == "sequential" else t1.par
            cfit = res.constant_fit(proc, law)
            line += f"; vs {law.label}: constant {cfit.constant:.3g}, trend {cfit.trend:+.2f}"
        print(line, file=out)
    return 0


def _cmd_bounds(args, out) -> int:
    from repro.bounds import (
        proposition_3_9_bound,
        theorem_3_1_threshold,
        theorem_3_6_bound,
        theorem_3_7_tree_bound,
    )
    from repro.experiments import estimate_dispersion, render_table
    from repro.graphs.properties import is_tree
    from repro.theory import get_family

    fam = get_family(args.family)
    g = fam.build(args.n, seed=args.seed)
    est = estimate_dispersion(
        g, "sequential", origin=fam.worst_origin(g), reps=args.reps, seed=args.seed
    )
    measured = est.dispersion.mean
    rows = [
        ["measured E[τ_seq]", round(measured, 1)],
        ["Thm 3.1 upper: 6 t_hit log₂n", round(theorem_3_1_threshold(g), 1)],
        ["Thm 3.6 lower: 2|E|/Δ", round(theorem_3_6_bound(g), 1)],
        ["Prop 3.9 lower: t_mix (lazy)", round(proposition_3_9_bound(g), 1)],
    ]
    if is_tree(g):
        rows.append(["Thm 3.7 lower: 2n−3", round(theorem_3_7_tree_bound(g), 1)])
    print(render_table(["quantity", "value"], rows), file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "families":
        return _cmd_families(out)
    if args.command == "constants":
        return _cmd_constants(out)
    if args.command == "table1":
        return _cmd_table1(args, out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "bounds":
        return _cmd_bounds(args, out)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
