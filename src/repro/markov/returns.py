"""Return probabilities ``p^t(u, u)`` and short-horizon visit counts.

Appendix C bounds hitting times of sets through return probabilities:
Lemma C.1 gives ``p̃^t(u, v) ≤ d(v)/2m + sqrt(d(v)/d(u)) λ₂^t`` for the lazy
walk, and the hypercube proof (Thm 5.7) sums returns over a ``log² n``
window.  Both the exact quantities and the spectral estimate live here.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.spectral import second_absolute_eigenvalue
from repro.markov.transition import lazy_transition_matrix, transition_matrix

__all__ = [
    "step_distributions",
    "return_probabilities",
    "expected_visits",
    "lemma_c1_bound",
]


def step_distributions(
    g: Graph, source: int, t: int, *, lazy: bool = False
) -> np.ndarray:
    """Matrix of shape ``(t + 1, n)``: row ``s`` is the law of ``X_s`` from source.

    Iterative vector-matrix products, ``O(t n²)`` — used for short horizons.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
    out = np.zeros((t + 1, g.n))
    out[0, source] = 1.0
    for s in range(t):
        out[s + 1] = out[s] @ P
    return out


def return_probabilities(g: Graph, u: int, t: int, *, lazy: bool = False) -> np.ndarray:
    """Vector ``[p^0(u,u), …, p^t(u,u)]``."""
    return step_distributions(g, u, t, lazy=lazy)[:, u]


def expected_visits(
    g: Graph, source: int, targets, t: int, *, lazy: bool = False
) -> float:
    """``E[# visits to S during steps 0..t]`` for a walk from ``source``.

    This is ``Σ_{s≤t} Σ_{v∈S} p^s(source, v)`` — the quantity ``E_π[Z |
    Z ≥ 1]``-style arguments bound in Lemma C.2 and Theorem 5.7.
    """
    dist = step_distributions(g, source, t, lazy=lazy)
    t_arr = np.asarray(list(targets), dtype=np.int64)
    return float(dist[:, t_arr].sum())


def lemma_c1_bound(g: Graph, u: int, v: int, t: int) -> float:
    """Lemma C.1: ``p̃^t(u, v) ≤ d(v)/2m + sqrt(d(v)/d(u)) λ₂^t`` (lazy walk).

    Stated in the paper for regular graphs; implemented for the general
    reversible case with the degree-ratio prefactor shown.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    lam = second_absolute_eigenvalue(g, lazy=True)
    deg = g.degrees
    two_m = float(deg.sum())
    return float(deg[v] / two_m + np.sqrt(deg[v] / deg[u]) * lam**t)
