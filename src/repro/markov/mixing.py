"""Mixing times: exact total-variation computation and spectral bounds.

The paper works with the lazy walk's mixing time ``t_mix = t_mix(1/4)``
(worst-case start).  We provide:

* :func:`total_variation_distance` — TV between two distributions.
* :func:`worst_case_tv` — ``d(t) = max_u ||P^t(u,·) − π||_TV``.
* :func:`mixing_time` — exact smallest ``t`` with ``d(t) ≤ ε`` (computed by
  doubling + bisection on ``t`` with an eigendecomposition so each probe is
  one ``O(n³)`` reconstruction, not ``t`` matrix powers).
* :func:`mixing_time_bounds` — the classic relaxation-time sandwich
  ``(t_rel − 1) log(1/2ε) ≤ t_mix(ε) ≤ t_rel log(1/(ε π_min))``
  [LPW Thms 12.4/12.5], used by Proposition 3.9.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.spectral import relaxation_time
from repro.markov.stationary import stationary_distribution
from repro.markov.transition import lazy_transition_matrix, transition_matrix

__all__ = [
    "total_variation_distance",
    "worst_case_tv",
    "mixing_time",
    "mixing_time_bounds",
]


def total_variation_distance(p, q) -> float:
    """``||p - q||_TV = (1/2) Σ |p_i - q_i|``."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have equal length")
    return 0.5 * float(np.abs(p - q).sum())


class _SpectralPropagator:
    """Reconstruct ``P^t`` for arbitrary ``t`` from one eigendecomposition.

    For the reversible walk, ``P = D^{-1/2} S D^{1/2}`` with ``S = UΛUᵀ``
    symmetric, hence ``P^t = D^{-1/2} U Λ^t Uᵀ D^{1/2}`` — each probe of a
    new ``t`` costs one dense multiply instead of ``t`` of them.
    """

    def __init__(self, g: Graph, *, lazy: bool):
        P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
        deg = g.degrees.astype(np.float64)
        self._d_sqrt = np.sqrt(deg)
        S = P * (self._d_sqrt[:, None] / self._d_sqrt[None, :])
        S = 0.5 * (S + S.T)
        self._evals, self._evecs = np.linalg.eigh(S)
        self._pi = stationary_distribution(g)

    def worst_tv(self, t: int) -> float:
        lam_t = np.sign(self._evals) ** (t % 2) * np.abs(self._evals) ** t
        # Guard 0^0 = 1 and underflow of tiny |λ|^t.
        lam_t = np.where(np.abs(self._evals) == 0.0, float(t == 0), lam_t)
        M = (self._evecs * lam_t[None, :]) @ self._evecs.T
        Pt = M * (self._d_sqrt[None, :] / self._d_sqrt[:, None])
        diffs = np.abs(Pt - self._pi[None, :]).sum(axis=1)
        return 0.5 * float(diffs.max())


def worst_case_tv(g: Graph, t: int, *, lazy: bool = True) -> float:
    """``d(t) = max_u ||P^t(u,·) − π||_TV`` for the (lazy) walk."""
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return _SpectralPropagator(g, lazy=lazy).worst_tv(t)


def mixing_time(
    g: Graph, eps: float = 0.25, *, lazy: bool = True, t_max: int = 10_000_000
) -> int:
    """Exact ``t_mix(ε) = min{t : d(t) ≤ ε}`` of the (lazy) walk.

    Uses doubling to bracket then bisection (``d(t)`` is non-increasing).
    Raises if the chain has not mixed by ``t_max`` (periodic non-lazy
    chains on bipartite graphs never mix — use ``lazy=True`` there).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    prop = _SpectralPropagator(g, lazy=lazy)
    if prop.worst_tv(0) <= eps:
        return 0
    hi = 1
    while prop.worst_tv(hi) > eps:
        hi *= 2
        if hi > t_max:
            raise RuntimeError(
                f"chain not mixed to eps={eps} within t_max={t_max} steps "
                "(periodic chain? pass lazy=True)"
            )
    lo = hi // 2  # d(lo) > eps, d(hi) <= eps
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if prop.worst_tv(mid) <= eps:
            hi = mid
        else:
            lo = mid
    return hi


def mixing_time_bounds(
    g: Graph, eps: float = 0.25, *, lazy: bool = True
) -> tuple[float, float]:
    """Relaxation-time sandwich ``(lower, upper)`` on ``t_mix(ε)``.

    ``lower = (t_rel - 1) · log(1/(2ε))`` and
    ``upper = t_rel · log(1/(ε π_min))`` [LPW Theorems 12.5, 12.4].
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    trel = relaxation_time(g, lazy=lazy)
    pi_min = float(stationary_distribution(g).min())
    lower = max(0.0, (trel - 1.0) * np.log(1.0 / (2.0 * eps)))
    upper = trel * np.log(1.0 / (eps * pi_min))
    return lower, upper
