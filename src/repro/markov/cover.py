"""Cover-time bounds (Matthews) and exact small-graph helpers.

Table 1's "Cover time" column is reported analytically; the library
provides the Matthews sandwich

    ``t_cov ≤ t_hit(G) · H_n``  and  ``t_cov ≥ max_A t_hit^min(A) · H_{|A|-1}``

plus an empirical estimator in :mod:`repro.walks.empirical` for
cross-checking on simulated walks.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.hitting import hitting_time_matrix

__all__ = ["harmonic_number", "matthews_upper_bound", "matthews_lower_bound"]


def harmonic_number(n: int) -> float:
    """``H_n = 1 + 1/2 + … + 1/n`` (exact partial sum)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return float(np.sum(1.0 / np.arange(1, n + 1))) if n else 0.0


def matthews_upper_bound(g: Graph, *, lazy: bool = False) -> float:
    """``t_cov ≤ H_{n-1} · max_{u≠v} t_hit(u, v)`` (Matthews' method)."""
    H = hitting_time_matrix(g, lazy=lazy)
    return harmonic_number(g.n - 1) * float(H.max())


def matthews_lower_bound(g: Graph, *, lazy: bool = False, subset=None) -> float:
    """Matthews lower bound over a vertex subset ``A``:

    ``t_cov ≥ H_{|A|-1} · min_{u≠v ∈ A} t_hit(u, v)``.

    ``subset=None`` uses all of ``V``.  A good ``A`` (spread-out vertices)
    tightens the bound; callers may pass e.g. the leaves of a tree.
    """
    H = hitting_time_matrix(g, lazy=lazy)
    if subset is None:
        idx = np.arange(g.n)
    else:
        idx = np.asarray(list(subset), dtype=np.int64)
        if idx.size < 2:
            raise ValueError("subset must contain at least 2 vertices")
    sub = H[np.ix_(idx, idx)]
    off_diag = sub[~np.eye(idx.size, dtype=bool)]
    return harmonic_number(idx.size - 1) * float(off_diag.min())
