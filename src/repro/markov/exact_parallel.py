"""Exact analysis of Parallel-IDLA on *very* small graphs.

Unlike the sequential process (whose aggregate DP scales to n ≈ 14), the
parallel process carries the joint positions of all unsettled particles,
so exact analysis enumerates the full Markov chain on states

    ``(occupied mask, positions of unsettled particles in index order)``

with synchronous product transitions and min-index settlement — exactly
the driver's semantics.  Feasible for ``n ≤ ~6`` (cliques) / ``n ≤ ~7``
(sparse graphs); priceless as a test oracle:

* ``E[τ_par]`` exactly — Theorem 4.1's domination ``E[τ_seq] ≤ E[τ_par]``
  becomes an *exact* inequality check against
  :func:`repro.markov.exact_idla.exact_expected_sequential_dispersion`;
* ``E[total steps]`` exactly — Theorem 4.1's equidistribution says this
  must equal the sequential DP's value **exactly**: two independent exact
  computations meeting at one number is the strongest validation the
  library has of the Cut & Paste coupling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph

__all__ = ["ParallelExact", "analyze_parallel_idla"]


@dataclass(frozen=True)
class ParallelExact:
    """Exact quantities of Parallel-IDLA from a fixed origin.

    ``expected_dispersion`` is ``E[τ_par]`` (rounds until the last
    settlement); ``expected_total_steps`` counts one step per unsettled
    particle per round; ``num_states`` is the reachable state count.
    """

    expected_dispersion: float
    expected_total_steps: float
    num_states: int


def _settle(mask: int, positions: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
    """Apply min-index settlement to freshly moved particles.

    ``positions`` are the unsettled particles' vertices in particle-index
    order; earlier entries have higher priority (matching the driver).
    Returns the new occupied mask and the remaining unsettled positions.
    """
    claimed: dict[int, int] = {}
    for idx, v in enumerate(positions):
        if not (mask >> v) & 1 and v not in claimed:
            claimed[v] = idx
    if not claimed:
        return mask, positions
    new_mask = mask
    survivors = []
    for idx, v in enumerate(positions):
        if claimed.get(v) == idx:
            new_mask |= 1 << v
        else:
            survivors.append(v)
    return new_mask, tuple(survivors)


def analyze_parallel_idla(
    g: Graph,
    origin: int = 0,
    *,
    max_states: int = 200_000,
) -> ParallelExact:
    """Enumerate the Parallel-IDLA Markov chain and solve for expectations.

    Parameters
    ----------
    max_states:
        Safety valve; the state space is roughly ``2^n · n^k`` in the worst
        case.  A ``ValueError`` suggests the graph is too large.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> res = analyze_parallel_idla(path_graph(3), origin=1)
    >>> round(res.expected_dispersion, 6)  # 1 + P[collision]·t_hit = 1 + 4/2
    3.0
    """
    n = g.n
    if not 0 <= origin < n:
        raise ValueError(f"origin out of range: {origin}")
    if n > 8:
        raise ValueError(
            f"exact parallel analysis enumerates joint positions; n={n} is "
            "too large (limit 8). Use Monte Carlo instead."
        )
    adj = g.adjacency_lists()
    degs = [len(a) for a in adj]

    # round-0 settlement: all n particles at the origin, particle 0 wins.
    mask0, pos0 = _settle(0, tuple([origin] * n))
    start = (mask0, pos0)

    # BFS over reachable states, building sparse transition structure.
    index: dict[tuple[int, tuple[int, ...]], int] = {start: 0}
    frontier = [start]
    transitions: list[dict[int, float]] = []
    unsettled_count: list[int] = []
    while frontier:
        state = frontier.pop()
        # ensure transitions list slot exists for this state id (BFS order
        # of processing differs from insertion order; index by id)
        sid = index[state]
        while len(transitions) <= sid:
            transitions.append({})
            unsettled_count.append(0)
        mask, positions = state
        k = len(positions)
        unsettled_count[sid] = k
        if k == 0:
            continue  # absorbing
        out: dict[int, float] = {}
        prob_each = 1.0
        for v in positions:
            prob_each /= degs[v]
        for choice in itertools.product(*(adj[v] for v in positions)):
            new_mask, new_pos = _settle(mask, tuple(choice))
            nxt = (new_mask, new_pos)
            nid = index.get(nxt)
            if nid is None:
                nid = len(index)
                if nid >= max_states:
                    raise ValueError(
                        f"state space exceeded max_states={max_states}"
                    )
                index[nxt] = nid
                frontier.append(nxt)
            out[nid] = out.get(nid, 0.0) + prob_each
        transitions[sid] = out
    while len(transitions) < len(index):  # trailing absorbing states
        transitions.append({})
        unsettled_count.append(0)

    S = len(index)
    # Solve h = 1 + P h on transient states (dispersion: +1 per round) and
    # h_tot = k + P h_tot (total steps: +k per round).
    transient = [s for s in range(S) if unsettled_count[s] > 0]
    tidx = {s: i for i, s in enumerate(transient)}
    T = len(transient)
    A = np.zeros((T, T))
    b_disp = np.ones(T)
    b_tot = np.array([float(unsettled_count[s]) for s in transient])
    for s in transient:
        i = tidx[s]
        A[i, i] += 1.0
        for nxt, p in transitions[s].items():
            j = tidx.get(nxt)
            if j is not None:
                A[i, j] -= p
    sol = np.linalg.solve(A, np.column_stack([b_disp, b_tot]))
    start_id = 0
    if unsettled_count[start_id] == 0:  # n == 1
        return ParallelExact(0.0, 0.0, S)
    i0 = tidx[start_id]
    return ParallelExact(
        expected_dispersion=float(sol[i0, 0]),
        expected_total_steps=float(sol[i0, 1]),
        num_states=S,
    )
