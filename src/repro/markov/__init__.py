"""Markov-chain substrate: transition matrices, spectra, hitting and mixing.

Everything here is *exact* (up to linear-algebra precision): simulation-based
estimators live in :mod:`repro.walks.empirical` so the two can be compared.
"""

from repro.markov.cover import (
    harmonic_number,
    matthews_lower_bound,
    matthews_upper_bound,
)
from repro.markov.exact_idla import (
    SequentialExact,
    analyze_sequential_idla,
    exact_expected_sequential_dispersion,
    sequential_dispersion_cdf,
)
from repro.markov.exact_parallel import ParallelExact, analyze_parallel_idla
from repro.markov.hitting import (
    commute_time,
    hitting_time,
    hitting_time_matrix,
    hitting_times_to_target,
    max_hitting_time,
)
from repro.markov.mixing import (
    mixing_time,
    mixing_time_bounds,
    total_variation_distance,
    worst_case_tv,
)
from repro.markov.resistance import (
    commute_time_from_resistance,
    effective_resistance,
    effective_resistance_matrix,
    laplacian,
)
from repro.markov.returns import (
    expected_visits,
    lemma_c1_bound,
    return_probabilities,
    step_distributions,
)
from repro.markov.sets import (
    max_set_hitting_time,
    set_hitting_time_from,
    set_hitting_times,
    stationary_set_hitting_time,
)
from repro.markov.spectral import (
    conductance_cheeger_bounds,
    relaxation_time,
    second_absolute_eigenvalue,
    second_eigenvalue,
    spectral_gap,
    walk_eigenvalues,
)
from repro.markov.stationary import stationary_distribution, stationary_from_matrix
from repro.markov.transition import (
    laziness_matrix,
    lazy_transition_matrix,
    sparse_transition_matrix,
    transition_matrix,
)

__all__ = [
    "transition_matrix",
    "lazy_transition_matrix",
    "sparse_transition_matrix",
    "laziness_matrix",
    "stationary_distribution",
    "stationary_from_matrix",
    "walk_eigenvalues",
    "second_eigenvalue",
    "second_absolute_eigenvalue",
    "spectral_gap",
    "relaxation_time",
    "conductance_cheeger_bounds",
    "hitting_times_to_target",
    "hitting_time",
    "hitting_time_matrix",
    "max_hitting_time",
    "commute_time",
    "set_hitting_times",
    "set_hitting_time_from",
    "stationary_set_hitting_time",
    "max_set_hitting_time",
    "total_variation_distance",
    "worst_case_tv",
    "mixing_time",
    "mixing_time_bounds",
    "laplacian",
    "effective_resistance",
    "effective_resistance_matrix",
    "commute_time_from_resistance",
    "harmonic_number",
    "matthews_upper_bound",
    "matthews_lower_bound",
    "analyze_sequential_idla",
    "SequentialExact",
    "sequential_dispersion_cdf",
    "exact_expected_sequential_dispersion",
    "analyze_parallel_idla",
    "ParallelExact",
    "step_distributions",
    "return_probabilities",
    "expected_visits",
    "lemma_c1_bound",
]
