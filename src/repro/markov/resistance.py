"""Effective resistances and the commute-time identity.

The paper's Theorem 3.6 uses ``t_com(u, v) = 2|E| · R(u, v)`` (the
commute-time identity) and ``R(w, v) ≥ 1/deg(w) + 1/deg(v)`` — both
reproduced and unit-tested here.  Resistances are computed from the
Moore–Penrose pseudo-inverse of the graph Laplacian:
``R(u, v) = L⁺[u,u] + L⁺[v,v] − 2 L⁺[u,v]``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph

__all__ = [
    "laplacian",
    "effective_resistance_matrix",
    "effective_resistance",
    "commute_time_from_resistance",
]


def laplacian(g: Graph) -> np.ndarray:
    """Dense combinatorial Laplacian ``L = D − A`` (loop slots cancel)."""
    n = g.n
    A = np.zeros((n, n), dtype=np.float64)
    rows = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    np.add.at(A, (rows, g.indices), 1.0)
    L = -A
    # Loop slots contribute A[v,v] > 0 but add nothing to the Laplacian:
    # remove them from both the adjacency diagonal and the degree.
    loop_slots = np.diag(A).copy()
    np.fill_diagonal(L, 0.0)
    deg_no_loops = g.degrees.astype(np.float64) - loop_slots
    L[np.arange(n), np.arange(n)] = deg_no_loops
    return L


def effective_resistance_matrix(g: Graph) -> np.ndarray:
    """All-pairs effective resistance via the Laplacian pseudo-inverse."""
    if not g.is_connected():
        raise ValueError("effective resistance requires a connected graph")
    L = laplacian(g)
    n = g.n
    # Rank-deficient by exactly one (connected): shift by the all-ones
    # projector to invert, then project back — faster and more accurate
    # than generic SVD-based pinv.
    J = np.full((n, n), 1.0 / n)
    Lplus = np.linalg.inv(L + J) - J
    d = np.diag(Lplus)
    R = d[:, None] + d[None, :] - 2.0 * Lplus
    np.fill_diagonal(R, 0.0)
    return R


def effective_resistance(g: Graph, u: int, v: int) -> float:
    """``R(u, v)`` between two vertices."""
    return float(effective_resistance_matrix(g)[u, v])


def commute_time_from_resistance(g: Graph, u: int, v: int) -> float:
    """Commute-time identity ``t_com(u, v) = 2m · R(u, v)`` (non-lazy walk).

    For graphs with loop slots the identity uses the total slot count
    (``Σ deg``), matching the walk the slots define; on loop-free graphs
    this equals ``2m``.
    """
    total_slots = float(g.degrees.sum())
    return total_slots * effective_resistance(g, u, v)
