"""Exact expected hitting times.

Three computation routes, picked by use case:

* :func:`hitting_times_to_target` — expected hitting time of one target
  from every start, one linear solve (``O(n³)`` dense / sparse optional).
* :func:`hitting_time_matrix` — all pairs at once via the fundamental
  matrix ``Z = (I - P + 1πᵀ)^{-1}``, using ``t_hit(u, v) = (Z[v,v] -
  Z[u,v]) / π(v)`` — one solve instead of ``n``.
* :func:`max_hitting_time` — the paper's ``t_hit(G) = max_{u,v} t_hit(u,v)``.

All formulas are for the chain described by the supplied matrix, so lazy
hitting times come from passing ``lazy=True`` (they are exactly twice the
simple-walk ones).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.stationary import stationary_distribution
from repro.markov.transition import lazy_transition_matrix, transition_matrix

__all__ = [
    "hitting_times_to_target",
    "hitting_time",
    "hitting_time_matrix",
    "max_hitting_time",
    "commute_time",
]


def hitting_times_to_target(g: Graph, target: int, *, lazy: bool = False) -> np.ndarray:
    """Vector ``h`` with ``h[u] = E[time for a walk from u to reach target]``.

    Solves ``(I - Q) h = 1`` on ``V \\ {target}`` where ``Q`` is ``P``
    restricted to the non-target states; ``h[target] = 0``.

    >>> from repro.graphs import path_graph
    >>> h = hitting_times_to_target(path_graph(4), 3)
    >>> float(h[0])  # endpoint-to-endpoint on P_n is (n-1)^2
    9.0
    """
    n = g.n
    if not 0 <= target < n:
        raise ValueError(f"target out of range: {target}")
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
    keep = np.arange(n) != target
    Q = P[np.ix_(keep, keep)]
    A = np.eye(n - 1) - Q
    h_sub = np.linalg.solve(A, np.ones(n - 1))
    h = np.zeros(n)
    h[keep] = h_sub
    return h


def hitting_time(g: Graph, source: int, target: int, *, lazy: bool = False) -> float:
    """Expected hitting time ``t_hit(source, target)``."""
    return float(hitting_times_to_target(g, target, lazy=lazy)[source])


def hitting_time_matrix(g: Graph, *, lazy: bool = False) -> np.ndarray:
    """All-pairs matrix ``H[u, v] = t_hit(u, v)`` via the fundamental matrix.

    One ``O(n³)`` solve; ``H`` has zero diagonal.  Agrees with
    :func:`hitting_times_to_target` to numerical precision (tested).
    """
    n = g.n
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
    pi = stationary_distribution(g)
    A = np.eye(n) - P + np.outer(np.ones(n), pi)
    Z = np.linalg.solve(A, np.eye(n))
    zdiag = np.diag(Z)
    H = (zdiag[None, :] - Z) / pi[None, :]
    np.fill_diagonal(H, 0.0)
    return H


def max_hitting_time(g: Graph, *, lazy: bool = False) -> float:
    """The paper's ``t_hit(G) = max_{u,v} t_hit(u, v)``."""
    return float(hitting_time_matrix(g, lazy=lazy).max())


def commute_time(g: Graph, u: int, v: int, *, lazy: bool = False) -> float:
    """``t_com(u, v) = t_hit(u, v) + t_hit(v, u)`` (§3.2)."""
    H_uv = hitting_time(g, u, v, lazy=lazy)
    H_vu = hitting_time(g, v, u, lazy=lazy)
    return H_uv + H_vu
