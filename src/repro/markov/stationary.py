"""Stationary distributions.

For a random walk on an undirected graph the stationary distribution is
``π(v) = deg(v) / (2m)`` in slot terms (multi-edges/loop slots included) —
we expose both the closed form and an iterative solver usable as a
cross-check and for general row-stochastic matrices.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph

__all__ = ["stationary_distribution", "stationary_from_matrix"]


def stationary_distribution(g: Graph) -> np.ndarray:
    """Exact stationary distribution ``π ∝ walk-degree``."""
    deg = g.degrees.astype(np.float64)
    total = deg.sum()
    if total == 0:
        raise ValueError("graph has no edges")
    return deg / total


def stationary_from_matrix(
    P: np.ndarray, *, tol: float = 1e-12, max_iter: int = 200_000
) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix via the null space.

    Solves ``π (P - I) = 0`` with the normalisation ``Σ π = 1`` as a dense
    least-squares system — exact up to numerical precision and robust to
    periodic chains (unlike power iteration).  ``tol``/``max_iter`` are kept
    for signature stability; the direct solve ignores them.
    """
    n = P.shape[0]
    if P.shape != (n, n):
        raise ValueError("P must be square")
    A = np.vstack([P.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()
