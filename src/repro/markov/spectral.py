"""Spectral quantities of the walk: eigenvalues, gaps, relaxation time.

The paper defines an *expander* as a graph with ``1 - λ₂ = Ω(1)`` where
``λ₂`` is the second largest (absolute) eigenvalue of the walk (§5.2.1),
and uses ``λ₂`` of the lazy walk in Proposition 3.9 and Appendix C.

For a reversible chain, ``P = D^{-1/2} S D^{1/2}`` with ``S`` symmetric, so
all eigenvalues are real and computable with the symmetric eigensolver —
both faster and numerically safer than a general solver.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.transition import lazy_transition_matrix, transition_matrix

__all__ = [
    "walk_eigenvalues",
    "second_eigenvalue",
    "second_absolute_eigenvalue",
    "spectral_gap",
    "relaxation_time",
    "conductance_cheeger_bounds",
]


def _symmetrised_eigenvalues(P: np.ndarray, deg: np.ndarray) -> np.ndarray:
    """Eigenvalues of a reversible ``P`` via its symmetric conjugate."""
    d_sqrt = np.sqrt(deg.astype(np.float64))
    S = P * (d_sqrt[:, None] / d_sqrt[None, :])
    # Guard against tiny asymmetries from floating point.
    S = 0.5 * (S + S.T)
    return np.linalg.eigvalsh(S)  # ascending order


def walk_eigenvalues(g: Graph, *, lazy: bool = False) -> np.ndarray:
    """All eigenvalues of the (lazy) walk matrix, ascending.

    >>> import numpy as np
    >>> from repro.graphs import complete_graph
    >>> ev = walk_eigenvalues(complete_graph(4))
    >>> np.allclose(ev, [-1/3, -1/3, -1/3, 1.0])
    True
    """
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
    return _symmetrised_eigenvalues(P, g.degrees)


def second_eigenvalue(g: Graph, *, lazy: bool = False) -> float:
    """Second largest eigenvalue λ₂ (signed)."""
    ev = walk_eigenvalues(g, lazy=lazy)
    return float(ev[-2])


def second_absolute_eigenvalue(g: Graph, *, lazy: bool = False) -> float:
    """λ* — the largest absolute value among non-principal eigenvalues.

    The paper's expander condition is ``1 - λ₂ = Ω(1)`` with λ₂ "the second
    largest absolute eigenvalue" (§5.2.1); for lazy walks all eigenvalues
    are non-negative, so λ* = λ₂.
    """
    ev = walk_eigenvalues(g, lazy=lazy)
    return float(max(abs(ev[0]), abs(ev[-2])))


def spectral_gap(g: Graph, *, lazy: bool = True, absolute: bool = True) -> float:
    """``1 - λ`` where λ is λ* (default) or the signed λ₂."""
    lam = (
        second_absolute_eigenvalue(g, lazy=lazy)
        if absolute
        else second_eigenvalue(g, lazy=lazy)
    )
    return 1.0 - lam


def relaxation_time(g: Graph, *, lazy: bool = True) -> float:
    """``t_rel = 1 / (1 - λ*)`` of the (lazy) walk."""
    gap = spectral_gap(g, lazy=lazy, absolute=True)
    if gap <= 0:
        raise ValueError("chain has zero spectral gap (disconnected or periodic)")
    return 1.0 / gap


def conductance_cheeger_bounds(g: Graph) -> tuple[float, float]:
    """Cheeger bounds ``gap/2 <= Φ <= sqrt(2 gap)`` for the lazy walk.

    Computing conductance exactly is NP-hard; Proposition 3.9 only uses it
    through Cheeger's inequality [LPW Thm 13.14], so the bracket is what the
    bound calculators need.  Returns ``(lower, upper)`` for Φ.
    """
    gap = spectral_gap(g, lazy=True, absolute=False)
    gap = max(gap, 0.0)
    return gap / 2.0, float(np.sqrt(2.0 * gap))
