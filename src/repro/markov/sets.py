"""Hitting times of *sets* — the quantity driving Theorems 3.3 and 3.5.

``t_hit(μ, S)`` is the expected time for a walk started from distribution
``μ`` to reach any vertex of ``S``.  Exact values come from one linear
solve on the complement of ``S``.  The theorems additionally need

    ``max_{S ⊆ V, |S| ≥ k} t_hit(π, S)``

whose exact computation is exponential in general; we provide

* an **exhaustive** maximiser for small instances (used in tests),
* a **greedy** heuristic (grow S by the vertex that keeps ``t_hit(π, S)``
  largest) for bound evaluation, and
* a **sampled** lower bound from random subsets.

Because ``t_hit(π, ·)`` is monotone decreasing under set inclusion,
``max_{|S| ≥ k}`` is attained at ``|S| = k`` exactly — all maximisers fix
the size to ``k``.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.stationary import stationary_distribution
from repro.markov.transition import lazy_transition_matrix, transition_matrix
from repro.utils.rng import as_generator

__all__ = [
    "set_hitting_times",
    "set_hitting_time_from",
    "stationary_set_hitting_time",
    "max_set_hitting_time",
]


def set_hitting_times(g: Graph, targets, *, lazy: bool = False) -> np.ndarray:
    """Vector of ``E[time to reach the set]`` from every start vertex.

    ``h[v] = 0`` for ``v`` in the target set.

    >>> from repro.graphs import cycle_graph
    >>> h = set_hitting_times(cycle_graph(6), [0, 3])
    >>> float(h[1])  # one step either way: gambler's ruin on 0-1-2-3
    2.0
    """
    n = g.n
    S = np.zeros(n, dtype=bool)
    t = np.asarray(list(targets), dtype=np.int64)
    if t.size == 0:
        raise ValueError("target set must be non-empty")
    if t.min() < 0 or t.max() >= n:
        raise ValueError("target set contains out-of-range vertices")
    S[t] = True
    if S.all():
        return np.zeros(n)
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)
    keep = ~S
    Q = P[np.ix_(keep, keep)]
    A = np.eye(int(keep.sum())) - Q
    h_sub = np.linalg.solve(A, np.ones(A.shape[0]))
    h = np.zeros(n)
    h[keep] = h_sub
    return h


def set_hitting_time_from(g: Graph, mu, targets, *, lazy: bool = False) -> float:
    """``t_hit(μ, S)`` for a start distribution or a single start vertex."""
    h = set_hitting_times(g, targets, lazy=lazy)
    if np.isscalar(mu) or isinstance(mu, (int, np.integer)):
        return float(h[int(mu)])
    mu = np.asarray(mu, dtype=np.float64)
    if mu.shape != (g.n,):
        raise ValueError(f"mu must be a scalar vertex or a length-{g.n} vector")
    return float(mu @ h)


def stationary_set_hitting_time(g: Graph, targets, *, lazy: bool = False) -> float:
    """``t_hit(π, S)`` — start from stationarity (the theorems' quantity)."""
    pi = stationary_distribution(g)
    return set_hitting_time_from(g, pi, targets, lazy=lazy)


def _greedy_max_set(g: Graph, size: int, *, lazy: bool) -> tuple[float, np.ndarray]:
    """Grow S one vertex at a time, keeping t_hit(π, S) as large as possible.

    ``t_hit(π, S)`` is maximised by *clustered* sets (a spread-out S is
    easy to hit from stationarity — verified exhaustively in the tests:
    on C₈ the adjacent pair scores 7.0 vs 2.5 for the antipodal pair).
    The greedy therefore seeds with the hardest singleton and repeatedly
    adds the unchosen vertex *closest to S in hitting-time metric*, i.e.
    ``argmin_{v∉S} t_hit(v, S)``, which keeps the set a tight ball around
    the hardest region.  Cost: one linear solve per added vertex.
    """
    pi = stationary_distribution(g)
    from repro.markov.hitting import hitting_time_matrix

    H = hitting_time_matrix(g, lazy=lazy)
    t_pi_single = pi @ H  # t_hit(π, {v}) for every v
    chosen = [int(np.argmax(t_pi_single))]
    while len(chosen) < size:
        h = set_hitting_times(g, chosen, lazy=lazy)
        masked = h.copy()
        masked[chosen] = np.inf
        chosen.append(int(np.argmin(masked)))
    value = stationary_set_hitting_time(g, chosen, lazy=lazy)
    return value, np.asarray(sorted(chosen), dtype=np.int64)


def max_set_hitting_time(
    g: Graph,
    size: int,
    *,
    lazy: bool = False,
    method: str = "auto",
    samples: int = 200,
    seed=None,
) -> tuple[float, np.ndarray]:
    """Approximate/exact ``max_{|S| = size} t_hit(π, S)``.

    Parameters
    ----------
    method:
        ``"exhaustive"`` enumerates all subsets (only for tiny instances),
        ``"greedy"`` uses the clustering heuristic, ``"sample"`` takes the
        best of ``samples`` random subsets, ``"auto"`` picks exhaustive when
        ``C(n, size) <= 20000`` else the max of greedy and sampled.

    Returns
    -------
    (value, subset): the best value found and the achieving subset.

    Notes
    -----
    Greedy/sampled values are lower bounds on the true maximum; the bound
    calculators in :mod:`repro.bounds.sets` treat them as such (they make
    the *upper* bounds of Theorems 3.3/3.5 smaller, i.e. the comparison
    against measured dispersion time remains meaningful because the paper's
    inequality is checked with the exact quantity on small graphs in the
    test-suite and with the analytic Lemma C.2 surrogate in benches).
    """
    n = g.n
    if not 1 <= size <= n:
        raise ValueError(f"size must be in [1, {n}], got {size}")

    def n_choose_k(nn: int, kk: int) -> float:
        from math import comb

        return comb(nn, kk)

    if method == "auto":
        method = "exhaustive" if n_choose_k(n, size) <= 20_000 else "both"

    best_val = -np.inf
    best_set: np.ndarray | None = None

    if method == "exhaustive":
        for combo in itertools.combinations(range(n), size):
            val = stationary_set_hitting_time(g, combo, lazy=lazy)
            if val > best_val:
                best_val, best_set = val, np.asarray(combo, dtype=np.int64)
        assert best_set is not None
        return best_val, best_set

    if method in ("greedy", "both"):
        val, subset = _greedy_max_set(g, size, lazy=lazy)
        if val > best_val:
            best_val, best_set = val, subset
    if method in ("sample", "both"):
        rng = as_generator(seed)
        for _ in range(samples):
            subset = rng.choice(n, size=size, replace=False)
            val = stationary_set_hitting_time(g, subset, lazy=lazy)
            if val > best_val:
                best_val, best_set = val, np.sort(subset)
    if best_set is None:
        raise ValueError(f"unknown method {method!r}")
    return float(best_val), best_set
