"""Transition matrices of the simple and lazy random walk.

The paper's ``P`` is the simple-random-walk matrix ``P[u, v] =
#edges(u,v) / deg(u)`` and the lazy walk is ``P~ = (I + P) / 2`` (§2).
Dense matrices are the default (the library targets ``n`` up to a few
thousand, where dense LAPACK beats sparse overheads for the repeated
solves we do); sparse CSR versions are provided for the larger sweeps.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.csr import Graph

__all__ = [
    "transition_matrix",
    "lazy_transition_matrix",
    "sparse_transition_matrix",
    "laziness_matrix",
]


def transition_matrix(g: Graph) -> np.ndarray:
    """Dense simple-random-walk matrix ``P`` with rows summing to 1.

    Multi-edges and loop slots contribute proportionally to their slot
    count, matching the walk engine's sampling.
    """
    n = g.n
    P = np.zeros((n, n), dtype=np.float64)
    deg = g.degrees
    if np.any(deg == 0):
        raise ValueError("graph has isolated vertices; random walk undefined")
    rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    np.add.at(P, (rows, g.indices), 1.0)
    P /= deg[:, None]
    return P


def lazy_transition_matrix(g: Graph) -> np.ndarray:
    """Dense lazy-walk matrix ``P~ = (I + P) / 2``."""
    P = transition_matrix(g)
    P *= 0.5
    idx = np.arange(g.n)
    P[idx, idx] += 0.5
    return P


def laziness_matrix(P: np.ndarray, hold: float = 0.5) -> np.ndarray:
    """General laziness: ``(1 - hold) P + hold I``."""
    if not 0.0 <= hold < 1.0:
        raise ValueError(f"hold must be in [0, 1), got {hold}")
    out = (1.0 - hold) * P
    idx = np.arange(P.shape[0])
    out[idx, idx] += hold
    return out


def sparse_transition_matrix(g: Graph, *, lazy: bool = False) -> sp.csr_matrix:
    """CSR transition matrix; set ``lazy=True`` for ``(I + P)/2``."""
    n = g.n
    deg = g.degrees.astype(np.float64)
    if np.any(deg == 0):
        raise ValueError("graph has isolated vertices; random walk undefined")
    rows = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    data = 1.0 / deg[rows]
    P = sp.csr_matrix((data, (rows, g.indices)), shape=(n, n))
    P.sum_duplicates()
    if lazy:
        P = 0.5 * P + 0.5 * sp.identity(n, format="csr")
    return P
