"""Exact (non-Monte-Carlo) analysis of Sequential-IDLA on tiny graphs.

The sequential process has a clean recursive structure: after ``i``
particles have settled, the aggregate is a random subset ``S`` with
``|S| = i``; the next particle performs a walk from the origin absorbed on
``V \\ S``, contributing

* its expected absorption time (one linear solve), and
* an absorption distribution over ``V \\ S`` that advances the aggregate.

Propagating the full distribution over aggregates therefore computes
**exactly** — up to linear-algebra precision —

* ``E[total steps]`` of Sequential-IDLA (by Theorem 4.1's coupling, this
  equals the Parallel- and Uniform-IDLA expected totals: the strongest
  cross-check the test-suite has for the drivers),
* per-particle expected step counts ``E[steps_i]``,
* the exact law of each particle's settlement vertex, and
* the exact distribution over final aggregate *histories*.

Cost: the number of reachable aggregates is at most ``2^n`` (much smaller
in practice on structured graphs), with one ``O(n³)`` solve per aggregate;
intended for ``n ≤ ~14``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.markov.transition import lazy_transition_matrix, transition_matrix

__all__ = [
    "SequentialExact",
    "analyze_sequential_idla",
    "sequential_dispersion_cdf",
    "exact_expected_sequential_dispersion",
]


@dataclass(frozen=True)
class SequentialExact:
    """Exact quantities of Sequential-IDLA from a fixed origin.

    Attributes
    ----------
    expected_total_steps:
        ``E[Σ_i steps_i]`` — scheduler-invariant by Theorem 4.1.
    expected_steps_per_particle:
        Array of ``E[steps_i]``, ``i = 0..n-1`` (entry 0 is 0).
    settle_distribution:
        ``settle_distribution[i, v] = Pr[particle i settles at v]`` — each
        row is a probability vector; summed over ``i`` it is 1 for each
        ``v`` (every vertex settled exactly once).
    num_aggregates:
        Total distinct aggregates enumerated (diagnostic).
    """

    expected_total_steps: float
    expected_steps_per_particle: np.ndarray
    settle_distribution: np.ndarray
    num_aggregates: int


def _absorption(P: np.ndarray, start: int, occupied_mask: int, n: int):
    """Expected steps + absorption law for a walk from ``start`` absorbed
    outside the ``occupied_mask`` bitmask."""
    occ = [v for v in range(n) if occupied_mask >> v & 1]
    free = [v for v in range(n) if not occupied_mask >> v & 1]
    occ_idx = {v: i for i, v in enumerate(occ)}
    Q = P[np.ix_(occ, occ)]
    R = P[np.ix_(occ, free)]
    A = np.eye(len(occ)) - Q
    # expected steps: (I - Q)^-1 1 ; absorption probs: (I - Q)^-1 R
    lu = np.linalg.solve(A, np.column_stack([np.ones(len(occ)), R]))
    t = lu[:, 0]
    B = lu[:, 1:]
    s = occ_idx[start]
    return float(t[s]), {v: float(B[s, j]) for j, v in enumerate(free)}


def analyze_sequential_idla(
    g: Graph,
    origin: int = 0,
    *,
    lazy: bool = False,
    prune_below: float = 0.0,
    max_aggregates: int = 2_000_000,
) -> SequentialExact:
    """Run the exact aggregate-distribution dynamic program.

    Parameters
    ----------
    lazy:
        Analyse the lazy walk (expected steps double exactly — tested).
    prune_below:
        Drop aggregate states whose probability falls below this threshold
        (0.0 = exact).  With pruning the result is a controlled
        approximation; the dropped mass is re-normalised.
    max_aggregates:
        Safety valve against exponential blow-up on large ``n``.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> res = analyze_sequential_idla(path_graph(3), origin=1)
    >>> res.expected_total_steps  # 1 step for particle 1, 3 for particle 2
    4.0
    """
    n = g.n
    if not 0 <= origin < n:
        raise ValueError(f"origin out of range: {origin}")
    if n > 25:
        raise ValueError(
            f"exact analysis is exponential in n; got n={n} (limit 25). "
            "Use the Monte-Carlo estimators for larger graphs."
        )
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)

    # distribution over aggregates as {bitmask: probability}
    dist: dict[int, float] = {1 << origin: 1.0}
    expected_steps = np.zeros(n)
    settle = np.zeros((n, n))
    settle[0, origin] = 1.0
    seen_states = 1

    cache: dict[int, tuple[float, dict[int, float]]] = {}

    for particle in range(1, n):
        new_dist: dict[int, float] = {}
        for mask, p in dist.items():
            if mask not in cache:
                cache[mask] = _absorption(P, origin, mask, n)
            t, absorb = cache[mask]
            expected_steps[particle] += p * t
            for v, q in absorb.items():
                if q <= 0.0:
                    continue
                settle[particle, v] += p * q
                key = mask | (1 << v)
                new_dist[key] = new_dist.get(key, 0.0) + p * q
        if prune_below > 0.0:
            new_dist = {k: v for k, v in new_dist.items() if v >= prune_below}
            total = sum(new_dist.values())
            new_dist = {k: v / total for k, v in new_dist.items()}
        seen_states += len(new_dist)
        if seen_states > max_aggregates:
            raise RuntimeError(
                f"aggregate state count exceeded max_aggregates="
                f"{max_aggregates}; increase prune_below"
            )
        dist = new_dist

    return SequentialExact(
        expected_total_steps=float(expected_steps.sum()),
        expected_steps_per_particle=expected_steps,
        settle_distribution=settle,
        num_aggregates=seen_states,
    )


# ----------------------------------------------------------------------
# exact dispersion-time distribution
# ----------------------------------------------------------------------
#
# τ_seq = max_i T_i where T_i is particle i's walk length.  Conditioned on
# the *settlement sequence* (w_1, …, w_{n-1}) the walk lengths are
# independent — the environment particle i sees is determined by the
# previous settlement locations only, never by their times.  Hence
#
#     P[τ_seq ≤ t] = Σ_paths Π_i  P[absorbed at w_i within t | mask_{i-1}]
#
# which is the same aggregate DP as `analyze_sequential_idla`, with edge
# weights B_t[mask][w] = P[walk from the origin absorbed at w by time t]
# instead of the total absorption probabilities B_∞.  B_t is built by
# iterating the substochastic interior matrix, O(t · |occ|²) per mask.


def _absorption_cdf(P: np.ndarray, start: int, occupied_mask: int, n: int, t_max: int):
    """``B[t][w] = P[absorbed at w by time t]`` for a walk from ``start``
    killed outside the occupied set."""
    occ = [v for v in range(n) if occupied_mask >> v & 1]
    free = [v for v in range(n) if not occupied_mask >> v & 1]
    occ_idx = {v: i for i, v in enumerate(occ)}
    Q = P[np.ix_(occ, occ)]
    R = P[np.ix_(occ, free)]
    alive = np.zeros(len(occ))
    alive[occ_idx[start]] = 1.0
    B = np.zeros((t_max + 1, len(free)))
    for t in range(1, t_max + 1):
        B[t] = B[t - 1] + alive @ R
        alive = alive @ Q
    return {v: B[:, j].copy() for j, v in enumerate(free)}


def sequential_dispersion_cdf(
    g: Graph,
    origin: int = 0,
    *,
    t_max: int,
    lazy: bool = False,
) -> np.ndarray:
    """Exact ``P[τ_seq ≤ t]`` for ``t = 0..t_max`` (tiny graphs only).

    Complexity: ``O(#aggregates · (t_max · n² + n³))``; intended for
    ``n ≤ ~10``.  The returned array is a CDF (non-decreasing, ≤ 1); it
    reaches 1 only in the limit, so pick ``t_max`` well above the expected
    dispersion time when integrating tails.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> cdf = sequential_dispersion_cdf(path_graph(3), 1, t_max=1)
    >>> float(cdf[1])  # particle 1 always settles in 1 step; particle 2 w.p. 1/2
    0.5
    """
    n = g.n
    if not 0 <= origin < n:
        raise ValueError(f"origin out of range: {origin}")
    if n > 14:
        raise ValueError(
            f"exact CDF is exponential in n with a t_max factor; got n={n} "
            "(limit 14)"
        )
    if t_max < 0:
        raise ValueError(f"t_max must be >= 0, got {t_max}")
    P = lazy_transition_matrix(g) if lazy else transition_matrix(g)

    # dist maps aggregate mask -> vector over t of P[path reaches this
    # aggregate with all walk lengths so far <= t]
    dist: dict[int, np.ndarray] = {1 << origin: np.ones(t_max + 1)}
    cache: dict[int, dict[int, np.ndarray]] = {}
    for _particle in range(1, n):
        new_dist: dict[int, np.ndarray] = {}
        for mask, vec in dist.items():
            if mask not in cache:
                cache[mask] = _absorption_cdf(P, origin, mask, n, t_max)
            for v, cdf_v in cache[mask].items():
                key = mask | (1 << v)
                contrib = vec * cdf_v
                if key in new_dist:
                    new_dist[key] += contrib
                else:
                    new_dist[key] = contrib
        dist = new_dist
    full = (1 << n) - 1
    out = dist.get(full)
    if out is None:  # t_max too small for any completion
        return np.zeros(t_max + 1)
    return out


def exact_expected_sequential_dispersion(
    g: Graph,
    origin: int = 0,
    *,
    lazy: bool = False,
    tail_tol: float = 1e-10,
    t_cap: int = 1_000_000,
) -> float:
    """Exact ``E[τ_seq]`` via ``Σ_t (1 − P[τ ≤ t])`` with adaptive horizon.

    Doubles ``t_max`` until the remaining tail mass (bounded by the
    geometric decay of the slowest absorbing mode) is below ``tail_tol``.
    """
    t_max = max(16, 4 * g.n)
    while True:
        cdf = sequential_dispersion_cdf(g, origin, t_max=t_max, lazy=lazy)
        tail = 1.0 - cdf[-1]
        # crude geometric extrapolation of the tail from the last decade
        if tail < 1e-3 or t_max >= t_cap:
            # estimate per-step survival decay rho from the tail window
            s = 1.0 - cdf
            lo, hi = int(0.9 * t_max), t_max
            if s[lo] > 0 and s[hi] > 0 and s[hi] < s[lo]:
                rho = (s[hi] / s[lo]) ** (1.0 / (hi - lo))
                tail_integral = s[hi] * rho / (1.0 - rho)
            else:
                tail_integral = 0.0
            if (
                tail_integral < max(tail_tol, 1e-9) * max(cdf.sum(), 1.0)
                or t_max >= t_cap
            ):
                return float(np.sum(1.0 - cdf)) + float(tail_integral)
        t_max *= 2
