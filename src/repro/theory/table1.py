"""Table 1's predicted asymptotic orders, as evaluable growth laws.

Every cell of the paper's Table 1 is encoded as a named function of ``n``
so the benchmark harness can (i) fit measured values against the predicted
law and report the quality of fit, and (ii) print "paper order vs measured
constant" rows for EXPERIMENTS.md.  A ``GrowthLaw`` carries no leading
constant — constants are what the fits estimate (κ_cc, π²/6, κ_p …).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.bounds.constants import KAPPA_CC, KAPPA_P_SIMULATED, PI2_OVER_6

__all__ = ["GrowthLaw", "Table1Row", "TABLE1", "growth_laws", "table1_row"]


@dataclass(frozen=True)
class GrowthLaw:
    """A named growth function ``f(n)`` (no leading constant)."""

    label: str
    fn: Callable[[float], float]

    def __call__(self, n: float) -> float:
        return self.fn(float(n))


def _log(n: float) -> float:
    return math.log(max(n, 2.0))


N = GrowthLaw("n", lambda n: n)
NLOGN = GrowthLaw("n log n", lambda n: n * _log(n))
NLOG2N = GrowthLaw("n log² n", lambda n: n * _log(n) ** 2)
N2 = GrowthLaw("n²", lambda n: n * n)
N2LOGN = GrowthLaw("n² log n", lambda n: n * n * _log(n))
N3LOGN = GrowthLaw("n³ log n", lambda n: n**3 * _log(n))
LOGN = GrowthLaw("log n", lambda n: _log(n))
LOGNLOGLOGN = GrowthLaw(
    "log n loglog n", lambda n: _log(n) * math.log(max(_log(n), 2.0))
)
CONST = GrowthLaw("1", lambda n: 1.0)
N_2_3 = GrowthLaw("n^(2/3)", lambda n: n ** (2.0 / 3.0))


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (plus our lollipop extension).

    ``seq_constant``/``par_constant`` are the paper's explicit leading
    constants where known (clique: κ_cc and π²/6; path: the simulated
    κ_p ≈ 0.6), else ``None``.
    ``dispersion_upper_only`` marks rows where the paper proves matching
    orders only up to a log factor (2-d grid: Ω(n log n) vs O(n log² n)).
    """

    family: str
    cover: GrowthLaw
    hitting: GrowthLaw
    mixing: GrowthLaw
    seq: GrowthLaw
    par: GrowthLaw
    seq_constant: float | None = None
    par_constant: float | None = None
    dispersion_upper: GrowthLaw | None = None


TABLE1: dict[str, Table1Row] = {
    "path": Table1Row(
        "path",
        N2,
        N2,
        N2,
        N2LOGN,
        N2LOGN,
        seq_constant=KAPPA_P_SIMULATED,
        par_constant=KAPPA_P_SIMULATED,
    ),
    "cycle": Table1Row("cycle", N2, N2, N2, N2LOGN, N2LOGN),
    "grid2d": Table1Row(
        "grid2d", NLOG2N, NLOGN, N, NLOGN, NLOGN, dispersion_upper=NLOG2N,
    ),
    "torus2d": Table1Row(
        "torus2d", NLOG2N, NLOGN, N, NLOGN, NLOGN, dispersion_upper=NLOG2N,
    ),
    "torus3d": Table1Row("torus3d", NLOGN, N, N_2_3, N, N),
    "hypercube": Table1Row("hypercube", NLOGN, N, LOGNLOGLOGN, N, N),
    "binary_tree": Table1Row("binary_tree", NLOGN, NLOGN, N, NLOG2N, NLOG2N),
    "complete": Table1Row(
        "complete",
        NLOGN,
        N,
        CONST,
        N,
        N,
        seq_constant=KAPPA_CC,
        par_constant=PI2_OVER_6,
    ),
    "expander": Table1Row("expander", NLOGN, N, LOGN, N, N),
    # Extension row: Corollary 3.2's worst-case witness.
    "lollipop": Table1Row("lollipop", N3LOGN, N3LOGN, N2LOGN, N3LOGN, N3LOGN),
}


def table1_row(family: str) -> Table1Row:
    """Row lookup with a helpful error."""
    try:
        return TABLE1[family]
    except KeyError:
        raise KeyError(
            f"no Table 1 row for {family!r}; available: {sorted(TABLE1)}"
        ) from None


def growth_laws() -> dict[str, GrowthLaw]:
    """All named laws, keyed by label (for fitting-law selection)."""
    laws = [N, NLOGN, NLOG2N, N2, N2LOGN, N3LOGN, LOGN, LOGNLOGLOGN, CONST, N_2_3]
    return {g.label: g for g in laws}
