"""Registry of Table 1 graph families.

Sweeps are parameterised by a *target* vertex count ``n``; families whose
natural parameter is not ``n`` (hypercube dimension, tree height, torus
side) snap to the nearest realisable size.  Each entry provides:

``make(n, seed) -> Graph``
    Build an instance with size snapped as above (``seed`` only used by
    random families).
``snap(n) -> int``
    The realised vertex count for a requested ``n``.
``worst_origin(g) -> int``
    The origin used for worst-case dispersion measurements (e.g. the path
    endpoint; a clique vertex away from the lollipop's connector — the
    configurations the paper's lower bounds are stated for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.graphs.csr import Graph
from repro.graphs.generators import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    torus_graph,
)

__all__ = ["Family", "FAMILIES", "get_family"]


@dataclass(frozen=True)
class Family:
    """A named graph family with size snapping and a worst-case origin."""

    name: str
    make: Callable[..., Graph]
    snap: Callable[[int], int]
    worst_origin: Callable[[Graph], int] = field(default=lambda g: 0)
    is_random: bool = False

    def build(self, n: int, seed=None) -> Graph:
        """Construct an instance of snapped size for requested ``n``."""
        if self.is_random:
            return self.make(n, seed)
        return self.make(n)


def _snap_identity(n: int) -> int:
    return max(3, n)


def _snap_pow2(n: int) -> int:
    return 1 << max(1, round(math.log2(max(2, n))))


def _snap_btree(n: int) -> int:
    h = max(1, round(math.log2(max(3, n) + 1)) - 1)
    return (1 << (h + 1)) - 1


def _snap_square(n: int) -> int:
    side = max(2, round(math.sqrt(max(4, n))))
    return side * side


def _snap_square_torus(n: int) -> int:
    side = max(3, round(math.sqrt(max(9, n))))
    return side * side


def _snap_cube(n: int) -> int:
    side = max(3, round(max(27, n) ** (1.0 / 3.0)))
    return side**3


def _make_hypercube(n: int) -> Graph:
    dim = max(1, round(math.log2(max(2, n))))
    return hypercube_graph(dim)


def _make_btree(n: int) -> Graph:
    h = max(1, round(math.log2(max(3, n) + 1)) - 1)
    return complete_binary_tree(h)


def _make_grid2d(n: int) -> Graph:
    side = max(2, round(math.sqrt(max(4, n))))
    return grid_graph(side, side)


def _make_torus2d(n: int) -> Graph:
    side = max(3, round(math.sqrt(max(9, n))))
    return torus_graph(side, side)


def _make_torus3d(n: int) -> Graph:
    side = max(3, round(max(27, n) ** (1.0 / 3.0)))
    return torus_graph(side, side, side)


def _make_expander(n: int, seed=None) -> Graph:
    n = max(8, n + (n % 2))  # even n for d = 6 regular
    return random_regular_graph(n, 6, seed=seed)


def _lollipop_origin(g: Graph) -> int:
    # Proposition 5.16: start in the clique but not at the connector.
    return 0


FAMILIES: dict[str, Family] = {
    "path": Family("path", path_graph, _snap_identity),
    "cycle": Family("cycle", cycle_graph, _snap_identity),
    "complete": Family("complete", complete_graph, _snap_identity),
    "hypercube": Family("hypercube", _make_hypercube, _snap_pow2),
    "binary_tree": Family("binary_tree", _make_btree, _snap_btree),
    "grid2d": Family("grid2d", _make_grid2d, _snap_square),
    "torus2d": Family("torus2d", _make_torus2d, _snap_square_torus),
    "torus3d": Family("torus3d", _make_torus3d, _snap_cube),
    "expander": Family(
        "expander", _make_expander, lambda n: max(8, n + (n % 2)), is_random=True
    ),
    "lollipop": Family(
        "lollipop", lollipop_graph, lambda n: max(4, n), _lollipop_origin
    ),
}


def get_family(name: str) -> Family:
    """Look up a family by name with a helpful error."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
