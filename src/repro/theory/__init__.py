"""Theory layer: Table 1 growth-law predictions and family registry."""

from repro.theory.families import FAMILIES, Family, get_family
from repro.theory.table1 import TABLE1, GrowthLaw, Table1Row, growth_laws, table1_row

__all__ = [
    "FAMILIES",
    "Family",
    "get_family",
    "TABLE1",
    "GrowthLaw",
    "Table1Row",
    "growth_laws",
    "table1_row",
]
