"""The default NumPy backend (and its strict assertion variant).

``NumpyBackend`` delegates every primitive straight to ``numpy``, so the
refactored call sites compile to exactly the calls the engine made
before the seam existed — the default path is bit-identical by
construction and the differential harness pins it.

``NumpyStrictBackend`` routes the *same* numpy calls through the
protocol with dtype/host assertions on every primitive.  It exists to
prove the seam is real: a call site that bypasses the protocol, or
hands a primitive an unexpected dtype, fails the ``numpy_strict`` CI
leg even though the default backend would have coerced silently.  Its
output is pinned byte-identical to the default backend.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ArrayBackend

__all__ = ["NumpyBackend", "NumpyStrictBackend"]

# dtypes the engine legitimately materialises: positions/slots/indptr
# (int64 / intp), uniforms and times (float64), masks (bool), narrowed
# trajectory columns (unsigned + small ints via _narrow_dtype).
_ALLOWED_DTYPES = frozenset(
    np.dtype(t)
    for t in (
        np.bool_,
        np.int8,
        np.int16,
        np.int32,
        np.int64,
        np.uint8,
        np.uint16,
        np.uint32,
        np.uint64,
        np.intp,
        np.float64,
    )
)


class NumpyBackend(ArrayBackend):
    """Default backend: the engine's historical raw-numpy behaviour."""

    name = "numpy"
    exact_bitstream = True

    @property
    def xp(self):
        return np

    # -- construction / host boundary ----------------------------------

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def ascontiguousarray(self, a, dtype=None):
        return np.ascontiguousarray(a, dtype=dtype)

    def empty(self, shape, dtype=np.float64):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float64):
        return np.zeros(shape, dtype=dtype)

    def full(self, shape, fill_value, dtype=None):
        return np.full(shape, fill_value, dtype=dtype)

    def arange(self, *args, dtype=None):
        return np.arange(*args, dtype=dtype)

    def asnumpy(self, a):
        return np.asarray(a)

    # -- the non-portable primitives -----------------------------------

    def take(self, a, indices, out=None):
        if out is None:
            return a[indices]
        return np.take(a, indices, out=out)

    def bincount(self, x, minlength=0):
        return np.bincount(x, minlength=minlength)

    def searchsorted(self, a, v, side="left"):
        return np.searchsorted(a, v, side=side)

    def cumsum(self, a, dtype=None):
        return np.cumsum(a, dtype=dtype)

    def compress(self, mask, a):
        return a[mask]

    def flatnonzero(self, mask):
        return np.flatnonzero(mask)

    # -- the RNG-block bridge ------------------------------------------

    def fill_uniform(self, gen, out):
        gen.random(out=out)


class NumpyStrictBackend(NumpyBackend):
    """Numpy with dtype/host assertions on every primitive call.

    Byte-identical to :class:`NumpyBackend` (same numpy calls in the
    same order) — the assertions are pure observers.  Selected via
    ``REPRO_BACKEND=numpy_strict`` in the CI matrix so a hot-path call
    site that drifts off the protocol can never rot silently.
    """

    name = "numpy_strict"
    exact_bitstream = True

    @staticmethod
    def _check(a, label):
        if not isinstance(a, np.ndarray):
            raise TypeError(
                f"numpy_strict: {label} must be a host numpy.ndarray, "
                f"got {type(a).__name__}"
            )
        if a.dtype not in _ALLOWED_DTYPES:
            raise TypeError(
                f"numpy_strict: {label} has off-contract dtype {a.dtype} "
                f"(allowed: bool, signed/unsigned ints, float64)"
            )
        return a

    def take(self, a, indices, out=None):
        self._check(a, "take() source")
        self._check(indices, "take() indices")
        if out is not None:
            self._check(out, "take() out")
        return super().take(a, indices, out=out)

    def bincount(self, x, minlength=0):
        self._check(x, "bincount() input")
        return super().bincount(x, minlength=minlength)

    def searchsorted(self, a, v, side="left"):
        self._check(a, "searchsorted() haystack")
        return super().searchsorted(a, v, side=side)

    def cumsum(self, a, dtype=None):
        self._check(a, "cumsum() input")
        return super().cumsum(a, dtype=dtype)

    def compress(self, mask, a):
        self._check(mask, "compress() mask")
        self._check(a, "compress() source")
        if mask.dtype != np.bool_:
            raise TypeError(
                f"numpy_strict: compress() mask must be bool, got {mask.dtype}"
            )
        return super().compress(mask, a)

    def flatnonzero(self, mask):
        self._check(mask, "flatnonzero() input")
        return super().flatnonzero(mask)

    def fill_uniform(self, gen, out):
        self._check(out, "fill_uniform() out")
        if out.dtype != np.float64:
            raise TypeError(
                f"numpy_strict: fill_uniform() buffer must be float64, "
                f"got {out.dtype}"
            )
        if not isinstance(gen, np.random.Generator):
            raise TypeError(
                "numpy_strict: fill_uniform() needs a numpy.random.Generator, "
                f"got {type(gen).__name__}"
            )
        super().fill_uniform(gen, out)
