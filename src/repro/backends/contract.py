"""Statistical-equivalence contract for non-bitstream backends.

Exact-bitstream backends (``numpy``, ``numpy_strict``) are gated on the
differential harness: every sample bit-identical to the serial oracle.
A backend that draws randomness its own way (device RNG) cannot meet
that bar, so it is gated on a *distribution-level* contract instead:
the dispersion-time samples it produces must be statistically
indistinguishable from the serial oracle's.

The gate is an **anytime-valid** two-sample Kolmogorov–Smirnov test:
tau samples stream in (backend lane and oracle lane), the caller checks
after every batch, and the guarantee holds *uniformly over checks* — at
most an ``alpha`` probability of ever rejecting a truthful backend, no
matter how many times or when the caller peeks.  Validity comes from a
time-uniform Dvoretzky–Kiefer–Wolfowitz envelope with the error budget
union-bounded over checkpoints (check ``k`` spends
``alpha / (k (k+1))``, which sums to ``alpha``); under H0 (equal
distributions) the two empirical CDFs each stay inside their envelope,
so the two-sample statistic exceeds the summed envelope widths with
probability below the budget.  This is conservative (DKW is
distribution-free and the union bound is loose) but assumption-free and
safe under optional stopping — the right shape for a CI gate that runs
for as many rounds as someone cares to fund.

Usage::

    gate = AnytimeKS(alpha=0.01)
    while more_samples:
        verdict = gate.update(backend_taus, oracle_taus)
        if verdict.reject:
            raise BackendContractViolation(verdict)

The same machinery doubles as a power check in tests: feed it samples
from visibly different distributions and it must eventually reject.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["AnytimeKS", "KSVerdict", "ks_statistic"]


def ks_statistic(x, y) -> float:
    """Two-sample KS statistic ``sup_t |F_x(t) - F_y(t)|``.

    Both samples may contain ties/duplicates (tau samples are integers
    for the discrete processes); the statistic is evaluated over the
    pooled support, which is exact for step CDFs.
    """
    x = np.sort(np.asarray(x, dtype=np.float64))
    y = np.sort(np.asarray(y, dtype=np.float64))
    if x.size == 0 or y.size == 0:
        raise ValueError("ks_statistic needs non-empty samples on both sides")
    support = np.concatenate([x, y])
    fx = np.searchsorted(x, support, side="right") / x.size
    fy = np.searchsorted(y, support, side="right") / y.size
    return float(np.max(np.abs(fx - fy)))


@dataclass(frozen=True)
class KSVerdict:
    """Outcome of one anytime-KS checkpoint."""

    statistic: float  #: two-sample KS distance at this checkpoint
    threshold: float  #: time-uniform rejection envelope at this checkpoint
    n_x: int  #: backend-lane sample count so far
    n_y: int  #: oracle-lane sample count so far
    checks: int  #: checkpoints consumed so far (1-based)
    reject: bool  #: True → the distributions are provably different

    @property
    def margin(self) -> float:
        """``threshold - statistic``; negative exactly when rejecting."""
        return self.threshold - self.statistic


class AnytimeKS:
    """Streaming anytime-valid two-sample KS gate.

    Parameters
    ----------
    alpha:
        Total false-rejection budget over the *entire* (unbounded)
        sequence of checkpoints.  A truthful backend survives all
        checks with probability at least ``1 - alpha``.
    """

    def __init__(self, alpha: float = 0.01):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self._x: list[np.ndarray] = []
        self._y: list[np.ndarray] = []
        self._checks = 0
        self._rejected: KSVerdict | None = None

    @property
    def n_x(self) -> int:
        return sum(a.size for a in self._x)

    @property
    def n_y(self) -> int:
        return sum(a.size for a in self._y)

    def _envelope(self, n: int, alpha_k: float) -> float:
        # Two-sided DKW with half the checkpoint budget per lane:
        # sup |F_hat - F| <= sqrt(ln(4 / alpha_k) / (2 n)).
        return math.sqrt(math.log(4.0 / alpha_k) / (2.0 * n))

    def update(self, backend_taus, oracle_taus) -> KSVerdict:
        """Absorb one batch per lane and run a checkpoint.

        Either batch may be empty (the lanes need not stay in lock
        step), but both lanes must be non-empty overall before the
        first checkpoint.  A rejection is sticky: once the gate
        rejects, every later verdict repeats the rejection.
        """
        if self._rejected is not None:
            return self._rejected
        bx = np.asarray(backend_taus, dtype=np.float64).ravel()
        by = np.asarray(oracle_taus, dtype=np.float64).ravel()
        if bx.size:
            self._x.append(bx)
        if by.size:
            self._y.append(by)
        n_x, n_y = self.n_x, self.n_y
        if n_x == 0 or n_y == 0:
            raise ValueError(
                "AnytimeKS.update: both lanes need at least one sample "
                "before the first checkpoint"
            )
        self._checks += 1
        k = self._checks
        alpha_k = self.alpha / (k * (k + 1))
        stat = ks_statistic(np.concatenate(self._x), np.concatenate(self._y))
        thr = self._envelope(n_x, alpha_k) + self._envelope(n_y, alpha_k)
        verdict = KSVerdict(
            statistic=stat,
            threshold=thr,
            n_x=n_x,
            n_y=n_y,
            checks=k,
            reject=stat > thr,
        )
        if verdict.reject:
            self._rejected = verdict
        return verdict
