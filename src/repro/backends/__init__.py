"""Pluggable array backends for the lock-step engine.

The drivers in ``repro.core`` are branch-free array programs; this
package is the seam that lets them run on interchangeable array
namespaces.  ``numpy`` is the default and ``numpy_strict`` (same numpy
calls behind dtype assertions) proves the protocol is load-bearing;
the intended next tenants are CuPy/torch device backends, gated on the
statistical contract in :mod:`repro.backends.contract` when they cannot
reproduce the NumPy bitstream.

Selection, most specific wins:

1. explicit object/name at a call site
   (``estimate_dispersion(..., backend="numpy_strict")``),
2. the ``REPRO_BACKEND`` environment variable,
3. the ``numpy`` default.

Third-party backends register with :func:`register_backend`; see
``docs/backends.md`` for the protocol contract.
"""

from __future__ import annotations

import os

from repro.backends.base import ArrayBackend
from repro.backends.contract import AnytimeKS, KSVerdict, ks_statistic
from repro.backends.numpy_backend import NumpyBackend, NumpyStrictBackend

__all__ = [
    "AnytimeKS",
    "ArrayBackend",
    "KSVerdict",
    "NumpyBackend",
    "NumpyStrictBackend",
    "available_backends",
    "backend_of",
    "get_backend",
    "ks_statistic",
    "register_backend",
]

#: environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"

_DEFAULT = "numpy"

_REGISTRY: dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend, *, overwrite: bool = False) -> ArrayBackend:
    """Register a backend instance under its ``name``.

    Third-party packages call this at import time; re-registering an
    existing name raises unless ``overwrite=True`` (tests use that to
    shadow a backend temporarily).
    """
    if not isinstance(backend, ArrayBackend):
        raise TypeError(
            f"register_backend expects an ArrayBackend instance, "
            f"got {type(backend).__name__}"
        )
    name = backend.name
    if not name or name == ArrayBackend.name:
        raise ValueError(
            "backend must define a concrete, non-default `name` to register"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for test teardown)."""
    if name == _DEFAULT:
        raise ValueError("the default numpy backend cannot be unregistered")
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, default first, others sorted."""
    rest = sorted(n for n in _REGISTRY if n != _DEFAULT)
    return (_DEFAULT, *rest)


def get_backend(spec: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve ``spec`` to a backend instance.

    ``None`` consults ``REPRO_BACKEND`` and falls back to ``numpy``;
    a string is a registry lookup; an :class:`ArrayBackend` instance
    passes through unchanged.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR) or _DEFAULT
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name or an ArrayBackend instance, "
            f"got {type(spec).__name__}"
        )
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown array backend {spec!r}; available: "
            f"{', '.join(available_backends())} "
            "(register third-party backends with "
            "repro.backends.register_backend)"
        ) from None


def backend_of(g, override: str | ArrayBackend | None = None) -> ArrayBackend:
    """Backend for a driver operating on graph ``g``.

    An explicit ``override`` (the drivers' ``backend=`` kwarg) wins;
    otherwise the backend the graph was built with; otherwise the
    environment/default resolution.  Keeping graph arrays and driver
    arrays on the same backend is the caller's contract — for the
    in-repo numpy-family backends any mix is safe.
    """
    if override is not None:
        return get_backend(override)
    bound = getattr(g, "backend", None)
    if bound is not None:
        return get_backend(bound)
    return get_backend(None)


register_backend(NumpyBackend())
register_backend(NumpyStrictBackend())
