"""The ``ArrayBackend`` protocol — the engine's portable array surface.

The lock-step drivers are branch-free array programs per round: gather
neighbour slots, draw a block of uniforms, scatter settlement counts,
compress the survivors.  Everything else they do is plain elementwise
array arithmetic that any array-API namespace provides.  This module
names that split explicitly:

* ``xp`` — the array *namespace* (``numpy`` for the default backend).
  Drivers alias it once per call and use it for all portable ops
  (``xp.minimum``, ``xp.where``, ``xp.empty`` ...).
* a handful of **named primitives** that are not portable across array
  libraries with identical semantics, or that touch the host boundary:
  ``take`` (gather), ``bincount`` (the settlement scatter),
  ``searchsorted``, ``cumsum``, ``compress`` (masked compress),
  ``flatnonzero``, and ``fill_uniform`` — the RNG-block bridge that
  feeds :class:`repro.utils.rng.UniformStreams`.

Capability flags tell callers which equivalence contract a backend can
honour:

* ``exact_bitstream=True`` — the backend consumes NumPy ``Generator``
  double streams exactly (one double per draw, same order), so every
  driver output is **bit-identical** to the serial oracle and the
  differential harness (``tests/test_differential_drivers.py``) applies
  unchanged.
* ``exact_bitstream=False`` — the backend draws randomness its own way
  (device RNG, batched transfers).  Such backends are gated on the
  *statistical* contract instead: the anytime-valid KS test in
  :mod:`repro.backends.contract` against tau samples from the serial
  oracle.

Backends are identified by ``name`` and pickle by name (``__reduce__``),
so a backend selection ships through the fan-out descriptor to worker
processes as a plain string lookup.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Base class / protocol for array backends.

    Subclasses must set :attr:`name`, :attr:`exact_bitstream`, and
    implement :attr:`xp` plus the named primitives.  The default
    method bodies raise ``NotImplementedError`` so a partial backend
    fails loudly at the first unported call site.
    """

    #: registry key; also the value accepted by ``REPRO_BACKEND``.
    name: str = "abstract"

    #: True when the backend replays NumPy Generator double streams
    #: exactly — the bit-identity contract applies.  False relaxes the
    #: gate to the statistical contract (``repro.backends.contract``).
    exact_bitstream: bool = False

    @property
    def xp(self):
        """The array namespace (``numpy``-compatible module)."""
        raise NotImplementedError

    # -- construction / host boundary ----------------------------------

    def asarray(self, a, dtype=None):
        """Coerce ``a`` to a backend array (no copy when possible)."""
        raise NotImplementedError

    def ascontiguousarray(self, a, dtype=None):
        """Coerce to a C-contiguous backend array."""
        raise NotImplementedError

    def empty(self, shape, dtype=np.float64):
        """Allocate an uninitialised backend array."""
        raise NotImplementedError

    def zeros(self, shape, dtype=np.float64):
        """Allocate a zero-filled backend array."""
        raise NotImplementedError

    def full(self, shape, fill_value, dtype=None):
        """Allocate a constant-filled backend array."""
        raise NotImplementedError

    def arange(self, *args, dtype=None):
        """``arange`` in the backend namespace."""
        raise NotImplementedError

    def asnumpy(self, a):
        """Return ``a`` as a host ``numpy.ndarray`` (device → host).

        The scalar tail finisher and the result containers are host-side
        by design; drivers cross this boundary exactly once per handoff.
        """
        raise NotImplementedError

    # -- the non-portable primitives -----------------------------------

    def take(self, a, indices, out=None):
        """Gather ``a[indices]`` (the CSR neighbour-slot gather)."""
        raise NotImplementedError

    def bincount(self, x, minlength=0):
        """Counting scatter — the settlement histogram per round."""
        raise NotImplementedError

    def searchsorted(self, a, v, side="left"):
        """Sorted lookup (cohort/chunk boundary resolution)."""
        raise NotImplementedError

    def cumsum(self, a, dtype=None):
        """Prefix sum (indptr construction, schedule offsets)."""
        raise NotImplementedError

    def compress(self, mask, a):
        """Masked compress ``a[mask]`` — the per-round survivor filter."""
        raise NotImplementedError

    def flatnonzero(self, mask):
        """Indices of the True entries of ``mask`` (vacancy scans)."""
        raise NotImplementedError

    # -- the RNG-block bridge ------------------------------------------

    def fill_uniform(self, gen, out):
        """Fill ``out`` (float64) with uniforms from ``gen`` in place.

        ``gen`` is a ``numpy.random.Generator`` owning one repetition's
        SeedSequence child.  Exact-bitstream backends must consume the
        generator's double stream verbatim (``gen.random(out=...)``
        semantics); non-bitstream backends may substitute device RNG,
        accepting the statistical contract instead.
        """
        raise NotImplementedError

    # -- identity / transport ------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} exact_bitstream={self.exact_bitstream}>"

    def __reduce__(self):
        # Backends pickle by name so fan-out descriptors ship a string,
        # not module state; the worker re-resolves from its registry.
        from repro.backends import get_backend

        return (get_backend, (self.name,))
