"""Conversion between :class:`repro.graphs.Graph` and networkx.

networkx is an *optional* dependency used only here and in the test suite,
where it serves as an independent oracle for structural checks.  Import is
deferred so the core library has no hard networkx requirement.
"""

from __future__ import annotations


from repro.graphs.csr import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(g: Graph):
    """Convert to a ``networkx.Graph`` (multi-edges collapse; no loops exist
    in paper families, and loop slots are dropped with a warning-free skip).
    """
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(g.n))
    out.add_edges_from((u, v) for u, v in g.edges() if u != v)
    return out


def from_networkx(nxg, *, name: str | None = None) -> Graph:
    """Convert a ``networkx.Graph`` with hashable nodes to a CSR graph.

    Nodes are relabelled ``0..n-1`` in sorted order when sortable, else in
    insertion order.  Self-loops are rejected (see the CSR convention).
    """
    nodes = list(nxg.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {v: i for i, v in enumerate(nodes)}
    edges = []
    for u, v in nxg.edges():
        if u == v:
            raise ValueError("self-loops are not supported; remove them first")
        edges.append((index[u], index[v]))
    return Graph.from_edges(
        len(nodes), edges, name=name or getattr(nxg, "name", "") or "from-networkx"
    )
