"""Implicit Table-1 graph families: adjacency by arithmetic, not arrays.

CSR materialisation costs ``O(n + m)`` memory before the first walk step,
which caps the reachable scale well below the asymptotic regime the paper
argues about (``n -> oo`` dispersion of cycles, grids, tori, hypercubes,
trees).  The structured families have so much symmetry that adjacency
never needs storing: slot ``k`` of vertex ``v`` is a closed-form function
of ``(v, k)``.  This module provides :class:`ImplicitGraph` subclasses
whose ``neighbor_slots(positions, offsets)`` kernel computes that function
vectorised over walker arrays, so the resident graph footprint is ``O(1)``
in ``m`` and million-to-hundred-million-vertex runs become possible.

The slot-ordering contract
--------------------------
Every driver in the library consumes uniforms as ``off = floor(u * deg)``
and steps to *slot* ``off`` — so two graph builds produce bit-identical
walks iff their slot orderings agree exactly.  Each implicit kernel here
reproduces the precise slot order of its materialising generator (which is
fixed by :meth:`Graph.from_edges`'s stable sort over ``src = [forward
endpoints..., reverse endpoints...]``, or by the generator's direct CSR
construction).  That contract is pinned slot-for-slot by
``tests/test_graphs_implicit.py`` and end-to-end by the differential
driver harness; it is what makes "implicit vs CSR" a pure memory/perf
decision with zero RNG consequences.

Derived orderings (``slots[v][k]`` for ``k = 0..deg(v)-1``):

* cycle:      ``[(v+1) % n, (v-1) % n]``
* path:       ``[1]`` at 0, ``[n-2]`` at ``n-1``, else ``[v+1, v-1]``
* complete:   ascending ``0..n-1`` minus ``v`` (slot ``k`` is ``k`` if
  ``k < v`` else ``k+1``)
* grid:       forward axes in axis order (where ``coord < side-1``), then
  backward axes in axis order (where ``coord > 0``)
* torus:      forward wraps for every active axis (side >= 3) in axis
  order, then backward wraps in axis order
* hypercube:  clear bits ascending (``v | bit``), then set bits ascending
  (``v ^ bit``)
* btree:      ``[2v+1, 2v+2]`` while in range, then parent ``(v-1) // 2``

All families implement the full read-only :class:`Graph` protocol used by
the drivers and the runner (``n``, ``degrees``, ``num_edges``, ``name``,
``is_regular`` ...); regular families expose a zero-storage broadcast
degree vector and O(1) regularity predicates.  ``materialize()`` builds
the CSR twin (for spectral/Markov code that genuinely needs matrices), and
``descriptor()`` returns the picklable ``(family, params)`` spec that
:mod:`repro.experiments.fanout` ships to workers instead of a
shared-memory segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graphs.csr import check_spec_counts

__all__ = [
    "ImplicitGraph",
    "ImplicitGraphSpec",
    "implicit_graph",
    "from_descriptor",
    "ImplicitCycle",
    "ImplicitPath",
    "ImplicitComplete",
    "ImplicitGrid",
    "ImplicitTorus",
    "ImplicitHypercube",
    "ImplicitBinaryTree",
]


class LazyAdjacency:
    """Sequence view satisfying the scalar driver pattern ``adj[v] -> list``.

    The serial drivers and the batched tail finishers index adjacency as
    ``nbrs = adj[v]; nbrs[int(u * len(nbrs))]``.  For implicit graphs this
    object computes each neighbour list on demand from the kernel, keeping
    the O(1)-in-``m`` memory guarantee while staying slot-order (hence
    bit-) identical to ``Graph.adjacency_lists()``.
    """

    __slots__ = ("_g",)

    def __init__(self, g: "ImplicitGraph"):
        self._g = g

    def __len__(self) -> int:
        return self._g.n

    def __getitem__(self, v: int) -> list[int]:
        return self._g.neighbors(v).tolist()


@dataclass(frozen=True)
class ImplicitGraphSpec:
    """Picklable fan-out descriptor: rebuild the family, not the arrays.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the spec is
    hashable; ``n`` and ``name`` ride along for cheap validation on the
    worker side (see :func:`from_descriptor`).
    """

    family: str
    params: tuple[tuple[str, object], ...]
    n: int
    name: str


def from_descriptor(spec: ImplicitGraphSpec) -> "ImplicitGraph":
    """Reconstruct an implicit graph from its fan-out descriptor.

    Validation mirrors :meth:`Graph.from_shared` via the shared
    :func:`repro.graphs.csr.check_spec_counts` helper, then cross-checks
    that the rebuilt family matches the exporting side's ``n``/``name``.
    """
    check_spec_counts(spec.n)
    g = implicit_graph(spec.family, **dict(spec.params))
    if g.n != spec.n or g.name != spec.name:
        raise ValueError(
            f"descriptor mismatch: rebuilt {g.name!r} (n={g.n}) from spec "
            f"for {spec.name!r} (n={spec.n})"
        )
    return g


class ImplicitGraph:
    """Base class: the Graph protocol computed from ``(family, params)``.

    Subclasses implement ``_slots(positions, offsets)`` (the arithmetic
    kernel), set ``_const_degree`` (or override :meth:`_degree_array` for
    non-regular families), and provide ``num_edges``/``params``.
    """

    family = "implicit"

    def __init__(
        self, n: int, name: str, const_degree: int | None, backend=None
    ):
        from repro.backends import get_backend

        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self._n = int(n)
        self.name = name
        self.backend = get_backend(backend)
        self._xp = self.backend.xp
        self._const_degree = const_degree
        self._degrees_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # the neighbour kernel
    # ------------------------------------------------------------------
    def neighbor_slots(
        self,
        positions: np.ndarray,
        offsets: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Adjacency slot ``offsets[i]`` of vertex ``positions[i]``, computed
        arithmetically; same contract as :meth:`Graph.neighbor_slots`.

        The result is always assembled in a fresh array before any write to
        ``out``, so ``out=positions`` aliasing is safe (the drivers rely on
        in-place stepping).
        """
        positions = self.backend.asarray(positions, dtype=np.int64)
        offsets = self.backend.asarray(offsets, dtype=np.int64)
        result = self._slots(positions, offsets)
        if out is None:
            return result
        self._xp.copyto(out, result)
        return out

    def _slots(self, positions: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Graph protocol: sizes and degrees
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_vertices(self) -> int:
        """Alias for :attr:`n`."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (closed form per family)."""
        raise NotImplementedError

    @property
    def degrees(self) -> np.ndarray:
        """Walk-degree vector.

        Regular families return a read-only stride-0 broadcast of the
        constant — ``degrees[pos]`` gathers still work, but no ``O(n)``
        array ever exists.  Non-regular families materialise ``O(n)``
        int64 once (still independent of ``m``).
        """
        if self._degrees_cache is None:
            if self._const_degree is not None:
                self._degrees_cache = self._xp.broadcast_to(
                    np.int64(self._const_degree), (self._n,)
                )
            else:
                d = self._degree_array()
                if hasattr(d, "setflags"):
                    d.setflags(write=False)
                self._degrees_cache = d
        return self._degrees_cache

    def _degree_array(self) -> np.ndarray:
        raise NotImplementedError

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        if not 0 <= v < self._n:
            raise IndexError(f"vertex {v} out of range for n={self._n}")
        if self._const_degree is not None:
            return self._const_degree
        return int(self.degrees[v])

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ(G) — O(1) for regular families."""
        if self._const_degree is not None:
            return self._const_degree
        return int(self.degrees.max())

    @property
    def min_degree(self) -> int:
        """Minimum degree δ(G) — O(1) for regular families."""
        if self._const_degree is not None:
            return self._const_degree
        return int(self.degrees.min())

    def is_regular(self) -> bool:
        """True if every vertex has the same degree (O(1) when constant)."""
        if self._const_degree is not None:
            return True
        return self.min_degree == self.max_degree

    def is_almost_regular(self, ratio: float = 4.0) -> bool:
        """Paper §2: Δ(G)/δ(G) bounded by a constant (default 4)."""
        return self.max_degree <= ratio * self.min_degree

    # ------------------------------------------------------------------
    # Graph protocol: adjacency access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour array of ``v`` in slot order (freshly computed)."""
        v = int(v)
        d = self.degree(v)  # also range-checks v
        xp = self._xp
        if d == 0:
            return xp.empty(0, dtype=np.int64)
        return self._slots(
            xp.full(d, v, dtype=np.int64), xp.arange(d, dtype=np.int64)
        )

    def has_edge(self, u: int, v: int) -> bool:
        """True if at least one ``{u, v}`` edge exists."""
        return bool(np.any(self.neighbors(u) == v))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each (u < v), with multiplicity."""
        for u in range(self._n):
            for v in self.neighbors(u):
                v = int(v)
                if v > u:
                    yield (u, v)

    def adjacency_lists(self) -> LazyAdjacency:
        """On-demand ``adj[v] -> list`` view (see :class:`LazyAdjacency`)."""
        return LazyAdjacency(self)

    # ------------------------------------------------------------------
    # conversion and fan-out
    # ------------------------------------------------------------------
    @property
    def params(self) -> dict:
        """Constructor parameters (picklable) identifying this instance."""
        raise NotImplementedError

    def descriptor(self) -> ImplicitGraphSpec:
        """The ``(family, params)`` spec :mod:`fanout` ships to workers."""
        return ImplicitGraphSpec(
            family=self.family,
            params=tuple(sorted(self.params.items())),
            n=self._n,
            name=self.name,
        )

    def materialize(self):
        """Build the CSR twin via the materialising generator.

        Costs the full ``O(n + m)`` the implicit build avoids; needed only
        by matrix-based consumers (spectral bounds, Markov transition
        matrices).  Slot-for-slot equal to this graph by the module
        contract.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, n={self._n}, "
            f"m={self.num_edges})"
        )


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
class ImplicitCycle(ImplicitGraph):
    """Cycle ``C_n``: slot 0 is ``(v+1) % n``, slot 1 is ``(v-1) % n``."""

    family = "cycle"

    def __init__(self, n: int):
        n = int(n)
        if n < 3:
            raise ValueError(f"cycle needs n >= 3, got {n}")
        super().__init__(n, f"cycle-{n}", const_degree=2)

    def _slots(self, positions, offsets):
        n = self._n
        return self._xp.where(offsets == 0, positions + 1, positions - 1) % n

    @property
    def num_edges(self) -> int:
        return self._n

    @property
    def params(self) -> dict:
        return {"n": self._n}

    def materialize(self):
        from repro.graphs.generators.basic import cycle_graph

        return cycle_graph(self._n)


class ImplicitPath(ImplicitGraph):
    """Path ``P_n``: endpoints have one slot, interior ``[v+1, v-1]``."""

    family = "path"

    def __init__(self, n: int):
        n = int(n)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        # P1 (degree 0) and P2 (degree 1) are the regular edge cases.
        const = {1: 0, 2: 1}.get(n)
        super().__init__(n, f"path-{n}", const_degree=const)

    def _slots(self, positions, offsets):
        xp = self._xp
        fwd = xp.where(positions == self._n - 1, positions - 1, positions + 1)
        return xp.where(offsets == 0, fwd, positions - 1)

    def _degree_array(self):
        d = self._xp.full(self._n, 2, dtype=np.int64)
        d[0] = d[-1] = 1
        return d

    @property
    def num_edges(self) -> int:
        return self._n - 1

    @property
    def params(self) -> dict:
        return {"n": self._n}

    def materialize(self):
        from repro.graphs.generators.basic import path_graph

        return path_graph(self._n)


class ImplicitComplete(ImplicitGraph):
    """Complete graph ``K_n``: slot ``k`` of ``v`` is ``k + (k >= v)``."""

    family = "complete"

    def __init__(self, n: int):
        n = int(n)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        super().__init__(n, f"complete-{n}", const_degree=n - 1)

    def _slots(self, positions, offsets):
        return offsets + (offsets >= positions)

    @property
    def num_edges(self) -> int:
        return self._n * (self._n - 1) // 2

    @property
    def params(self) -> dict:
        return {"n": self._n}

    def materialize(self):
        from repro.graphs.generators.basic import complete_graph

        return complete_graph(self._n)


def _validate_sides(sides) -> tuple[int, ...]:
    sides = tuple(int(s) for s in sides)
    if not sides:
        raise ValueError("sides must be non-empty")
    if any(s < 1 for s in sides):
        raise ValueError(f"all sides must be >= 1, got {sides}")
    return sides


def _strides(sides: tuple[int, ...]) -> list[int]:
    """Row-major strides: vertex id = sum(coord[k] * stride[k])."""
    strides = [1] * len(sides)
    for k in range(len(sides) - 2, -1, -1):
        strides[k] = strides[k + 1] * sides[k + 1]
    return strides


class ImplicitGrid(ImplicitGraph):
    """Finite box grid: forward axes in order, then backward axes in order.

    Slot ``k`` is resolved by a countdown over the per-axis *active*
    conditions (``coord < side-1`` forward, ``coord > 0`` backward): each
    pass claims the walkers whose remaining slot count hits zero, in
    ``2 d`` vectorised passes total.
    """

    family = "grid"

    def __init__(self, *sides: int):
        sides = _validate_sides(sides)
        n = 1
        for s in sides:
            n *= s
        # Regular iff no axis mixes boundary and interior coords: sides of
        # 1 contribute 0 slots everywhere, sides of 2 exactly 1 slot.
        const = sum(1 for s in sides if s == 2) if all(s <= 2 for s in sides) else None
        label = "x".join(str(s) for s in sides)
        super().__init__(n, f"grid-{label}", const_degree=const)
        self.sides = sides
        self._axis_strides = _strides(sides)

    def _slots(self, positions, offsets):
        result = self._xp.empty_like(positions)
        remaining = offsets.copy()  # claimed walkers go negative for good
        for direction in (+1, -1):
            for stride, s in zip(self._axis_strides, self.sides):
                coord = (positions // stride) % s
                active = coord < s - 1 if direction > 0 else coord > 0
                hit = active & (remaining == 0)
                if hit.any():
                    result[hit] = positions[hit] + direction * stride
                remaining -= active
        return result

    def _degree_array(self):
        xp = self._xp
        d = xp.zeros(self._n, dtype=np.int64)
        ids = xp.arange(self._n, dtype=np.int64)
        for stride, s in zip(self._axis_strides, self.sides):
            coord = (ids // stride) % s
            d += coord < s - 1
            d += coord > 0
        return d

    @property
    def num_edges(self) -> int:
        return sum((self._n // s) * (s - 1) for s in self.sides)

    @property
    def params(self) -> dict:
        return {"sides": self.sides}

    def materialize(self):
        from repro.graphs.generators.grids import grid_graph

        return grid_graph(*self.sides)


class ImplicitTorus(ImplicitGraph):
    """Torus: forward wraps for active axes in order, then backward wraps.

    Axes of side 1 are inactive (contribute no edges); side 2 is rejected
    exactly like the materialising generator (wrap-around would duplicate
    the edge).  Every vertex has ``2 * (number of active axes)`` slots, so
    slot ``k`` addresses axis ``k mod a`` directly — no countdown needed.
    """

    family = "torus"

    def __init__(self, *sides: int):
        sides = _validate_sides(sides)
        if any(s == 2 for s in sides):
            raise ValueError(
                "torus sides must be 1 or >= 3 (side 2 duplicates edges)"
            )
        n = 1
        for s in sides:
            n *= s
        label = "x".join(str(s) for s in sides)
        strides = _strides(sides)
        active = [(st, s) for st, s in zip(strides, sides) if s >= 3]
        super().__init__(n, f"torus-{label}", const_degree=2 * len(active))
        self.sides = sides
        self._active = active

    def _slots(self, positions, offsets):
        xp = self._xp
        result = xp.empty_like(positions)
        a = len(self._active)
        for j, (stride, s) in enumerate(self._active):
            for direction, slot in ((+1, j), (-1, a + j)):
                hit = offsets == slot
                if hit.any():
                    p = positions[hit]
                    coord = (p // stride) % s
                    if direction > 0:
                        delta = xp.where(coord == s - 1, 1 - s, 1)
                    else:
                        delta = xp.where(coord == 0, s - 1, -1)
                    result[hit] = p + delta * stride
        return result

    @property
    def num_edges(self) -> int:
        return len(self._active) * self._n

    @property
    def params(self) -> dict:
        return {"sides": self.sides}

    def materialize(self):
        from repro.graphs.generators.grids import torus_graph

        return torus_graph(*self.sides)


class ImplicitHypercube(ImplicitGraph):
    """Boolean hypercube: clear bits ascending, then set bits ascending."""

    family = "hypercube"

    def __init__(self, dim: int):
        dim = int(dim)
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        super().__init__(1 << dim, f"hypercube-{dim}", const_degree=dim)
        self.dim = dim
        self._bits = np.int64(1) << np.arange(dim, dtype=np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        # Single-vertex fast path: the generic _slots pass structure costs
        # ~2·dim masked array ops per call, which dominates the scalar
        # tail finisher at full dispersion (one neighbors() per walk
        # step).  Slot order is clear bits ascending then set bits
        # ascending — expressible with one mask over the bit table.
        v = int(v)
        self.degree(v)  # range-checks v
        clear = (v & self._bits) == 0
        return self._xp.concatenate((v ^ self._bits[clear], v ^ self._bits[~clear]))

    def _slots(self, positions, offsets):
        result = self._xp.empty_like(positions)
        remaining = offsets.copy()
        # Pass 1: clear bits ascending (edges v -> v | bit from from_edges'
        # forward arcs); pass 2: set bits ascending (the reverse arcs).
        for want_clear in (True, False):
            for b in range(self.dim):
                bit = np.int64(1 << b)
                is_clear = (positions & bit) == 0
                active = is_clear if want_clear else ~is_clear
                hit = active & (remaining == 0)
                if hit.any():
                    result[hit] = positions[hit] ^ bit
                remaining -= active
        return result

    @property
    def num_edges(self) -> int:
        return self.dim * self._n // 2

    @property
    def params(self) -> dict:
        return {"dim": self.dim}

    def materialize(self):
        from repro.graphs.generators.grids import hypercube_graph

        return hypercube_graph(self.dim)


class ImplicitBinaryTree(ImplicitGraph):
    """Complete binary tree in heap order: children first, then parent."""

    family = "btree"

    def __init__(self, height: int):
        height = int(height)
        if height < 0:
            raise ValueError(f"height must be >= 0, got {height}")
        n = (1 << (height + 1)) - 1
        super().__init__(n, f"btree-h{height}", const_degree=0 if n == 1 else None)
        self.height = height

    def _slots(self, positions, offsets):
        half = (self._n - 1) // 2  # vertices below this id have children
        child = (positions < half) & (offsets < 2)
        result = (positions - 1) >> 1  # parent slot (the final slot)
        return self._xp.where(child, 2 * positions + 1 + offsets, result)

    def _degree_array(self):
        n = self._n
        d = self._xp.ones(n, dtype=np.int64)  # leaves
        d[: (n - 1) // 2] = 3  # internal: two children + parent
        d[0] = 2  # root has no parent (n >= 3 whenever non-const)
        return d

    @property
    def num_edges(self) -> int:
        return self._n - 1

    @property
    def params(self) -> dict:
        return {"height": self.height}

    def materialize(self):
        from repro.graphs.generators.trees import complete_binary_tree

        return complete_binary_tree(self.height)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _hypercube_factory(*, dim: int | None = None, n: int | None = None):
    if (dim is None) == (n is None):
        raise ValueError("hypercube takes exactly one of dim= or n=")
    if dim is None:
        n = int(n)
        if n < 2 or n & (n - 1):
            raise ValueError(
                f"hypercube needs n a power of two >= 2, got n={n}"
            )
        dim = n.bit_length() - 1
    return ImplicitHypercube(dim)


def _btree_factory(*, height: int | None = None, n: int | None = None):
    if (height is None) == (n is None):
        raise ValueError("btree takes exactly one of height= or n=")
    if height is None:
        n = int(n)
        if n < 1 or n & (n + 1):
            raise ValueError(
                "complete binary tree needs n = 2^(h+1) - 1 "
                f"(a balanced size), got unbalanced n={n}"
            )
        height = (n + 1).bit_length() - 2
    return ImplicitBinaryTree(height)


IMPLICIT_FAMILIES = {
    "cycle": lambda *, n: ImplicitCycle(n),
    "path": lambda *, n: ImplicitPath(n),
    "complete": lambda *, n: ImplicitComplete(n),
    "grid": lambda *, sides: ImplicitGrid(*sides),
    "torus": lambda *, sides: ImplicitTorus(*sides),
    "hypercube": _hypercube_factory,
    "btree": _btree_factory,
}


def implicit_graph(family: str, **params) -> ImplicitGraph:
    """Build an implicit family by name: ``implicit_graph("cycle", n=10**6)``.

    ``hypercube`` accepts ``dim=`` or ``n=`` (power of two); ``btree``
    accepts ``height=`` or ``n=`` (must be ``2^(h+1) - 1``); ``grid`` and
    ``torus`` take ``sides=`` (an iterable of side lengths).  This is also
    the reconstruction entry point for fan-out descriptors.
    """
    try:
        factory = IMPLICIT_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown implicit family {family!r}; available: "
            f"{sorted(IMPLICIT_FAMILIES)}"
        ) from None
    return factory(**params)
