"""Graph substrate: CSR representation, generators, structural properties.

Quick start::

    from repro.graphs import cycle_graph
    g = cycle_graph(64)
    g.n, g.num_edges, g.is_regular()
"""

from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.csr import Graph, check_spec_counts, neighbor_kernel
from repro.graphs.implicit import (
    ImplicitGraph,
    ImplicitGraphSpec,
    implicit_graph,
)
from repro.graphs.generators import (
    barbell_graph,
    binary_tree_with_path,
    clique_with_hair,
    clique_with_hair_on_pimple,
    comb_graph,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    double_star,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    largest_component,
    lollipop_connector,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import (
    bfs_distances,
    degree_histogram,
    diameter,
    eccentricity,
    is_tree,
    leaves,
)

__all__ = [
    "Graph",
    "check_spec_counts",
    "neighbor_kernel",
    "ImplicitGraph",
    "ImplicitGraphSpec",
    "implicit_graph",
    "from_networkx",
    "to_networkx",
    # generators
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "complete_binary_tree",
    "binary_tree_with_path",
    "comb_graph",
    "double_star",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "lollipop_graph",
    "lollipop_connector",
    "clique_with_hair",
    "clique_with_hair_on_pimple",
    "barbell_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "largest_component",
    # properties
    "bfs_distances",
    "diameter",
    "eccentricity",
    "is_tree",
    "degree_histogram",
    "leaves",
]
