"""Compressed-sparse-row graph representation.

The whole library operates on :class:`Graph`, an immutable undirected graph
stored as two NumPy arrays:

``indptr``
    shape ``(n + 1,)`` — ``indices[indptr[v]:indptr[v+1]]`` are the
    neighbours of vertex ``v``.
``indices``
    shape ``(2m,)`` — concatenated adjacency lists (each undirected edge
    appears once per endpoint).

This layout makes the random-walk hot loop a pair of vectorised gathers
(see :mod:`repro.walks.engine`) and keeps memory contiguous, following the
cache-friendliness guidance of the HPC guide.  Vertices are ``0..n-1``.

Self-loops are permitted and follow a *walk-centric* convention: each loop
occupies **one** slot in the adjacency list of its vertex, so a step from
``v`` picks one of ``len(neighbors(v))`` slots uniformly.  Adding ``deg(v)``
loop slots at every vertex therefore turns the simple walk into the lazy
walk — the paper's §4.4 construction ``G~`` ("consider the graph with the
addition of (multi)-loops at each vertex").  Parallel edges are permitted
for the same reason.  ``num_edges`` counts non-loop edges; the paper's
graph families are all loop-free.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "check_spec_counts", "neighbor_kernel"]


def check_spec_counts(n: int, nnz: int | None = None) -> None:
    """Validate the integer counts of a cross-process graph spec.

    Shared by :meth:`Graph.from_shared` (shared-memory CSR segments) and
    the implicit-graph descriptor path in :mod:`repro.experiments.fanout`,
    so both reconstruction routes reject malformed specs with the same
    error instead of drifting apart.
    """
    if nnz is None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got n={n}")
    elif n < 0 or nnz < 0:
        raise ValueError(f"n and nnz must be >= 0, got n={n}, nnz={nnz}")


def neighbor_kernel(g):
    """Return the ``neighbor_slots`` kernel of ``g``, or raise clearly.

    Every graph object the walk layer accepts — CSR :class:`Graph` and the
    arithmetic families in :mod:`repro.graphs.implicit` — exposes
    ``neighbor_slots(positions, offsets, out=None)``.  A graph-like object
    without it would previously fail deep inside a driver with an opaque
    ``AttributeError`` (or, worse, a duck-typed near-miss could walk the
    wrong edges); binding through this helper turns that into an immediate
    ``TypeError`` naming the contract.
    """
    kernel = getattr(g, "neighbor_slots", None)
    if not callable(kernel):
        raise TypeError(
            f"{type(g).__name__} does not provide a neighbor_slots kernel; "
            "WalkEngine and the lock-step drivers step graphs through "
            "neighbor_slots(positions, offsets, out=None) — pass a "
            "repro.graphs.Graph (CSR), an ImplicitGraph family, or an "
            "object implementing that method"
        )
    return kernel


class Graph:
    """An immutable undirected (multi)graph in CSR form.

    Parameters
    ----------
    indptr, indices:
        CSR arrays as described in the module docstring.  Copied and
        validated unless ``validate=False`` (internal fast path).
    name:
        Optional human-readable label used in experiment tables.

    Notes
    -----
    Construction via :meth:`from_edges` or the generators in
    :mod:`repro.graphs.generators` is preferred; the raw constructor exists
    for conversion code.
    """

    __slots__ = (
        "indptr",
        "indices",
        "name",
        "backend",
        "_degrees",
        "_num_edges",
        "_slot_base",
    )

    def __init__(
        self,
        indptr,
        indices,
        *,
        name: str = "graph",
        validate: bool = True,
        backend=None,
    ):
        from repro.backends import get_backend

        self.backend = get_backend(backend)
        indptr = self.backend.ascontiguousarray(indptr, dtype=np.int64)
        indices = self.backend.ascontiguousarray(indices, dtype=np.int64)
        if validate:
            self._validate(indptr, indices)
        self.indptr = indptr
        self.indices = indices
        self.name = name
        self._degrees = self.backend.xp.diff(indptr)
        self._num_edges: int | None = None
        self._slot_base: int | None = None  # lazy: constant degree, or -1
        # Freeze the arrays: Graph instances are shared between processes
        # and cached; accidental mutation would corrupt every consumer.
        # (Host-array concept: device backends without setflags skip it.)
        for arr in (self.indptr, self.indices, self._degrees):
            if hasattr(arr, "setflags"):
                arr.setflags(write=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} entries)"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        # Undirectedness: the multiset of (u, v) arcs must be symmetric.
        u = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        fwd = np.stack([u, indices], axis=1)
        rev = np.stack([indices, u], axis=1)
        fwd_sorted = fwd[np.lexsort((fwd[:, 1], fwd[:, 0]))]
        rev_sorted = rev[np.lexsort((rev[:, 1], rev[:, 0]))]
        if not np.array_equal(fwd_sorted, rev_sorted):
            raise ValueError(
                "adjacency structure is not symmetric (graph must be undirected)"
            )

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]],
        *,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Each pair ``(u, v)`` with ``u != v`` adds one undirected edge.
        Self-loop pairs ``(u, u)`` are rejected here — use
        :meth:`with_self_loops` for the lazy-walk construction, which has a
        documented single-slot convention.

        Examples
        --------
        >>> g = Graph.from_edges(3, [(0, 1), (1, 2)], name="P3")
        >>> g.degree(1)
        2
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError("edges must be pairs (u, v)")
        if edge_arr.size and (edge_arr.min() < 0 or edge_arr.max() >= n):
            raise ValueError("edge endpoints out of range")
        if edge_arr.size and np.any(edge_arr[:, 0] == edge_arr[:, 1]):
            raise ValueError(
                "self-loops are not accepted by from_edges; "
                "use Graph.with_self_loops for lazy-walk constructions"
            )
        # Symmetrise: every edge contributes an arc in both directions.
        src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
        dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, name=name, validate=False)

    @classmethod
    def from_shared(cls, buf, n: int, nnz: int, *, name: str = "graph") -> "Graph":
        """Zero-copy reconstruction from a packed shared-memory buffer.

        ``buf`` (any buffer object, e.g. ``multiprocessing.shared_memory
        .SharedMemory.buf``) holds ``indptr`` — ``n + 1`` native int64 —
        immediately followed by ``indices`` (``nnz`` int64): the layout
        written by :class:`repro.experiments.fanout.SharedGraph`.  The
        returned graph's CSR arrays are *views* of ``buf``; nothing is
        copied and nothing re-validated (the exporting side held an
        already-validated graph).  The caller owns the buffer lifetime:
        keep the mapping open while the graph is alive, and drop every
        reference to the graph before closing it.
        """
        itemsize = np.dtype(np.int64).itemsize
        check_spec_counts(n, nnz)
        if len(buf) < (n + 1 + nnz) * itemsize:
            raise ValueError(
                f"buffer too small for n={n}, nnz={nnz}: need "
                f"{(n + 1 + nnz) * itemsize} bytes, got {len(buf)}"
            )
        indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=buf)
        indices = np.ndarray(
            (nnz,), dtype=np.int64, buffer=buf, offset=(n + 1) * itemsize
        )
        return cls(indptr, indices, name=name, validate=False)

    @classmethod
    def from_adjacency_lists(
        cls, adjacency: Sequence[Sequence[int]], *, name: str = "graph"
    ) -> "Graph":
        """Build from a list of neighbour lists (must already be symmetric)."""
        n = len(adjacency)
        if n == 0:
            raise ValueError("adjacency must be non-empty")
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(a) for a in adjacency])
        flat: list[int] = []
        for nbrs in adjacency:
            flat.extend(int(x) for x in nbrs)
        indices = np.asarray(flat, dtype=np.int64)
        return cls(indptr, indices, name=name, validate=True)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def num_vertices(self) -> int:
        """Alias for :attr:`n`."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of undirected non-loop edges ``m``.

        Exact for loop-free graphs (all paper families); for graphs produced
        by :meth:`with_self_loops` this counts the original edges only.
        """
        if self._num_edges is None:
            u = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
            self._num_edges = int((u != self.indices).sum()) // 2
        return self._num_edges

    @property
    def degrees(self) -> np.ndarray:
        """Walk-degree vector: number of adjacency slots per vertex.

        Equal to the graph degree for loop-free graphs; each self-loop slot
        adds 1 (see module docstring for the convention).
        """
        return self._degrees

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._degrees[v])

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ(G)."""
        return int(self._degrees.max())

    @property
    def min_degree(self) -> int:
        """Minimum degree δ(G)."""
        return int(self._degrees.min())

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the neighbour array of ``v`` (with multiplicity)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_slots(
        self,
        positions: np.ndarray,
        offsets: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorised slot gather: element ``i`` is ``indices[indptr[positions[i]]
        + offsets[i]]``, i.e. adjacency slot ``offsets[i]`` of vertex
        ``positions[i]``.

        This is the neighbour-kernel seam: the lock-step drivers and
        :class:`repro.walks.engine.WalkEngine` never touch ``indptr`` /
        ``indices`` directly, they call this method — which the implicit
        families in :mod:`repro.graphs.implicit` replace with pure
        arithmetic.  Offsets must satisfy ``0 <= offsets[i] <
        degree(positions[i])`` (drivers guarantee this by construction).

        For regular graphs ``indptr[v] == c * v``, so the indptr gather
        collapses to one multiply; the constant is detected once and cached.
        """
        base = self._slot_base
        if base is None:
            regular = self.n > 0 and int(self._degrees.min()) == int(
                self._degrees.max()
            )
            base = self._slot_base = int(self._degrees[0]) if regular else -1
        if base >= 0:
            flat = positions * base + offsets
        else:
            flat = self.backend.take(self.indptr, positions) + offsets
        return self.backend.take(self.indices, flat, out=out)

    def has_edge(self, u: int, v: int) -> bool:
        """True if at least one ``{u, v}`` edge exists."""
        return bool(np.any(self.neighbors(u) == v))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected non-loop edges once each (u < v), with multiplicity."""
        for u in range(self.n):
            for v in self.neighbors(u):
                v = int(v)
                if v > u:
                    yield (u, v)

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------
    def is_regular(self) -> bool:
        """True if every vertex has the same degree."""
        return self.min_degree == self.max_degree

    def is_almost_regular(self, ratio: float = 4.0) -> bool:
        """Paper §2: Δ(G)/δ(G) bounded by a constant (default 4)."""
        return self.max_degree <= ratio * self.min_degree

    def is_connected(self) -> bool:
        """BFS connectivity check (iterative, vectorised frontier expansion)."""
        n = self.n
        if n == 1:
            return True
        seen = np.zeros(n, dtype=bool)
        seen[0] = True
        frontier = np.array([0], dtype=np.int64)
        count = 1
        while frontier.size:
            # Gather all neighbours of the frontier in one shot.
            starts = self.indptr[frontier]
            ends = self.indptr[frontier + 1]
            total = int((ends - starts).sum())
            if total == 0:
                break
            nxt = np.concatenate(
                [self.indices[s:e] for s, e in zip(starts, ends)]
            )
            nxt = np.unique(nxt)
            nxt = nxt[~seen[nxt]]
            seen[nxt] = True
            count += nxt.size
            frontier = nxt
        return count == n

    def is_bipartite(self) -> bool:
        """Two-colouring via BFS; self-loops make a graph non-bipartite."""
        n = self.n
        color = np.full(n, -1, dtype=np.int8)
        for start in range(n):
            if color[start] != -1:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                u = stack.pop()
                cu = color[u]
                for v in self.neighbors(u):
                    v = int(v)
                    if color[v] == -1:
                        color[v] = 1 - cu
                        stack.append(v)
                    elif color[v] == cu:
                        return False
        return True

    def adjacency_lists(self) -> list[list[int]]:
        """Plain Python adjacency lists (fast single-walker loop uses these)."""
        return [
            self.indices[self.indptr[v] : self.indptr[v + 1]].tolist()
            for v in range(self.n)
        ]

    def with_self_loops(self, loops_per_vertex=None) -> "Graph":
        """Return a copy with self-loop *slots* added at every vertex.

        Parameters
        ----------
        loops_per_vertex:
            ``None`` adds ``deg(v)`` loop slots at each ``v`` — the paper's
            §4.4 construction ``G~`` whose simple walk equals the lazy walk
            on ``G`` (stay probability exactly 1/2).  An integer adds that
            many slots everywhere.
        """
        if loops_per_vertex is None:
            extra = self._degrees.copy()
        else:
            if loops_per_vertex < 0:
                raise ValueError("loops_per_vertex must be >= 0")
            extra = np.full(self.n, int(loops_per_vertex), dtype=np.int64)
        new_deg = self._degrees + extra
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(new_deg, out=indptr[1:])
        indices = np.empty(indptr[-1], dtype=np.int64)
        for v in range(self.n):
            s = indptr[v]
            d = self._degrees[v]
            indices[s : s + d] = self.neighbors(v)
            indices[s + d : s + d + extra[v]] = v
        return Graph(indptr, indices, name=f"{self.name}+loops", validate=False)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(name={self.name!r}, n={self.n}, m={self.num_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:
        return hash((self.n, self.indices.size, self.indices.tobytes()))
