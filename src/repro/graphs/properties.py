"""Structural graph properties needed by the bound calculators.

These are deterministic, exact computations (BFS-based); spectral and
Markov-chain quantities live in :mod:`repro.markov`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph

__all__ = [
    "bfs_distances",
    "diameter",
    "eccentricity",
    "is_tree",
    "degree_histogram",
    "leaves",
]


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every vertex (-1 if unreachable)."""
    n = g.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nxt_parts = [g.indices[g.indptr[u] : g.indptr[u + 1]] for u in frontier]
        nxt = (
            np.unique(np.concatenate(nxt_parts))
            if nxt_parts
            else np.array([], dtype=np.int64)
        )
        nxt = nxt[dist[nxt] == -1]
        dist[nxt] = d
        frontier = nxt
    return dist


def eccentricity(g: Graph, v: int) -> int:
    """Maximum hop distance from ``v`` (graph must be connected)."""
    dist = bfs_distances(g, v)
    if np.any(dist < 0):
        raise ValueError("graph is disconnected; eccentricity undefined")
    return int(dist.max())


def diameter(g: Graph) -> int:
    """Exact diameter via n BFS passes (fine for the sizes we exercise)."""
    best = 0
    for v in range(g.n):
        best = max(best, eccentricity(g, v))
    return best


def is_tree(g: Graph) -> bool:
    """Connected and ``m = n - 1`` (loop-free assumed, as in all families)."""
    return g.num_edges == g.n - 1 and g.is_connected()


def degree_histogram(g: Graph) -> dict[int, int]:
    """Map degree -> vertex count."""
    vals, counts = np.unique(g.degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(vals, counts)}


def leaves(g: Graph) -> np.ndarray:
    """Indices of degree-1 vertices (the paper's Theorem 3.7 targets)."""
    return np.flatnonzero(g.degrees == 1)
