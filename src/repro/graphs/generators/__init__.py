"""Graph generators for every family appearing in the paper.

======================  =============================================
Generator               Paper reference
======================  =============================================
``path_graph``          Theorem 5.4 (κ_p n² log n)
``cycle_graph``         Theorem 5.9 (Θ(n² log n))
``complete_graph``      Theorem 5.2 (κ_cc n vs π²/6 n)
``star_graph``          Theorem 3.7 tightness remark
``complete_binary_tree``Theorem 5.14 (Θ(n log² n))
``binary_tree_with_path`` Proposition 3.8 (t_hit ≫ t_seq gap)
``grid_graph``          §5.2.2 grids
``torus_graph``         §5.2.2 tori
``hypercube_graph``     Theorem 5.7 (Θ(n))
``lollipop_graph``      Proposition 5.16 (Ω(n³ log n))
``clique_with_hair``    Propositions 2.1 & A.1
``clique_with_hair_on_pimple``  Proposition 2.1 (G₂)
``random_regular_graph``Theorem 5.5 expanders
``erdos_renyi_graph``   Remark 5.6
``comb_graph``/``double_star``/``barbell_graph``  auxiliary stress tests
======================  =============================================
"""

from repro.graphs.generators.basic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.composite import (
    barbell_graph,
    clique_with_hair,
    clique_with_hair_on_pimple,
    lollipop_connector,
    lollipop_graph,
)
from repro.graphs.generators.grids import grid_graph, hypercube_graph, torus_graph
from repro.graphs.generators.random import (
    erdos_renyi_graph,
    largest_component,
    random_regular_graph,
)
from repro.graphs.generators.trees import (
    binary_tree_with_path,
    comb_graph,
    complete_binary_tree,
    double_star,
)

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "complete_binary_tree",
    "binary_tree_with_path",
    "comb_graph",
    "double_star",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "lollipop_graph",
    "lollipop_connector",
    "clique_with_hair",
    "clique_with_hair_on_pimple",
    "barbell_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "largest_component",
]
