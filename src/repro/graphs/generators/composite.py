"""Composite/counterexample graphs: lollipops and "hairy" cliques.

Paper references
----------------
* Proposition 5.16: the **lollipop** (clique ⌈n/2⌉ + path ⌊n/2⌋) witnesses
  the general worst case ``t_seq = Ω(n³ log n)`` of Corollary 3.2.
* Proposition 2.1: the **clique with a hair** (G₁) and the **clique with a
  hair on a pimple** (G₂) show the dispersion time need not concentrate.
* Proposition A.1: the clique with a hair also violates a least-action
  principle under a modified settling rule.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.generators.basic import complete_graph

__all__ = [
    "lollipop_graph",
    "lollipop_connector",
    "clique_with_hair",
    "clique_with_hair_on_pimple",
    "barbell_graph",
]


def lollipop_graph(n: int) -> Graph:
    """Lollipop on ``n`` vertices: ``⌈n/2⌉``-clique + path of ``⌊n/2⌋`` vertices.

    Vertices ``0 .. ⌈n/2⌉-1`` form the clique; the path hangs off clique
    vertex ``⌈n/2⌉-1`` (the paper's connector ``v``).  The far path endpoint
    is vertex ``n - 1``.

    Proposition 5.16: started from a clique vertex other than the
    connector, ``τ_seq = Ω(n³ log n)`` w.h.p.

    >>> g = lollipop_graph(10)
    >>> g.n, g.num_edges
    (10, 15)
    """
    if n < 4:
        raise ValueError(f"lollipop needs n >= 4, got {n}")
    k = (n + 1) // 2  # clique size ⌈n/2⌉
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    prev = k - 1  # connector vertex inside the clique
    for v in range(k, n):
        edges.append((prev, v))
        prev = v
    return Graph.from_edges(n, edges, name=f"lollipop-{n}")


def lollipop_connector(n: int) -> int:
    """Index of the clique vertex adjoining the path in :func:`lollipop_graph`."""
    return (n + 1) // 2 - 1


def clique_with_hair(n: int) -> Graph:
    """Proposition 2.1's G₁: ``K_{n-1}`` plus a pendant vertex ("hair tip").

    Total ``n`` vertices: ``0 .. n-2`` form the clique, and the hair tip
    ``n - 1`` attaches to clique vertex ``0`` (the paper's ``v``).  Started
    from ``v``, the dispersion time is ``O(n)`` with probability
    ``≈ 1 − 1/e`` but ``Ω(n²)`` with probability ``≈ 1/e``.

    >>> clique_with_hair(5).degree(4)
    1
    """
    if n < 4:
        raise ValueError(f"clique_with_hair needs n >= 4, got {n}")
    k = n - 1
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    edges.append((0, n - 1))
    return Graph.from_edges(n, edges, name=f"hairy-clique-{n}")


def clique_with_hair_on_pimple(n: int, pimple_size: int | None = None) -> Graph:
    """Proposition 2.1's G₂: an edge ``{v, v*}`` attached at ``v`` to
    ``h - 1`` vertices of a clique.

    Construction (following the paper's proof): a clique ``K_{n-2}`` on
    vertices ``0 .. n-3``; vertex ``v = n-2`` is adjacent to the first
    ``h - 1`` clique vertices (the "pimple" attachment) and to the hair tip
    ``v* = n-1``.  With ``h = n / log n`` (default) the expected dispersion
    time from ``v`` is ``Θ(n)`` yet ``Pr[D ≥ Ω(n²)] = Ω(1/n)``.

    >>> g = clique_with_hair_on_pimple(32)
    >>> g.degree(31)
    1
    """
    if n < 8:
        raise ValueError(f"clique_with_hair_on_pimple needs n >= 8, got {n}")
    if pimple_size is None:
        pimple_size = max(2, int(round(n / np.log(n))))
    h = int(pimple_size)
    if not 2 <= h <= n - 2:
        raise ValueError(f"pimple_size must be in [2, n-2], got {h}")
    kn = n - 2  # clique size
    v, vstar = n - 2, n - 1
    edges = [(i, j) for i in range(kn) for j in range(i + 1, kn)]
    edges.extend((v, u) for u in range(h - 1))
    edges.append((v, vstar))
    return Graph.from_edges(n, edges, name=f"pimple-clique-{n}-h{h}")


def barbell_graph(clique_size: int, path_len: int) -> Graph:
    """Two cliques joined by a path — a classic slow-mixing testbed.

    Vertices ``0 .. k-1``: first clique; ``k .. k+p-1``: path;
    ``k+p .. 2k+p-1``: second clique.  Exercises the mixing-time lower
    bound of Proposition 3.9 on a non-vertex-transitive graph.

    >>> barbell_graph(4, 2).n
    10
    """
    k, p = int(clique_size), int(path_len)
    if k < 3:
        raise ValueError(f"clique_size must be >= 3, got {k}")
    if p < 0:
        raise ValueError(f"path_len must be >= 0, got {p}")
    n = 2 * k + p
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    edges += [(k + p + i, k + p + j) for i in range(k) for j in range(i + 1, k)]
    chain = [k - 1] + [k + t for t in range(p)] + [k + p]
    edges += list(zip(chain[:-1], chain[1:]))
    return Graph.from_edges(n, edges, name=f"barbell-{k}-{p}")
