"""Tree families: complete binary trees and the paper's counterexample trees.

Paper references
----------------
* §5.2.3 / Theorem 5.14: the complete binary tree has dispersion time
  ``Θ(n log² n)``.
* Proposition 3.8: a complete binary tree with a path of length
  ``n^{1/2 - ε}`` glued to the root separates hitting time
  (``Ω(n^{3/2-ε})``) from sequential dispersion time (``O(n log² n)``).
* §1.3 / combs appear in related work; a comb generator is provided for
  exploratory experiments.
"""

from __future__ import annotations

import math

from repro.graphs.csr import Graph

__all__ = [
    "complete_binary_tree",
    "binary_tree_with_path",
    "comb_graph",
    "double_star",
]


def complete_binary_tree(height: int, *, implicit: bool = False) -> Graph:
    """Complete binary tree of the given height (root = vertex 0).

    The tree has ``n = 2^(height+1) - 1`` vertices in heap order: children
    of ``i`` are ``2i + 1`` and ``2i + 2``.  Height 0 is a single vertex.
    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1)-in-m memory; see :mod:`repro.graphs.implicit`).

    >>> complete_binary_tree(2).n
    7
    """
    if implicit:
        from repro.graphs.implicit import ImplicitBinaryTree

        return ImplicitBinaryTree(height)
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    n = (1 << (height + 1)) - 1
    edges = []
    for i in range(n):
        left, right = 2 * i + 1, 2 * i + 2
        if left < n:
            edges.append((i, left))
        if right < n:
            edges.append((i, right))
    return Graph.from_edges(max(n, 1), edges, name=f"btree-h{height}")


def binary_tree_with_path(height: int, path_len: int | None = None) -> Graph:
    """Proposition 3.8 counterexample: binary tree + path hanging off the root.

    A complete binary tree with ``n_t = 2^(height+1) - 1`` nodes, with a
    path of ``path_len`` extra vertices attached to the root at one
    endpoint.  Default ``path_len`` is ``floor(n_t^{1/2 - 1/8})``, matching
    the paper's ``n^{1/2-ε}`` with ``ε = 1/8``.

    Layout: vertices ``0 .. n_t - 1`` are the tree in heap order; vertices
    ``n_t .. n_t + path_len - 1`` are the path, attached at the root 0.

    >>> g = binary_tree_with_path(2, path_len=3)
    >>> g.n
    10
    """
    tree = complete_binary_tree(height)
    n_t = tree.n
    if path_len is None:
        path_len = max(1, int(math.floor(n_t ** (0.5 - 0.125))))
    if path_len < 0:
        raise ValueError(f"path_len must be >= 0, got {path_len}")
    n = n_t + path_len
    edges = list(tree.edges())
    prev = 0
    for k in range(path_len):
        edges.append((prev, n_t + k))
        prev = n_t + k
    return Graph.from_edges(n, edges, name=f"btree-h{height}+path{path_len}")


def comb_graph(teeth: int, tooth_len: int) -> Graph:
    """Comb: a spine path with a path ("tooth") hanging from every vertex.

    ``teeth`` spine vertices ``0 .. teeth-1``; tooth ``i`` consists of
    ``tooth_len`` vertices hanging below spine vertex ``i``.  Total
    ``n = teeth (1 + tooth_len)``.  Combs appear in the IDLA shape-theorem
    literature cited in §1.3 and exercise the bounded-degree tree bounds.

    >>> comb_graph(3, 2).n
    9
    """
    if teeth < 1:
        raise ValueError(f"teeth must be >= 1, got {teeth}")
    if tooth_len < 0:
        raise ValueError(f"tooth_len must be >= 0, got {tooth_len}")
    n = teeth * (1 + tooth_len)
    edges = [(i, i + 1) for i in range(teeth - 1)]
    next_free = teeth
    for i in range(teeth):
        prev = i
        for _ in range(tooth_len):
            edges.append((prev, next_free))
            prev = next_free
            next_free += 1
    return Graph.from_edges(n, edges, name=f"comb-{teeth}x{tooth_len}")


def double_star(left_leaves: int, right_leaves: int) -> Graph:
    """Two star centres joined by an edge.

    Vertices: 0 and 1 are the centres; ``left_leaves`` leaves hang off 0 and
    ``right_leaves`` off 1.  A classic tree stressing Theorem 3.6's
    ``Ω(|E|/Δ)`` lower bound in the highly irregular regime.

    >>> double_star(2, 3).n
    7
    """
    if left_leaves < 0 or right_leaves < 0:
        raise ValueError("leaf counts must be >= 0")
    n = 2 + left_leaves + right_leaves
    edges = [(0, 1)]
    v = 2
    for _ in range(left_leaves):
        edges.append((0, v))
        v += 1
    for _ in range(right_leaves):
        edges.append((1, v))
        v += 1
    return Graph.from_edges(n, edges, name=f"dstar-{left_leaves}-{right_leaves}")
