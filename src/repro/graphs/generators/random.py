"""Random graph families used as expanders.

Paper references
----------------
* Theorem 5.5: almost-regular expanders have ``t_seq, t_par = Θ(n)``.
* Remark 5.6: this covers ``G(n, p)`` above the connectivity threshold
  (``np ≥ c log n``, ``c > 1``).

Random d-regular graphs (``d ≥ 3``) are expanders with high probability; we
generate them by the configuration model with rejection of loops/multi-edges
(the standard simple-graph sampler, fine for the moderate d used here).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.utils.rng import as_generator

__all__ = ["random_regular_graph", "erdos_renyi_graph", "largest_component"]

_MAX_TRIES = 2000


def random_regular_graph(n: int, d: int, seed=None) -> Graph:
    """Random simple ``d``-regular graph (Steger–Wormald pairing).

    The plain configuration model rejects whole matchings containing a loop
    or multi-edge, which succeeds only with probability ``≈ e^{-(d²-1)/4}``
    — hopeless already at d = 6.  Steger–Wormald instead pairs stubs
    incrementally, re-drawing only the offending pair, and restarts in the
    (rare) event the remaining stubs admit no legal pair; the output is
    asymptotically uniform for ``d = O(n^{1/3})`` [Steger & Wormald 1999],
    amply uniform for the expander experiments here.

    ``n·d`` must be even and ``d < n``.

    >>> g = random_regular_graph(16, 3, seed=1)
    >>> g.is_regular() and g.degree(0) == 3
    True
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if d >= n:
        raise ValueError(f"d must be < n, got d={d}, n={n}")
    if (n * d) % 2:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    rng = as_generator(seed)
    for _ in range(_MAX_TRIES):
        stubs = np.repeat(np.arange(n, dtype=np.int64), d)
        rng.shuffle(stubs)
        stubs = stubs.tolist()
        edges: set[tuple[int, int]] = set()
        stuck = False
        while stubs:
            # Try a bounded number of random pair draws before declaring
            # the partial matching stuck (then restart from scratch).
            for _attempt in range(200):
                i = int(rng.integers(len(stubs)))
                j = int(rng.integers(len(stubs)))
                if i == j:
                    continue
                u, v = stubs[i], stubs[j]
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in edges:
                    continue
                edges.add(key)
                # remove both stubs (order matters: pop larger index first)
                for idx in sorted((i, j), reverse=True):
                    stubs[idx] = stubs[-1]
                    stubs.pop()
                break
            else:
                stuck = True
                break
        if stuck:
            continue
        g = Graph.from_edges(n, edges, name=f"rrg-{n}-d{d}")
        if d == 1 or g.is_connected():
            return g
    raise RuntimeError(
        f"Steger–Wormald pairing failed to produce a simple connected graph "
        f"after {_MAX_TRIES} restarts (n={n}, d={d})"
    )


def erdos_renyi_graph(n: int, p: float, seed=None) -> Graph:
    """Erdős–Rényi ``G(n, p)``: every pair is an edge independently w.p. ``p``.

    The sample may be disconnected; dispersion processes require connected
    graphs, so callers either choose ``p`` above the connectivity threshold
    or extract :func:`largest_component`.

    >>> g = erdos_renyi_graph(30, 0.5, seed=7)
    >>> 0 < g.num_edges <= 30 * 29 // 2
    True
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = as_generator(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    edges = zip(iu[mask].tolist(), ju[mask].tolist())
    return Graph.from_edges(n, edges, name=f"gnp-{n}-p{p:g}")


def largest_component(g: Graph) -> tuple[Graph, np.ndarray]:
    """Extract the largest connected component.

    Returns the induced subgraph (with vertices relabelled ``0..k-1``) and
    the array of original vertex ids, ordered by new label.
    """
    n = g.n
    comp = np.full(n, -1, dtype=np.int64)
    n_comp = 0
    for s in range(n):
        if comp[s] != -1:
            continue
        comp[s] = n_comp
        stack = [s]
        while stack:
            u = stack.pop()
            for v in g.neighbors(u):
                v = int(v)
                if comp[v] == -1:
                    comp[v] = n_comp
                    stack.append(v)
        n_comp += 1
    sizes = np.bincount(comp, minlength=n_comp)
    big = int(sizes.argmax())
    keep = np.flatnonzero(comp == big)
    relabel = np.full(n, -1, dtype=np.int64)
    relabel[keep] = np.arange(keep.size)
    edges = [
        (int(relabel[u]), int(relabel[v]))
        for u, v in g.edges()
        if comp[u] == big and comp[v] == big
    ]
    sub = Graph.from_edges(keep.size, edges, name=f"{g.name}-lcc")
    return sub, keep
