"""Lattice families: d-dimensional grids, tori and the hypercube.

Paper references
----------------
* §5.2.2: 2-d grid/torus has ``t_seq, t_par ∈ [Ω(n log n), O(n log² n)]``
  (Open Problem 1); for ``d ≥ 3`` both are ``Θ(n)`` (Theorem 5.11).
* Theorem 5.7: the hypercube has ``Θ(n)`` dispersion time.
"""

from __future__ import annotations


import numpy as np

from repro.graphs.csr import Graph

__all__ = ["grid_graph", "torus_graph", "hypercube_graph"]


def _mixed_radix_strides(sides: tuple[int, ...]) -> np.ndarray:
    """Row-major strides so vertex id = sum(coord[k] * stride[k])."""
    strides = np.ones(len(sides), dtype=np.int64)
    for k in range(len(sides) - 2, -1, -1):
        strides[k] = strides[k + 1] * sides[k + 1]
    return strides


def _validate_sides(sides) -> tuple[int, ...]:
    sides = tuple(int(s) for s in sides)
    if not sides:
        raise ValueError("sides must be non-empty")
    if any(s < 1 for s in sides):
        raise ValueError(f"all sides must be >= 1, got {sides}")
    return sides


def grid_graph(*sides: int, implicit: bool = False) -> Graph:
    """Finite d-dimensional box grid with the given side lengths.

    ``grid_graph(5, 5)`` is the paper's finite 2-d box; vertex ids are
    row-major.  Boundary vertices have smaller degree (the graph is
    almost-regular for fixed d).  ``implicit=True`` returns the
    arithmetic-adjacency build (same slot order, O(1)-in-m memory; see
    :mod:`repro.graphs.implicit`).

    >>> grid_graph(2, 3).num_edges
    7
    """
    if implicit:
        from repro.graphs.implicit import ImplicitGrid

        return ImplicitGrid(*sides)
    sides = _validate_sides(sides)
    strides = _mixed_radix_strides(sides)
    n = int(np.prod(sides))
    edges: list[tuple[int, int]] = []
    # Vectorised per-axis edge construction: for axis k connect each vertex
    # with coordinate < side-1 to its +1 neighbour.
    coords = np.stack(
        np.meshgrid(*[np.arange(s, dtype=np.int64) for s in sides], indexing="ij"),
        axis=-1,
    ).reshape(n, len(sides))
    ids = coords @ strides
    for k, s in enumerate(sides):
        if s < 2:
            continue
        mask = coords[:, k] < s - 1
        u = ids[mask]
        v = u + strides[k]
        edges.extend(zip(u.tolist(), v.tolist()))
    label = "x".join(str(s) for s in sides)
    return Graph.from_edges(n, edges, name=f"grid-{label}")


def torus_graph(*sides: int, implicit: bool = False) -> Graph:
    """d-dimensional torus (grid with wrap-around edges).

    Sides of length 1 contribute nothing; sides of length 2 would create a
    parallel edge from wrap-around and are rejected to keep the family
    simple (use ``grid_graph`` or a hypercube for side-2 boxes).
    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1) memory; see :mod:`repro.graphs.implicit`).

    >>> torus_graph(4, 4).is_regular()
    True
    """
    if implicit:
        from repro.graphs.implicit import ImplicitTorus

        return ImplicitTorus(*sides)
    sides = _validate_sides(sides)
    if any(s == 2 for s in sides):
        raise ValueError("torus sides must be 1 or >= 3 (side 2 duplicates edges)")
    strides = _mixed_radix_strides(sides)
    n = int(np.prod(sides))
    coords = np.stack(
        np.meshgrid(*[np.arange(s, dtype=np.int64) for s in sides], indexing="ij"),
        axis=-1,
    ).reshape(n, len(sides))
    ids = coords @ strides
    edges: list[tuple[int, int]] = []
    for k, s in enumerate(sides):
        if s < 3:
            continue
        nxt = coords.copy()
        nxt[:, k] = (nxt[:, k] + 1) % s
        v = nxt @ strides
        edges.extend(zip(ids.tolist(), v.tolist()))
    label = "x".join(str(s) for s in sides)
    return Graph.from_edges(n, edges, name=f"torus-{label}")


def hypercube_graph(dim: int, *, implicit: bool = False) -> Graph:
    """Boolean hypercube ``{0,1}^dim`` with ``n = 2^dim`` vertices.

    Vertex ids are bit masks; ``u ~ v`` iff they differ in exactly one bit.
    The paper writes ``H_n`` with ``n = 2^k`` vertices (Theorem 5.7).
    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1) memory; see :mod:`repro.graphs.implicit`).

    >>> hypercube_graph(3).degrees.tolist() == [3] * 8
    True
    """
    if implicit:
        from repro.graphs.implicit import ImplicitHypercube

        return ImplicitHypercube(dim)
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n = 1 << dim
    ids = np.arange(n, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for b in range(dim):
        bit = 1 << b
        u = ids[(ids & bit) == 0]
        edges.extend(zip(u.tolist(), (u | bit).tolist()))
    return Graph.from_edges(n, edges, name=f"hypercube-{dim}")
