"""Basic graph families: paths, cycles, cliques, stars.

These are the workhorses of the paper's Table 1 (path, cycle, complete
graph) and of Theorem 3.7 / Lemma 5.1 (star = two-level tree whose
Sequential-IDLA is twice the coupon collector).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph

__all__ = ["path_graph", "cycle_graph", "complete_graph", "star_graph"]


def path_graph(n: int, *, implicit: bool = False) -> Graph:
    """Path ``P_n`` on vertices ``0 - 1 - ... - (n-1)``.

    Paper reference: Theorem 5.4 — ``t_seq(P_n) = t_par(P_n) = (1 ± o(1))
    E[M]`` where ``M`` is the max of ``n`` endpoint-to-endpoint hitting
    times; empirically ``≈ κ_p n² log n`` with ``κ_p ≈ 0.6``.

    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1)-in-m memory; see :mod:`repro.graphs.implicit`).

    >>> path_graph(4).degrees.tolist()
    [1, 2, 2, 1]
    """
    if implicit:
        from repro.graphs.implicit import ImplicitPath

        return ImplicitPath(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return Graph(np.array([0, 0]), np.array([], dtype=np.int64), name="path-1")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph.from_edges(n, edges, name=f"path-{n}")


def cycle_graph(n: int, *, implicit: bool = False) -> Graph:
    """Cycle ``C_n``.

    Paper reference: Theorem 5.9 — dispersion time ``Θ(n² log n)`` for both
    processes, matching the regular-graph worst case of Corollary 3.2.

    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1) memory; see :mod:`repro.graphs.implicit`).

    >>> cycle_graph(5).is_regular()
    True
    """
    if implicit:
        from repro.graphs.implicit import ImplicitCycle

        return ImplicitCycle(n)
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges, name=f"cycle-{n}")


def complete_graph(n: int, *, implicit: bool = False) -> Graph:
    """Complete graph ``K_n``.

    Paper reference: Theorem 5.2 — ``t_seq(K_n) ~ κ_cc n`` (coupon
    collector's longest wait, κ_cc ≈ 1.255) and ``t_par(K_n) ~ (π²/6) n``.

    ``implicit=True`` returns the arithmetic-adjacency build (same slot
    order, O(1) memory; see :mod:`repro.graphs.implicit`).

    >>> complete_graph(4).num_edges
    6
    """
    if implicit:
        from repro.graphs.implicit import ImplicitComplete

        return ImplicitComplete(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return Graph(np.array([0, 0]), np.array([], dtype=np.int64), name="complete-1")
    # Vectorised construction: vertex v's neighbour list is 0..n-1 minus v.
    base = np.arange(n, dtype=np.int64)
    rows = np.broadcast_to(base, (n, n))
    mask = ~np.eye(n, dtype=bool)
    indices = rows[mask]  # row v = all u != v, sorted
    indptr = np.arange(n + 1, dtype=np.int64) * (n - 1)
    return Graph(indptr, indices, name=f"complete-{n}", validate=False)


def star_graph(n: int) -> Graph:
    """Star ``S_n``: centre vertex 0 joined to ``n - 1`` leaves.

    Paper reference: remark after Theorem 3.7 — ``t_seq(S_n) = 2 t_seq(K_n)
    ≈ 2.51 n``, showing the tree lower bound ``2n − 3`` is near-tight.

    >>> star_graph(5).degree(0)
    4
    """
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    edges = [(0, i) for i in range(1, n)]
    return Graph.from_edges(n, edges, name=f"star-{n}")
