"""Small argument-validation helpers with consistent error messages.

Hot loops never call these; they guard public API boundaries only, per the
"make it work reliably, then optimise the bottleneck" workflow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_index",
    "check_probability_vector",
]


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value, *, inclusive: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` lies in (0, 1) (or [0, 1])."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
        rng = "[0, 1]"
    else:
        ok = 0.0 < value < 1.0
        rng = "(0, 1)"
    if not ok:
        raise ValueError(f"{name} must be in {rng}, got {value!r}")


def check_index(name: str, value, n: int) -> int:
    """Validate a vertex/particle index against size ``n`` and return it as int."""
    idx = int(value)
    if idx != value:
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not 0 <= idx < n:
        raise ValueError(f"{name} must be in [0, {n}), got {idx}")
    return idx


def check_probability_vector(name: str, vec, *, atol: float = 1e-9) -> np.ndarray:
    """Validate that ``vec`` is a probability vector; return it as float array."""
    arr = np.asarray(vec, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-9 * arr.size):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr
