"""Small argument-validation helpers with consistent error messages.

Hot loops never call these; they guard public API boundaries only, per the
"make it work reliably, then optimise the bottleneck" workflow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_index",
    "check_integer",
    "check_probability_vector",
]


def check_integer(name: str, value) -> int:
    """Validate an integral scalar kwarg and return it as plain ``int``.

    Accepts Python ``int``, NumPy integers and integral floats
    (``2.0 -> 2``); rejects booleans (``True`` silently becoming ``1``
    is precisely the hazard) and non-integral values with a
    ``ValueError`` naming the offending argument — the guard against the
    ``int(...)`` coercions on public kwargs that used to truncate
    ``2.9 -> 2`` silently.
    """
    if isinstance(value, (bool, np.bool_)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)) and float(value).is_integer():
        return int(value)
    raise ValueError(f"{name} must be an integer, got {value!r}")


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value, *, inclusive: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` lies in (0, 1) (or [0, 1])."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
        rng = "[0, 1]"
    else:
        ok = 0.0 < value < 1.0
        rng = "(0, 1)"
    if not ok:
        raise ValueError(f"{name} must be in {rng}, got {value!r}")


def check_index(name: str, value, n: int) -> int:
    """Validate a vertex/particle index against size ``n`` and return it as int."""
    if isinstance(value, (bool, np.bool_)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    idx = int(value)
    if idx != value:
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not 0 <= idx < n:
        raise ValueError(f"{name} must be in [0, {n}), got {idx}")
    return idx


def check_probability_vector(name: str, vec, *, atol: float = 1e-9) -> np.ndarray:
    """Validate that ``vec`` is a probability vector; return it as float array."""
    arr = np.asarray(vec, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-9 * arr.size):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr
