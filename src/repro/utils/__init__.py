"""Shared utilities: RNG handling, argument validation, timing helpers.

These are internal building blocks used across the library.  They are
re-exported here so downstream code can write ``from repro.utils import
as_generator`` without caring about module layout.
"""

from repro.utils.rng import as_generator, spawn_generators, stable_seed
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "stable_seed",
    "Stopwatch",
    "check_fraction",
    "check_index",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
]
