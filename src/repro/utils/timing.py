"""Tiny wall-clock stopwatch used by the experiment harness.

``pytest-benchmark`` handles micro-benchmarks; :class:`Stopwatch` covers the
coarser "how long did this sweep take" bookkeeping stored in result files.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def running(self) -> bool:
        """True while inside the ``with`` block."""
        return self._start is not None and self.elapsed == 0.0
