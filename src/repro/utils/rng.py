"""Random-number-generator plumbing.

All stochastic entry points in the library accept a ``seed`` argument that
may be ``None`` (fresh OS entropy), an integer, a ``numpy.random.SeedSequence``
or an existing ``numpy.random.Generator``.  :func:`as_generator` normalises
any of those into a ``Generator`` so that the rest of the code never touches
global RNG state — a prerequisite for reproducible experiments and for
fan-out across worker processes (each worker receives an independent child
generator created by :func:`spawn_generators`).
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "None | int | np.random.SeedSequence | np.random.Generator"

__all__ = [
    "as_generator",
    "spawn_seed_sequences",
    "spawn_generators",
    "stable_seed",
    "UniformStream",
]


def as_generator(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed object.

    Parameters
    ----------
    seed:
        ``None`` (use OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that callers can thread
        one generator through a pipeline of calls).

    Examples
    --------
    >>> g = as_generator(12345)
    >>> g2 = as_generator(g)
    >>> g2 is g
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def spawn_seed_sequences(seed, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child ``SeedSequence`` objects.

    The single source of child streams for Monte-Carlo fan-out: the serial
    runner, the process-pool runner and the batched cross-repetition
    drivers all derive repetition ``r``'s stream from child ``r`` of the
    same parent, so the three execution modes are bit-identical (the
    equivalence tests in ``tests/test_core_batched.py`` rely on this).

    Parameters
    ----------
    seed:
        Any object accepted by :func:`as_generator`, or a ``SeedSequence``.
        When a ``Generator`` is passed, children are derived from its
        ``bit_generator``'s seed sequence via ``spawn``.
    n:
        Number of children, must be >= 0.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Generators created from a SeedSequence carry it on the bit generator.
        ss = seed.bit_generator.seed_seq
        if ss is None:  # pragma: no cover - legacy bit generators only
            ss = np.random.SeedSequence()
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return ss.spawn(n)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` (via :func:`spawn_seed_sequences`) under
    the hood, which guarantees non-overlapping streams — the recommended
    pattern for parallel Monte Carlo (one child per worker / repetition).
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]


class UniformStream:
    """Block-buffered uniform doubles with a parallel ``log1p(-u)`` lane.

    The serial continuous-time drivers (:mod:`repro.core.uniform`,
    :mod:`repro.core.continuous`) draw *nothing but* uniform doubles from
    their generator: exponential clocks, geometric skips and scheduler
    picks are all inverse-CDF transforms of one ``Generator.random``
    stream.  Because NumPy double streams are chunk-invariant (``random(a)``
    then ``random(b)`` equals one ``random(a + b)`` call, double for
    double), the batched lock-step drivers in
    :mod:`repro.core.batched_continuous` can replay the very same streams
    with whatever buffering suits them — the *consumption order* is the
    whole contract.

    The log lane exists for bit-identity: ``np.log1p`` (used vectorised by
    the batched drivers) is elementwise-deterministic across array shapes
    and strides but is **not** bit-identical to ``math.log1p``, so the
    serial drivers must take their logarithms from NumPy too.  Computing
    ``log1p(-u)`` once per refilled block keeps the scalar loop fast.

    The first block is drawn lazily: a driver whose process finishes at
    time 0 consumes no randomness at all, exactly like its batched replica.

    Examples
    --------
    >>> s = UniformStream(as_generator(0), block=4)
    >>> ref = as_generator(0).random(6)
    >>> [s.uniform() for _ in range(6)] == ref.tolist()
    True
    """

    __slots__ = ("_rng", "_block", "_u", "_log", "_i")

    def __init__(self, rng: np.random.Generator, block: int = 16384):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._u: list[float] | None = None
        self._log: list[float] | None = None
        self._i = block

    def _refill(self) -> None:
        arr = self._rng.random(self._block)
        self._u = arr.tolist()
        self._log = np.log1p(-arr).tolist()
        self._i = 0

    def uniform(self) -> float:
        """Next double of the stream, as drawn."""
        i = self._i
        if i == self._block:
            self._refill()
            i = 0
        self._i = i + 1
        return self._u[i]

    def log1mu(self) -> float:
        """Consume the next double ``u`` and return ``log1p(-u)`` (≤ 0).

        The inverse-CDF workhorse: ``-log1mu()/λ`` is ``Exp(λ)`` and
        ``int(log1mu()/log1p(-p)) + 1`` is ``Geometric(p)``, both exactly
        reproducible from the uniform stream by the batched drivers.
        """
        i = self._i
        if i == self._block:
            self._refill()
            i = 0
        self._i = i + 1
        return self._log[i]


def stable_seed(*parts) -> int:
    """Derive a deterministic 63-bit seed from arbitrary labelled parts.

    Used by the experiment registry so that e.g. ``("table1", "cycle", 256,
    rep=3)`` always maps to the same RNG stream regardless of execution
    order.  The hash is content-based (SHA-256 over the ``repr`` of the
    parts), therefore stable across processes and Python versions that
    preserve ``repr`` of the inputs (ints and strings do).

    Examples
    --------
    >>> stable_seed("cycle", 128) == stable_seed("cycle", 128)
    True
    >>> stable_seed("cycle", 128) != stable_seed("cycle", 129)
    True
    """
    payload = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)
