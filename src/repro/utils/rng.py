"""Random-number-generator plumbing.

All stochastic entry points in the library accept a ``seed`` argument that
may be ``None`` (fresh OS entropy), an integer, a ``numpy.random.SeedSequence``
or an existing ``numpy.random.Generator``.  :func:`as_generator` normalises
any of those into a ``Generator`` so that the rest of the code never touches
global RNG state — a prerequisite for reproducible experiments and for
fan-out across worker processes (each worker receives an independent child
generator created by :func:`spawn_generators`).
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "None | int | np.random.SeedSequence | np.random.Generator"

__all__ = [
    "as_generator",
    "as_seed_sequence",
    "spawn_seed_sequences",
    "spawn_generators",
    "stable_seed",
    "UniformStream",
    "UniformStreams",
    "resolve_stream_block",
]


def as_generator(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed object.

    Parameters
    ----------
    seed:
        ``None`` (use OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that callers can thread
        one generator through a pipeline of calls).

    Examples
    --------
    >>> g = as_generator(12345)
    >>> g2 = as_generator(g)
    >>> g2 is g
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def as_seed_sequence(seed) -> np.random.SeedSequence:
    """Parent ``SeedSequence`` for any accepted seed object.

    ``SeedSequence.spawn`` advances the parent's child counter, so
    spawning ``a`` children and then ``b`` more from the *same* parent
    object yields exactly the children ``spawn(a + b)`` would have — the
    property the adaptive runner's incremental rep top-up relies on.
    Callers that spawn in rounds must therefore resolve the parent once
    (through here) and keep spawning from that object.
    """
    if isinstance(seed, np.random.Generator):
        # Generators created from a SeedSequence carry it on the bit generator.
        ss = seed.bit_generator.seed_seq
        if ss is None:  # pragma: no cover - legacy bit generators only
            ss = np.random.SeedSequence()
        return ss
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seed_sequences(seed, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child ``SeedSequence`` objects.

    The single source of child streams for Monte-Carlo fan-out: the serial
    runner, the process-pool runner and the batched cross-repetition
    drivers all derive repetition ``r``'s stream from child ``r`` of the
    same parent, so the three execution modes are bit-identical (the
    equivalence tests in ``tests/test_core_batched.py`` rely on this).

    Parameters
    ----------
    seed:
        Any object accepted by :func:`as_generator`, or a ``SeedSequence``.
        When a ``Generator`` is passed, children are derived from its
        ``bit_generator``'s seed sequence via ``spawn``.
    n:
        Number of children, must be >= 0.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return as_seed_sequence(seed).spawn(n)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` (via :func:`spawn_seed_sequences`) under
    the hood, which guarantees non-overlapping streams — the recommended
    pattern for parallel Monte Carlo (one child per worker / repetition).
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]


class UniformStream:
    """Block-buffered uniform doubles with a parallel ``log1p(-u)`` lane.

    The serial continuous-time drivers (:mod:`repro.core.uniform`,
    :mod:`repro.core.continuous`) draw *nothing but* uniform doubles from
    their generator: exponential clocks, geometric skips and scheduler
    picks are all inverse-CDF transforms of one ``Generator.random``
    stream.  Because NumPy double streams are chunk-invariant (``random(a)``
    then ``random(b)`` equals one ``random(a + b)`` call, double for
    double), the batched lock-step drivers in
    :mod:`repro.core.batched_continuous` can replay the very same streams
    with whatever buffering suits them — the *consumption order* is the
    whole contract.

    The log lane exists for bit-identity: ``np.log1p`` (used vectorised by
    the batched drivers) is elementwise-deterministic across array shapes
    and strides but is **not** bit-identical to ``math.log1p``, so the
    serial drivers must take their logarithms from NumPy too.  Computing
    ``log1p(-u)`` once per refilled block keeps the scalar loop fast.

    The first block is drawn lazily: a driver whose process finishes at
    time 0 consumes no randomness at all, exactly like its batched replica.

    ``initial`` primes the stream with already-drawn leftover doubles that
    are consumed *before* the first generator fetch — the handoff contract
    of the scalar tail finisher: a batched driver that buffered ahead of
    consumption passes its unconsumed doubles here, and the finisher's
    scalar loop continues the very same stream mid-flight.  ``drawn``
    counts doubles fetched from the generator (the leftover excluded), so
    callers can reconcile the generator position against the serial
    drivers' fetch schedule.

    Examples
    --------
    >>> s = UniformStream(as_generator(0), block=4)
    >>> ref = as_generator(0).random(6)
    >>> [s.uniform() for _ in range(6)] == ref.tolist()
    True
    """

    __slots__ = ("_rng", "_block", "_u", "_log", "_i", "_n", "drawn")

    def __init__(
        self, rng: np.random.Generator, block: int = 16384, initial=None
    ):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self.drawn = 0
        if initial is not None and len(initial):
            arr = np.ascontiguousarray(initial, dtype=np.float64)
            self._u = arr.tolist()
            self._n = arr.size
        else:
            self._u: list[float] | None = None
            self._n = 0
        # the log lane is computed lazily per block on first log1mu() use:
        # uniform()/take() consumers (the scalar tail finisher) never pay
        self._log: list[float] | None = None
        self._i = 0

    def _refill(self) -> None:
        arr = self._rng.random(self._block)
        self.drawn += self._block
        self._u = arr.tolist()
        self._log = None
        self._n = self._block
        self._i = 0

    def uniform(self) -> float:
        """Next double of the stream, as drawn."""
        i = self._i
        if i == self._n:
            self._refill()
            i = 0
        self._i = i + 1
        return self._u[i]

    def log1mu(self) -> float:
        """Consume the next double ``u`` and return ``log1p(-u)`` (≤ 0).

        The inverse-CDF workhorse: ``-log1mu()/λ`` is ``Exp(λ)`` and
        ``int(log1mu()/log1p(-p)) + 1`` is ``Geometric(p)``, both exactly
        reproducible from the uniform stream by the batched drivers.
        """
        i = self._i
        if i == self._n:
            self._refill()
            i = 0
        log = self._log
        if log is None:
            log = self._log = np.log1p(
                -np.asarray(self._u, dtype=np.float64)
            ).tolist()
        self._i = i + 1
        return log[i]

    def take_block(self) -> np.ndarray:
        """Next contiguous run of the stream as a float64 array.

        The bulk-handoff twin of :meth:`uniform` for the compiled tail
        finishers (:mod:`repro.kernels`): the first call returns whatever
        buffered doubles remain unconsumed (the ``initial`` prefix and/or
        the current block's tail), later calls fetch whole fresh blocks —
        exactly the fetch cadence of the scalar loop, so ``drawn`` stays
        reconcilable with the serial grid via
        :meth:`UniformStreams.align_to_serial`.  Do not interleave with
        the scalar accessors: the returned array is handed off whole, so
        this stream's cursor jumps past it.
        """
        i = self._i
        if i < self._n:
            out = np.asarray(self._u[i : self._n], dtype=np.float64)
            self._i = self._n
            return out
        self.drawn += self._block
        return self._rng.random(self._block)

    def take(self, count: int) -> list[float]:
        """Next ``count`` doubles of the stream, in draw order.

        Used by the scalar tail finisher to replay the batched drivers'
        contiguous per-round consumption (e.g. the lazy wide phase's
        ``k`` hold gates followed by ``k`` step uniforms).
        """
        out: list[float] = []
        remaining = count
        while remaining:
            if self._i == self._n:
                self._refill()
            j = min(self._n - self._i, remaining)
            out.extend(self._u[self._i : self._i + j])
            self._i += j
            remaining -= j
        return out


#: Total doubles the streaming scheme budgets across *all* repetitions of
#: one batched run (32 MiB of float64).  The per-repetition chunk shrinks
#: as the repetition count grows, so the allocation never scales past the
#: budget *except* through the per-repetition floor (one round's
#: worst-case consumption must fit — for the parallel driver that is
#: ``2·m + 2`` doubles, the same order as the lock-step particle state
#: itself, which no buffer policy can shrink).  This bounded-refill
#: property is what replaced the old ``_BATCHED_MAX_BUFFER_DOUBLES``
#: auto-dispatch decline.
_STREAM_BUDGET_DOUBLES = 2**22

#: Per-repetition chunk ceiling: beyond this, bigger chunks no longer
#: amortise refill overhead measurably.
_STREAM_MAX_BLOCK = 65536


def resolve_stream_block(
    reps: int,
    *,
    per_rep_min: int = 1,
    align: int | None = None,
    block: int | None = None,
    budget_doubles: int | None = None,
) -> int:
    """Per-repetition chunk length the streaming buffer scheme uses.

    The single source of truth for batched buffer sizing — the driver
    modules' ``stream_block`` reporting helpers and the actual
    :class:`UniformStreams` allocations both resolve through here, so the
    reported size always equals the real allocation.

    Parameters
    ----------
    reps:
        Number of repetitions sharing the budget.
    per_rep_min:
        Worst-case doubles one repetition consumes before it can refill
        (e.g. ``2·m + 2`` for one Parallel-IDLA round); the chunk never
        drops below this.
    align:
        Serial fetch-block size (a power of two) the chunk must divide,
        for drivers whose generators must land on the serial block grid
        (see :meth:`UniformStreams.align_to_serial`).  When the budget
        allows a chunk >= ``align``, exactly ``align`` is used.
    block:
        Explicit override (tests): used verbatim after validation.
    budget_doubles:
        Total budget across repetitions; defaults to 32 MiB of doubles.
    """
    if align is not None and align & (align - 1):
        raise ValueError(f"align must be a power of two, got {align}")
    if block is not None:
        if block < per_rep_min:
            raise ValueError(
                f"block override {block} below per-repetition minimum "
                f"{per_rep_min}"
            )
        if align is not None and align % block:
            raise ValueError(
                f"block override {block} must divide align={align}"
            )
        return block
    budget = _STREAM_BUDGET_DOUBLES if budget_doubles is None else budget_doubles
    raw = min(_STREAM_MAX_BLOCK, budget // max(reps, 1))
    if align is not None:
        if per_rep_min > align:
            raise ValueError(
                f"per_rep_min {per_rep_min} cannot exceed align={align}"
            )
        if raw >= align:
            return align
        # largest power of two <= raw divides the power-of-two align;
        # climb back up if that violates the per-repetition floor
        chunk = 1 << max(0, raw.bit_length() - 1)
        while chunk < per_rep_min:
            chunk <<= 1
        return chunk
    return max(per_rep_min, raw)


class UniformStreams:
    """``R`` lock-step uniform streams over one bounded shared buffer.

    The streaming replacement for the batched drivers' preallocated
    ``reps × block`` uniform buffers: each repetition draws from its own
    child generator in serial consumption order, but the refill chunk is
    sized by :func:`resolve_stream_block` so the whole allocation stays
    within a fixed budget no matter how many repetitions are in flight.
    Chunk-invariance of NumPy double streams makes the chunk size
    invisible in the results — only the consumption order matters — which
    is also what permits the two mid-stream manoeuvres the scalar tail
    finisher needs:

    * :meth:`tail` hands one repetition's stream to a scalar loop, its
      unconsumed buffered doubles travelling along as the
      :class:`UniformStream` ``initial`` prefix;
    * :meth:`align_to_serial` fast-forwards a finished repetition's
      generator onto the serial driver's fetch grid, so callers that keep
      consuming the generator afterwards (the Poissonised sequential
      driver's Gamma draws) see exactly the serial stream position.

    Examples
    --------
    >>> gens = spawn_generators(0, 3)
    >>> s = UniformStreams(gens, per_rep_min=2, block=8)
    >>> s.fill(range(3))
    >>> ref = spawn_generators(0, 3)[1].random(8)
    >>> bool(np.array_equal(s.buf[1], ref))
    True
    """

    __slots__ = ("gens", "block", "buf", "flat", "fetched", "_align", "backend")

    def __init__(
        self,
        gens,
        *,
        per_rep_min: int = 1,
        align: int | None = None,
        block: int | None = None,
        budget_doubles: int | None = None,
        backend=None,
    ):
        from repro.backends import get_backend

        self.backend = get_backend(backend)
        self.gens = list(gens)
        self.block = resolve_stream_block(
            len(self.gens),
            per_rep_min=per_rep_min,
            align=align,
            block=block,
            budget_doubles=budget_doubles,
        )
        self.buf = self.backend.empty((len(self.gens), self.block), dtype=np.float64)
        self.flat = self.buf.reshape(-1)
        self.fetched = self.backend.zeros(len(self.gens), dtype=np.int64)
        self._align = align

    def fill(self, rows) -> None:
        """Fetch a whole fresh chunk for each repetition in ``rows``."""
        fill_uniform = self.backend.fill_uniform
        for r in rows:
            fill_uniform(self.gens[r], self.buf[r])
            self.fetched[r] += self.block

    def refill_tail(self, r: int, ptr: int) -> None:
        """Refill row ``r`` whose next unconsumed double sits at ``ptr``.

        The unconsumed suffix ``buf[r, ptr:]`` moves to the front and
        ``ptr`` fresh doubles are fetched behind it — the remainder-copy
        refill for drivers whose per-round consumption can straddle a
        chunk boundary.
        """
        rem = self.block - ptr
        if rem:
            self.buf[r, :rem] = self.buf[r, ptr:]
        if ptr:
            self.backend.fill_uniform(self.gens[r], self.buf[r, rem:])
            self.fetched[r] += ptr

    def tail(self, r: int, ptr: int) -> UniformStream:
        """Hand repetition ``r``'s stream to a scalar loop, mid-flight.

        Returns a :class:`UniformStream` that first serves the row's
        unconsumed doubles ``buf[r, ptr:]`` and then continues fetching
        from the repetition's own generator in ``block``-sized chunks —
        the same stream, bit for bit, from the scalar side.
        """
        return UniformStream(
            self.gens[r], block=self.block, initial=self.buf[r, ptr:]
        )

    def align_to_serial(
        self, r: int, consumed: int, tail: UniformStream | None = None
    ) -> None:
        """Fast-forward generator ``r`` onto the serial fetch grid.

        The serial drivers fetch in ``align``-sized blocks (one drawn up
        front), so after consuming ``consumed`` doubles their generator
        sits at ``align · max(1, ceil(consumed / align))``.  The streaming
        chunks here divide ``align`` and are only fetched on demand, so
        the streamed fetch count never exceeds that position; drawing the
        difference lands the generator exactly where the serial driver
        leaves it — required by callers that keep consuming the generator
        after the walk (Gamma durations of the Poissonised driver).
        """
        if self._align is None:
            return
        fetched = int(self.fetched[r]) + (0 if tail is None else tail.drawn)
        target = self._align * max(1, -(-consumed // self._align))
        if target > fetched:
            self.gens[r].random(target - fetched)


def stable_seed(*parts) -> int:
    """Derive a deterministic 63-bit seed from arbitrary labelled parts.

    Used by the experiment registry so that e.g. ``("table1", "cycle", 256,
    rep=3)`` always maps to the same RNG stream regardless of execution
    order.  The hash is content-based (SHA-256 over the ``repr`` of the
    parts), therefore stable across processes and Python versions that
    preserve ``repr`` of the inputs (ints and strings do).

    Examples
    --------
    >>> stable_seed("cycle", 128) == stable_seed("cycle", 128)
    True
    >>> stable_seed("cycle", 128) != stable_seed("cycle", 129)
    True
    """
    payload = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)
