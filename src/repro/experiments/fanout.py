"""Shared-memory process fan-out for Monte-Carlo dispersion estimates.

``estimate_dispersion(n_jobs > 1)`` used to pickle the whole graph into
every one of the ``reps`` pool jobs and fan out *serial* repetitions, so
the process pool could not compose with the lock-step batching of
:mod:`repro.core.batched` / :mod:`repro.core.batched_continuous`.  This
module replaces that path with the standard shared-immutable-structure
pattern for parallel Monte Carlo over one read-only graph:

* :class:`SharedGraph` exports a :class:`~repro.graphs.csr.Graph`'s CSR
  arrays **once** into a named ``multiprocessing.shared_memory`` block;
  each worker reattaches and rebuilds the graph zero-copy through
  :meth:`repro.graphs.csr.Graph.from_shared`;
* :func:`plan_shards` splits the repetition axis into one contiguous
  slice per worker, so each worker runs the *batched* driver on its
  shard — batching × processes compose instead of excluding each other;
* :func:`run_shard` is the worker entry point and
  :func:`fanout_estimate` orchestrates the pool from the parent.

Implicit families (:mod:`repro.graphs.implicit`) skip the segment
entirely: their adjacency is arithmetic, so the worker-side rebuild is a
few integers.  They ship as an
:class:`~repro.graphs.implicit.ImplicitGraphSpec` ``(family, params)``
descriptor and :func:`run_shard` dispatches on the spec type — cheaper
than exporting CSR arrays that were never materialised in the parent
either.  Both spec routes validate their counts through the shared
:func:`repro.graphs.csr.check_spec_counts` helper.

Bit-identity across execution modes is preserved because repetition
``r`` still consumes child ``r`` of the single parent ``SeedSequence``
no matter which shard (or dispatch mode) runs it, and the batched
drivers replay the serial uniform streams double for double.

Memory lifecycle
----------------
The parent owns the segment: :class:`SharedGraph` is a context manager
whose exit closes **and unlinks** the block — including when a worker
raises or dies mid-shard, since the ``with`` body only propagates the
failure after the pool shuts down.  A ``weakref.finalize`` backstop
(which also runs at interpreter shutdown) covers non-context-manager
use, so a dropped handle never leaks the segment.  Workers only ever
attach and close.  The pool uses the ``fork`` start method where
available so every process shares the parent's resource tracker — with
``spawn``, each child tracks the attachment separately and tries to
clean it up again at exit (bpo-39959 noise; harmless here because the
parent's unlink tolerates an already-removed segment).
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.implicit import ImplicitGraph, ImplicitGraphSpec, from_descriptor
from repro.utils.validation import check_integer

__all__ = [
    "SharedGraph",
    "SharedGraphSpec",
    "ImplicitGraphSpec",
    "attach",
    "budget_aligned_shard",
    "plan_shards",
    "run_shard",
    "fanout_estimate",
]

_ITEMSIZE = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class SharedGraphSpec:
    """Picklable handle describing one exported graph (sent to workers).

    ``block`` names the shared-memory segment; its first ``n + 1`` int64
    are ``indptr``, the next ``nnz`` are ``indices`` (the packed layout
    :meth:`Graph.from_shared` expects).  ``name`` carries the graph's
    label so worker-side results stay attributable.
    """

    block: str
    n: int
    nnz: int
    name: str


def _release(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment, tolerating double release."""
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedGraph:
    """Parent-side export of a graph into one shared-memory block.

    Use as a context manager around the pool dispatch::

        with SharedGraph(g) as sg:
            pool.submit(run_shard, sg.spec, ...)

    Exit (or :meth:`close`, or garbage collection via the registered
    finalizer) unlinks the block exactly once; attach-side consumers
    reconstruct the graph with :func:`attach` / :meth:`Graph.from_shared`
    without copying the CSR arrays.
    """

    def __init__(self, g: Graph):
        n, nnz = g.n, g.indices.size
        self._shm = shared_memory.SharedMemory(
            create=True, size=(n + 1 + nnz) * _ITEMSIZE
        )
        packed = np.ndarray((n + 1 + nnz,), dtype=np.int64, buffer=self._shm.buf)
        packed[: n + 1] = g.indptr
        packed[n + 1 :] = g.indices
        # Drop the exporting view immediately: SharedMemory.close() raises
        # BufferError while any ndarray still references the mapping.
        del packed
        self.spec = SharedGraphSpec(block=self._shm.name, n=n, nnz=nnz, name=g.name)
        self._finalizer = weakref.finalize(self, _release, self._shm)

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(spec: SharedGraphSpec) -> tuple[shared_memory.SharedMemory, Graph]:
    """Attach to an exported graph: returns the mapping and a zero-copy Graph.

    The graph's CSR arrays view the returned mapping directly; drop every
    reference to the graph *before* calling ``close()`` on the mapping.
    """
    shm = shared_memory.SharedMemory(name=spec.block)
    try:
        return shm, Graph.from_shared(shm.buf, spec.n, spec.nnz, name=spec.name)
    except Exception:
        shm.close()
        raise


def plan_shards(
    reps: int, n_jobs: int, *, max_shard: int | None = None
) -> list[tuple[int, int]]:
    """Split ``range(reps)`` into contiguous per-worker ``(start, stop)`` slices.

    At most ``n_jobs`` shards, every shard non-empty, sizes differing by
    at most one (earlier shards take the remainder).  Contiguity is what
    keeps the seed plumbing trivial: shard ``(start, stop)`` consumes
    children ``start..stop-1`` of the parent ``SeedSequence``, so
    repetition ``r`` sees the same stream as in every other execution
    mode.

    ``max_shard`` caps the repetitions per shard — the cost-weighted
    sizing hook of the adaptive runner, which learns the per-rep cost
    from earlier rounds and requests shards of bounded *duration*.  The
    plan may then contain more shards than ``n_jobs``; the surplus
    queues on the pool and drains as workers free up, so one straggling
    shard delays the round by about its own duration, not by a whole
    ``reps / n_jobs`` slice.  Shard *boundaries* never affect samples
    (repetition ``r``'s stream only depends on child ``r``), so the cap
    is purely a scheduling decision.

    Examples
    --------
    >>> plan_shards(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    >>> plan_shards(2, 8)
    [(0, 1), (1, 2)]
    >>> plan_shards(10, 2, max_shard=3)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    k = min(n_jobs, reps)
    if max_shard is not None:
        max_shard = check_integer("max_shard", max_shard)
        if max_shard < 1:
            raise ValueError(f"max_shard must be >= 1, got {max_shard}")
        k = min(max(k, -(-reps // max_shard)), reps)
    base, extra = divmod(reps, k)
    shards = []
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        shards.append((start, stop))
        start = stop
    return shards


def budget_aligned_shard(
    reps: int, n_jobs: int, cohort_reps: int, *, max_shard: int | None = None
) -> int:
    """Shard-size cap aligned to whole ``state_budget`` cohorts.

    When a :class:`repro.core.budget.StateBudget` forces the batched
    drivers into repetition cohorts of ``cohort_reps``, the natural
    fan-out shard is a whole number of cohorts: each worker then holds at
    most one cohort of driver state resident (the budget applies *per
    worker* — ``n_jobs`` workers hold ``n_jobs`` cohorts in aggregate,
    which is what the caller asked for by combining the two knobs), and
    no shard ends on a fractional cohort that re-pays the cohort setup
    for a sliver of repetitions.

    Starts from the even split ``ceil(reps / n_jobs)`` (tightened by
    ``max_shard``, the adaptive runner's cost-weighted cap, when given),
    rounds *down* to a cohort multiple, and never drops below one full
    cohort — a shard smaller than a cohort frees no memory, because the
    worker's driver allocates one cohort of state regardless.

    Examples
    --------
    >>> budget_aligned_shard(64, 4, 6)   # ceil(64/4)=16 -> 2 cohorts
    12
    >>> budget_aligned_shard(8, 4, 6)    # even split smaller than a cohort
    6
    >>> budget_aligned_shard(64, 4, 6, max_shard=7)
    6
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if cohort_reps < 1:
        raise ValueError(f"cohort_reps must be >= 1, got {cohort_reps}")
    base = -(-reps // n_jobs)
    cap = base if max_shard is None else min(base, max_shard)
    return max(cohort_reps, (cap // cohort_reps) * cohort_reps)


def run_shard(
    spec, process: str, origin, children, kwargs, batched
) -> list[tuple[float, int, object, object]]:
    """Worker entry point: run one contiguous repetition shard.

    ``spec`` is either a :class:`SharedGraphSpec` (attach to the exported
    CSR segment) or an :class:`ImplicitGraphSpec` (rebuild the arithmetic
    family locally — no segment exists).  ``children`` are the shard's
    slice of the parent ``SeedSequence``'s spawned children, one per
    repetition, in repetition order.  The shard re-decides batched
    dispatch with *its own* repetition count (the profitability
    thresholds are per-shard; memory never disqualifies batching since
    the streaming buffers bound their own allocation).
    Returns one :func:`repro.experiments.runner.outcome_of` payload —
    ``(dispersion_time, total_steps, trajectories, schedule)`` — per
    repetition, in repetition order, bit-identical to the in-process
    paths over the same children; trajectories are per-repetition lists,
    so the parent concatenates shard payloads in ``SeedSequence``-child
    order and recording survives the process boundary unchanged.
    """
    # Imported here (not at module top) to keep runner -> fanout -> runner
    # from becoming an import cycle; by the time a shard runs, the
    # experiments package is fully initialised.
    from repro.experiments.runner import (
        BATCHED_DRIVERS,
        _use_batched,
        outcome_of,
        run_process,
        serial_kwargs,
    )

    if isinstance(spec, ImplicitGraphSpec):
        shm, g = None, from_descriptor(spec)
    else:
        shm, g = attach(spec)
    try:
        if batched is True:
            use_batched = True  # validated by the parent before dispatch
        else:
            use_batched = _use_batched(process, g, len(children), 1, kwargs, batched)
        if use_batched:
            batch = BATCHED_DRIVERS[process](g, origin, seeds=list(children), **kwargs)
            return [outcome_of(r) for r in batch]
        out = []
        skwargs = serial_kwargs(process, kwargs)
        for child in children:
            res = run_process(process, g, origin, seed=child, **skwargs)
            out.append(outcome_of(res))
        return out
    finally:
        # The graph's CSR arrays view shm.buf: release them before closing
        # the mapping (close() raises BufferError while views exist).
        del g
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a driver kept a view alive
                pass


def _mp_context():
    """Prefer ``fork``: cheap worker start and one shared resource tracker."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def fanout_estimate(
    g: Graph,
    process: str,
    *,
    origin,
    children,
    n_jobs: int,
    batched,
    kwargs,
    max_shard: int | None = None,
) -> list[tuple[float, int, object, object]]:
    """Fan repetition shards out over a shared-memory process pool.

    CSR graphs are exported once (not pickled per job); implicit
    families skip the segment and ship their ``(family, params)``
    descriptor instead.  The repetition axis is sharded contiguously
    over at most ``n_jobs`` workers — or, with ``max_shard`` (the
    adaptive runner's cost-weighted cap), into more, smaller shards
    that queue on the pool — and each worker runs :func:`run_shard`,
    batched where profitable (or forced via ``batched=True``).
    Outcomes come back in repetition order and are bit-identical to
    ``n_jobs=1`` over the same ``children``.
    """
    shards = plan_shards(len(children), n_jobs, max_shard=max_shard)
    if isinstance(g, ImplicitGraph):
        exporter, spec = nullcontext(), g.descriptor()
    else:
        sg = SharedGraph(g)
        exporter, spec = sg, sg.spec
    with exporter:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(shards)), mp_context=_mp_context()
        ) as pool:
            futures = [
                pool.submit(
                    run_shard,
                    spec,
                    process,
                    origin,
                    children[start:stop],
                    dict(kwargs),
                    batched,
                )
                for start, stop in shards
            ]
            outcomes: list[tuple[float, int, object, object]] = []
            for future in futures:
                outcomes.extend(future.result())
    return outcomes
