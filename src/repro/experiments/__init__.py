"""Experiment harness: Monte-Carlo runner, sweeps, fits, tables, persistence."""

from repro.experiments.fitting import (
    ConstantFit,
    PowerLawFit,
    fit_constant,
    fit_power_law,
)
from repro.core.anytime import AdaptiveInfo, Precision, TauAccumulator
from repro.experiments.fanout import SharedGraph, fanout_estimate, plan_shards
from repro.experiments.io import load_json, save_json, to_jsonable
from repro.experiments.runner import (
    LAZY_PROCESSES,
    PROCESS_DRIVERS,
    DispersionEstimate,
    driver_kwargs,
    estimate_dispersion,
    run_process,
)
from repro.experiments.stats import (
    SummaryStats,
    bootstrap_ci,
    empirical_quantile,
    summarize,
)
from repro.experiments.sweep import SweepPoint, SweepResult, sweep_dispersion
from repro.experiments.table1_report import (
    Table1Entry,
    build_table1_report,
    render_table1_report,
)
from repro.experiments.tables import format_value, render_table

__all__ = [
    "PROCESS_DRIVERS",
    "LAZY_PROCESSES",
    "SharedGraph",
    "fanout_estimate",
    "plan_shards",
    "run_process",
    "driver_kwargs",
    "estimate_dispersion",
    "DispersionEstimate",
    "Precision",
    "TauAccumulator",
    "AdaptiveInfo",
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "empirical_quantile",
    "fit_power_law",
    "fit_constant",
    "PowerLawFit",
    "ConstantFit",
    "sweep_dispersion",
    "Table1Entry",
    "build_table1_report",
    "render_table1_report",
    "SweepResult",
    "SweepPoint",
    "render_table",
    "format_value",
    "save_json",
    "load_json",
    "to_jsonable",
]
