"""Scaling-law fits: the quantitative backbone of the Table 1 benches.

Asymptotic claims ``τ(n) = Θ(f(n))`` are checked two ways:

* :func:`fit_power_law` — unconstrained log–log regression returning the
  empirical exponent (e.g. cycle dispersion should fit ``n^{≈2+}``);
* :func:`fit_constant` — regress measured values against a *given* growth
  law ``f``: the estimated constant is ``mean(y/f(n))`` and the *trend*
  (slope of ``log(y/f)`` vs ``log n``) should be ≈ 0 when ``f`` is the
  right law.  This is how κ_cc, π²/6 and κ_p are extracted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.theory.table1 import GrowthLaw

__all__ = ["PowerLawFit", "ConstantFit", "fit_power_law", "fit_constant"]


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ exp(intercept) · n^exponent`` with log-space R²."""

    exponent: float
    intercept: float
    r_squared: float

    def predict(self, n) -> np.ndarray:
        return np.exp(self.intercept) * np.asarray(n, dtype=np.float64) ** self.exponent


@dataclass(frozen=True)
class ConstantFit:
    """``y ≈ constant · f(n)``; ``trend`` ≈ 0 means the law matches."""

    law: str
    constant: float
    trend: float
    ratios: tuple[float, ...]

    @property
    def is_flat(self) -> bool:
        """Heuristic flatness check used by tests (|trend| < 0.35)."""
        return abs(self.trend) < 0.35


def _check_xy(ns, ys) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(ns, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("ns and ys must be 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least two points to fit")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("fits are in log space; values must be positive")
    return x, y


def fit_power_law(ns, ys) -> PowerLawFit:
    """Least-squares fit of ``log y = a log n + b``.

    >>> f = fit_power_law([10, 100, 1000], [1e2, 1e4, 1e6])
    >>> round(f.exponent, 6)
    2.0
    """
    x, y = _check_xy(ns, ys)
    lx, ly = np.log(x), np.log(y)
    A = np.vstack([lx, np.ones_like(lx)]).T
    (a, b), res, *_ = np.linalg.lstsq(A, ly, rcond=None)
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    ss_res = float(res[0]) if res.size else float(((ly - A @ [a, b]) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(a), intercept=float(b), r_squared=r2)


def fit_constant(ns, ys, law: GrowthLaw) -> ConstantFit:
    """Estimate the leading constant of ``y = c · law(n)`` and its trend.

    ``constant`` is the ratio at the *largest* n (closest to asymptopia);
    ``trend`` is the slope of ``log(ratio)`` vs ``log(n)`` — zero iff the
    law captures the growth exactly.
    """
    x, y = _check_xy(ns, ys)
    f = np.asarray([law(v) for v in x], dtype=np.float64)
    if np.any(f <= 0):
        raise ValueError(f"growth law {law.label!r} is non-positive on the data")
    ratios = y / f
    lx = np.log(x)
    lr = np.log(ratios)
    A = np.vstack([lx, np.ones_like(lx)]).T
    (slope, _), *_ = np.linalg.lstsq(A, lr, rcond=None)
    order = np.argsort(x)
    return ConstantFit(
        law=law.label,
        constant=float(ratios[order[-1]]),
        trend=float(slope),
        ratios=tuple(float(r) for r in ratios[order]),
    )
