"""Minimal ASCII table renderer for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v) -> str:
    """Format a cell: floats get 4 significant digits, rest via str()."""
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table (also valid GitHub markdown).

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    | a | b   |
    |---|-----|
    | 1 | 2.5 |
    """
    rows = [[format_value(c) for c in r] for r in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for r in rows:
        if len(r) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(headers), sep]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
